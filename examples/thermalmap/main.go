// Thermal map: traces per-interval temperatures of the frontend hot
// blocks over a run, showing the dynamics behind the paper's AvgMax
// metric — bursts heat the rename table and trace-cache banks between
// reconfiguration intervals, and bank hopping visibly saw-tooths the
// bank temperatures.  Runs go through the public Engine API; the
// per-interval series comes from the in-process Raw() result.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/pkg/frontendsim"
)

func spark(vals []float64, lo, hi float64) string {
	marks := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range vals {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		sb.WriteRune(marks[int(f*float64(len(marks)-1))])
	}
	return sb.String()
}

func trace(r *sim.Result, name string) []float64 {
	i := r.Floorplan.Index(name)
	if i < 0 {
		return nil
	}
	out := make([]float64, 0, r.Temps.Intervals())
	for s := 0; s < r.Temps.Intervals(); s++ {
		out = append(out, r.Temps.PerInterval(s)[i]-r.Temps.Ambient())
	}
	return out
}

func main() {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(80_000),
		frontendsim.WithMeasureOps(400_000),
	)
	for _, c := range []struct {
		name string
		req  frontendsim.Request
	}{
		{"baseline", frontendsim.Request{Benchmark: "crafty"}},
		{"hopping+biasing", frontendsim.Request{Benchmark: "crafty", BankHopping: true, BiasedMapping: true}},
	} {
		res, err := eng.Run(context.Background(), c.req)
		if err != nil {
			log.Fatal(err)
		}
		r := res.Raw()
		fmt.Printf("%s on %s: %d intervals\n", c.name, res.Benchmark, res.Intervals)
		blocks := []string{floorplan.RAT, floorplan.ROB}
		for b := 0; b < res.Config.TC.Banks; b++ {
			blocks = append(blocks, floorplan.TCBank(b))
		}
		for _, bl := range blocks {
			if r.Floorplan.Index(bl) < 0 {
				continue
			}
			vals := trace(r, bl)
			only := func(n string) bool { return n == bl }
			fmt.Printf("  %-5s rise %5.1f..%5.1f  %s\n", bl,
				minOf(vals), r.Temps.AbsMax(only), spark(vals, 0, 60))
		}
		tc := res.Units[frontendsim.UnitTraceCache]
		fmt.Printf("  trace cache: AbsMax %.1f  Average %.1f  AvgMax %.1f  (metrics of §4)\n\n",
			tc.AbsMax, tc.Average, tc.AvgMax)
	}
	fmt.Println("The gated bank cools while the enabled banks serve accesses; every")
	fmt.Println("interval the gate rotates (§3.2.1) and the mapping table is re-biased")
	fmt.Println("from the bank sensors (§3.2.2).")
}

func minOf(vals []float64) float64 {
	m := vals[0]
	for _, v := range vals {
		if v < m {
			m = v
		}
	}
	return m
}
