// Distributed rename & commit deep-dive: runs the §3.1 mechanism and
// exposes the machinery the paper describes — per-partition reorder
// buffer activity, the R/L commit walk, cross-frontend copy requests, and
// the resulting temperature drop at ~2% slowdown.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	prof, _ := workload.ByName("gcc")
	opt := sim.DefaultOptions()
	opt.WarmupOps = 80_000
	opt.MeasureOps = 200_000

	base := sim.Run(core.DefaultConfig(), prof, opt)
	dist := sim.Run(core.DefaultConfig().WithDistributedFrontend(2), prof, opt)

	fmt.Println("Distributed rename and commit on gcc (paper §3.1, Figure 12)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s\n", "", "centralized", "distributed")
	fmt.Printf("%-28s %12d %12d\n", "measured cycles", base.MeasCycles, dist.MeasCycles)
	fmt.Printf("%-28s %12.3f %12.3f\n", "IPC", base.IPC(), dist.IPC())
	fmt.Printf("%-28s %12d %12d\n", "copies", base.Stats.Copies, dist.Stats.Copies)
	fmt.Printf("%-28s %12d %12d  (two-step §3.1.1 protocol)\n",
		"cross-frontend copy requests", base.Stats.CrossFrontend, dist.Stats.CrossFrontend)
	fmt.Printf("%-28s %12s %12.2f%%\n", "slowdown", "-",
		(float64(dist.MeasCycles)/float64(base.MeasCycles)-1)*100)

	fmt.Println()
	for _, unit := range []struct {
		name   string
		filter func(string) bool
	}{
		{"Reorder buffer", floorplan.IsROB},
		{"Rename table", floorplan.IsRAT},
		{"Trace cache", floorplan.IsTraceCache},
	} {
		b := base.Temps.Unit(unit.filter)
		d := dist.Temps.Unit(unit.filter)
		fmt.Printf("%-15s peak rise %5.1f -> %5.1f (-%4.1f%%)   average %5.1f -> %5.1f (-%4.1f%%)\n",
			unit.name, b.AbsMax, d.AbsMax, (b.AbsMax-d.AbsMax)/b.AbsMax*100,
			b.Average, d.Average, (b.Average-d.Average)/b.Average*100)
	}

	fmt.Println()
	fmt.Println("Each frontend partition holds the rename table and reorder buffer of")
	fmt.Println("its two backends; output registers are renamed at the (centralized)")
	fmt.Println("steer stage from per-backend freelists, so no communication is needed")
	fmt.Println("between the partitions' rename tables.  Commit follows the R/L chain")
	fmt.Println("across partitions at +1 cycle latency (Figure 8).")
}
