// Distributed deep-dive, both senses of the word: the paper's §3.1
// distributed rename & commit frontend, run through the system's own
// distributed serving tier — three in-process simd backends behind the
// consistent-hashing suite scheduler (pkg/scheduler, cmd/simsched),
// sharing one tiered result store (pkg/resultstore: memory in front of
// crash-safe disk segments, the stand-in for a memcached/Thanos-style
// shared results cache).
//
// The example runs one suite centralized vs distributed-frontend and
// shows the scheduler's aggregate byte-identical to a serial in-process
// Engine.RunSuite — then breaks things on purpose:
//
//  1. a backend is killed mid-demo and its keys are served by the
//     surviving replicas straight from the shared store (failover with
//     zero recomputation),
//  2. a scheduler-tier response cache answers a repeated suite without
//     dispatching to any backend at all,
//  3. the whole fleet "restarts" — fresh engines, fresh memory — and the
//     reopened disk tier still serves every key, and
//  4. the ring manages itself: health probes quarantine a killed
//     backend, evict it past the deadline, and a restarted replica
//     rejoins through the admin API — all under continuous client load
//     with zero visible errors, watched through /metrics, and
//  5. the same suite is served through POST /v1/suites/stream: with a
//     warm scheduler cache and a deliberately slow backend, the cached
//     shards arrive on the wire in the first milliseconds while the one
//     missing shard is still in flight — first-line latency decouples
//     from completion latency, and the terminal aggregate line stays
//     byte-identical to the blocking response, and
//  6. the fleet is fronted by pkg/faultinject reverse proxies and a
//     failure scenario is scripted at runtime over the /__faults
//     control API: a budget of injected 500s lands on one replica, the
//     scheduler rides through it with failovers and jittered backoff,
//     the injected faults show up in the proxy's own stats endpoint,
//     and deleting the rule returns the fleet to quiet — all without
//     restarting anything, and
//  7. the shared tier goes network-native: two machines' worth of
//     replicas (separate engines, separate memory tiers — nothing
//     in-process in common) share one memcached-protocol result store,
//     so the second machine serves the first machine's suite with zero
//     engine runs; and the disk tier's background compactor rewrites
//     overwrite-heavy segments, reclaiming space while every live key
//     keeps answering, and
//  8. the fleet shards its storage — per-replica stores, no shared
//     tier — so a killed replica takes its slice's results with it;
//     the replacement rejoins through join-time warm-up (`simd
//     -warmup-peer`): /healthz held at 503 while it pulls the slice it
//     is about to own from the survivors' store planes, then it flips
//     ready and serves that slice entirely from store — X-Cache: HIT
//     on every request, zero engine runs.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memcachetest"
	"repro/internal/simd"
	"repro/pkg/faultinject"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
	"repro/pkg/scheduler"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// engineRuns counts actual simulations across every backend engine —
// the ground truth for "served from the store, not recomputed".
var engineRuns atomic.Int64

func backendOpts() []frontendsim.Option {
	return []frontendsim.Option{
		frontendsim.WithWarmupOps(40_000),
		frontendsim.WithMeasureOps(100_000),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				engineRuns.Add(1)
			}
		})),
	}
}

// newBackends starts n in-process simd replicas sharing one result
// store; in production each would be its own `simd -store tiered
// -store-dir ...` process in front of a shared cache tier.
func newBackends(n int, store resultstore.Store) []*httptest.Server {
	out := make([]*httptest.Server, n)
	for i := range out {
		out[i] = httptest.NewServer(simd.NewServerWithStore(frontendsim.New(backendOpts()...), store))
	}
	return out
}

func urls(backends []*httptest.Server) []string {
	out := make([]string, len(backends))
	for i, b := range backends {
		out[i] = b.URL
	}
	return out
}

func healthzCode(url string) int {
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// waitReady polls each backend's /healthz until it answers 200 — never
// sleep for "probably started by now"; ask the readiness endpoint.
func waitReady(backends []string) {
	deadline := time.Now().Add(10 * time.Second)
	for _, u := range backends {
		for {
			resp, err := http.Get(u + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("backend %s never became ready", u))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func suite(frontends int) frontendsim.SuiteRequest {
	return frontendsim.SuiteRequest{
		Benchmarks: []string{"gzip", "gcc", "mcf", "crafty", "parser", "swim"},
		Request:    frontendsim.Request{Frontends: frontends},
	}
}

func main() {
	ctx := context.Background()
	opts := []frontendsim.Option{
		frontendsim.WithWarmupOps(40_000),
		frontendsim.WithMeasureOps(100_000),
	}

	// The shared result store: a memory LRU in front of crash-safe disk
	// segments.  Every backend reads and writes the same store, so any
	// replica can serve any other replica's results.
	dir, err := os.MkdirTemp("", "resultstore-demo-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	disk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir})
	if err != nil {
		fatal(err)
	}
	shared := resultstore.NewTiered(resultstore.NewMemory(256), disk)

	backends := newBackends(3, shared)
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	waitReady(urls(backends))
	eng := frontendsim.New(opts...)
	sched, err := scheduler.New(eng, scheduler.Config{Backends: urls(backends)})
	if err != nil {
		fatal(err)
	}

	fmt.Println("Suite sharding by canonical request key (consistent hashing):")
	for _, bench := range suite(2).Benchmarks {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench, Frontends: 2})
		if err != nil {
			fatal(err)
		}
		for i, n := range urls(backends) {
			if sched.Ring().Node(key) == n {
				fmt.Printf("  %-8s -> backend %d  (key %s…)\n", bench, i, key[:12])
			}
		}
	}
	fmt.Println()

	base, err := sched.RunSuite(ctx, suite(0))
	if err != nil {
		fatal(err)
	}
	dist, err := sched.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}

	fmt.Println("Centralized vs distributed frontend (§3.1), 6-benchmark suite")
	fmt.Printf("%-28s %12s %12s\n", "", "centralized", "distributed")
	fmt.Printf("%-28s %12.3f %12.3f\n", "mean IPC", base.Aggregate.MeanIPC, dist.Aggregate.MeanIPC)
	fmt.Printf("%-28s %12d %12d\n", "total cycles", base.Aggregate.TotalCycles, dist.Aggregate.TotalCycles)
	fmt.Printf("%-28s %12s %12.2f%%\n", "slowdown", "-",
		(float64(dist.Aggregate.TotalCycles)/float64(base.Aggregate.TotalCycles)-1)*100)
	for _, unit := range []string{frontendsim.UnitROB, frontendsim.UnitRAT, frontendsim.UnitTraceCache} {
		b, d := base.Aggregate.Units[unit], dist.Aggregate.Units[unit]
		fmt.Printf("%-28s %11.1fC %11.1fC  (-%.1f%% peak rise)\n", unit+" peak rise",
			b.AbsMax, d.AbsMax, (b.AbsMax-d.AbsMax)/b.AbsMax*100)
	}
	fmt.Println()

	// The distributed serving tier is invisible in the numbers: the
	// scheduler's aggregate is byte-identical to a serial in-process run.
	serial, err := frontendsim.New(append(opts, frontendsim.WithWorkers(1))...).RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	distJSON, _ := json.Marshal(dist)
	serialJSON, _ := json.Marshal(serial)
	fmt.Printf("scheduler result == serial Engine.RunSuite: %v\n", bytes.Equal(distJSON, serialJSON))
	fmt.Printf("engine runs so far: %d (12 unique benchmark/config keys)\n\n", engineRuns.Load())

	// --- Failure 1: kill a backend; its keys live in the shared store. ---
	fmt.Println("Killing backend 0; its keys fail over to surviving replicas,")
	fmt.Println("which answer from the shared result store without recomputing:")
	backends[0].Close()
	before := engineRuns.Load()
	again, err := sched.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	againJSON, _ := json.Marshal(again)
	st := sched.Stats()
	fmt.Printf("  re-run after kill: byte-identical=%v, %d ring failovers, %d new engine runs\n\n",
		bytes.Equal(againJSON, serialJSON), st.Retried, engineRuns.Load()-before)

	// --- Failure 2 (the absence of one): the scheduler-tier cache. ---
	// A scheduler with its own response cache answers a repeated suite
	// at the frontend tier — zero dispatches, zero backend contact.
	cachedSched, err := scheduler.New(eng, scheduler.Config{
		Backends: urls(backends),
		Cache:    resultstore.NewMemory(64),
	})
	if err != nil {
		fatal(err)
	}
	if _, _, err := cachedSched.RunSuiteServed(ctx, suite(2)); err != nil {
		fatal(err)
	}
	dispatchedBefore := cachedSched.Stats().Dispatched
	_, served, err := cachedSched.RunSuiteServed(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	fmt.Println("Scheduler-tier response cache (simsched -cache):")
	fmt.Printf("  repeated suite: X-Cache=%s, %d/6 shards cached, %d new dispatches\n\n",
		served.XCache(), served.Cached, cachedSched.Stats().Dispatched-dispatchedBefore)

	// --- Failure 3: restart everything; only the disk segments remain. ---
	fmt.Println("Restarting the fleet: fresh engines, fresh memory tier, reopened disk store:")
	for _, b := range backends[1:] {
		b.Close()
	}
	if err := shared.Close(); err != nil {
		fatal(err)
	}
	disk2, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir})
	if err != nil {
		fatal(err)
	}
	reopened := resultstore.NewTiered(resultstore.NewMemory(256), disk2)
	defer reopened.Close()
	backends2 := newBackends(3, reopened)
	defer func() {
		for _, b := range backends2 {
			b.Close()
		}
	}()
	waitReady(urls(backends2))
	sched2, err := scheduler.New(eng, scheduler.Config{Backends: urls(backends2)})
	if err != nil {
		fatal(err)
	}
	before = engineRuns.Load()
	rerun, err := sched2.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	rerunJSON, _ := json.Marshal(rerun)
	fmt.Printf("  post-restart suite: byte-identical=%v, %d new engine runs\n",
		bytes.Equal(rerunJSON, serialJSON), engineRuns.Load()-before)
	for _, tier := range reopened.Stats() {
		fmt.Printf("  %-6s tier: %d entries, %d hits, %d misses\n",
			tier.Tier, tier.Entries, tier.Hits, tier.Misses)
	}
	fmt.Println()

	// --- Act 4: the self-managing ring. ---
	// The same fleet, now owned by a membership registry: active health
	// probes, quarantine on consecutive failures, eviction past a
	// deadline, rejoin through the scheduler's admin API — all while a
	// client hammers the fleet and must never see an error.
	fmt.Println("Self-managing ring: kill -> quarantine -> evict -> rejoin, under load:")
	metrics := obs.NewRegistry()
	ringSched, err := scheduler.New(eng, scheduler.Config{
		Backends: urls(backends2),
		Metrics:  metrics,
	})
	if err != nil {
		fatal(err)
	}
	members, err := membership.New(membership.Config{
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    time.Second,
		QuarantineAfter: 2,
		EvictAfter:      150 * time.Millisecond,
		OnChange:        ringSched.OnMembershipChange(),
		Metrics:         metrics,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}, urls(backends2))
	if err != nil {
		fatal(err)
	}
	members.Start()
	defer members.Close()
	admin := httptest.NewServer(scheduler.NewServer(ringSched,
		scheduler.WithMembership(members), scheduler.WithMetrics(metrics)))
	defer admin.Close()

	// Continuous client load against the ring for the whole lifecycle.
	var clientErrors, clientRequests atomic.Int64
	loadDone := make(chan struct{})
	var loadWG sync.WaitGroup
	loadWG.Add(1)
	go func() {
		defer loadWG.Done()
		for i := 0; ; i++ {
			select {
			case <-loadDone:
				return
			default:
			}
			bench := suite(2).Benchmarks[i%6]
			_, err := ringSched.Dispatch(ctx, frontendsim.Request{Benchmark: bench, Frontends: 2})
			clientRequests.Add(1)
			if err != nil {
				clientErrors.Add(1)
			}
		}
	}()
	waitFor := func(what string, cond func() bool) {
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				fatal(fmt.Errorf("timed out waiting for %s", what))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	victim := backends2[0]
	fmt.Printf("  killing %s\n", victim.URL)
	victim.Close()
	waitFor("quarantine", func() bool { return len(members.Active()) == 2 })
	waitFor("eviction", func() bool { return len(members.Snapshot()) == 2 })

	// "Restart" the backend: a fresh replica over the same shared store,
	// announcing itself to the scheduler the way `simd -announce` does.
	replacement := newBackends(1, reopened)[0]
	defer replacement.Close()
	waitReady([]string{replacement.URL})
	if err := membership.Announce(ctx, nil, admin.URL, replacement.URL); err != nil {
		fatal(err)
	}
	waitFor("rejoin", func() bool { return len(members.Active()) == 3 })
	close(loadDone)
	loadWG.Wait()

	st = ringSched.Stats()
	fmt.Printf("  ring epoch %d, %d members active, %d ring swaps\n",
		members.Epoch(), len(members.Active()), st.RingSwaps)
	fmt.Printf("  client saw %d errors in %d requests during the whole lifecycle (%d failovers absorbed)\n",
		clientErrors.Load(), clientRequests.Load(), st.Retried)
	fmt.Println("  /metrics excerpt (simsched serves the full exposition on GET /metrics):")
	for _, line := range strings.Split(metrics.Render(), "\n") {
		if strings.HasPrefix(line, "ring_transitions_total") || strings.HasPrefix(line, "ring_members") {
			fmt.Printf("    %s\n", line)
		}
	}
	if clientErrors.Load() > 0 {
		fatal(fmt.Errorf("client-visible errors during ring lifecycle"))
	}
	fmt.Println()

	// --- Act 5: the streamed fan-in. ---
	// One deliberately slow backend (every round trip pays a fixed tax —
	// a congested link, a loaded replica) behind a scheduler whose
	// response cache holds 5 of the suite's 6 shards.  The blocking
	// endpoint would sit on the whole suite until the slow shard lands;
	// the stream hands over the 5 warm shards in the first milliseconds.
	fmt.Println("Streamed suite fan-in (/v1/suites/stream), warm cache + one slow backend:")
	const backendDelay = 250 * time.Millisecond
	slowInner := simd.NewServerWithStore(frontendsim.New(backendOpts()...), reopened)
	slowBackend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(backendDelay)
		slowInner.ServeHTTP(w, r)
	}))
	defer slowBackend.Close()
	streamSched, err := scheduler.New(eng, scheduler.Config{
		Backends: []string{slowBackend.URL},
		Cache:    resultstore.NewMemory(64),
	})
	if err != nil {
		fatal(err)
	}
	// Warm the scheduler-tier cache for every benchmark but the last.
	for _, bench := range suite(2).Benchmarks[:5] {
		if _, err := streamSched.Dispatch(ctx, frontendsim.Request{Benchmark: bench, Frontends: 2}); err != nil {
			fatal(err)
		}
	}
	streamSrv := httptest.NewServer(scheduler.NewServer(streamSched))
	defer streamSrv.Close()

	suiteBody, err := json.Marshal(suite(2))
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(streamSrv.URL+"/v1/suites/stream", "application/json", bytes.NewReader(suiteBody))
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()

	var firstLine time.Duration
	var cachedLines, dispatchedLines int
	var terminal *frontendsim.SuiteResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line frontendsim.SuiteStreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			fatal(err)
		}
		switch line.Type {
		case "shard":
			if firstLine == 0 {
				firstLine = time.Since(start)
			}
			if line.Source == "HIT" {
				cachedLines++
			} else {
				dispatchedLines++
			}
			fmt.Printf("  shard %-8s %-5s t=%-6v positions=%v\n",
				line.Benchmark, line.Source, time.Since(start).Round(time.Millisecond), line.Positions)
		case "aggregate":
			terminal = line.Suite
		case "error":
			fatal(fmt.Errorf("stream error line: %s", line.Error))
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	completed := time.Since(start)
	if terminal == nil {
		fatal(fmt.Errorf("stream ended without an aggregate line"))
	}
	terminalJSON, _ := json.Marshal(terminal)
	fmt.Printf("  first line after %v, completion after %v (the slow backend taxes every dispatch %v)\n",
		firstLine.Round(time.Millisecond), completed.Round(time.Millisecond), backendDelay)
	fmt.Printf("  %d shards streamed from the warm cache ahead of %d dispatched; terminal aggregate byte-identical to the blocking run: %v\n",
		cachedLines, dispatchedLines, bytes.Equal(terminalJSON, serialJSON))
	if cachedLines != 5 || dispatchedLines != 1 {
		fatal(fmt.Errorf("streamed %d cached / %d dispatched shards, want 5/1", cachedLines, dispatchedLines))
	}
	if firstLine >= backendDelay {
		fatal(fmt.Errorf("first streamed line took %v — not earlier than the slow shard's %v dispatch", firstLine, backendDelay))
	}
	if !bytes.Equal(terminalJSON, serialJSON) {
		fatal(fmt.Errorf("streamed aggregate differs from the serial reference"))
	}
	fmt.Println()

	// --- Act 6: scripted chaos through the fault-injection proxies. ---
	// The live fleet, now reached through pkg/faultinject reverse proxies
	// — rule-driven stand-ins for a flaky network path.  The failure
	// scenario is scripted over each proxy's /__faults control API with
	// plain HTTP while suites keep flowing: a deterministic budget of
	// injected 500s lands on the home replica of the suite's first shard,
	// the scheduler rides through it (failover + jittered backoff,
	// byte-identical result), the injections are visible in the proxy's
	// own stats, and deleting the rule returns the fleet to quiet.
	fmt.Println("Scripted chaos (pkg/faultinject), driven over the /__faults control API:")
	live := []*httptest.Server{backends2[1], backends2[2], replacement}
	proxies := make([]*httptest.Server, len(live))
	for i, b := range live {
		proxies[i] = httptest.NewServer(faultinject.NewProxy(b.URL, faultinject.New(int64(600+i)), nil))
		defer proxies[i].Close()
	}
	chaosMetrics := obs.NewRegistry()
	chaosSched, err := scheduler.New(eng, scheduler.Config{
		Backends:     urls(proxies),
		RetryBackoff: 2 * time.Millisecond,
		Metrics:      chaosMetrics,
	})
	if err != nil {
		fatal(err)
	}
	gzipKey, err := eng.RequestKey(frontendsim.Request{Benchmark: "gzip", Frontends: 2})
	if err != nil {
		fatal(err)
	}
	home := chaosSched.Ring().Node(gzipKey)

	ruleResp, err := http.Post(home+faultinject.ControlPrefix+"/rules", "application/json",
		strings.NewReader(`{"match":{"path":"/v1/simulations"},"status":500,"max_count":2}`))
	if err != nil {
		fatal(err)
	}
	var installed struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(ruleResp.Body).Decode(&installed); err != nil {
		fatal(err)
	}
	ruleResp.Body.Close()
	fmt.Printf("  POST %s/rules on gzip's home replica -> %s: its next 2 dispatches answer 500\n",
		faultinject.ControlPrefix, installed.ID)

	before = engineRuns.Load()
	chaosRun, err := chaosSched.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	chaosJSON, _ := json.Marshal(chaosRun)
	st = chaosSched.Stats()
	fmt.Printf("  suite through the faults: byte-identical=%v, %d failovers, %d jittered backoffs, %d new engine runs\n",
		bytes.Equal(chaosJSON, serialJSON), st.Retried, st.Backoffs, engineRuns.Load()-before)
	if !bytes.Equal(chaosJSON, serialJSON) {
		fatal(fmt.Errorf("chaos suite differs from the serial reference"))
	}
	if st.Retried == 0 || st.Backoffs == 0 {
		fatal(fmt.Errorf("injected 500s were never exercised (retried=%d backoffs=%d)", st.Retried, st.Backoffs))
	}
	for _, line := range strings.Split(chaosMetrics.Render(), "\n") {
		if strings.HasPrefix(line, "sched_retry_backoff_seconds_count") {
			fmt.Printf("  /metrics: %s\n", line)
		}
	}

	statsResp, err := http.Get(home + faultinject.ControlPrefix + "/stats")
	if err != nil {
		fatal(err)
	}
	var injStats faultinject.Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&injStats); err != nil {
		fatal(err)
	}
	statsResp.Body.Close()
	fmt.Printf("  GET %s/stats -> %d requests seen, %d injected 500s\n",
		faultinject.ControlPrefix, injStats.Requests, injStats.Status)

	del, err := http.NewRequest(http.MethodDelete,
		home+faultinject.ControlPrefix+"/rules?id="+installed.ID, nil)
	if err != nil {
		fatal(err)
	}
	delResp, err := http.DefaultClient.Do(del)
	if err != nil {
		fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("DELETE rule: status %d", delResp.StatusCode))
	}
	retriedBefore := st.Retried
	quiet, err := chaosSched.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	quietJSON, _ := json.Marshal(quiet)
	fmt.Printf("  DELETE the rule, re-run: byte-identical=%v, %d new failovers — the fleet is quiet again\n",
		bytes.Equal(quietJSON, serialJSON), chaosSched.Stats().Retried-retriedBefore)
	if !bytes.Equal(quietJSON, serialJSON) || chaosSched.Stats().Retried != retriedBefore {
		fatal(fmt.Errorf("post-chaos suite not clean"))
	}
	fmt.Println()

	// --- Act 7: the network-native shared tier. ---
	// Until now "shared store" meant one in-process object.  Here the
	// replicas share nothing but a cache server speaking the memcached
	// text protocol (in production: `simd -store tiered-remote
	// -remote-servers cache-1:11211,...`).  Machine 1 computes a suite
	// and writes through; machine 2 — fresh engines, fresh memory tiers,
	// a different "host" — serves the identical suite with zero engine
	// runs: the paper's cross-cluster work sharing over a real wire
	// protocol.
	fmt.Println("Network-native shared store (-store tiered-remote), two machines:")
	cacheSrv, err := memcachetest.New()
	if err != nil {
		fatal(err)
	}
	defer cacheSrv.Close()

	machine := func(replicas int) ([]*httptest.Server, *resultstore.Remote) {
		remote, err := resultstore.NewRemote(resultstore.RemoteConfig{
			Servers: []string{cacheSrv.Addr()},
		})
		if err != nil {
			fatal(err)
		}
		out := make([]*httptest.Server, replicas)
		for i := range out {
			store := resultstore.NewTiered(resultstore.NewMemory(64), remote)
			out[i] = httptest.NewServer(simd.NewServerWithStore(frontendsim.New(backendOpts()...), store))
		}
		return out, remote
	}

	machine1, remote1 := machine(2)
	defer func() {
		for _, b := range machine1 {
			b.Close()
		}
		remote1.Close()
	}()
	waitReady(urls(machine1))
	sched7a, err := scheduler.New(eng, scheduler.Config{Backends: urls(machine1)})
	if err != nil {
		fatal(err)
	}
	before = engineRuns.Load()
	warm, err := sched7a.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	warmJSON, _ := json.Marshal(warm)
	fmt.Printf("  machine 1 computes the suite: %d engine runs, %d keys now on the cache server\n",
		engineRuns.Load()-before, cacheSrv.Len())

	machine2, remote2 := machine(2)
	defer func() {
		for _, b := range machine2 {
			b.Close()
		}
		remote2.Close()
	}()
	waitReady(urls(machine2))
	sched7b, err := scheduler.New(eng, scheduler.Config{Backends: urls(machine2)})
	if err != nil {
		fatal(err)
	}
	before = engineRuns.Load()
	peer, err := sched7b.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	peerJSON, _ := json.Marshal(peer)
	batches, keys := remote2.BatchStats()
	fmt.Printf("  machine 2 serves it cold: byte-identical=%v, %d new engine runs, %d remote hits over %d multi-get batches (%d keys)\n",
		bytes.Equal(peerJSON, warmJSON), engineRuns.Load()-before,
		remote2.Stats()[0].Hits, batches, keys)
	if engineRuns.Load()-before != 0 {
		fatal(fmt.Errorf("machine 2 recomputed a peer's results"))
	}
	if !bytes.Equal(peerJSON, warmJSON) {
		fatal(fmt.Errorf("machine 2's suite differs from machine 1's"))
	}

	// The disk tier's counterpart: the background compactor.  Hammer a
	// small key set with overwrites until most sealed segments are dead
	// weight, compact, and the store shrinks while every key still
	// answers.
	compactDir, err := os.MkdirTemp("", "resultstore-compact-demo-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(compactDir)
	cdisk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: compactDir, SegmentBytes: 8 << 10})
	if err != nil {
		fatal(err)
	}
	defer cdisk.Close()
	payload := bytes.Repeat([]byte("t"), 512)
	for round := 0; round < 64; round++ {
		for _, key := range []string{"hot-a", "hot-b", "hot-c"} {
			if err := cdisk.Set(ctx, key, payload); err != nil {
				fatal(err)
			}
		}
	}
	beforeBytes := cdisk.Stats()[0].Bytes
	reclaimedTotal, err := cdisk.Compact(resultstore.DefaultCompactThreshold)
	if err != nil {
		fatal(err)
	}
	after := cdisk.Stats()[0]
	fmt.Printf("  disk compaction after overwrite-heavy load: %d -> %d bytes on disk (%d reclaimed, %d segments rewritten)\n",
		beforeBytes, after.Bytes, reclaimedTotal, after.Compactions)
	for _, key := range []string{"hot-a", "hot-b", "hot-c"} {
		if _, ok, err := cdisk.Get(ctx, key); err != nil || !ok {
			fatal(fmt.Errorf("key %s lost to compaction: %v", key, err))
		}
	}
	if reclaimedTotal <= 0 || after.Bytes >= beforeBytes {
		fatal(fmt.Errorf("compaction reclaimed nothing (%d -> %d)", beforeBytes, after.Bytes))
	}
	fmt.Println()

	// --- Act 8: churn and repair — rejoin with join-time warm-up. ---
	// Every act so far healed through a shared store.  Real fleets also
	// shard: each replica owns its store, so a dead replica takes its
	// slice's results with it and a cold replacement would recompute
	// them all.  The self-healing path is `simd -warmup-peer`, run here
	// in process: the replacement holds /healthz at 503, pulls the keys
	// of the slice it is about to own from the survivors' store planes
	// (GET /v1/store/keys + GET /v1/store/entries/{key}), and only then
	// flips ready and joins.
	fmt.Println("Join-time warm-up (simd -warmup-peer): per-replica stores, kill -> rejoin warm:")
	opts8 := []frontendsim.Option{
		frontendsim.WithWarmupOps(12_000),
		frontendsim.WithMeasureOps(25_000),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				engineRuns.Add(1)
			}
		})),
	}
	eng8 := frontendsim.New(opts8...)
	newReplica8 := func(simdOpts ...simd.Option) (*httptest.Server, *simd.Server) {
		api := simd.NewServerWithStore(frontendsim.New(opts8...), resultstore.NewMemory(128), simdOpts...)
		srv := httptest.NewServer(api)
		return srv, api
	}
	srvA, _ := newReplica8()
	defer srvA.Close()
	srvB, _ := newReplica8()
	defer srvB.Close()
	srvC, _ := newReplica8()
	defer srvC.Close()
	waitReady([]string{srvA.URL, srvB.URL, srvC.URL})

	var members8 *membership.Registry
	sched8, err := scheduler.New(eng8, scheduler.Config{
		Backends:     []string{srvA.URL, srvB.URL, srvC.URL},
		RetryBackoff: 2 * time.Millisecond,
		ReportDispatch: func(node string, err error) {
			if members8 != nil {
				members8.ReportDispatch(node, err)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	members8, err = membership.New(membership.Config{
		QuarantineAfter: 1,
		EvictAfter:      -1,
		OnChange:        sched8.OnMembershipChange(),
	}, []string{srvA.URL, srvB.URL, srvC.URL})
	if err != nil {
		fatal(err)
	}
	defer members8.Close()
	schedSrv8 := httptest.NewServer(scheduler.NewServer(sched8, scheduler.WithMembership(members8)))
	defer schedSrv8.Close()

	suite8 := frontendsim.SuiteRequest{Benchmarks: frontendsim.Benchmarks()}
	before = engineRuns.Load()
	if _, err := sched8.RunSuite(ctx, suite8); err != nil {
		fatal(err)
	}
	fmt.Printf("  %d-benchmark suite over 3 replicas with per-replica stores: %d engine runs\n",
		len(suite8.Benchmarks), engineRuns.Load()-before)

	srvC.Close()
	before = engineRuns.Load()
	if _, err := sched8.RunSuite(ctx, suite8); err != nil {
		fatal(err)
	}
	if got := len(sched8.Ring().Nodes()); got != 2 {
		fatal(fmt.Errorf("dead replica not quarantined: ring has %d members", got))
	}
	fmt.Printf("  killed one replica; the next suite quarantines it and recomputes its slice on the survivors: %d new engine runs, ring down to 2 members\n",
		engineRuns.Load()-before)

	warmReg := obs.NewRegistry()
	freshSrv, freshAPI := newReplica8(simd.WithMetrics(warmReg))
	defer freshSrv.Close()
	freshAPI.SetReady(false)
	if code := healthzCode(freshSrv.URL); code != http.StatusServiceUnavailable {
		fatal(fmt.Errorf("cold replacement /healthz = %d, want 503 before warm-up", code))
	}
	res8, err := freshAPI.Warmup(ctx, simd.WarmupConfig{
		Peers:   []string{srvA.URL, srvB.URL},
		SelfURL: freshSrv.URL,
		RingURL: schedSrv8.URL,
		Timeout: 30 * time.Second,
	})
	if err != nil {
		fatal(fmt.Errorf("warm-up: %w", err))
	}
	if res8.Pulled == 0 {
		fatal(fmt.Errorf("warm-up pulled nothing: %+v", res8))
	}
	if code := healthzCode(freshSrv.URL); code != http.StatusServiceUnavailable {
		fatal(fmt.Errorf("/healthz = %d after warm-up, want 503 until the ready flip", code))
	}
	freshAPI.SetReady(true)
	fmt.Printf("  replacement warmed behind its 503 readiness gate: pulled %d keys from the survivors at ring epoch %d; /healthz now %d\n",
		res8.Pulled, res8.Epoch, healthzCode(freshSrv.URL))

	// The warmed replica must serve the slice it now owns — the ring the
	// scheduler will route once it announces — without a single engine
	// run; a recompute here is the bug this act exists to catch.
	ring8, err := scheduler.NewRing([]string{srvA.URL, srvB.URL, freshSrv.URL}, 0)
	if err != nil {
		fatal(err)
	}
	before = engineRuns.Load()
	served8 := 0
	for _, bench := range suite8.Benchmarks {
		key, err := eng8.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			fatal(err)
		}
		if ring8.Node(key) != freshSrv.URL {
			continue
		}
		served8++
		resp, err := http.Post(freshSrv.URL+"/v1/simulations", "application/json",
			strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
		if err != nil {
			fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "HIT" {
			fatal(fmt.Errorf("benchmark %s on the warmed replica: status %d X-Cache %q — the warmed slice must serve from store",
				bench, resp.StatusCode, resp.Header.Get("X-Cache")))
		}
	}
	if served8 == 0 {
		fatal(fmt.Errorf("no benchmark homed on the rejoined replica"))
	}
	if runs := engineRuns.Load() - before; runs != 0 {
		fatal(fmt.Errorf("the warmed replica recomputed %d results; its slice must serve from store", runs))
	}
	fmt.Printf("  rejoined replica serves its %d-key slice: every request X-Cache=HIT, 0 new engine runs\n", served8)
	for _, line := range strings.Split(warmReg.Render(), "\n") {
		if strings.HasPrefix(line, "simd_warmup_keys_total") {
			fmt.Printf("  /metrics: %s\n", line)
		}
	}
}
