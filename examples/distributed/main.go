// Distributed deep-dive, both senses of the word: the paper's §3.1
// distributed rename & commit frontend, run through the system's own
// distributed serving tier — three in-process simd backends behind the
// consistent-hashing suite scheduler (pkg/scheduler, cmd/simsched).
//
// The example prints the shard assignment, runs one suite centralized vs
// distributed-frontend, and shows that the scheduler's aggregate is
// byte-identical to a serial in-process Engine.RunSuite while spreading
// the simulations over the backend ring.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"

	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/scheduler"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	opts := []frontendsim.Option{
		frontendsim.WithWarmupOps(40_000),
		frontendsim.WithMeasureOps(100_000),
	}

	// Three simd backends, in-process for the example; in production each
	// would be its own `simd` replica (see cmd/simsched).
	var nodes []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(simd.NewServer(frontendsim.New(opts...), 64))
		defer srv.Close()
		nodes = append(nodes, srv.URL)
	}
	eng := frontendsim.New(opts...)
	sched, err := scheduler.New(eng, scheduler.Config{Backends: nodes})
	if err != nil {
		fatal(err)
	}

	suite := func(frontends int) frontendsim.SuiteRequest {
		return frontendsim.SuiteRequest{
			Benchmarks: []string{"gzip", "gcc", "mcf", "crafty", "parser", "swim"},
			Request:    frontendsim.Request{Frontends: frontends},
		}
	}

	fmt.Println("Suite sharding by canonical request key (consistent hashing):")
	for _, bench := range suite(2).Benchmarks {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench, Frontends: 2})
		if err != nil {
			fatal(err)
		}
		for i, n := range nodes {
			if sched.Ring().Node(key) == n {
				fmt.Printf("  %-8s -> backend %d  (key %s…)\n", bench, i, key[:12])
			}
		}
	}
	fmt.Println()

	ctx := context.Background()
	base, err := sched.RunSuite(ctx, suite(0))
	if err != nil {
		fatal(err)
	}
	dist, err := sched.RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}

	fmt.Println("Centralized vs distributed frontend (§3.1), 6-benchmark suite")
	fmt.Printf("%-28s %12s %12s\n", "", "centralized", "distributed")
	fmt.Printf("%-28s %12.3f %12.3f\n", "mean IPC", base.Aggregate.MeanIPC, dist.Aggregate.MeanIPC)
	fmt.Printf("%-28s %12d %12d\n", "total cycles", base.Aggregate.TotalCycles, dist.Aggregate.TotalCycles)
	fmt.Printf("%-28s %12s %12.2f%%\n", "slowdown", "-",
		(float64(dist.Aggregate.TotalCycles)/float64(base.Aggregate.TotalCycles)-1)*100)
	for _, unit := range []string{frontendsim.UnitROB, frontendsim.UnitRAT, frontendsim.UnitTraceCache} {
		b, d := base.Aggregate.Units[unit], dist.Aggregate.Units[unit]
		fmt.Printf("%-28s %11.1fC %11.1fC  (-%.1f%% peak rise)\n", unit+" peak rise",
			b.AbsMax, d.AbsMax, (b.AbsMax-d.AbsMax)/b.AbsMax*100)
	}
	fmt.Println()

	// The distributed serving tier is invisible in the numbers: the
	// scheduler's aggregate is byte-identical to a serial in-process run.
	serial, err := frontendsim.New(append(opts, frontendsim.WithWorkers(1))...).RunSuite(ctx, suite(2))
	if err != nil {
		fatal(err)
	}
	distJSON, _ := json.Marshal(dist)
	serialJSON, _ := json.Marshal(serial)
	fmt.Printf("scheduler result == serial Engine.RunSuite: %v\n", bytes.Equal(distJSON, serialJSON))
	st := sched.Stats()
	fmt.Printf("scheduler stats: %d dispatched, %d retried, %d coalesced\n",
		st.Dispatched, st.Retried, st.Coalesced)
}
