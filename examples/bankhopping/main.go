// Bank hopping head-to-head: reproduces the §3.2 trace-cache study on a
// single hot benchmark, showing per-bank behaviour that the paper's
// aggregate figures summarize — the access imbalance of the balanced
// mapping, how the biased mapping shifts table entries toward cold banks,
// and how hopping rotates the Vdd-gated bank.  Every run goes through
// the public Engine API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/floorplan"
	"repro/pkg/frontendsim"
)

func run(eng *frontendsim.Engine, name string, req frontendsim.Request) {
	r, err := eng.Run(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	banks := r.Config.TC.Banks
	fmt.Printf("%-22s banks=%d hit=%.4f hops=%3d |", name, banks, r.TCHitRate, r.TCHops)
	for b := 0; b < banks; b++ {
		bn := floorplan.TCBank(b)
		for i, blk := range r.Blocks {
			if blk == bn {
				fmt.Printf(" %s %5.1f°C", bn, r.PeakRiseC[i])
			}
		}
	}
	tc := r.Units[frontendsim.UnitTraceCache]
	fmt.Printf(" | TC peak %.1f avg %.1f\n", tc.AbsMax, tc.Average)
}

func main() {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(80_000),
		frontendsim.WithMeasureOps(200_000),
	)
	base := frontendsim.Request{Benchmark: "gzip"}

	fmt.Println("Trace-cache techniques on gzip (peak rise over ambient per bank):")
	run(eng, "baseline (balanced)", base)

	biased := base
	biased.BiasedMapping = true
	run(eng, "address biasing", biased)

	blank := base
	blank.BlankSilicon = true
	run(eng, "blank silicon", blank)

	hop := base
	hop.BankHopping = true
	run(eng, "bank hopping", hop)

	hopBiased := hop
	hopBiased.BiasedMapping = true
	run(eng, "hopping + biasing", hopBiased)

	fmt.Println("\nWhy biasing works: the XOR mapping balances accesses in the long")
	fmt.Println("term, but phase bursts stress one bank (§3.2.2).  The biased table")
	fmt.Println("halves a bank's share of the 32 entries for every 3°C it runs above")
	fmt.Println("the average bank temperature, trading accesses for temperature.")
}
