// Bank hopping head-to-head: reproduces the §3.2 trace-cache study on a
// single hot benchmark, showing per-bank behaviour that the paper's
// aggregate figures summarize — the access imbalance of the balanced
// mapping, how the biased mapping shifts table entries toward cold banks,
// and how hopping rotates the Vdd-gated bank.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func run(name string, cfg core.Config, prof workload.Profile) {
	opt := sim.DefaultOptions()
	opt.WarmupOps = 80_000
	opt.MeasureOps = 200_000
	r := sim.Run(cfg, prof, opt)
	fmt.Printf("%-22s banks=%d hit=%.4f hops=%3d |", name, cfg.TC.Banks, r.TCHitRate, r.TCHops)
	for b := 0; b < cfg.TC.Banks; b++ {
		bn := floorplan.TCBank(b)
		peak := r.Temps.AbsMax(func(n string) bool { return n == bn })
		fmt.Printf(" %s %5.1f°C", bn, peak)
	}
	tc := r.Temps.Unit(floorplan.IsTraceCache)
	fmt.Printf(" | TC peak %.1f avg %.1f\n", tc.AbsMax, tc.Average)
}

func main() {
	prof, _ := workload.ByName("gzip")
	base := core.DefaultConfig()

	fmt.Println("Trace-cache techniques on gzip (peak rise over ambient per bank):")
	run("baseline (balanced)", base, prof)
	run("address biasing", base.WithBiasedMapping(), prof)
	run("blank silicon", base.WithBlankSilicon(), prof)
	run("bank hopping", base.WithBankHopping(), prof)
	run("hopping + biasing", base.WithBankHopping().WithBiasedMapping(), prof)

	fmt.Println("\nWhy biasing works: the XOR mapping balances accesses in the long")
	fmt.Println("term, but phase bursts stress one bank (§3.2.2).  The biased table")
	fmt.Println("halves a bank's share of the 32 entries for every 3°C it runs above")
	fmt.Println("the average bank temperature, trading accesses for temperature.")
}
