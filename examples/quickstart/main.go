// Quickstart: build the paper's baseline processor, run one benchmark
// through the full power/thermal pipeline, and print the headline
// numbers.  This is the smallest complete use of the library, driving
// the public Engine API (the same optimized path the simd/simsched
// services run).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/frontendsim"
)

func main() {
	// 1. An Engine with the paper's scaled defaults, shortened phases for
	//    a quick demo.  Engines are immutable and safe for concurrent use.
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(80_000),
		frontendsim.WithMeasureOps(200_000),
	)

	// 2. Pick a workload.  The suite contains profiles for all 26
	//    SPEC2000 applications the paper evaluates; the zero-value
	//    request runs the Table 1 baseline configuration.
	ctx := context.Background()
	result, err := eng.Run(ctx, frontendsim.Request{Benchmark: "gzip"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s\n", result.Benchmark)
	fmt.Printf("IPC:       %.3f\n", result.IPC)
	fmt.Printf("TC hits:   %.2f%%\n", result.TCHitRate*100)

	// 3. The paper's three metrics, per unit of interest (§4).
	for _, unit := range []string{
		frontendsim.UnitFrontend,
		frontendsim.UnitROB,
		frontendsim.UnitRAT,
		frontendsim.UnitTraceCache,
	} {
		t := result.Units[unit]
		fmt.Printf("%-11s rise over ambient: AbsMax %.1f°C, Average %.1f°C, AvgMax %.1f°C\n",
			unit, t.AbsMax, t.Average, t.AvgMax)
	}

	// 4. Now enable the paper's full distributed frontend and compare.
	dist, err := eng.Run(ctx, frontendsim.Request{
		Benchmark:     "gzip",
		Frontends:     2,
		BankHopping:   true,
		BiasedMapping: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := result.Units[frontendsim.UnitRAT]
	after := dist.Units[frontendsim.UnitRAT]
	fmt.Printf("\ndistributed frontend: RAT peak rise %.1f°C -> %.1f°C (-%.0f%%), slowdown %.1f%%\n",
		base.AbsMax, after.AbsMax, (base.AbsMax-after.AbsMax)/base.AbsMax*100,
		(float64(dist.MeasCycles)/float64(result.MeasCycles)-1)*100)
}
