// Quickstart: build the paper's baseline processor, run one benchmark
// through the full power/thermal pipeline, and print the headline
// numbers.  This is the smallest complete use of the library.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// 1. The baseline configuration is Table 1 of the paper: a quad-
	//    cluster machine with a monolithic rename table / reorder buffer
	//    and a two-banked trace cache.
	cfg := core.DefaultConfig()

	// 2. Pick a workload.  The suite contains profiles for all 26
	//    SPEC2000 applications the paper evaluates.
	prof, _ := workload.ByName("gzip")

	// 3. Run: a profiling phase measures nominal power, the thermal RC
	//    network is warm-started at its steady state, then the measured
	//    phase advances temperature every interval.
	opt := sim.DefaultOptions()
	opt.WarmupOps = 80_000
	opt.MeasureOps = 200_000
	result := sim.Run(cfg, prof, opt)

	fmt.Printf("benchmark: %s\n", result.Bench)
	fmt.Printf("IPC:       %.3f\n", result.IPC())
	fmt.Printf("TC hits:   %.2f%%\n", result.TCHitRate*100)

	// 4. The paper's three metrics, per unit of interest (§4).
	for _, unit := range []struct {
		name   string
		filter func(string) bool
	}{
		{"Frontend", floorplan.IsFrontend},
		{"ROB", floorplan.IsROB},
		{"RAT", floorplan.IsRAT},
		{"TraceCache", floorplan.IsTraceCache},
	} {
		t := result.Temps.Unit(unit.filter)
		fmt.Printf("%-11s rise over ambient: AbsMax %.1f°C, Average %.1f°C, AvgMax %.1f°C\n",
			unit.name, t.AbsMax, t.Average, t.AvgMax)
	}

	// 5. Now enable the paper's full distributed frontend and compare.
	dist := sim.Run(cfg.WithDistributedFrontend(2).WithBankHopping().WithBiasedMapping(), prof, opt)
	base := result.Temps.Unit(floorplan.IsRAT)
	after := dist.Temps.Unit(floorplan.IsRAT)
	fmt.Printf("\ndistributed frontend: RAT peak rise %.1f°C -> %.1f°C (-%.0f%%), slowdown %.1f%%\n",
		base.AbsMax, after.AbsMax, (base.AbsMax-after.AbsMax)/base.AbsMax*100,
		(float64(dist.MeasCycles)/float64(result.MeasCycles)-1)*100)
}
