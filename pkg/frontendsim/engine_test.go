package frontendsim

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testEngine keeps unit runs short.
func testEngine(opts ...Option) *Engine {
	base := []Option{WithWarmupOps(30_000), WithMeasureOps(60_000)}
	return New(append(base, opts...)...)
}

func TestRunMatchesSimRun(t *testing.T) {
	eng := testEngine()
	res, err := eng.Run(context.Background(), Request{Benchmark: "gzip", BankHopping: true})
	if err != nil {
		t.Fatal(err)
	}

	prof, _ := workload.ByName("gzip")
	opt := sim.DefaultOptions()
	opt.WarmupOps, opt.MeasureOps = 30_000, 60_000
	want := sim.Run(core.DefaultConfig().WithBankHopping(), prof, opt)

	if res.MeasCycles != want.MeasCycles || res.MeasOps != want.MeasOps {
		t.Errorf("engine run (%d cycles, %d ops) != sim.Run (%d cycles, %d ops)",
			res.MeasCycles, res.MeasOps, want.MeasCycles, want.MeasOps)
	}
	if res.IPC != want.IPC() {
		t.Errorf("IPC %v != %v", res.IPC, want.IPC())
	}
	if res.TCHops != want.TCHops {
		t.Errorf("hops %d != %d", res.TCHops, want.TCHops)
	}
	if got := res.Units[UnitProcessor]; got != want.Temps.Unit(nil) {
		t.Errorf("processor triple %+v != %+v", got, want.Temps.Unit(nil))
	}
	if res.Raw() == nil {
		t.Error("in-process result lost its raw sim.Result")
	}
}

func TestObserverOneSnapshotPerInterval(t *testing.T) {
	var snaps []Snapshot
	eng := testEngine(WithObserver(ObserverFunc(func(s Snapshot) {
		snaps = append(snaps, s)
	})))
	res, err := eng.Run(context.Background(), Request{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals == 0 {
		t.Fatal("run recorded no intervals")
	}
	if len(snaps) != res.Intervals {
		t.Fatalf("observer saw %d snapshots, result has %d intervals", len(snaps), res.Intervals)
	}
	var cumCycles, cumOps uint64
	for i, s := range snaps {
		if s.Interval != i {
			t.Fatalf("snapshot %d has interval index %d", i, s.Interval)
		}
		if s.Benchmark != "gzip" {
			t.Fatalf("snapshot benchmark = %q", s.Benchmark)
		}
		if len(s.TempsC) != len(res.Blocks) || len(s.PowerW) != len(res.Blocks) {
			t.Fatalf("snapshot %d: %d temps / %d powers for %d blocks",
				i, len(s.TempsC), len(s.PowerW), len(res.Blocks))
		}
		cumCycles += s.DeltaCycles
		cumOps += s.DeltaOps
		if s.Cycles != cumCycles || s.Ops != cumOps {
			t.Fatalf("snapshot %d cumulative (%d, %d) != sum of deltas (%d, %d)",
				i, s.Cycles, s.Ops, cumCycles, cumOps)
		}
	}
	last := snaps[len(snaps)-1]
	if last.Cycles != res.MeasCycles || last.Ops != res.MeasOps {
		t.Errorf("last snapshot (%d, %d) != result (%d, %d)",
			last.Cycles, last.Ops, res.MeasCycles, res.MeasOps)
	}
}

func TestRunHonorsCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int32
	obs := ObserverFunc(func(Snapshot) {
		if seen.Add(1) == 2 {
			cancel() // cancel between intervals, mid-run
		}
	})
	eng := testEngine()
	res, err := eng.RunObserved(ctx, Request{Benchmark: "gzip"}, obs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if n := seen.Load(); n < 2 || n > 3 {
		t.Errorf("observer ran %d times after cancellation at the 2nd interval", n)
	}

	// A context cancelled before the run starts never simulates at all.
	if _, err := eng.Run(ctx, Request{Benchmark: "gzip"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run err = %v", err)
	}
}

func TestRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"empty", Request{}, "no benchmark"},
		{"unknown", Request{Benchmark: "nosuch"}, `unknown benchmark "nosuch"`},
		{"exclusive", Request{Benchmark: "gzip", BankHopping: true, BlankSilicon: true}, "mutually exclusive"},
		{"badFrontends", Request{Benchmark: "gzip", Frontends: 3}, "invalid configuration"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
		if _, runErr := testEngine().Run(context.Background(), tc.req); runErr == nil {
			t.Errorf("%s: Run accepted an invalid request", tc.name)
		}
	}
	if err := (Request{Benchmark: "gzip", Frontends: 2, BankHopping: true}).Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

func TestRequestKeyCanonicalization(t *testing.T) {
	eng := testEngine()
	key := func(r Request) string {
		t.Helper()
		k, err := eng.RequestKey(r)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	// Equivalent spellings — toggles vs. the explicit resolved config —
	// hash identically.
	spelled := core.DefaultConfig().WithDistributedFrontend(2).WithBankHopping()
	a := key(Request{Benchmark: "gzip", Frontends: 2, BankHopping: true})
	b := key(Request{Benchmark: "gzip", Config: &spelled})
	if a != b {
		t.Error("equivalent requests hash differently")
	}

	// Any semantic difference changes the key.
	if key(Request{Benchmark: "gzip"}) == key(Request{Benchmark: "mcf"}) {
		t.Error("different benchmarks share a key")
	}
	if key(Request{Benchmark: "gzip"}) == key(Request{Benchmark: "gzip", BankHopping: true}) {
		t.Error("different configs share a key")
	}
	if key(Request{Benchmark: "gzip"}) == key(Request{Benchmark: "gzip", MeasureOps: 70_000}) {
		t.Error("different run lengths share a key")
	}

	// Engine defaults participate: the same request on a different engine
	// resolves to a different key.
	other := New(WithWarmupOps(30_000), WithMeasureOps(90_000))
	k2, err := other.RequestKey(Request{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if k2 == key(Request{Benchmark: "gzip"}) {
		t.Error("different engine defaults share a key")
	}

	if _, err := eng.RequestKey(Request{Benchmark: "nosuch"}); err == nil {
		t.Error("RequestKey accepted an invalid request")
	}

	// Overrides hash by value: an engine with a custom DTM tuning must
	// not share keys with the request-level default-DTM toggle, and two
	// engines with different DTM tunings must differ too.
	custom := dtm.DefaultConfig()
	custom.TriggerC = 90
	dtmEng := New(WithWarmupOps(30_000), WithMeasureOps(60_000), WithDTM(custom))
	customKey, err := dtmEng.RequestKey(Request{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	defaultKey := key(Request{Benchmark: "gzip", DTM: true})
	if customKey == defaultKey {
		t.Error("custom WithDTM tuning and default DTM toggle share a key")
	}
	if k := key(Request{Benchmark: "gzip"}); k == defaultKey || k == customKey {
		t.Error("DTM-less request shares a key with a DTM run")
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	eng := testEngine()
	res, err := eng.Run(context.Background(), Request{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if back.Raw() != nil {
		t.Error("raw result survived a JSON round-trip")
	}
	back.raw = res.raw
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(again) {
		t.Error("result JSON not stable across a round-trip")
	}
	if back.Units[UnitROB] != res.Units[UnitROB] {
		t.Errorf("ROB triple %+v != %+v after round-trip", back.Units[UnitROB], res.Units[UnitROB])
	}

	var req Request
	reqBody := []byte(`{"benchmark":"gzip","frontends":2,"bank_hopping":true,"measure_ops":60000}`)
	if err := json.Unmarshal(reqBody, &req); err != nil {
		t.Fatal(err)
	}
	if req.Benchmark != "gzip" || req.Frontends != 2 || !req.BankHopping || req.MeasureOps != 60000 {
		t.Errorf("request did not unmarshal faithfully: %+v", req)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 26 {
		t.Fatalf("Benchmarks() = %d names, want 26", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Benchmarks() not sorted at %d: %q >= %q", i, names[i-1], names[i])
		}
	}
}
