package frontendsim

import (
	"context"
	"strconv"
	"time"
)

// DeadlineBudgetHeader carries a caller's remaining deadline across an
// HTTP hop, as integer milliseconds.  The scheduler's client stamps it
// from the dispatch context's deadline and both servers apply it to the
// request context, so a retried or fanned-out shard never outlives the
// patience of the caller that asked for it — ring walks stop burning
// backends on work nobody is waiting for.
const DeadlineBudgetHeader = "X-Deadline-Budget"

// EncodeDeadlineBudget renders ctx's remaining deadline as a
// DeadlineBudgetHeader value, or "" when ctx has no deadline.  An
// already-expired deadline encodes as "0" — the receiver fails fast
// rather than starting doomed work.
func EncodeDeadlineBudget(ctx context.Context) string {
	d, ok := ctx.Deadline()
	if !ok {
		return ""
	}
	ms := time.Until(d).Milliseconds()
	if ms < 0 {
		ms = 0
	}
	return strconv.FormatInt(ms, 10)
}

// ApplyDeadlineBudget bounds ctx by a DeadlineBudgetHeader value.  An
// empty or malformed value leaves ctx unchanged (the hop simply carries
// no budget); the returned cancel must always be called.
func ApplyDeadlineBudget(ctx context.Context, value string) (context.Context, context.CancelFunc) {
	if value == "" {
		return context.WithCancel(ctx)
	}
	ms, err := strconv.ParseInt(value, 10, 64)
	if err != nil || ms < 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}
