package frontendsim

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// Run executes one simulation.  The context is honored between thermal
// intervals: cancelling it aborts the run and returns the context's
// error.  Observers registered on the Engine receive one Snapshot per
// measured interval.
func (e *Engine) Run(ctx context.Context, req Request) (*Result, error) {
	return e.RunObserved(ctx, req)
}

// RunObserved is Run with additional per-call observers appended to the
// Engine's own.
func (e *Engine) RunObserved(ctx context.Context, req Request, extra ...Observer) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	observers := e.observers
	for _, o := range extra {
		if o != nil {
			// Copy-append so concurrent runs never share the backing
			// array of the Engine's observer slice.
			observers = append(append([]Observer(nil), observers...), o)
		}
	}
	var hook sim.Hook
	if ctx.Done() != nil || len(observers) > 0 {
		bench := req.Benchmark
		hook = func(iv sim.Interval) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if len(observers) > 0 {
				snap := newSnapshot(bench, iv)
				for _, o := range observers {
					o.OnInterval(snap)
				}
			}
			return nil
		}
	}
	sr, err := sim.RunHooked(req.EffectiveConfig(), req.profile(), e.options(req), hook)
	if err != nil {
		return nil, fmt.Errorf("frontendsim: run %s aborted: %w", req.Benchmark, err)
	}
	return newResult(sr), nil
}
