package frontendsim

import (
	"context"
	"fmt"

	"repro/internal/metrics"
)

// SuiteRequest sweeps one configuration over a set of benchmarks.
type SuiteRequest struct {
	// Benchmarks selects the suite; nil runs all 26 SPEC2000 profiles.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Request is the per-run template; its Benchmark field is ignored
	// (each suite entry substitutes its own).
	Request Request `json:"request"`
}

// Requests expands the suite into one request per benchmark, in suite
// order.
func (s SuiteRequest) Requests() []Request {
	names := s.Benchmarks
	if names == nil {
		names = Benchmarks()
	}
	out := make([]Request, len(names))
	for i, n := range names {
		r := s.Request
		r.Benchmark = n
		out[i] = r
	}
	return out
}

// Validate checks every expanded request.
func (s SuiteRequest) Validate() error {
	if len(s.Benchmarks) == 0 && s.Benchmarks != nil {
		return fmt.Errorf("frontendsim: suite selects no benchmarks")
	}
	for _, r := range s.Requests() {
		if err := r.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SuiteAggregate summarizes a suite run.  All means are plain arithmetic
// means over the benchmarks, accumulated in suite order regardless of
// which worker finished first, so a parallel run aggregates bit-identical
// to a serial one.
type SuiteAggregate struct {
	Benchmarks    int                       `json:"benchmarks"`
	MeanIPC       float64                   `json:"mean_ipc"`
	MeanTCHitRate float64                   `json:"mean_tc_hit_rate"`
	TotalCycles   uint64                    `json:"total_cycles"`
	TotalOps      uint64                    `json:"total_ops"`
	TotalHops     uint64                    `json:"total_hops"`
	Units         map[string]metrics.Triple `json:"units"`
}

// ShardError records one shard that could not be dispatched during a
// partial-results run: the suite positions it covers, its benchmark,
// and the dispatch error.  The corresponding Results entries are nil.
type ShardError struct {
	// Positions are the suite indices sharing the failed shard's
	// canonical key, ascending.
	Positions []int `json:"positions"`
	// Benchmark is the failed request's benchmark.
	Benchmark string `json:"benchmark"`
	// Err is the dispatch error's message.
	Err string `json:"error"`
}

// SuiteResult is the outcome of RunSuite: per-benchmark results in suite
// order plus the deterministic aggregate.  Errors is populated only by
// partial-results runs (RunSuitePartial): each entry names a shard whose
// dispatch failed, its Results positions are nil, and the aggregate
// folds the shards that did complete.
type SuiteResult struct {
	Results   []*Result      `json:"results"`
	Errors    []ShardError   `json:"errors,omitempty"`
	Aggregate SuiteAggregate `json:"aggregate"`
}

// ByBenchmark returns the result for one benchmark, or nil.
func (s *SuiteResult) ByBenchmark(name string) *Result {
	for _, r := range s.Results {
		if r != nil && r.Benchmark == name {
			return r
		}
	}
	return nil
}

// Dispatcher executes one per-benchmark request of a suite.  Engine.Run
// is the in-process dispatcher; pkg/scheduler supplies one that ships the
// request to a remote simd backend.  A Dispatcher must be safe for
// concurrent use and should honor ctx cancellation.
type Dispatcher func(ctx context.Context, req Request) (*Result, error)

// RunSuite runs the suite in-process: RunSuiteVia with Engine.Run as the
// dispatcher.
func (e *Engine) RunSuite(ctx context.Context, suite SuiteRequest) (*SuiteResult, error) {
	return e.RunSuiteVia(ctx, suite, e.Run)
}

// shardByKey groups the expanded requests by canonical key in
// first-appearance order, so duplicate suite entries dispatch exactly
// once (the suite-level half of the single-flight guarantee; the
// concurrent half lives in internal/simd and pkg/scheduler).  Each shard
// lists the suite positions sharing one key, ascending; the first
// position's request is the one dispatched.
func (e *Engine) shardByKey(reqs []Request) ([][]int, error) {
	shards := make([][]int, 0, len(reqs))
	index := make(map[string]int, len(reqs))
	for i, r := range reqs {
		key, err := e.RequestKey(r)
		if err != nil {
			return nil, err
		}
		if at, ok := index[key]; ok {
			shards[at] = append(shards[at], i)
			continue
		}
		index[key] = len(shards)
		shards = append(shards, []int{i})
	}
	return shards, nil
}

// RunSuiteVia runs the suite through dispatch on a bounded worker pool
// (Engine.Workers wide) and aggregates the per-benchmark results
// deterministically: results land in a slice indexed by suite position
// and are folded in that order, so the aggregate is byte-identical
// whatever the completion order — and identical to a Workers==1 serial
// run.  Suite entries with the same canonical RequestKey are dispatched
// once and share the result.  The first error (including context
// cancellation) aborts the remaining work.
//
// RunSuiteVia answers only on completion; RunSuiteStream is the same
// machinery with per-shard emission as results land.
func (e *Engine) RunSuiteVia(ctx context.Context, suite SuiteRequest, dispatch Dispatcher) (*SuiteResult, error) {
	return e.runSuite(ctx, suite, func(ctx context.Context, req Request) (*Result, string, error) {
		res, err := dispatch(ctx, req)
		return res, "", err
	}, nil, false)
}

// RunSuitePartial is RunSuiteStream in graceful-degradation mode: a
// shard whose dispatch fails no longer aborts the run.  Instead the
// failure is recorded as a ShardError (emitted to sink, when non-nil,
// as a ShardResult with Err set), its Results positions stay nil, and
// the remaining shards run to completion.  The aggregate folds only the
// shards that completed, so a suite with one dead benchmark still
// answers with well-formed numbers for the rest.
//
// Context cancellation still aborts the whole run, and a suite in which
// every shard fails returns an error rather than an empty result —
// partial results degrade an answer, they don't fabricate one.  A run
// with no failures returns a SuiteResult byte-identical (as JSON) to
// RunSuiteVia/RunSuiteStream of the same suite.
func (e *Engine) RunSuitePartial(ctx context.Context, suite SuiteRequest, dispatch SourcedDispatcher, sink StreamSink) (*SuiteResult, error) {
	return e.runSuite(ctx, suite, dispatch, sink, true)
}

// aggregate folds results in slice order, skipping nil entries (failed
// shards of a partial run).  Benchmarks counts the folded results, so a
// partial aggregate's means stay means over what actually completed.
func aggregate(results []*Result) SuiteAggregate {
	agg := SuiteAggregate{
		Units: map[string]metrics.Triple{},
	}
	sums := map[string]metrics.Triple{}
	for _, r := range results {
		if r == nil {
			continue
		}
		agg.Benchmarks++
		agg.MeanIPC += r.IPC
		agg.MeanTCHitRate += r.TCHitRate
		agg.TotalCycles += r.MeasCycles
		agg.TotalOps += r.MeasOps
		agg.TotalHops += r.TCHops
		for name, t := range r.Units {
			s := sums[name]
			s.AbsMax += t.AbsMax
			s.Average += t.Average
			s.AvgMax += t.AvgMax
			sums[name] = s
		}
	}
	if agg.Benchmarks == 0 {
		return agg
	}
	n := float64(agg.Benchmarks)
	agg.MeanIPC /= n
	agg.MeanTCHitRate /= n
	for name, s := range sums {
		agg.Units[name] = metrics.Triple{
			AbsMax:  s.AbsMax / n,
			Average: s.Average / n,
			AvgMax:  s.AvgMax / n,
		}
	}
	return agg
}
