package frontendsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunSuiteStreamMatchesBlocking pins the streaming contract: the
// returned SuiteResult is byte-identical (as JSON) to RunSuiteVia of
// the same suite, and the sink sees every suite position exactly once
// with the dispatcher's source attached.
func TestRunSuiteStreamMatchesBlocking(t *testing.T) {
	eng := testEngine(WithWorkers(4))
	suite := suiteReq()

	blocking, err := eng.RunSuiteVia(context.Background(), suite, eng.Run)
	if err != nil {
		t.Fatal(err)
	}

	var shards []ShardResult
	streamed, err := eng.RunSuiteStream(context.Background(), suite,
		func(ctx context.Context, req Request) (*Result, string, error) {
			res, err := eng.Run(ctx, req)
			return res, "MISS", err
		},
		func(sh ShardResult) { shards = append(shards, sh) })
	if err != nil {
		t.Fatal(err)
	}

	blockingJSON, err := json.Marshal(blocking)
	if err != nil {
		t.Fatal(err)
	}
	streamedJSON, err := json.Marshal(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blockingJSON, streamedJSON) {
		t.Error("streamed aggregate is not byte-identical to the blocking run")
	}

	// Every suite position emitted exactly once, with the right result
	// and the dispatcher's source.
	seen := map[int]bool{}
	for _, sh := range shards {
		if sh.Source != "MISS" {
			t.Errorf("shard %v source = %q, want MISS", sh.Positions, sh.Source)
		}
		for _, p := range sh.Positions {
			if seen[p] {
				t.Errorf("position %d emitted twice", p)
			}
			seen[p] = true
			if streamed.Results[p] != sh.Result {
				t.Errorf("position %d: emitted result differs from the aggregate's", p)
			}
			if sh.Benchmark != suite.Requests()[sh.Positions[0]].Benchmark {
				t.Errorf("shard %v labelled %q", sh.Positions, sh.Benchmark)
			}
		}
	}
	if len(seen) != len(suite.Requests()) {
		t.Errorf("sink covered %d of %d positions", len(seen), len(suite.Requests()))
	}
}

// TestRunSuiteStreamSharesDuplicateShards asserts duplicate suite
// entries arrive as one sink call carrying every position.
func TestRunSuiteStreamSharesDuplicateShards(t *testing.T) {
	eng := testEngine(WithWorkers(2))
	suite := SuiteRequest{Benchmarks: []string{"gzip", "mcf", "gzip", "gzip"}}

	var dispatches atomic.Int64
	var shards []ShardResult
	res, err := eng.RunSuiteStream(context.Background(), suite,
		func(ctx context.Context, req Request) (*Result, string, error) {
			dispatches.Add(1)
			r, err := eng.Run(ctx, req)
			return r, "", err
		},
		func(sh ShardResult) { shards = append(shards, sh) })
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("%d sink calls for 2 unique keys, want 2", len(shards))
	}
	if n := dispatches.Load(); n != 2 {
		t.Errorf("%d dispatches for 2 unique keys, want 2", n)
	}
	for _, sh := range shards {
		if sh.Benchmark == "gzip" {
			if want := []int{0, 2, 3}; len(sh.Positions) != 3 ||
				sh.Positions[0] != want[0] || sh.Positions[1] != want[1] || sh.Positions[2] != want[2] {
				t.Errorf("gzip shard positions = %v, want [0 2 3]", sh.Positions)
			}
		}
	}
	if res.Results[0] != res.Results[2] || res.Results[2] != res.Results[3] {
		t.Error("duplicate positions do not share one result")
	}
}

// TestRunSuiteStreamDispatchErrorAborts asserts the first dispatch
// failure cancels the run and surfaces as the returned error, not a
// sink emission.
func TestRunSuiteStreamDispatchErrorAborts(t *testing.T) {
	eng := testEngine(WithWorkers(2))
	boom := errors.New("backend down")

	var emitted int
	_, err := eng.RunSuiteStream(context.Background(), suiteReq(),
		func(ctx context.Context, req Request) (*Result, string, error) {
			return nil, "", boom
		},
		func(ShardResult) { emitted++ })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the dispatch failure", err)
	}
	if emitted != 0 {
		t.Errorf("%d shards emitted from an all-failing run, want 0", emitted)
	}
}
