package frontendsim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunSuiteDedupsDuplicateKeys asserts a suite containing the same
// canonical request several times runs the engine once per unique key
// and shares the result across the duplicate positions.
func TestRunSuiteDedupsDuplicateKeys(t *testing.T) {
	var runs atomic.Int64
	eng := testEngine(
		WithWorkers(4),
		WithObserver(ObserverFunc(func(s Snapshot) {
			if s.Interval == 0 {
				runs.Add(1)
			}
		})),
	)
	res, err := eng.RunSuite(context.Background(), SuiteRequest{
		Benchmarks: []string{"gzip", "gzip", "mcf", "gzip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("suite with 2 unique keys ran %d simulations, want 2", n)
	}
	if len(res.Results) != 4 || res.Aggregate.Benchmarks != 4 {
		t.Fatalf("suite shape %d results / %d aggregate benchmarks, want 4/4",
			len(res.Results), res.Aggregate.Benchmarks)
	}
	if res.Results[0] != res.Results[1] || res.Results[1] != res.Results[3] {
		t.Error("duplicate positions do not share one result")
	}
	if res.Results[2].Benchmark != "mcf" {
		t.Errorf("position 2 is %q, want mcf", res.Results[2].Benchmark)
	}
}

// TestRunSuiteViaCustomDispatcher drives the suite machinery with a fake
// dispatcher: no simulation, pure orchestration — ordering, per-key
// de-duplication and concurrency are all observable.
func TestRunSuiteViaCustomDispatcher(t *testing.T) {
	eng := testEngine(WithWorkers(4))
	var dispatches atomic.Int64
	dispatch := func(ctx context.Context, req Request) (*Result, error) {
		dispatches.Add(1)
		return &Result{Benchmark: req.Benchmark, IPC: float64(len(req.Benchmark))}, nil
	}
	res, err := eng.RunSuiteVia(context.Background(), SuiteRequest{
		Benchmarks: []string{"swim", "gzip", "swim", "mcf"},
	}, dispatch)
	if err != nil {
		t.Fatal(err)
	}
	if n := dispatches.Load(); n != 3 {
		t.Errorf("%d dispatches for 3 unique keys, want 3", n)
	}
	for i, want := range []string{"swim", "gzip", "swim", "mcf"} {
		if res.Results[i].Benchmark != want {
			t.Errorf("result %d is %q, want %q", i, res.Results[i].Benchmark, want)
		}
	}
	// Aggregate folds per suite position: swim counts twice.
	wantMean := (4.0 + 4.0 + 4.0 + 3.0) / 4
	if res.Aggregate.MeanIPC != wantMean {
		t.Errorf("aggregate mean IPC %v, want %v", res.Aggregate.MeanIPC, wantMean)
	}
}

// TestRunSuiteViaDispatchErrorAborts asserts the first dispatcher error
// cancels the remaining work and surfaces to the caller.
func TestRunSuiteViaDispatchErrorAborts(t *testing.T) {
	eng := testEngine(WithWorkers(2))
	boom := errors.New("backend exploded")
	var after atomic.Int64
	dispatch := func(ctx context.Context, req Request) (*Result, error) {
		if req.Benchmark == "gzip" {
			return nil, boom
		}
		if err := ctx.Err(); err != nil {
			after.Add(1)
			return nil, err
		}
		return &Result{Benchmark: req.Benchmark}, nil
	}
	_, err := eng.RunSuiteVia(context.Background(), SuiteRequest{
		Benchmarks: []string{"gzip", "mcf", "swim", "art", "vpr"},
	}, dispatch)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the dispatcher's error", err)
	}
}
