package frontendsim

import (
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Unit names used as keys of Result.Units.
const (
	UnitProcessor  = "Processor"
	UnitFrontend   = "Frontend"
	UnitBackend    = "Backend"
	UnitUL2        = "UL2"
	UnitROB        = "ROB"
	UnitRAT        = "RAT"
	UnitTraceCache = "TraceCache"
)

// Result is the JSON-marshalable outcome of one run.  Temperature
// metrics are the paper's triples (peak, area-weighted average, average
// per-interval max), expressed as the rise over ambient in °C.
type Result struct {
	Benchmark string      `json:"benchmark"`
	Config    core.Config `json:"config"`

	IPC        float64 `json:"ipc"`
	WarmCycles uint64  `json:"warm_cycles"`
	MeasCycles uint64  `json:"meas_cycles"`
	MeasOps    uint64  `json:"meas_ops"`
	Intervals  int     `json:"intervals"`

	TCHitRate float64 `json:"tc_hit_rate"`
	TCHops    uint64  `json:"tc_hops"`

	// AmbientC is the ambient temperature the rises are relative to.
	AmbientC float64 `json:"ambient_c"`
	// Units maps unit names (UnitProcessor, UnitROB, ...) to their
	// temperature triples.
	Units map[string]metrics.Triple `json:"units"`

	// Blocks and the per-block vectors are index-aligned with the
	// floorplan of the run.
	Blocks    []string  `json:"blocks"`
	AvgPowerW []float64 `json:"avg_power_w"`
	NominalW  []float64 `json:"nominal_w"`
	PeakRiseC []float64 `json:"peak_rise_c"`

	// DTM statistics (zero unless the controller was enabled).
	DTMEngagements uint64 `json:"dtm_engagements,omitempty"`
	DTMThrottled   uint64 `json:"dtm_throttled,omitempty"`
	DTMMinDuty     int    `json:"dtm_min_duty,omitempty"`

	raw *sim.Result
}

// Raw returns the underlying internal simulation result, including the
// full per-interval temperature series.  It is only available in-process:
// after a JSON round-trip Raw returns nil.
func (r *Result) Raw() *sim.Result { return r.raw }

// newResult converts an internal sim.Result.
func newResult(sr *sim.Result) *Result {
	isUL2 := func(n string) bool { return n == floorplan.UL2 }
	r := &Result{
		Benchmark:  sr.Bench,
		Config:     sr.Config,
		IPC:        sr.IPC(),
		WarmCycles: sr.WarmCycles,
		MeasCycles: sr.MeasCycles,
		MeasOps:    sr.MeasOps,
		Intervals:  sr.Temps.Intervals(),
		TCHitRate:  sr.TCHitRate,
		TCHops:     sr.TCHops,
		AmbientC:   sr.Temps.Ambient(),
		Units: map[string]metrics.Triple{
			UnitProcessor:  sr.Temps.Unit(nil),
			UnitFrontend:   sr.Temps.Unit(floorplan.IsFrontend),
			UnitBackend:    sr.Temps.Unit(floorplan.IsBackend),
			UnitUL2:        sr.Temps.Unit(isUL2),
			UnitROB:        sr.Temps.Unit(floorplan.IsROB),
			UnitRAT:        sr.Temps.Unit(floorplan.IsRAT),
			UnitTraceCache: sr.Temps.Unit(floorplan.IsTraceCache),
		},
		AvgPowerW:      sr.AvgPower,
		NominalW:       sr.Nominal,
		DTMEngagements: sr.DTMEngagements,
		DTMThrottled:   sr.DTMThrottled,
		DTMMinDuty:     sr.DTMMinDuty,
		raw:            sr,
	}
	r.Blocks = make([]string, len(sr.Floorplan.Blocks))
	r.PeakRiseC = make([]float64, len(sr.Floorplan.Blocks))
	for i, b := range sr.Floorplan.Blocks {
		name := b.Name
		r.Blocks[i] = name
		r.PeakRiseC[i] = sr.Temps.AbsMax(func(n string) bool { return n == name })
	}
	return r
}

// Snapshot is delivered to observers once per measured interval.
type Snapshot struct {
	Benchmark string `json:"benchmark"`
	// Interval counts from 0.
	Interval int `json:"interval"`
	// DeltaCycles/DeltaOps cover this interval; Cycles/Ops are cumulative
	// over the measured phase.  IPC is the incremental IPC of this
	// interval alone.
	DeltaCycles uint64  `json:"delta_cycles"`
	DeltaOps    uint64  `json:"delta_ops"`
	Cycles      uint64  `json:"cycles"`
	Ops         uint64  `json:"ops"`
	IPC         float64 `json:"ipc"`
	// TempsC / PowerW are per-block, index-aligned with Result.Blocks.
	TempsC []float64 `json:"temps_c"`
	PowerW []float64 `json:"power_w"`
	// Hops is the cumulative trace-cache bank-hop count.
	Hops uint64 `json:"hops"`
	// DTM state after this interval's update (DutyDen == 0: DTM off).
	DutyNum   int  `json:"duty_num,omitempty"`
	DutyDen   int  `json:"duty_den,omitempty"`
	Throttled bool `json:"throttled,omitempty"`
}

// Observer receives per-interval snapshots during a run.  OnInterval is
// called synchronously from the simulation goroutine; slow observers slow
// the run.
type Observer interface {
	OnInterval(Snapshot)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Snapshot)

// OnInterval implements Observer.
func (f ObserverFunc) OnInterval(s Snapshot) { f(s) }

// newSnapshot converts an internal interval record.
func newSnapshot(bench string, iv sim.Interval) Snapshot {
	s := Snapshot{
		Benchmark:   bench,
		Interval:    iv.Index,
		DeltaCycles: iv.DeltaCycles,
		DeltaOps:    iv.DeltaOps,
		Cycles:      iv.Cycles,
		Ops:         iv.Ops,
		TempsC:      iv.Temps,
		PowerW:      iv.Power,
		Hops:        iv.Hops,
		DutyNum:     iv.DutyNum,
		DutyDen:     iv.DutyDen,
		Throttled:   iv.Throttled,
	}
	if iv.DeltaCycles > 0 {
		s.IPC = float64(iv.DeltaOps) / float64(iv.DeltaCycles)
	}
	return s
}
