package frontendsim

import (
	"runtime"

	"repro/internal/dtm"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
)

// Engine runs simulations.  An Engine is immutable after New and safe for
// concurrent use by multiple goroutines.
type Engine struct {
	base      sim.Options
	workers   int
	observers []Observer
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithThermal overrides the RC thermal-model parameters.
func WithThermal(p thermal.Params) Option {
	return func(e *Engine) { e.base.Thermal = &p }
}

// WithPower overrides the per-event energy table.
func WithPower(k power.Constants) Option {
	return func(e *Engine) { e.base.Power = &k }
}

// WithDTM enables the dynamic thermal management controller (fetch
// toggling at thermal emergencies) for every run of this Engine.
func WithDTM(d dtm.Config) Option {
	return func(e *Engine) { e.base.DTM = &d }
}

// WithIntervalCycles sets the default reconfiguration/thermal interval in
// cycles (requests may override per run).
func WithIntervalCycles(n uint64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.base.IntervalCycles = n
		}
	}
}

// WithIntervalSeconds sets the thermal time per interval (the paper's
// interval is 1 ms at 10 GHz).
func WithIntervalSeconds(sec float64) Option {
	return func(e *Engine) {
		if sec > 0 {
			e.base.IntervalSeconds = sec
		}
	}
}

// WithWarmupOps sets the default profiling-phase length in micro-ops.
func WithWarmupOps(n uint64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.base.WarmupOps = n
		}
	}
}

// WithMeasureOps sets the default measured-phase length in micro-ops.
func WithMeasureOps(n uint64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.base.MeasureOps = n
		}
	}
}

// WithWorkers bounds the RunSuite worker pool.  n < 1 selects
// runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithObserver registers an observer notified on every measured interval
// of every run this Engine executes.
func WithObserver(o Observer) Option {
	return func(e *Engine) {
		if o != nil {
			e.observers = append(e.observers, o)
		}
	}
}

// New constructs an Engine.  Without options it reproduces the paper's
// scaled defaults (sim.DefaultOptions).
func New(opts ...Option) *Engine {
	e := &Engine{base: sim.DefaultOptions()}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	return e
}

// Workers returns the RunSuite worker-pool bound.
func (e *Engine) Workers() int { return e.workers }

// options resolves the effective sim.Options for one request: the
// Engine's configured defaults with the request's per-run overrides
// applied.
func (e *Engine) options(req Request) sim.Options {
	opt := e.base
	if req.WarmupOps > 0 {
		opt.WarmupOps = req.WarmupOps
	}
	if req.MeasureOps > 0 {
		opt.MeasureOps = req.MeasureOps
	}
	if req.IntervalCycles > 0 {
		opt.IntervalCycles = req.IntervalCycles
	}
	if req.DTM {
		d := dtm.DefaultConfig()
		opt.DTM = &d
	}
	return opt
}
