package frontendsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestRunSuitePartialRecordsShardErrors pins graceful degradation: a
// shard whose dispatch fails is recorded as a ShardError (and emitted
// to the sink with Err set), its Results position stays nil, and the
// aggregate folds only the shards that completed.
func TestRunSuitePartialRecordsShardErrors(t *testing.T) {
	eng := testEngine(WithWorkers(4))
	suite := suiteReq() // gzip, mcf, swim
	boom := errors.New("backend exhausted")

	var shards []ShardResult
	res, err := eng.RunSuitePartial(context.Background(), suite,
		func(ctx context.Context, req Request) (*Result, string, error) {
			if req.Benchmark == "mcf" {
				return nil, "", boom
			}
			r, err := eng.Run(ctx, req)
			return r, "MISS", err
		},
		func(sh ShardResult) { shards = append(shards, sh) })
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Errors) != 1 {
		t.Fatalf("Errors = %+v, want exactly one entry", res.Errors)
	}
	se := res.Errors[0]
	if se.Benchmark != "mcf" || se.Err != boom.Error() || len(se.Positions) != 1 || se.Positions[0] != 1 {
		t.Errorf("shard error = %+v", se)
	}
	if res.Results[1] != nil {
		t.Error("failed shard's result is non-nil")
	}
	if res.Results[0] == nil || res.Results[2] == nil {
		t.Fatal("surviving shards missing results")
	}
	if res.Aggregate.Benchmarks != 2 {
		t.Errorf("aggregate folds %d benchmarks, want 2", res.Aggregate.Benchmarks)
	}
	wantIPC := (res.Results[0].IPC + res.Results[2].IPC) / 2
	if res.Aggregate.MeanIPC != wantIPC {
		t.Errorf("MeanIPC = %v, want mean over survivors %v", res.Aggregate.MeanIPC, wantIPC)
	}

	// The sink saw the failure too, as a ShardResult with Err set.
	var failed []ShardResult
	for _, sh := range shards {
		if sh.Err != "" {
			failed = append(failed, sh)
		}
	}
	if len(failed) != 1 || failed[0].Benchmark != "mcf" || failed[0].Result != nil {
		t.Errorf("sink failures = %+v, want one mcf entry with nil result", failed)
	}
}

// TestRunSuitePartialCleanRunMatchesStream asserts a failure-free
// partial run is byte-identical (as JSON) to the plain streaming run —
// enabling the mode must not change healthy responses.
func TestRunSuitePartialCleanRunMatchesStream(t *testing.T) {
	eng := testEngine(WithWorkers(4))
	suite := suiteReq()
	dispatch := func(ctx context.Context, req Request) (*Result, string, error) {
		r, err := eng.Run(ctx, req)
		return r, "MISS", err
	}

	plain, err := eng.RunSuiteStream(context.Background(), suite, dispatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := eng.RunSuitePartial(context.Background(), suite, dispatch, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(partial)
	if !bytes.Equal(a, b) {
		t.Errorf("clean partial run differs from streaming run:\n%s\n%s", a, b)
	}
	if strings.Contains(string(b), `"errors"`) {
		t.Error("clean run serialized an errors field")
	}
}

// TestRunSuitePartialAllShardsFailed asserts a suite in which every
// shard fails returns an error, not an empty aggregate.
func TestRunSuitePartialAllShardsFailed(t *testing.T) {
	eng := testEngine(WithWorkers(2))
	res, err := eng.RunSuitePartial(context.Background(), suiteReq(),
		func(ctx context.Context, req Request) (*Result, string, error) {
			return nil, "", fmt.Errorf("no backend for %s", req.Benchmark)
		}, nil)
	if err == nil {
		t.Fatalf("all-failed suite returned %+v, want error", res)
	}
}

// TestRunSuitePartialCancellationStillAborts asserts context
// cancellation is still fatal in partial mode.
func TestRunSuitePartialCancellationStillAborts(t *testing.T) {
	eng := testEngine(WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	_, err := eng.RunSuitePartial(ctx, suiteReq(),
		func(ctx context.Context, req Request) (*Result, string, error) {
			cancel()
			return nil, "", ctx.Err()
		}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
