// Package frontendsim is the public API of the distributed-frontend
// thermal simulator — the reproduction of "Distributing the Frontend
// for Temperature Reduction" (HPCA 2005).  It wraps the internal
// simulation pipeline (core, power, thermal, dtm) behind an Engine that
// supports
//
//   - functional-option construction (WithThermal, WithPower, WithDTM,
//     WithIntervalCycles, ...),
//   - context-aware runs: Run(ctx, Request) honors cancellation between
//     thermal intervals,
//   - streaming observation: observers receive one Snapshot per measured
//     interval (temperatures, per-block power, incremental IPC, bank-hop
//     and DTM state) instead of only a final Result,
//   - JSON-(un)marshalable Request/Result types, so runs can cross a
//     process boundary (see cmd/simd),
//   - canonical request keys: RequestKey hashes the fully resolved
//     request (configuration, simulation lengths, model overrides) so
//     two spellings of the same simulation share one cache entry across
//     every tier — the LRU/disk stores of pkg/resultstore, the
//     coalescing single-flight groups, and the consistent-hash sharding
//     of pkg/scheduler all key on it,
//   - RunSuite: a bounded worker pool that parallelizes a benchmark
//     sweep with deterministic, order-independent aggregation, de-duped
//     on the canonical request key, and
//   - RunSuiteVia: the same suite machinery over a caller-supplied
//     Dispatcher, so a suite can run against remote backends (see
//     pkg/scheduler) with an aggregate byte-identical to a local run.
//
// The zero-cost entry point for a single paper-style run:
//
//	eng := frontendsim.New()
//	res, err := eng.Run(ctx, frontendsim.Request{Benchmark: "gzip"})
//
// A suite across several benchmarks, deterministically aggregated:
//
//	suite, err := eng.RunSuite(ctx, frontendsim.SuiteRequest{
//	    Benchmarks: []string{"gzip", "mcf"},
//	    Request:    frontendsim.Request{Frontends: 2},
//	})
//
// See docs/ARCHITECTURE.md for how this package composes with
// internal/simd, pkg/scheduler and pkg/resultstore into the serving
// system, and docs/API.md for the HTTP surface built on top of it.
package frontendsim
