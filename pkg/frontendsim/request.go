package frontendsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Request describes one simulation: which benchmark to run and on which
// processor configuration.  The zero value plus a Benchmark name runs the
// paper's baseline (Table 1).  Request marshals to/from JSON, so it can
// be posted to the cmd/simd HTTP service unchanged.
type Request struct {
	// Benchmark names one of the 26 SPEC2000 profiles (see Benchmarks).
	Benchmark string `json:"benchmark"`

	// Config overrides the full processor configuration when non-nil.
	// When nil, the paper baseline (core.DefaultConfig) is used and the
	// technique toggles below are applied on top of it.
	Config *core.Config `json:"config,omitempty"`

	// Technique toggles, mirroring the paper's evaluated configurations.
	// They apply on top of Config (or the baseline when Config is nil).

	// Frontends > 1 enables the §3.1 distributed rename and commit over
	// that many frontend partitions (the paper evaluates 2).
	Frontends int `json:"frontends,omitempty"`
	// BankHopping enables the §3.2.1 rotating Vdd-gated extra bank.
	BankHopping bool `json:"bank_hopping,omitempty"`
	// BiasedMapping enables the §3.2.2 thermal-aware mapping function.
	BiasedMapping bool `json:"biased_mapping,omitempty"`
	// BlankSilicon enables the Figure 13 comparison point (one extra,
	// statically gated bank).  Mutually exclusive with BankHopping.
	BlankSilicon bool `json:"blank_silicon,omitempty"`
	// DTM enables the fetch-toggling thermal-emergency controller with
	// its default 381 K tuning for this run.
	DTM bool `json:"dtm,omitempty"`

	// Per-run overrides of the Engine's simulation lengths (0 = use the
	// Engine default).
	WarmupOps      uint64 `json:"warmup_ops,omitempty"`
	MeasureOps     uint64 `json:"measure_ops,omitempty"`
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
}

// EffectiveConfig resolves the processor configuration the request runs:
// Config (or the baseline) with the technique toggles applied.
func (r Request) EffectiveConfig() core.Config {
	cfg := core.DefaultConfig()
	if r.Config != nil {
		cfg = *r.Config
	}
	if r.Frontends > 1 {
		cfg = cfg.WithDistributedFrontend(r.Frontends)
	}
	if r.BankHopping {
		cfg = cfg.WithBankHopping()
	}
	if r.BiasedMapping {
		cfg = cfg.WithBiasedMapping()
	}
	if r.BlankSilicon {
		cfg = cfg.WithBlankSilicon()
	}
	return cfg
}

// Validate checks the request without running it.  It reports unknown
// benchmarks (previously a panic deep inside internal/experiments),
// contradictory technique toggles, and inconsistent processor
// configurations.
func (r Request) Validate() error {
	if r.Benchmark == "" {
		return fmt.Errorf("frontendsim: request has no benchmark (available: %s)",
			strings.Join(workload.Names(), " "))
	}
	if _, ok := workload.ByName(r.Benchmark); !ok {
		return fmt.Errorf("frontendsim: unknown benchmark %q (available: %s)",
			r.Benchmark, strings.Join(workload.Names(), " "))
	}
	if r.BankHopping && r.BlankSilicon {
		return fmt.Errorf("frontendsim: bank_hopping and blank_silicon are mutually exclusive")
	}
	if r.Frontends < 0 {
		return fmt.Errorf("frontendsim: frontends must be >= 0, got %d", r.Frontends)
	}
	if err := r.EffectiveConfig().Validate(); err != nil {
		return fmt.Errorf("frontendsim: invalid configuration: %w", err)
	}
	return nil
}

// profile resolves the workload profile; Validate must have passed.
func (r Request) profile() workload.Profile {
	p, _ := workload.ByName(r.Benchmark)
	return p
}

// canonicalRequest is the fully resolved form a request hashes as: the
// effective configuration and effective simulation lengths, independent
// of how the caller spelled them (Config vs. toggles, engine defaults
// vs. explicit overrides).  Two requests that would produce identical
// results produce identical canonical forms.
type canonicalRequest struct {
	Benchmark       string           `json:"benchmark"`
	Config          core.Config      `json:"config"`
	WarmupOps       uint64           `json:"warmup_ops"`
	MeasureOps      uint64           `json:"measure_ops"`
	IntervalCycles  uint64           `json:"interval_cycles"`
	IntervalSeconds float64          `json:"interval_seconds"`
	Thermal         *thermal.Params  `json:"thermal,omitempty"`
	Power           *power.Constants `json:"power,omitempty"`
	DTM             *dtm.Config      `json:"dtm,omitempty"`
}

// RequestKey returns the canonical cache key of a request under this
// Engine's defaults: a hex SHA-256 of the resolved benchmark,
// configuration and simulation lengths (Thanos query-frontend style —
// the key identifies the response, not the request spelling).
func (e *Engine) RequestKey(req Request) (string, error) {
	if err := req.Validate(); err != nil {
		return "", err
	}
	opt := e.options(req)
	// The overrides hash by value, not presence: two engines (or a DTM
	// request toggle vs. a WithDTM default) with different controller or
	// model tunings must never share a cache entry.
	canon := canonicalRequest{
		Benchmark:       req.Benchmark,
		Config:          req.EffectiveConfig(),
		WarmupOps:       opt.WarmupOps,
		MeasureOps:      opt.MeasureOps,
		IntervalCycles:  opt.IntervalCycles,
		IntervalSeconds: opt.IntervalSeconds,
		Thermal:         opt.Thermal,
		Power:           opt.Power,
		DTM:             opt.DTM,
	}
	// encoding/json emits struct fields in declaration order, so the
	// encoding is canonical for a fixed struct shape.
	b, err := json.Marshal(canon)
	if err != nil {
		return "", fmt.Errorf("frontendsim: canonicalize request: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Benchmarks returns the names of all available benchmark profiles,
// sorted.
func Benchmarks() []string {
	names := workload.Names()
	sort.Strings(names)
	return names
}
