package frontendsim

import (
	"context"
	"encoding/json"
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/goldentest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenRequests cover the baseline and the full paper technique stack
// (distributed frontend + bank hopping + biased mapping + DTM), so every
// branch of the power/thermal interval pipeline is pinned end to end.
func goldenRequests() map[string]Request {
	return map[string]Request{
		"baseline_gzip": {
			Benchmark:  "gzip",
			WarmupOps:  30_000,
			MeasureOps: 60_000,
		},
		"full_stack_mcf": {
			Benchmark:     "mcf",
			Frontends:     2,
			BankHopping:   true,
			BiasedMapping: true,
			DTM:           true,
			WarmupOps:     30_000,
			MeasureOps:    60_000,
		},
	}
}

// TestGoldenEngineRun asserts that Engine.Run produces byte-identical
// JSON results (and stable canonical request keys) across the
// scratch-buffer rewrite of the interval pipeline.
func TestGoldenEngineRun(t *testing.T) {
	eng := New()
	for name, req := range goldenRequests() {
		t.Run(name, func(t *testing.T) {
			key, err := eng.RequestKey(req)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			body, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			blob := []byte("key:" + key + "\n")
			blob = append(blob, body...)
			blob = append(blob, '\n')
			path := filepath.Join("testdata", "golden_"+name+".jsonl")
			goldentest.CheckBytes(t, path, blob, *updateGolden)
		})
	}
}
