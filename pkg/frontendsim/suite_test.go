package frontendsim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func suiteReq() SuiteRequest {
	return SuiteRequest{
		Benchmarks: []string{"gzip", "mcf", "swim"},
		Request:    Request{BankHopping: true},
	}
}

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	serialEng := testEngine(WithWorkers(1))
	serial, err := serialEng.RunSuite(context.Background(), suiteReq())
	if err != nil {
		t.Fatal(err)
	}
	parallelEng := testEngine(WithWorkers(4))
	parallel, err := parallelEng.RunSuite(context.Background(), suiteReq())
	if err != nil {
		t.Fatal(err)
	}

	serialJSON, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatal("parallel suite run is not byte-identical to the serial run")
	}

	if serial.Aggregate.Benchmarks != 3 {
		t.Errorf("aggregate covers %d benchmarks", serial.Aggregate.Benchmarks)
	}
	if serial.Aggregate.MeanIPC <= 0 {
		t.Error("aggregate mean IPC not positive")
	}
	// Results stay in suite order regardless of completion order.
	for i, want := range []string{"gzip", "mcf", "swim"} {
		if parallel.Results[i].Benchmark != want {
			t.Errorf("result %d is %q, want %q", i, parallel.Results[i].Benchmark, want)
		}
	}
	if parallel.ByBenchmark("mcf") != parallel.Results[1] {
		t.Error("ByBenchmark lookup broken")
	}
	if parallel.ByBenchmark("nosuch") != nil {
		t.Error("ByBenchmark returned a result for an absent benchmark")
	}
}

func TestRunSuiteAggregateMatchesManualFold(t *testing.T) {
	eng := testEngine(WithWorkers(2))
	suite, err := eng.RunSuite(context.Background(), suiteReq())
	if err != nil {
		t.Fatal(err)
	}
	var meanIPC float64
	for _, r := range suite.Results {
		meanIPC += r.IPC
	}
	meanIPC /= float64(len(suite.Results))
	if suite.Aggregate.MeanIPC != meanIPC {
		t.Errorf("aggregate IPC %v != manual fold %v", suite.Aggregate.MeanIPC, meanIPC)
	}
	procAvg := (suite.Results[0].Units[UnitProcessor].Average +
		suite.Results[1].Units[UnitProcessor].Average +
		suite.Results[2].Units[UnitProcessor].Average) / 3
	if suite.Aggregate.Units[UnitProcessor].Average != procAvg {
		t.Errorf("aggregate processor average %v != manual fold %v",
			suite.Aggregate.Units[UnitProcessor].Average, procAvg)
	}
}

func TestRunSuiteValidation(t *testing.T) {
	eng := testEngine()
	if _, err := eng.RunSuite(context.Background(), SuiteRequest{
		Benchmarks: []string{"gzip", "nosuch"},
	}); err == nil {
		t.Error("suite with unknown benchmark did not error")
	}
	if _, err := eng.RunSuite(context.Background(), SuiteRequest{
		Benchmarks: []string{},
	}); err == nil {
		t.Error("empty non-nil suite did not error")
	}
}

func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := testEngine(WithWorkers(2))
	if _, err := eng.RunSuite(ctx, suiteReq()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled suite err = %v, want context.Canceled", err)
	}
}
