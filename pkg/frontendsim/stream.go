package frontendsim

import (
	"context"
	"sync"
)

// SourcedDispatcher is a Dispatcher that also reports how the request
// was served — the per-shard `source` of the streaming suite API.  The
// conventional spellings are the X-Cache values ("HIT", "COALESCED",
// "MISS"); an empty string means the dispatcher does not say.
type SourcedDispatcher func(ctx context.Context, req Request) (*Result, string, error)

// ShardResult is one completed shard of a streamed suite run: the
// dispatched result plus where in the suite it belongs and how it was
// served.
type ShardResult struct {
	// Positions are the suite indices sharing this shard's canonical
	// key, ascending (duplicate suite entries dispatch once and share
	// the result).  The slice is owned by the engine; don't mutate it.
	Positions []int `json:"positions"`
	// Benchmark is the dispatched request's benchmark.
	Benchmark string `json:"benchmark"`
	// Source reports how the dispatcher served the shard ("HIT",
	// "COALESCED", "MISS"; empty when unknown).
	Source string `json:"source,omitempty"`
	// Result is the shard's result, shared by every position.
	Result *Result `json:"result"`
}

// StreamSink receives each completed shard of RunSuiteStream the moment
// it lands.  Calls are serialized by the engine (never concurrent), in
// completion order — cached shards typically arrive first, whatever
// their suite position.  The sink must not block longer than the caller
// can afford: it runs on the suite's worker goroutines.
type StreamSink func(ShardResult)

// SuiteStreamLine is one NDJSON line of the POST /v1/suites/stream
// endpoints (internal/simd single-node, pkg/scheduler ring fan-in).
// Type selects which fields are populated:
//
//	"shard"     Positions/Benchmark/Source/Result — one completed shard
//	"aggregate" Suite — the terminal deterministic SuiteResult,
//	            byte-identical (as JSON) to the blocking POST /v1/suites
//	            response for the same request
//	"error"     Error — the run failed; no aggregate follows
type SuiteStreamLine struct {
	Type      string       `json:"type"`
	Positions []int        `json:"positions,omitempty"`
	Benchmark string       `json:"benchmark,omitempty"`
	Source    string       `json:"source,omitempty"`
	Result    *Result      `json:"result,omitempty"`
	Suite     *SuiteResult `json:"suite,omitempty"`
	Error     string       `json:"error,omitempty"`
}

// RunSuiteStream runs the suite through dispatch exactly like
// RunSuiteVia — same sharding, same bounded worker pool, same
// deterministic suite-order aggregation — but additionally emits every
// shard to sink the moment it completes.  The returned SuiteResult is
// byte-identical (as JSON) to RunSuiteVia of the same suite: streaming
// changes when results become visible, never what they are.  A nil sink
// degrades to RunSuiteVia with a sourced dispatcher.
func (e *Engine) RunSuiteStream(ctx context.Context, suite SuiteRequest, dispatch SourcedDispatcher, sink StreamSink) (*SuiteResult, error) {
	return e.runSuite(ctx, suite, dispatch, sink)
}

// runSuite is the shared suite executor behind RunSuiteVia and
// RunSuiteStream: a bounded worker pool (Engine.Workers wide) over the
// deduplicated shards, results landing in a slice indexed by suite
// position and folded in that order, so the aggregate is byte-identical
// whatever the completion order — and identical to a Workers==1 serial
// run.  The first error (including context cancellation) aborts the
// remaining work.
func (e *Engine) runSuite(ctx context.Context, suite SuiteRequest, dispatch SourcedDispatcher, sink StreamSink) (*SuiteResult, error) {
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	reqs := suite.Requests()
	shards, err := e.shardByKey(reqs)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(reqs))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.workers
	if workers > len(shards) {
		workers = len(shards)
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		emitMu   sync.Mutex // serializes sink calls across workers
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				positions := shards[i]
				res, source, err := dispatch(ctx, reqs[positions[0]])
				if err != nil {
					fail(err)
					return
				}
				for _, p := range positions {
					results[p] = res
				}
				if sink != nil {
					emitMu.Lock()
					sink(ShardResult{
						Positions: positions,
						Benchmark: reqs[positions[0]].Benchmark,
						Source:    source,
						Result:    res,
					})
					emitMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < len(shards); i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &SuiteResult{Results: results, Aggregate: aggregate(results)}, nil
}
