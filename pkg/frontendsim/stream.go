package frontendsim

import (
	"context"
	"fmt"
	"sync"
)

// SourcedDispatcher is a Dispatcher that also reports how the request
// was served — the per-shard `source` of the streaming suite API.  The
// conventional spellings are the X-Cache values ("HIT", "COALESCED",
// "MISS"); an empty string means the dispatcher does not say.
type SourcedDispatcher func(ctx context.Context, req Request) (*Result, string, error)

// ShardResult is one completed shard of a streamed suite run: the
// dispatched result plus where in the suite it belongs and how it was
// served.
type ShardResult struct {
	// Positions are the suite indices sharing this shard's canonical
	// key, ascending (duplicate suite entries dispatch once and share
	// the result).  The slice is owned by the engine; don't mutate it.
	Positions []int `json:"positions"`
	// Benchmark is the dispatched request's benchmark.
	Benchmark string `json:"benchmark"`
	// Source reports how the dispatcher served the shard ("HIT",
	// "COALESCED", "MISS"; empty when unknown).
	Source string `json:"source,omitempty"`
	// Result is the shard's result, shared by every position.  Nil when
	// Err is set.
	Result *Result `json:"result"`
	// Err is the shard's dispatch error, set only in partial-results
	// runs (RunSuitePartial) when the shard failed; Result is nil.
	Err string `json:"error,omitempty"`
}

// StreamSink receives each completed shard of RunSuiteStream the moment
// it lands.  Calls are serialized by the engine (never concurrent), in
// completion order — cached shards typically arrive first, whatever
// their suite position.  The sink must not block longer than the caller
// can afford: it runs on the suite's worker goroutines.
type StreamSink func(ShardResult)

// SuiteStreamLine is one NDJSON line of the POST /v1/suites/stream
// endpoints (internal/simd single-node, pkg/scheduler ring fan-in).
// Type selects which fields are populated:
//
//	"shard"       Positions/Benchmark/Source/Result — one completed shard
//	"shard-error" Positions/Benchmark/Error — one shard failed in a
//	              partial-results run; the run continues and the
//	              terminal aggregate excludes it
//	"aggregate"   Suite — the terminal deterministic SuiteResult,
//	              byte-identical (as JSON) to the blocking POST
//	              /v1/suites response for the same request
//	"error"       Error — the run failed; no aggregate follows
type SuiteStreamLine struct {
	Type      string       `json:"type"`
	Positions []int        `json:"positions,omitempty"`
	Benchmark string       `json:"benchmark,omitempty"`
	Source    string       `json:"source,omitempty"`
	Result    *Result      `json:"result,omitempty"`
	Suite     *SuiteResult `json:"suite,omitempty"`
	Error     string       `json:"error,omitempty"`
}

// RunSuiteStream runs the suite through dispatch exactly like
// RunSuiteVia — same sharding, same bounded worker pool, same
// deterministic suite-order aggregation — but additionally emits every
// shard to sink the moment it completes.  The returned SuiteResult is
// byte-identical (as JSON) to RunSuiteVia of the same suite: streaming
// changes when results become visible, never what they are.  A nil sink
// degrades to RunSuiteVia with a sourced dispatcher.
func (e *Engine) RunSuiteStream(ctx context.Context, suite SuiteRequest, dispatch SourcedDispatcher, sink StreamSink) (*SuiteResult, error) {
	return e.runSuite(ctx, suite, dispatch, sink, false)
}

// runSuite is the shared suite executor behind RunSuiteVia and
// RunSuiteStream: a bounded worker pool (Engine.Workers wide) over the
// deduplicated shards, results landing in a slice indexed by suite
// position and folded in that order, so the aggregate is byte-identical
// whatever the completion order — and identical to a Workers==1 serial
// run.  The first error (including context cancellation) aborts the
// remaining work — unless partial is set, in which case dispatch
// failures are recorded per shard (emitted to sink with Err set) and
// the rest of the suite runs to completion; only context cancellation
// still aborts.
func (e *Engine) runSuite(ctx context.Context, suite SuiteRequest, dispatch SourcedDispatcher, sink StreamSink, partial bool) (*SuiteResult, error) {
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	reqs := suite.Requests()
	shards, err := e.shardByKey(reqs)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(reqs))
	// shardErrs[i] is shard i's dispatch error in partial mode; each
	// shard is owned by exactly one worker, so the slots race-free.
	shardErrs := make([]error, len(shards))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := e.workers
	if workers > len(shards) {
		workers = len(shards)
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		emitMu   sync.Mutex // serializes sink calls across workers
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				positions := shards[i]
				res, source, err := dispatch(ctx, reqs[positions[0]])
				if err != nil {
					// In partial mode only cancellation of the run
					// itself is fatal; a per-shard dispatch failure is
					// recorded and the pool keeps draining.
					if !partial || ctx.Err() != nil {
						fail(err)
						return
					}
					shardErrs[i] = err
					if sink != nil {
						emitMu.Lock()
						sink(ShardResult{
							Positions: positions,
							Benchmark: reqs[positions[0]].Benchmark,
							Err:       err.Error(),
						})
						emitMu.Unlock()
					}
					continue
				}
				for _, p := range positions {
					results[p] = res
				}
				if sink != nil {
					emitMu.Lock()
					sink(ShardResult{
						Positions: positions,
						Benchmark: reqs[positions[0]].Benchmark,
						Source:    source,
						Result:    res,
					})
					emitMu.Unlock()
				}
			}
		}()
	}
feed:
	for i := 0; i < len(shards); i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var shardErrors []ShardError
	if partial {
		failed := 0
		for si, derr := range shardErrs {
			if derr == nil {
				continue
			}
			failed++
			positions := shards[si]
			shardErrors = append(shardErrors, ShardError{
				Positions: positions,
				Benchmark: reqs[positions[0]].Benchmark,
				Err:       derr.Error(),
			})
		}
		if failed == len(shards) && len(shards) > 0 {
			// Every shard failed: there is nothing to degrade to.
			return nil, fmt.Errorf("frontendsim: all %d suite shards failed: %w", len(shards), shardErrs[0])
		}
	}
	return &SuiteResult{Results: results, Errors: shardErrors, Aggregate: aggregate(results)}, nil
}
