package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("queue_depth", "Current queue depth.")
	g.Set(7)
	g.Dec()

	out := r.Render()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "Requests.", "handler", "code")
	v.With("/a", "200").Add(5)
	v.With("/a", "500").Inc()
	v.With("/b", "200").Inc()

	out := r.Render()
	for _, want := range []string{
		`requests_total{handler="/a",code="200"} 5`,
		`requests_total{handler="/a",code="500"} 1`,
		`requests_total{handler="/b",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Re-registering the same family returns it; a different label set
	// panics.
	if got := r.CounterVec("requests_total", "Requests.", "handler", "code"); got.f != v.f {
		t.Error("re-registration did not return the existing family")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.CounterVec("requests_total", "Requests.", "handler")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := r.Render()
	// le is inclusive: 0.1 lands in the 0.1 bucket.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
		`latency_seconds_sum 55.65`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestSampledFamily(t *testing.T) {
	r := NewRegistry()
	hits := uint64(41)
	r.Sampled("store_hits_total", "Store hits by tier.", TypeCounter, []string{"tier"},
		func(emit func([]string, float64)) {
			emit([]string{"memory"}, float64(hits))
			emit([]string{"disk"}, 3)
		})
	hits++ // sampled at render time, not at registration
	out := r.Render()
	for _, want := range []string{
		`store_hits_total{tier="memory"} 42`,
		`store_hits_total{tier="disk"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentHandler(t *testing.T) {
	r := NewRegistry()
	h := r.InstrumentHandlerFunc("/v1/thing", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("fail") != "" {
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		fmt.Fprint(w, "ok")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "?fail=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := r.Render()
	for _, want := range []string{
		`http_requests_total{handler="/v1/thing",code="200"} 3`,
		`http_requests_total{handler="/v1/thing",code="502"} 1`,
		`http_requests_in_flight{handler="/v1/thing"} 0`,
		`http_request_duration_seconds_count{handler="/v1/thing",code="200"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUse drives every metric kind from many goroutines while
// rendering — run under -race this is the data-race gate.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c_total", "", "k")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	r.Sampled("s", "", TypeGauge, nil, func(emit func([]string, float64)) {
		emit(nil, 1)
	})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				v.With(fmt.Sprintf("k%d", i%3)).Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				if j%100 == 0 {
					_ = r.Render()
				}
			}
		}(i)
	}
	wg.Wait()

	if got := v.With("k0").Value() + v.With("k1").Value() + v.With("k2").Value(); got != 4000 {
		t.Errorf("counter total = %v, want 4000", got)
	}
	if g.Value() != 4000 {
		t.Errorf("gauge = %v, want 4000", g.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}
