package obs

import (
	"bufio"
	"net"
	"net/http"
	"strconv"
	"time"
)

// InstrumentHandler wraps next with the standard HTTP server metrics,
// labelled by handler (use the route pattern, e.g. "/v1/simulations")
// and status code:
//
//	http_requests_in_flight{handler}        gauge
//	http_requests_total{handler,code}       counter
//	http_request_duration_seconds{handler,code} histogram
//
// The three families are shared across every instrumented handler of the
// registry, so a process exposes one coherent request surface.
func (r *Registry) InstrumentHandler(handler string, next http.Handler) http.Handler {
	inflight := r.GaugeVec("http_requests_in_flight",
		"Requests currently being served.", "handler").With(handler)
	requests := r.CounterVec("http_requests_total",
		"Requests served, by handler and status code.", "handler", "code")
	duration := r.HistogramVec("http_request_duration_seconds",
		"Request duration in seconds, by handler and status code.", nil, "handler", "code")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		inflight.Inc()
		defer inflight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, req)
		code := strconv.Itoa(sw.code)
		requests.With(handler, code).Inc()
		duration.With(handler, code).Observe(time.Since(start).Seconds())
	})
}

// InstrumentHandlerFunc is InstrumentHandler over a HandlerFunc.
func (r *Registry) InstrumentHandlerFunc(handler string, next http.HandlerFunc) http.Handler {
	return r.InstrumentHandler(handler, next)
}

// statusWriter records the response status code while passing the
// streaming capabilities (Flusher, Hijacker) through — the NDJSON
// endpoints flush per line.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack implements http.Hijacker when the underlying writer does.
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}
