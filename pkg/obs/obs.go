// Package obs is a small, dependency-free metrics plane: a registry of
// counters, gauges and histograms (optionally labelled), rendered in the
// Prometheus text exposition format on GET /metrics, plus HTTP server
// middleware (in-flight gauge, request counter and duration histogram by
// handler and status code — the Thanos extprom/http instrument_server
// shape).  Both simd and simsched mount one Registry per process and
// re-export their existing cache/singleflight/store/ring counters
// through it, so a fleet is scrapeable without importing a client
// library the build can't have.
//
// The package is intentionally a subset of the Prometheus data model:
// metric families are registered once (re-registering the same
// name/type/labels returns the existing family), children are created on
// first use of a label-value combination, and exposition order is the
// registration order — deterministic output for tests and diffs.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Type is a metric family's kind.
type Type string

// The supported family kinds.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// DefBuckets are the default histogram buckets (seconds), matching the
// Prometheus client defaults — fine-grained around typical request
// latencies.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them.  All methods are safe
// for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// family is one metric family: a name, a type and its children (one per
// label-value combination).
type family struct {
	name    string
	help    string
	typ     Type
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string // child keys in creation order

	// sample, when non-nil, makes this a collected family: children are
	// ignored and the callback emits the current values at render time.
	sample func(emit func(labelValues []string, value float64))
}

// child is one labelled series.  Counters and gauges use bits (float64
// bits); histograms use counts/sumBits/count.
type child struct {
	labelValues []string
	bits        atomic.Uint64

	counts  []atomic.Uint64 // per-bucket (non-cumulative) observation counts
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func (c *child) addFloat(v float64) {
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (c *child) addSum(v float64) {
	for {
		old := c.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// register returns the family for name, creating it on first use.  A
// second registration with a different type, label set or help panics:
// that is a programming error, not a runtime condition.
func (r *Registry) register(name, help string, typ Type, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*child{},
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the child for labelValues, creating it on first use.
func (f *family) get(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d",
			f.name, len(labelValues), len(f.labels)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), labelValues...)}
		if f.typ == TypeHistogram {
			c.counts = make([]atomic.Uint64, len(f.buckets)+1) // +1: the +Inf bucket
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter is a monotonically increasing value.
type Counter struct{ c *child }

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add adds v (must be >= 0).
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decreased")
	}
	c.c.addFloat(v)
}

// Value returns the current value (tests and snapshots).
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the value.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g Gauge) Add(v float64) { g.c.addFloat(v) }

// Inc adds 1.
func (g Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	f *family
	c *child
}

// Observe records v.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with upper bound >= v
	h.c.counts[i].Add(1)
	h.c.count.Add(1)
	h.c.addSum(v)
}

// Count returns the total number of observations.
func (h Histogram) Count() uint64 { return h.c.count.Load() }

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	return Counter{c: f.get(nil)}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	return Gauge{c: f.get(nil)}
}

// Histogram registers (or returns) an unlabelled histogram over buckets
// (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return Histogram{f: f, c: f.get(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, TypeCounter, labels, nil)}
}

// With returns the counter for the given label values (created on first
// use).
func (v *CounterVec) With(labelValues ...string) Counter {
	return Counter{c: v.f.get(labelValues)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, TypeGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) Gauge {
	return Gauge{c: v.f.get(labelValues)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labelled histogram family over
// buckets (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, TypeHistogram, labels, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) Histogram {
	return Histogram{f: v.f, c: v.f.get(labelValues)}
}

// Sampled registers a collected family: at every render, sample is
// called and emits the family's current series — the bridge for
// counters that already live elsewhere (store tiers, ring stats,
// membership states) and shouldn't be double-booked.  typ must be
// TypeCounter or TypeGauge.  The callback must be safe for concurrent
// use and emit label value slices of len(labels).
func (r *Registry) Sampled(name, help string, typ Type, labels []string, sample func(emit func(labelValues []string, value float64))) {
	if typ != TypeCounter && typ != TypeGauge {
		panic("obs: sampled families must be counters or gauges")
	}
	f := r.register(name, help, typ, labels, nil)
	f.mu.Lock()
	f.sample = sample
	f.mu.Unlock()
}

// WriteTo renders every family in the Prometheus text exposition format,
// in registration order, with children in creation (or emission) order.
func (r *Registry) WriteTo(w *strings.Builder) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.render(w)
	}
}

// Render returns the full exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// Handler serves the exposition on GET.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Render())
	})
}

func (f *family) render(w *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	sample := f.sample
	if sample != nil {
		f.mu.Unlock()
		sample(func(labelValues []string, value float64) {
			writeSeries(w, f.name, f.labels, labelValues, "", "", value)
		})
		return
	}
	keys := append([]string(nil), f.order...)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	for _, c := range children {
		switch f.typ {
		case TypeHistogram:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += c.counts[i].Load()
				writeSeries(w, f.name+"_bucket", f.labels, c.labelValues,
					"le", formatFloat(ub), float64(cum))
			}
			cum += c.counts[len(f.buckets)].Load()
			writeSeries(w, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", float64(cum))
			writeSeries(w, f.name+"_sum", f.labels, c.labelValues, "", "", math.Float64frombits(c.sumBits.Load()))
			writeSeries(w, f.name+"_count", f.labels, c.labelValues, "", "", float64(c.count.Load()))
		default:
			writeSeries(w, f.name, f.labels, c.labelValues, "", "", math.Float64frombits(c.bits.Load()))
		}
	}
}

// writeSeries writes one sample line; extraName/extraValue append a
// trailing label (the histogram "le").
func writeSeries(w *strings.Builder, name string, labels, values []string, extraName, extraValue string, v float64) {
	w.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.WriteByte(',')
			}
			val := ""
			if i < len(values) {
				val = values[i]
			}
			fmt.Fprintf(w, "%s=%q", l, escapeLabel(val))
		}
		if extraName != "" {
			if len(labels) > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%s=%q", extraName, extraValue)
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	// %q already escapes quotes and backslashes; nothing extra needed
	// beyond keeping newlines out of the raw value.
	return strings.ReplaceAll(s, "\n", " ")
}
