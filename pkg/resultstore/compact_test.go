package resultstore

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestCompactReclaimsOverwrittenSpace is the core compaction promise:
// an overwrite-heavy workload leaves sealed segments mostly dead, one
// CompactOnce rewrites the worst of them, the on-disk footprint
// shrinks, and every live key still round-trips byte-identical — even
// across a kill-and-reopen.
func TestCompactReclaimsOverwrittenSpace(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{SegmentBytes: 4 << 10})

	// Hammer a small key set with ever-changing values, sealing several
	// segments whose records are almost all superseded.
	val := func(key string, round int) string {
		return fmt.Sprintf("%s-round-%03d-%s", key, round, strings.Repeat("v", 200))
	}
	keys := []string{"a", "b", "c", "d"}
	const rounds = 40
	for round := 0; round < rounds; round++ {
		for _, key := range keys {
			mustSet(t, d, key, val(key, round))
		}
	}
	before := d.Stats()[0].Bytes
	segsBefore := len(segments(t, dir))
	if segsBefore < 3 {
		t.Fatalf("workload too small to seal segments: %d", segsBefore)
	}

	reclaimed, did, err := d.CompactOnce(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !did || reclaimed <= 0 {
		t.Fatalf("CompactOnce = %d, %v; want a rewrite with reclaimed bytes", reclaimed, did)
	}
	after := d.Stats()[0]
	if after.Bytes >= before {
		t.Errorf("compaction grew the store: %d -> %d bytes", before, after.Bytes)
	}
	if after.Compactions != 1 || after.ReclaimedBytes != reclaimed {
		t.Errorf("stats = %+v, want Compactions=1 ReclaimedBytes=%d", after, reclaimed)
	}
	for _, key := range keys {
		if v, ok := mustGet(t, d, key); !ok || string(v) != val(key, rounds-1) {
			t.Errorf("%s after compaction = %q %v", key, v, ok)
		}
	}

	// Kill-and-reopen: the compacted directory replays to the same
	// contents.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDisk(t, dir, DiskConfig{SegmentBytes: 4 << 10})
	for _, key := range keys {
		if v, ok := mustGet(t, d2, key); !ok || string(v) != val(key, rounds-1) {
			t.Errorf("%s after reopen = %q %v", key, v, ok)
		}
	}
	if got := d2.Stats()[0]; got.Entries != len(keys) {
		t.Errorf("entries after reopen = %d, want %d", got.Entries, len(keys))
	}
}

// TestCompactUntilClean drives Compact to a fixed point: no sealed
// segment below the threshold remains, and further passes are no-ops.
func TestCompactUntilClean(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{SegmentBytes: 2 << 10})
	for round := 0; round < 30; round++ {
		for _, key := range []string{"x", "y"} {
			mustSet(t, d, key, fmt.Sprintf("%s-%d-%s", key, round, strings.Repeat("p", 150)))
		}
	}
	total, err := d.Compact(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatal("Compact reclaimed nothing over an overwrite-heavy history")
	}
	again, did, err := d.CompactOnce(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if did || again != 0 {
		t.Errorf("second Compact pass still found work: %d, %v", again, did)
	}
}

// TestCompactSkipsActiveAndLiveSegments: a store whose sealed segments
// are fully live has nothing to compact.
func TestCompactSkipsActiveAndLiveSegments(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{SegmentBytes: 1 << 10})
	for i := 0; i < 40; i++ {
		mustSet(t, d, fmt.Sprintf("key-%d", i), strings.Repeat("q", 100))
	}
	if len(segments(t, d.cfg.Dir)) < 2 {
		t.Fatal("expected several segments")
	}
	reclaimed, did, err := d.CompactOnce(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if did || reclaimed != 0 {
		t.Errorf("compacted a fully-live store: %d, %v", reclaimed, did)
	}
}

func TestCompactorBackground(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{SegmentBytes: 2 << 10})
	for round := 0; round < 30; round++ {
		mustSet(t, d, "hot", fmt.Sprintf("%d-%s", round, strings.Repeat("h", 180)))
	}
	c := StartCompactor(d, CompactorConfig{Threshold: 0.5, Interval: 5 * time.Millisecond})
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.Stats()[0].Compactions > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := d.Stats()[0]; st.Compactions == 0 || st.ReclaimedBytes == 0 {
		t.Fatalf("background compactor never ran: %+v", st)
	}
	if v, ok := mustGet(t, d, "hot"); !ok || !strings.HasPrefix(string(v), "29-") {
		t.Errorf("hot after background compaction = %q %v", v, ok)
	}
	// Closing the compactor then the store must not race or deadlock.
	c.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactBadThreshold(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{})
	for _, th := range []float64{0, -1, 1.5} {
		if _, _, err := d.CompactOnce(th); err == nil {
			t.Errorf("CompactOnce(%v) accepted", th)
		}
	}
}
