package resultstore

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Remote is the network-native backend of the Store interface: a
// memcached-text-protocol client, so replicas on different machines
// share one result tier and a fresh replica serves a peer's cached keys
// without recomputing them (the Thanos query-frontend pattern — a
// remote results cache behind the frontend).
//
// The client keeps the serving path cheap under concurrency the same
// way Thanos's memcached client does:
//
//   - Concurrent Gets are coalesced into batched multi-gets: callers
//     enqueue onto a shared queue, and a bounded worker pool drains up
//     to MaxBatchSize waiting keys into one `get k1 k2 ...` round trip
//     per server.
//   - Work is bounded: Workers goroutines own all network reads for
//     Gets, so a burst of thousands of concurrent requests costs a
//     handful of connections, not a handful of thousands.
//   - Dead servers rotate out: a failed dial or I/O error quarantines
//     the server for DeadCooldown, and key placement walks to the next
//     live server instead of hammering the corpse.  When the cooldown
//     lapses the server is retried.
//
// Values are stored with TTL (Config.TTL; zero keeps entries until the
// server evicts them).  Stats reports the server-side entry count
// (summed `stats` curr_items across live servers, briefly cached);
// hit/miss/set/error counters are exact.
type Remote struct {
	cfg     RemoteConfig
	servers []*remoteServer

	queue chan *remoteGet
	stop  chan struct{}
	wg    sync.WaitGroup

	closed atomic.Bool

	hits    atomic.Uint64
	misses  atomic.Uint64
	sets    atomic.Uint64
	getErrs atomic.Uint64
	setErrs atomic.Uint64
	// rotations counts ops that skipped at least one dead server.
	rotations atomic.Uint64
	// batches / batchedKeys pin the batching behaviour in tests:
	// batchedKeys/batches is the mean multi-get size.
	batches     atomic.Uint64
	batchedKeys atomic.Uint64

	// batchHist, when registered, observes the size of every drained
	// batch as store_remote_batch_size.
	batchHist atomic.Pointer[batchObserver]

	// statsMu guards the cached server-side entry count: Stats is
	// rendered on every /metrics scrape, so the `stats` round trip is
	// issued at most once per statsRefresh.
	statsMu      sync.Mutex
	statsAt      time.Time
	statsEntries int
}

type batchObserver struct{ observe func(float64) }

// RemoteConfig configures a Remote store.  Zero values select the
// defaults noted on each field.
type RemoteConfig struct {
	// Servers are the memcached host:port addresses.  Required.  Keys
	// are placed by hashing onto this list; the list order must match
	// across replicas for them to share placement.
	Servers []string
	// TTL is the expiry stored with every Set (0 = no expiry).
	TTL time.Duration
	// DialTimeout bounds each connection attempt (default 500ms).
	DialTimeout time.Duration
	// OpTimeout bounds each command round trip (default 2s).
	OpTimeout time.Duration
	// MaxBatchSize caps the keys drained into one multi-get (default
	// 16).
	MaxBatchSize int
	// Workers is the size of the Get worker pool (default 4).
	Workers int
	// MaxIdleConns caps the idle connections kept per server (default
	// 2; Sets and Gets dial beyond it and close the surplus).
	MaxIdleConns int
	// DeadCooldown is how long a server stays quarantined after a
	// failure before it is retried (default 5s).
	DeadCooldown time.Duration
}

func (cfg *RemoteConfig) fillDefaults() {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 2 * time.Second
	}
	if cfg.MaxBatchSize <= 0 {
		cfg.MaxBatchSize = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxIdleConns <= 0 {
		cfg.MaxIdleConns = 2
	}
	if cfg.DeadCooldown <= 0 {
		cfg.DeadCooldown = 5 * time.Second
	}
}

// remoteServer is one cache server: its address, a small idle-connection
// pool, and its circuit state.
type remoteServer struct {
	addr string
	idle chan *remoteConn
	// deadUntil is the unixnano until which the server is quarantined
	// (0 = live).
	deadUntil atomic.Int64
}

func (s *remoteServer) alive(now time.Time) bool {
	until := s.deadUntil.Load()
	return until == 0 || now.UnixNano() >= until
}

// remoteConn couples a connection with its read buffer.
type remoteConn struct {
	net.Conn
	r *bufio.Reader
}

// remoteGet is one caller waiting on the batching queue.
type remoteGet struct {
	key   string
	count bool // false for Peek: stay out of the hit/miss counters
	done  chan remoteGetRes
}

type remoteGetRes struct {
	val []byte
	ok  bool
	err error
}

// NewRemote builds a Remote over cfg and starts its worker pool.  The
// servers are not contacted until the first operation, so a store can
// be constructed before its cache tier is up.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("resultstore: remote store requires at least one server")
	}
	cfg.fillDefaults()
	r := &Remote{
		cfg:   cfg,
		queue: make(chan *remoteGet, 1024),
		stop:  make(chan struct{}),
	}
	for _, addr := range cfg.Servers {
		r.servers = append(r.servers, &remoteServer{
			addr: addr,
			idle: make(chan *remoteConn, cfg.MaxIdleConns),
		})
	}
	r.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	return r, nil
}

// validRemoteKey enforces the protocol's key constraints (1..250
// bytes, no whitespace or control characters).  Canonical request-hash
// keys always pass; the check protects against misuse, not traffic.
func validRemoteKey(key string) error {
	if len(key) == 0 || len(key) > 250 {
		return fmt.Errorf("resultstore: remote key length %d out of range 1..250", len(key))
	}
	for i := 0; i < len(key); i++ {
		if key[i] <= ' ' || key[i] == 0x7f {
			return fmt.Errorf("resultstore: remote key contains byte %#x", key[i])
		}
	}
	return nil
}

// pickServers returns the key's placement order: the hash-homed server
// first, then the rest of the ring as failover candidates.
func (r *Remote) pickServers(key string) []*remoteServer {
	h := fnv.New32a()
	h.Write([]byte(key))
	n := len(r.servers)
	home := int(h.Sum32()) % n
	if home < 0 {
		home += n
	}
	out := make([]*remoteServer, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.servers[(home+i)%n])
	}
	return out
}

// connect returns a connection to the first live candidate, dialing
// past dead servers (each skip counts one rotation).  A dial failure
// quarantines that server and moves on.
func (r *Remote) connect(candidates []*remoteServer) (*remoteServer, *remoteConn, error) {
	now := time.Now()
	rotated := false
	for _, srv := range candidates {
		if !srv.alive(now) {
			rotated = true
			continue
		}
		// Reuse an idle connection when one is pooled.
		select {
		case conn := <-srv.idle:
			if rotated {
				r.rotations.Add(1)
			}
			return srv, conn, nil
		default:
		}
		nc, err := net.DialTimeout("tcp", srv.addr, r.cfg.DialTimeout)
		if err != nil {
			r.markDead(srv)
			rotated = true
			continue
		}
		if rotated {
			r.rotations.Add(1)
		}
		return srv, &remoteConn{Conn: nc, r: bufio.NewReader(nc)}, nil
	}
	return nil, nil, errors.New("resultstore: no live remote cache server")
}

// pickLive returns key's placement without dialing: the first live
// candidate in rotation order.  Workers use it to group a batch by
// server; the connect (and any dial failure) happens once per group,
// not once per key.
func (r *Remote) pickLive(key string) (*remoteServer, error) {
	now := time.Now()
	rotated := false
	for _, srv := range r.pickServers(key) {
		if srv.alive(now) {
			if rotated {
				r.rotations.Add(1)
			}
			return srv, nil
		}
		rotated = true
	}
	return nil, errors.New("resultstore: no live remote cache server")
}

// markDead quarantines srv for the dead cooldown.
func (r *Remote) markDead(srv *remoteServer) {
	srv.deadUntil.Store(time.Now().Add(r.cfg.DeadCooldown).UnixNano())
}

// release returns a healthy connection to srv's idle pool (or closes it
// when the pool is full).
func (r *Remote) release(srv *remoteServer, conn *remoteConn) {
	select {
	case srv.idle <- conn:
	default:
		conn.Close()
	}
}

// discard closes a connection after an I/O failure and quarantines its
// server.
func (r *Remote) discard(srv *remoteServer, conn *remoteConn) {
	conn.Close()
	r.markDead(srv)
}

// Get returns the stored response for key.  The read is coalesced with
// other concurrent Gets into one batched multi-get per server.
func (r *Remote) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return r.get(ctx, key, true)
}

// Peek is Get without the hit/miss accounting.
func (r *Remote) Peek(ctx context.Context, key string) ([]byte, bool, error) {
	return r.get(ctx, key, false)
}

func (r *Remote) get(ctx context.Context, key string, count bool) ([]byte, bool, error) {
	if r.closed.Load() {
		return nil, false, errClosed
	}
	if err := validRemoteKey(key); err != nil {
		return nil, false, err
	}
	g := &remoteGet{key: key, count: count, done: make(chan remoteGetRes, 1)}
	select {
	case r.queue <- g:
	case <-r.stop:
		return nil, false, errClosed
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	select {
	case res := <-g.done:
		return res.val, res.ok, res.err
	case <-r.stop:
		return nil, false, errClosed
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// worker drains the Get queue: it blocks for one request, sweeps up to
// MaxBatchSize-1 more without blocking, groups them by server and
// issues one multi-get per server.
func (r *Remote) worker() {
	defer r.wg.Done()
	for {
		var first *remoteGet
		select {
		case first = <-r.queue:
		case <-r.stop:
			return
		}
		batch := []*remoteGet{first}
	drain:
		for len(batch) < r.cfg.MaxBatchSize {
			select {
			case g := <-r.queue:
				batch = append(batch, g)
			default:
				break drain
			}
		}
		r.batches.Add(1)
		r.batchedKeys.Add(uint64(len(batch)))
		if h := r.batchHist.Load(); h != nil {
			h.observe(float64(len(batch)))
		}
		// Group by home server.  Most batches are one group (all
		// replicas hash the same key list the same way).
		groups := map[*remoteServer][]*remoteGet{}
		order := []*remoteServer{}
		for _, g := range batch {
			srv, err := r.pickLive(g.key)
			if err != nil {
				if g.count {
					r.getErrs.Add(1)
				}
				g.done <- remoteGetRes{err: err}
				continue
			}
			if _, ok := groups[srv]; !ok {
				order = append(order, srv)
			}
			groups[srv] = append(groups[srv], g)
		}
		for _, srv := range order {
			r.multiGet(srv, groups[srv])
		}
	}
}

// multiGet issues one `get k1 k2 ...` against srv and distributes the
// results.  Any I/O failure discards the connection, quarantines the
// server and fails every get in the group (callers treat a store error
// as a miss).
func (r *Remote) multiGet(srv *remoteServer, gets []*remoteGet) {
	fail := func(err error) {
		for _, g := range gets {
			if g.count {
				r.getErrs.Add(1)
			}
			g.done <- remoteGetRes{err: err}
		}
	}
	_, conn, err := r.connect([]*remoteServer{srv})
	if err != nil {
		fail(err)
		return
	}
	var cmd bytes.Buffer
	cmd.WriteString("get")
	for _, g := range gets {
		cmd.WriteByte(' ')
		cmd.WriteString(g.key)
	}
	cmd.WriteString("\r\n")
	conn.SetDeadline(time.Now().Add(r.cfg.OpTimeout))
	if _, err := conn.Write(cmd.Bytes()); err != nil {
		r.discard(srv, conn)
		fail(fmt.Errorf("resultstore: remote get %s: %w", srv.addr, err))
		return
	}
	values, err := readValues(conn.r)
	if err != nil {
		r.discard(srv, conn)
		fail(fmt.Errorf("resultstore: remote get %s: %w", srv.addr, err))
		return
	}
	conn.SetDeadline(time.Time{})
	r.release(srv, conn)
	for _, g := range gets {
		val, ok := values[g.key]
		if g.count {
			if ok {
				r.hits.Add(1)
			} else {
				r.misses.Add(1)
			}
		}
		g.done <- remoteGetRes{val: val, ok: ok}
	}
}

// readValues parses the VALUE...END response of a get command.
func readValues(br *bufio.Reader) (map[string][]byte, error) {
	values := map[string][]byte{}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = trimCRLF(line)
		if line == "END" {
			return values, nil
		}
		var key string
		var flags uint32
		var size int
		if n, err := fmt.Sscanf(line, "VALUE %s %d %d", &key, &flags, &size); n != 3 || err != nil {
			return nil, fmt.Errorf("unexpected response line %q", line)
		}
		if size < 0 || size > maxValLen {
			return nil, fmt.Errorf("implausible value length %d", size)
		}
		block := make([]byte, size+2)
		if _, err := readFull(br, block); err != nil {
			return nil, err
		}
		if block[size] != '\r' || block[size+1] != '\n' {
			return nil, errors.New("malformed data block")
		}
		values[key] = block[:size:size]
	}
}

func trimCRLF(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

func readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Set stores val under key with the configured TTL.  Sets are
// synchronous single commands: the serving path writes once per
// computed result, so batching buys nothing there.
func (r *Remote) Set(ctx context.Context, key string, val []byte) error {
	if r.closed.Load() {
		return errClosed
	}
	if err := validRemoteKey(key); err != nil {
		r.setErrs.Add(1)
		return err
	}
	if len(val) > maxValLen {
		r.setErrs.Add(1)
		return fmt.Errorf("resultstore: value length %d exceeds %d", len(val), maxValLen)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	srv, conn, err := r.connect(r.pickServers(key))
	if err != nil {
		r.setErrs.Add(1)
		return err
	}
	exptime := int64(r.cfg.TTL / time.Second)
	var cmd bytes.Buffer
	fmt.Fprintf(&cmd, "set %s 0 %d %d\r\n", key, exptime, len(val))
	cmd.Write(val)
	cmd.WriteString("\r\n")
	conn.SetDeadline(time.Now().Add(r.cfg.OpTimeout))
	if _, err := conn.Write(cmd.Bytes()); err != nil {
		r.discard(srv, conn)
		r.setErrs.Add(1)
		return fmt.Errorf("resultstore: remote set %s: %w", srv.addr, err)
	}
	line, err := conn.r.ReadString('\n')
	if err != nil {
		r.discard(srv, conn)
		r.setErrs.Add(1)
		return fmt.Errorf("resultstore: remote set %s: %w", srv.addr, err)
	}
	conn.SetDeadline(time.Time{})
	r.release(srv, conn)
	if line = trimCRLF(line); line != "STORED" {
		r.setErrs.Add(1)
		return fmt.Errorf("resultstore: remote set %s: server answered %q", srv.addr, line)
	}
	r.sets.Add(1)
	return nil
}

// Stats returns the remote tier's counters.  Entries is the server-side
// key count: the summed curr_items each live server reports to the
// memcached `stats` command, refreshed at most once per second and
// holding the last known value while servers are unreachable.
func (r *Remote) Stats() []TierStats {
	return []TierStats{{
		Tier:    "remote",
		Entries: r.currItems(),
		Hits:    r.hits.Load(),
		Misses:  r.misses.Load(),
		Sets:    r.sets.Load(),
		Errors:  r.getErrs.Load() + r.setErrs.Load(),
	}}
}

// statsRefresh is the minimum interval between server-side `stats`
// round trips.
const statsRefresh = time.Second

// currItems returns the cached server-side entry count, refreshing it
// from the servers when the cache is stale.
func (r *Remote) currItems() int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	now := time.Now()
	if r.closed.Load() || (!r.statsAt.IsZero() && now.Sub(r.statsAt) < statsRefresh) {
		return r.statsEntries
	}
	r.statsAt = now
	total, reached := 0, false
	for _, srv := range r.servers {
		n, err := r.serverCurrItems(srv)
		if err != nil {
			continue
		}
		reached = true
		total += n
	}
	if reached {
		r.statsEntries = total
	}
	return r.statsEntries
}

// serverCurrItems issues one `stats` command to srv and returns its
// curr_items figure.  Unknown STAT lines are skipped.
func (r *Remote) serverCurrItems(srv *remoteServer) (int, error) {
	if !srv.alive(time.Now()) {
		return 0, errors.New("resultstore: remote cache server quarantined")
	}
	_, conn, err := r.connect([]*remoteServer{srv})
	if err != nil {
		return 0, err
	}
	conn.SetDeadline(time.Now().Add(r.cfg.OpTimeout))
	if _, err := conn.Write([]byte("stats\r\n")); err != nil {
		r.discard(srv, conn)
		return 0, fmt.Errorf("resultstore: remote stats %s: %w", srv.addr, err)
	}
	items := 0
	for {
		line, err := conn.r.ReadString('\n')
		if err != nil {
			r.discard(srv, conn)
			return 0, fmt.Errorf("resultstore: remote stats %s: %w", srv.addr, err)
		}
		line = trimCRLF(line)
		if line == "END" {
			break
		}
		if !strings.HasPrefix(line, "STAT ") {
			r.discard(srv, conn)
			return 0, fmt.Errorf("resultstore: remote stats %s: server answered %q", srv.addr, line)
		}
		var n int
		if _, err := fmt.Sscanf(line, "STAT curr_items %d", &n); err == nil {
			items = n
		}
	}
	conn.SetDeadline(time.Time{})
	r.release(srv, conn)
	return items, nil
}

// Rotations returns how many operations skipped at least one dead
// server (tests and debugging).
func (r *Remote) Rotations() uint64 { return r.rotations.Load() }

// BatchStats returns how many multi-get batches have been issued and
// how many keys they carried in total.
func (r *Remote) BatchStats() (batches, keys uint64) {
	return r.batches.Load(), r.batchedKeys.Load()
}

// Close stops the worker pool and closes the pooled connections.  The
// server-side data survives — a reconnecting replica (a fresh Remote
// over the same servers) serves it again.
func (r *Remote) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(r.stop)
	r.wg.Wait()
	// Fail any getters that were queued but never picked up (their own
	// selects on r.stop already unblocked them; this drains the queue).
	for {
		select {
		case g := <-r.queue:
			g.done <- remoteGetRes{err: errClosed}
			continue
		default:
		}
		break
	}
	for _, srv := range r.servers {
		for {
			select {
			case conn := <-srv.idle:
				conn.Close()
				continue
			default:
			}
			break
		}
	}
	return nil
}
