package resultstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/pkg/faultinject"
)

func openDisk(t *testing.T, dir string, cfg DiskConfig) *Disk {
	t.Helper()
	cfg.Dir = dir
	d, err := OpenDisk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func segments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

func TestDiskRoundTrip(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{})
	mustSet(t, d, "a", "alpha")
	mustSet(t, d, "b", "beta")
	if v, ok := mustGet(t, d, "a"); !ok || string(v) != "alpha" {
		t.Errorf("a = %q %v", v, ok)
	}
	if v, ok := mustGet(t, d, "b"); !ok || string(v) != "beta" {
		t.Errorf("b = %q %v", v, ok)
	}
	if _, ok := mustGet(t, d, "missing"); ok {
		t.Error("missing key hit")
	}
	st := d.Stats()[0]
	if st.Tier != "disk" || st.Entries != 2 || st.Hits != 2 || st.Misses != 1 || st.Sets != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Error("stats report 0 bytes on disk")
	}
}

// TestDiskKillAndReopen is the crash-safety round trip: everything
// written before Close (standing in for a process death — no flush
// path exists besides the appends themselves) is served after reopening
// the same directory.
func TestDiskKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i)
		mustSet(t, d, k, v)
		want[k] = v
	}
	// Overwrites: the newest record must win after replay.
	mustSet(t, d, "key-7", "rewritten")
	want["key-7"] = "rewritten"
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDisk(t, dir, DiskConfig{})
	if re.Len() != len(want) {
		t.Fatalf("reopened store has %d entries, want %d", re.Len(), len(want))
	}
	for k, v := range want {
		got, ok := mustGet(t, re, k)
		if !ok || string(got) != v {
			t.Errorf("%s = %q %v, want %q", k, got, ok, v)
		}
	}
	// The reopened store keeps accepting writes.
	mustSet(t, re, "post-restart", "ok")
	if v, ok := mustGet(t, re, "post-restart"); !ok || string(v) != "ok" {
		t.Errorf("post-restart write lost: %q %v", v, ok)
	}
}

// TestDiskTruncatedTailRecovery chops bytes off the last segment —
// simulating a crash mid-append — and asserts replay recovers every
// record before the torn one and the store accepts appends again.  The
// chop length comes from the shared faultinject corrupter (the same
// seeded mangling path the chaos proxies use), bounded to the last
// record so each seed tears it somewhere different without reaching the
// intact records.
func TestDiskTruncatedTailRecovery(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			d := openDisk(t, dir, DiskConfig{})
			mustSet(t, d, "intact-1", "one")
			mustSet(t, d, "intact-2", "two")
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			segs := segments(t, dir)
			if len(segs) != 1 {
				t.Fatalf("%d segments, want 1", len(segs))
			}
			intactSize, err := os.Stat(segs[0])
			if err != nil {
				t.Fatal(err)
			}

			re0 := openDisk(t, dir, DiskConfig{})
			mustSet(t, re0, "torn", "this record will lose its tail")
			if err := re0.Close(); err != nil {
				t.Fatal(err)
			}
			full, err := os.Stat(segs[0])
			if err != nil {
				t.Fatal(err)
			}

			// Tear 1..len(last record) bytes off: the torn record is lost
			// (cleanly or mid-byte), everything before it stays intact.
			lastRec := int(full.Size() - intactSize.Size())
			chop := faultinject.NewCorrupter(seed).TornTail(int(full.Size()), lastRec)
			if chop < 1 || chop > lastRec {
				t.Fatalf("chop = %d, want within the %d-byte last record", chop, lastRec)
			}
			if err := os.Truncate(segs[0], full.Size()-int64(chop)); err != nil {
				t.Fatal(err)
			}

			re := openDisk(t, dir, DiskConfig{})
			if v, ok := mustGet(t, re, "intact-1"); !ok || string(v) != "one" {
				t.Errorf("intact-1 = %q %v", v, ok)
			}
			if v, ok := mustGet(t, re, "intact-2"); !ok || string(v) != "two" {
				t.Errorf("intact-2 = %q %v", v, ok)
			}
			if _, ok := mustGet(t, re, "torn"); ok {
				t.Error("torn record served after losing its tail")
			}
			if re.Len() != 2 {
				t.Errorf("recovered %d entries, want 2", re.Len())
			}
			// Appends continue from the truncation point and survive
			// another reopen.
			mustSet(t, re, "after-recovery", "fine")
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			again := openDisk(t, dir, DiskConfig{})
			if v, ok := mustGet(t, again, "after-recovery"); !ok || string(v) != "fine" {
				t.Errorf("after-recovery = %q %v", v, ok)
			}
		})
	}
}

// TestDiskCorruptRecordRecovery flips a byte inside the last record's
// value so the length framing is intact but the CRC fails.  The flip
// offset is drawn by the shared faultinject corrupter, restricted to
// the value region, so each seed lands the corruption somewhere else.
func TestDiskCorruptRecordRecovery(t *testing.T) {
	const badValue = "to be corrupted"
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			d := openDisk(t, dir, DiskConfig{})
			mustSet(t, d, "good", "kept")
			mustSet(t, d, "bad", badValue)
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			seg := segments(t, dir)[0]
			raw, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one byte inside the last record's value — between its
			// framing and its trailing CRC, both left intact.
			from := len(raw) - recTrailerLen - len(badValue)
			if got := faultinject.NewCorrupter(seed).FlipByteIn(raw, from, len(raw)-recTrailerLen); got < from {
				t.Fatalf("FlipByteIn = %d, want an offset in the value region", got)
			}
			if err := os.WriteFile(seg, raw, 0o644); err != nil {
				t.Fatal(err)
			}

			re := openDisk(t, dir, DiskConfig{})
			if v, ok := mustGet(t, re, "good"); !ok || string(v) != "kept" {
				t.Errorf("good = %q %v", v, ok)
			}
			if _, ok := mustGet(t, re, "bad"); ok {
				t.Error("corrupt record served")
			}
		})
	}
}

// TestDiskRotationAndEviction drives the store past its size cap with
// tiny segments and asserts old segments are evicted, the newest keys
// survive, and the byte accounting respects the cap.
func TestDiskRotationAndEviction(t *testing.T) {
	dir := t.TempDir()
	// Each record is ~8+6+100+4 = 118 bytes; segments hold ~4 records,
	// the store ~4 segments.
	d := openDisk(t, dir, DiskConfig{SegmentBytes: 512, MaxBytes: 2048})
	val := bytes.Repeat([]byte("x"), 100)
	const n = 40
	for i := 0; i < n; i++ {
		if err := d.Set(ctx, fmt.Sprintf("key-%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if segs := segments(t, dir); len(segs) < 2 || len(segs) > 5 {
		t.Errorf("%d segments on disk, want rotation into 2..5", len(segs))
	}
	st := d.Stats()[0]
	if st.Bytes > 2048+512 {
		t.Errorf("store holds %d bytes, cap 2048", st.Bytes)
	}
	// The newest keys must have survived; the oldest must be gone.
	if _, ok := mustGet(t, d, fmt.Sprintf("key-%02d", n-1)); !ok {
		t.Error("newest key evicted")
	}
	if _, ok := mustGet(t, d, "key-00"); ok {
		t.Error("oldest key survived a full wrap of the size cap")
	}
	// Eviction state must survive a reopen identically.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re := openDisk(t, dir, DiskConfig{SegmentBytes: 512, MaxBytes: 2048})
	if _, ok := mustGet(t, re, fmt.Sprintf("key-%02d", n-1)); !ok {
		t.Error("newest key lost across reopen")
	}
	if _, ok := mustGet(t, re, "key-00"); ok {
		t.Error("evicted key resurrected by reopen")
	}
}

// TestDiskRewrittenKeySurvivesEviction pins the index semantics: a key
// whose newest record lives in a young segment survives the eviction of
// the old segment holding its stale record.
func TestDiskRewrittenKeySurvivesEviction(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{SegmentBytes: 256, MaxBytes: 1 << 20})
	val := bytes.Repeat([]byte("y"), 64)
	mustSet(t, d, "pinned", "v1")
	for i := 0; i < 20; i++ {
		if err := d.Set(ctx, fmt.Sprintf("filler-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(t, d, "pinned", "v2") // newest record in a young segment
	// Shrink the cap by evicting through more fillers on a tighter store.
	d.cfg.MaxBytes = 512
	for i := 20; i < 30; i++ {
		if err := d.Set(ctx, fmt.Sprintf("filler-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := mustGet(t, d, "pinned"); ok && string(v) != "v2" {
		t.Errorf("pinned = %q, stale record served", v)
	}
}

// TestDiskConcurrent exercises concurrent Get/Set/Stats across
// rotation; the race detector is the assertion.
func TestDiskConcurrent(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{SegmentBytes: 1024, MaxBytes: 8192})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%24)
				d.Set(ctx, key, bytes.Repeat([]byte{byte(i)}, 32))
				d.Get(ctx, key)
				d.Stats()
			}
		}(g)
	}
	wg.Wait()
}

func TestDiskClosedErrors(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{})
	mustSet(t, d, "a", "1")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Set(ctx, "b", []byte("2")); err == nil {
		t.Error("Set after Close succeeded")
	}
	if _, _, err := d.Get(ctx, "a"); err == nil {
		t.Error("Get after Close succeeded")
	}
	if err := d.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestDiskRequiresDir(t *testing.T) {
	if _, err := OpenDisk(DiskConfig{}); err == nil {
		t.Error("OpenDisk without a directory succeeded")
	}
}

// TestDiskSingleOwner asserts a directory cannot be opened by two live
// stores at once (interleaved appends would corrupt the active
// segment), and that closing the first owner frees the lock.
func TestDiskSingleOwner(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	if second, err := OpenDisk(DiskConfig{Dir: dir}); err == nil {
		second.Close()
		t.Fatal("second OpenDisk of a live directory succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(DiskConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	re.Close()
}
