package resultstore

import "repro/pkg/obs"

// RegisterMetrics re-exports a store's internal counters through an obs
// registry, recursing through tiered stores so wiring is one call at
// server construction regardless of the -store flag:
//
//	store_remote_ops_total{op,result}   remote gets (hit|miss|error) and sets (ok|error)
//	store_remote_batch_size             histogram of multi-get batch sizes
//	store_compactions_total             disk segments rewritten by the compactor
//	store_compact_reclaimed_bytes       net disk bytes freed by compaction
//
// The counters stay owned by the store (Sampled families collect them
// at render time), so /metrics and /v1/cache/stats can never disagree.
func RegisterMetrics(reg *obs.Registry, s Store) {
	switch st := s.(type) {
	case *Tiered:
		RegisterMetrics(reg, st.front)
		RegisterMetrics(reg, st.back)
	case *Remote:
		registerRemoteMetrics(reg, st)
	case *Disk:
		registerDiskMetrics(reg, st)
	}
}

// remoteBatchBuckets cover batch sizes 1..MaxBatchSize for any sane
// configuration.
var remoteBatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

func registerRemoteMetrics(reg *obs.Registry, r *Remote) {
	reg.Sampled("store_remote_ops_total",
		"Remote result-store operations by op and result.",
		obs.TypeCounter, []string{"op", "result"},
		func(emit func([]string, float64)) {
			emit([]string{"get", "hit"}, float64(r.hits.Load()))
			emit([]string{"get", "miss"}, float64(r.misses.Load()))
			emit([]string{"get", "error"}, float64(r.getErrs.Load()))
			emit([]string{"set", "ok"}, float64(r.sets.Load()))
			emit([]string{"set", "error"}, float64(r.setErrs.Load()))
		})
	h := reg.Histogram("store_remote_batch_size",
		"Keys per remote multi-get batch.", remoteBatchBuckets)
	r.batchHist.Store(&batchObserver{observe: h.Observe})
}

func registerDiskMetrics(reg *obs.Registry, d *Disk) {
	reg.Sampled("store_compactions_total",
		"Disk-store segments rewritten by the compactor.",
		obs.TypeCounter, nil,
		func(emit func([]string, float64)) {
			emit(nil, float64(d.compactions.Load()))
		})
	reg.Sampled("store_compact_reclaimed_bytes",
		"Net disk bytes freed by segment compaction.",
		obs.TypeCounter, nil,
		func(emit func([]string, float64)) {
			emit(nil, float64(d.reclaimed.Load()))
		})
}
