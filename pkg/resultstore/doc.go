// Package resultstore is the pluggable persistent result store behind
// the serving tier: a small key/value interface over canonical request
// keys (frontendsim.Engine.RequestKey hashes) with three
// implementations that compose into the system's cache hierarchy.
//
//   - Memory: a bounded, concurrency-safe LRU over marshalled responses
//     — the process-local hot tier (formerly internal/simd's private
//     cache).
//   - Disk: a crash-safe disk-backed store — append-only, CRC-framed
//     segment files plus an in-memory index, size-capped by rotating and
//     evicting whole segments.  A Disk store reopened from the same
//     directory serves everything written before the previous process
//     died, including recovering cleanly from a torn (partially
//     written) tail record.
//   - Tiered: a write-through combinator placing one store (typically
//     Memory) in front of another (typically Disk).  Gets fill the
//     front tier on a back-tier hit; Sets populate both.
//
// The design follows the Thanos query-frontend results cache: the key
// identifies the *response*, so any replica — or a replica restarted
// seconds ago, or the ring neighbour that inherited a dead peer's keys
// — can serve a result some other process computed.  internal/simd
// serves its HTTP responses through a Store, and pkg/scheduler consults
// one before dispatching to the backend ring.
//
// All implementations are safe for concurrent use, and every counter
// reported by Stats is maintained atomically, so Stats may be called
// concurrently with Get/Set from any goroutine (verified under the
// race detector).
//
// Stores hold and return the caller's byte slices without copying;
// callers must not modify a slice after Set or after receiving it from
// Get.
package resultstore
