package resultstore

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/pkg/faultinject"
)

// encodeRecord frames one key/value pair exactly as Set does — the
// seeds below build well-formed segments that the Corrupter then mauls.
func encodeRecord(key string, val []byte) []byte {
	rec := make([]byte, recordSize(len(key), len(val)))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	crc := crc32.ChecksumIEEE(rec[recHeaderLen : recHeaderLen+len(key)+len(val)])
	binary.LittleEndian.PutUint32(rec[len(rec)-recTrailerLen:], crc)
	return rec
}

// referenceDecode is an independent reimplementation of the replay
// framing rules: walk records front to back, stop at the first framing
// or CRC failure, newest record wins.  The fuzz target checks OpenDisk
// against it, so replay can never serve a record this decoder rejects.
func referenceDecode(data []byte) map[string]string {
	out := map[string]string{}
	off := 0
	for off+recHeaderLen+recTrailerLen <= len(data) {
		keyLen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		valLen := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			break
		}
		end := off + recHeaderLen + keyLen + valLen + recTrailerLen
		if end < 0 || end > len(data) {
			break
		}
		payload := data[off+recHeaderLen : end-recTrailerLen]
		want := binary.LittleEndian.Uint32(data[end-recTrailerLen : end])
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		out[string(payload[:keyLen])] = string(payload[keyLen:])
		off = end
	}
	return out
}

// FuzzSegmentReplay feeds arbitrary bytes to the disk store as a
// pre-existing segment file.  Whatever the bytes, OpenDisk must not
// panic, must never serve a record the reference decoder rejects (that
// is: nothing past the first framing/CRC failure), and must leave a
// store that still accepts writes.
func FuzzSegmentReplay(f *testing.F) {
	// Seed corpus: a clean segment, then Corrupter-damaged variants of
	// it — a flipped byte anywhere, a flipped byte inside the first
	// record's value, and torn tails of several lengths.
	var clean []byte
	clean = append(clean, encodeRecord("alpha", []byte("the first value"))...)
	clean = append(clean, encodeRecord("beta", []byte("the second value"))...)
	clean = append(clean, encodeRecord("alpha", []byte("the overwrite"))...)
	f.Add(clean)
	f.Add([]byte{})
	for seed := int64(1); seed <= 4; seed++ {
		c := faultinject.NewCorrupter(seed)
		flipped := append([]byte(nil), clean...)
		c.FlipByte(flipped)
		f.Add(flipped)
		inValue := append([]byte(nil), clean...)
		c.FlipByteIn(inValue, recHeaderLen+len("alpha"), recHeaderLen+len("alpha")+15)
		f.Add(inValue)
		f.Add(clean[:c.TornTail(len(clean), len(clean)-1)])
	}
	// A header promising more data than exists.
	huge := encodeRecord("key", []byte("val"))
	binary.LittleEndian.PutUint32(huge[4:8], 1<<29)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "seg-00000001.log")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(DiskConfig{Dir: dir})
		if err != nil {
			// A clean refusal is acceptable; serving garbage is not.
			return
		}
		defer d.Close()

		want := referenceDecode(data)
		if d.Len() != len(want) {
			t.Fatalf("replay indexed %d keys, reference decoder found %d", d.Len(), len(want))
		}
		for key, val := range want {
			got, ok, err := d.Get(ctx, key)
			if err != nil || !ok || string(got) != val {
				t.Fatalf("Get(%q) = %q %v %v, want %q", key, got, ok, err, val)
			}
		}
		// The survivor store must still take writes — the torn tail was
		// truncated to a clean append boundary.
		if err := d.Set(ctx, "post-replay", []byte("still writable")); err != nil {
			t.Fatalf("Set after replay: %v", err)
		}
		if v, ok := mustGet(t, d, "post-replay"); !ok || string(v) != "still writable" {
			t.Fatalf("post-replay readback = %q %v", v, ok)
		}
	})
}
