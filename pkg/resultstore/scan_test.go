package resultstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/memcachetest"
)

// scannedSorted enumerates s via ScanKeys and returns the sorted keys,
// failing the test when the capability is absent or the scan errors.
func scannedSorted(t *testing.T, s Store, filter func(string) bool) []string {
	t.Helper()
	keys, ok, err := ScanKeys(ctx, s, filter)
	if !ok || err != nil {
		t.Fatalf("ScanKeys = ok %v err %v, want a scannable store", ok, err)
	}
	return SortKeys(keys)
}

func TestScanKeysRemoteUnsupported(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	mustSet(t, r, "key", "value")
	keys, ok, err := ScanKeys(ctx, r, nil)
	if ok {
		t.Fatalf("remote store claims the Scanner capability (keys=%v)", keys)
	}
	if err == nil {
		t.Fatal("ScanKeys on remote: want ErrScanUnsupported, got nil error")
	}
}

func TestScanKeysMemoryEviction(t *testing.T) {
	m := NewMemory(2)
	mustSet(t, m, "a", "1")
	mustSet(t, m, "b", "2")
	mustSet(t, m, "c", "3") // evicts a (LRU)
	got := scannedSorted(t, m, nil)
	want := []string{"b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("keys after eviction = %v, want %v", got, want)
	}
}

func TestScanKeysFilter(t *testing.T) {
	m := NewMemory(16)
	for i := 0; i < 6; i++ {
		mustSet(t, m, fmt.Sprintf("key-%d", i), "v")
	}
	got := scannedSorted(t, m, func(k string) bool { return k == "key-2" || k == "key-4" })
	want := []string{"key-2", "key-4"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered keys = %v, want %v", got, want)
	}
}

// TestScanKeysTieredSkipsRemoteTier pins the warm-up fallback shape: a
// memory-over-remote store scans as just its memory tier instead of
// refusing outright.
func TestScanKeysTieredSkipsRemoteTier(t *testing.T) {
	srv := memcachetest.Start(t)
	remote := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	s := NewTiered(NewMemory(16), remote)
	mustSet(t, s, "both", "v") // write-through: memory + remote
	if err := remote.Set(ctx, "remote-only", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got := scannedSorted(t, s, nil)
	want := []string{"both"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tiered-over-remote keys = %v, want just the memory tier %v", got, want)
	}
}

// TestScanKeysDiskDuringCompaction hammers Keys concurrently with
// overwrites and explicit compaction: every snapshot must be a
// consistent live set — all live keys present exactly once — because
// compaction copies records without changing which keys are live.
func TestScanKeysDiskDuringCompaction(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{SegmentBytes: 512, MaxBytes: 1 << 20})
	const keys = 8
	for i := 0; i < keys; i++ {
		mustSet(t, d, fmt.Sprintf("key-%d", i), "seed-value-padding-padding")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // overwrite churn seals segments and strands garbage
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.Set(ctx, fmt.Sprintf("key-%d", i%keys), []byte(fmt.Sprintf("round-%d-padding-padding", i))); err != nil {
				t.Errorf("Set: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := d.CompactOnce(0.99); err != nil {
				t.Errorf("CompactOnce: %v", err)
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		got := scannedSorted(t, d, nil)
		if len(got) != keys {
			t.Fatalf("round %d: scanned %d keys (%v), want %d", round, len(got), got, keys)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("round %d: duplicate key %q", round, got[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestKeyDigestOrderIndependent(t *testing.T) {
	a := KeyDigest([]string{"x", "y", "z"})
	b := KeyDigest([]string{"z", "x", "y"})
	if a != b {
		t.Fatalf("digest depends on order: %+v != %+v", a, b)
	}
	if a == KeyDigest([]string{"x", "y"}) {
		t.Fatal("digest blind to a missing key")
	}
	if a.Count != 3 {
		t.Fatalf("count = %d, want 3", a.Count)
	}
}

func TestBucketDigestsLocalizeDivergence(t *testing.T) {
	const buckets = 16
	var keys []string
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("key-%d", i))
	}
	full := BucketDigests(keys, buckets)
	missing := keys[17] // drop one key; only its bucket may differ
	partial := BucketDigests(append(append([]string(nil), keys[:17]...), keys[18:]...), buckets)
	diverged := 0
	for b := range full {
		if full[b] != partial[b] {
			diverged++
			if b != BucketOf(missing, buckets) {
				t.Errorf("bucket %d diverged, but the missing key hashes to %d", b, BucketOf(missing, buckets))
			}
		}
	}
	if diverged != 1 {
		t.Fatalf("%d buckets diverged, want exactly 1", diverged)
	}
}

func TestBucketOfStable(t *testing.T) {
	for _, key := range []string{"", "a", "key-123", "longer-key-with-content"} {
		b := BucketOf(key, 64)
		if b < 0 || b >= 64 {
			t.Fatalf("BucketOf(%q) = %d out of range", key, b)
		}
		if BucketOf(key, 64) != b {
			t.Fatalf("BucketOf(%q) unstable", key)
		}
	}
}
