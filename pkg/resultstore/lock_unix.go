//go:build unix

package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes the advisory owner lock of a disk-store directory: an
// exclusive, non-blocking flock on a LOCK file inside it.  The kernel
// releases the lock when the holding process exits — however it exits —
// so a crashed owner never blocks the restart that recovery exists for,
// while a *live* second owner (which would interleave appends into the
// same active segment and corrupt it) fails immediately and loudly.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: open lock %s: %w", path, err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultstore: %s is owned by another process (flock %s: %w)", dir, path, err)
	}
	return f, nil
}
