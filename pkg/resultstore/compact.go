package resultstore

import (
	"fmt"
	"os"
	"sync"
	"time"
)

// Compaction for the disk store.  Records are never rewritten in place,
// so an overwrite-heavy workload fills sealed segments with dead
// records that only whole-segment eviction would reclaim — and eviction
// is strictly oldest-first, so a mostly-dead middle segment can pin
// disk space indefinitely.  The compactor (modeled on Thanos-style
// background compaction) finds sealed segments whose live-record ratio
// fell below a threshold, copies just their live records through the
// regular append path into the active segment, then deletes the victim
// file.
//
// Crash safety falls out of the replay ordering: the copies land in the
// active segment, which has a higher sequence number than any victim,
// so replay always sees the copy after the original and newest-record
// wins.  A crash anywhere mid-compaction therefore leaves either the
// victim, or the victim plus some duplicate copies — both replay to the
// same index.

// DefaultCompactThreshold is the live-ratio below which a sealed
// segment is worth rewriting.
const DefaultCompactThreshold = 0.5

// CompactOnce rewrites the sealed segment with the lowest live-byte
// ratio strictly below threshold (0 < threshold <= 1), returning the
// net bytes reclaimed and whether any segment was compacted.  The
// active segment is never compacted.  Compaction holds the append lock
// end to end — Sets wait, Gets do not.
func (d *Disk) CompactOnce(threshold float64) (int64, bool, error) {
	if threshold <= 0 || threshold > 1 {
		return 0, false, fmt.Errorf("resultstore: compact threshold %v out of (0,1]", threshold)
	}
	d.appendMu.Lock()
	defer d.appendMu.Unlock()

	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return 0, false, errClosed
	}
	var victim *segment
	for _, seg := range d.segs[:len(d.segs)-1] {
		if seg.size == 0 {
			continue
		}
		ratio := float64(seg.live) / float64(seg.size)
		if ratio >= threshold {
			continue
		}
		if victim == nil || ratio < float64(victim.live)/float64(victim.size) {
			victim = seg
		}
	}
	// Snapshot the live records while still under the read lock: with
	// appendMu held nothing else can rewrite or evict, but the index
	// map itself needs the lock.
	type liveRec struct {
		key string
		loc diskLoc
	}
	var lives []liveRec
	if victim != nil {
		seen := make(map[string]struct{}, len(victim.keys))
		for _, key := range victim.keys {
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if loc, ok := d.index[key]; ok && loc.seg == victim {
				lives = append(lives, liveRec{key, loc})
			}
		}
	}
	d.mu.RUnlock()
	if victim == nil {
		return 0, false, nil
	}

	// Copy each live record through the append path.  appendRecord with
	// userSet=false skips the Sets counter and cap enforcement (the
	// store is about to shrink, not grow).
	var copied int64
	for _, lr := range lives {
		val := make([]byte, lr.loc.valLen)
		if _, err := lr.loc.seg.f.ReadAt(val, lr.loc.valOff); err != nil {
			d.errs.Add(1)
			return 0, false, fmt.Errorf("resultstore: compact read %s: %w", victim.path, err)
		}
		if err := d.appendRecord(lr.key, val, false); err != nil {
			return 0, false, err
		}
		copied += recordSize(len(lr.key), len(val))
	}

	// Every live record now has a newer copy; drop the victim.  Eviction
	// of stale index entries mirrors enforceCap, but after the copies
	// above no index entry can still point into the victim.
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, false, errClosed
	}
	for i, seg := range d.segs {
		if seg == victim {
			d.segs = append(d.segs[:i:i], d.segs[i+1:]...)
			break
		}
	}
	d.total -= victim.size
	d.mu.Unlock()
	victim.f.Close()
	if err := os.Remove(victim.path); err != nil {
		d.errs.Add(1)
		return 0, false, fmt.Errorf("resultstore: compact remove %s: %w", victim.path, err)
	}

	reclaimed := victim.size - copied
	if reclaimed < 0 {
		reclaimed = 0
	}
	d.compactions.Add(1)
	d.reclaimed.Add(uint64(reclaimed))
	return reclaimed, true, nil
}

// Compact repeatedly runs CompactOnce until no sealed segment is below
// threshold, returning the total bytes reclaimed.
func (d *Disk) Compact(threshold float64) (int64, error) {
	var total int64
	for {
		n, did, err := d.CompactOnce(threshold)
		total += n
		if err != nil || !did {
			return total, err
		}
	}
}

// CompactorConfig configures the background compactor.
type CompactorConfig struct {
	// Threshold is the live-ratio below which a sealed segment is
	// rewritten (0 selects DefaultCompactThreshold).
	Threshold float64
	// Interval is the scan period (0 selects 30s).
	Interval time.Duration
}

// Compactor periodically compacts a Disk store until closed.
type Compactor struct {
	d    *Disk
	cfg  CompactorConfig
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// StartCompactor launches a background goroutine that runs Compact
// every Interval.  Close the compactor before closing the store.
func StartCompactor(d *Disk, cfg CompactorConfig) *Compactor {
	if cfg.Threshold <= 0 || cfg.Threshold > 1 {
		cfg.Threshold = DefaultCompactThreshold
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	c := &Compactor{d: d, cfg: cfg, stop: make(chan struct{})}
	c.wg.Add(1)
	go c.loop()
	return c
}

func (c *Compactor) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			// A closed store just returns errClosed; keep ticking until
			// the owner closes us.
			c.d.Compact(c.cfg.Threshold)
		}
	}
}

// Close stops the background loop and waits for an in-flight pass.
func (c *Compactor) Close() error {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
	return nil
}
