package resultstore

import "context"

// Store is a response cache over canonical request keys.  Get and Set
// are context-aware for implementations that may block on I/O; the
// in-memory store ignores the context.  Implementations must be safe
// for concurrent use.
type Store interface {
	// Get returns the stored response for key.  A missing key is
	// (nil, false, nil); an error reports a store failure (callers
	// should treat it as a miss and keep serving).
	Get(ctx context.Context, key string) ([]byte, bool, error)
	// Set stores val under key, overwriting any previous value.
	Set(ctx context.Context, key string, val []byte) error
	// Stats returns cumulative per-tier counters, front tier first.
	// Single-tier stores return one element.
	//
	// Semantics are uniform across backends: the op counters (Hits,
	// Misses, Sets, Errors, Compactions) are process-lifetime — they
	// start at zero when the store is opened, including a Disk store
	// reopened over existing segments — while Entries and Bytes always
	// describe what the open store can serve right now (so both are
	// zero after Close, and a reopened Disk store reports the replayed
	// entries).  The conformance suite pins this for every backend.
	Stats() []TierStats
	// Close releases the store's resources.  Get and Set fail after
	// Close.
	Close() error
}

// Peeker is the optional capability of reading a key without touching
// the hit/miss counters or the recency order — for internal re-checks
// that must stay invisible in the reported stats.
type Peeker interface {
	Peek(ctx context.Context, key string) ([]byte, bool, error)
}

// Peek reads key from s without perturbing its stats when s supports
// it, falling back to a plain (counted) Get.
func Peek(ctx context.Context, s Store, key string) ([]byte, bool, error) {
	if p, ok := s.(Peeker); ok {
		return p.Peek(ctx, key)
	}
	return s.Get(ctx, key)
}

// TierStats are one tier's cumulative counters.
type TierStats struct {
	// Tier names the tier: "memory" or "disk".
	Tier string `json:"tier"`
	// Entries is the number of distinct keys currently held.
	Entries int `json:"entries"`
	// Bytes is the bytes held on disk (0 for the memory tier).
	Bytes int64 `json:"bytes,omitempty"`
	// Hits counts Gets served by this tier.
	Hits uint64 `json:"hits"`
	// Misses counts Gets this tier was consulted for and missed.
	Misses uint64 `json:"misses"`
	// Sets counts writes into this tier (including tier promotions).
	Sets uint64 `json:"sets"`
	// Errors counts failed reads and writes.
	Errors uint64 `json:"errors,omitempty"`
	// Compactions counts segment rewrites by the disk compactor (0 for
	// tiers without one).
	Compactions uint64 `json:"compactions,omitempty"`
	// ReclaimedBytes is the net disk space freed by compaction.
	ReclaimedBytes int64 `json:"reclaimed_bytes,omitempty"`
}

// Totals folds per-tier stats into the store-level counters reported at
// the top of /v1/cache/stats: entries is the largest tier (the back
// tier holds a superset of the front in a write-through hierarchy),
// hits sum across tiers (a request served by any tier is a store hit),
// and misses are the last tier's (a request missed the store only if it
// missed every tier — each tier is consulted only after the tiers in
// front of it missed).
func Totals(tiers []TierStats) (entries int, hits, misses uint64) {
	for _, t := range tiers {
		if t.Entries > entries {
			entries = t.Entries
		}
		hits += t.Hits
	}
	if len(tiers) > 0 {
		misses = tiers[len(tiers)-1].Misses
	}
	return entries, hits, misses
}
