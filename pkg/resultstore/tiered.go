package resultstore

import (
	"context"
	"errors"
)

// Tiered places one store in front of another (typically Memory in
// front of Disk), write-through: Set populates both tiers, Get consults
// the front tier first and fills it on a back-tier hit, so a key
// computed before a restart is promoted back into memory the first time
// it is served again.
type Tiered struct {
	front, back Store
}

// NewTiered combines front and back into one write-through store.
func NewTiered(front, back Store) *Tiered {
	return &Tiered{front: front, back: back}
}

// Get consults the front tier, then the back tier, promoting back-tier
// hits into the front tier.  A front-tier *failure* (not just a miss)
// still falls through to the back tier — per the Store contract a
// failing tier is treated as a missing one, so a flaky front never
// masks a result the back tier holds.  A back-tier failure surfaces as
// an error after the front tier missed; callers treat it as a miss.
func (t *Tiered) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if val, ok, err := t.front.Get(ctx, key); err == nil && ok {
		return val, true, nil
	}
	val, ok, err := t.back.Get(ctx, key)
	if err != nil || !ok {
		return nil, false, err
	}
	// Promotion is best-effort: the value is already in hand.
	t.front.Set(ctx, key, val)
	return val, true, nil
}

// Peek reads through both tiers without counting or promoting.  As in
// Get, a front-tier failure falls through to the back tier.  A Peek
// error surfaces only when *every* tier errored: health probes use Peek,
// and a tiered store with a live front and a dead back (say, an
// unreachable remote cache) is degraded, not down — it still serves.
func (t *Tiered) Peek(ctx context.Context, key string) ([]byte, bool, error) {
	frontVal, frontOK, frontErr := Peek(ctx, t.front, key)
	if frontErr == nil && frontOK {
		return frontVal, true, nil
	}
	val, ok, err := Peek(ctx, t.back, key)
	if err != nil && frontErr == nil {
		return nil, false, nil // degraded to the healthy front tier
	}
	return val, ok, err
}

// Set writes through to both tiers.  The write succeeds if either tier
// accepted it; a single-tier failure is still reported as an error.
func (t *Tiered) Set(ctx context.Context, key string, val []byte) error {
	return errors.Join(t.front.Set(ctx, key, val), t.back.Set(ctx, key, val))
}

// Stats returns the per-tier counters, front tier first.
func (t *Tiered) Stats() []TierStats {
	return append(t.front.Stats(), t.back.Stats()...)
}

// Close closes both tiers.
func (t *Tiered) Close() error {
	return errors.Join(t.front.Close(), t.back.Close())
}
