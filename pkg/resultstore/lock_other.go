//go:build !unix

package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockDir on platforms without flock: best-effort only — the LOCK file
// is created but concurrent ownership is not detected.  The documented
// single-owner-per-directory requirement still applies.
func lockDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: open lock %s: %w", path, err)
	}
	return f, nil
}
