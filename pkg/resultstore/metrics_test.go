package resultstore

import (
	"strings"
	"testing"

	"repro/internal/memcachetest"
	"repro/pkg/obs"
)

// TestRegisterMetricsExposition drives every store shape RegisterMetrics
// understands — a tiered memory/disk pair and a remote client — and
// asserts the promised families land on the exposition with moving
// values: store_remote_ops_total by {op,result}, the
// store_remote_batch_size histogram, and the disk compactor counters.
func TestRegisterMetricsExposition(t *testing.T) {
	srv := memcachetest.Start(t)
	remote := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	disk := openDisk(t, t.TempDir(), DiskConfig{SegmentBytes: 4096})
	tiered := NewTiered(NewMemory(16), disk)
	t.Cleanup(func() { tiered.Close() })

	reg := obs.NewRegistry()
	RegisterMetrics(reg, tiered) // recurses into memory (no-op) + disk
	RegisterMetrics(reg, remote)

	// Remote traffic: one set, one hit, one miss.
	mustSet(t, remote, "key", "value")
	mustGet(t, remote, "key")
	mustGet(t, remote, "missing")

	// Disk churn dense enough to seal a segment, then compact it.
	val := strings.Repeat("v", 512)
	for i := 0; i < 32; i++ {
		mustSet(t, tiered, "hot", val)
	}
	if _, err := disk.Compact(DefaultCompactThreshold); err != nil {
		t.Fatal(err)
	}

	exposition := reg.Render()
	for _, want := range []string{
		`store_remote_ops_total{op="set",result="ok"} 1`,
		`store_remote_ops_total{op="get",result="hit"} 1`,
		`store_remote_ops_total{op="get",result="miss"} 1`,
		`store_remote_batch_size_count 2`,
		`store_remote_batch_size_bucket{le="1"} 2`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if !strings.Contains(exposition, "store_compactions_total") ||
		strings.Contains(exposition, "store_compactions_total 0") {
		t.Errorf("compaction count absent or zero:\n%s", grepLines(exposition, "compact"))
	}
	if strings.Contains(exposition, "store_compact_reclaimed_bytes 0") ||
		!strings.Contains(exposition, "store_compact_reclaimed_bytes") {
		t.Errorf("reclaimed bytes absent or zero:\n%s", grepLines(exposition, "compact"))
	}
}

// TestRegisterMetricsIgnoresUnknownStores: stores without a metrics
// mapping (plain memory) register nothing and do not panic.
func TestRegisterMetricsIgnoresUnknownStores(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg, NewMemory(4))
	if got := reg.Render(); strings.Contains(got, "store_") {
		t.Errorf("memory store registered families:\n%s", got)
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
