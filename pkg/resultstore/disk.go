package resultstore

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Disk record framing: every Set appends one record to the active
// segment file —
//
//	u32 keyLen | u32 valLen | key | val | u32 crc32(key ‖ val)
//
// (little-endian, IEEE CRC).  Records are never rewritten in place; a
// key written twice leaves its old record as garbage until the whole
// segment is evicted.  Recovery replays every segment in sequence
// order, so the newest record for a key wins, and a torn tail (a crash
// mid-append) fails its length or CRC check and is truncated away.
const (
	recHeaderLen  = 8
	recTrailerLen = 4

	// Framing sanity bounds: a replayed length beyond these is
	// corruption, not data.
	maxKeyLen = 1 << 16
	maxValLen = 1 << 30
)

// Default sizing for DiskConfig zero values.
const (
	DefaultMaxBytes     = 256 << 20 // 256 MiB total on disk
	DefaultSegmentBytes = 16 << 20  // 16 MiB per segment
)

// DiskConfig configures a Disk store.
type DiskConfig struct {
	// Dir is the segment directory (created if missing).  Required.
	// A directory is owned by exactly one open Disk store at a time,
	// enforced by an advisory flock on a LOCK file inside it (the lock
	// dies with the process, so a crashed owner never blocks restart).
	Dir string
	// MaxBytes caps the total bytes on disk (0 selects
	// DefaultMaxBytes).  When an append pushes the store past the cap,
	// whole segments are evicted oldest-first — but the active segment
	// is never evicted, so a single oversized value is stored rather
	// than rejected.
	MaxBytes int64
	// SegmentBytes is the rotation threshold (0 selects
	// DefaultSegmentBytes, values above MaxBytes are clamped to it): an
	// append that would grow the active segment past it opens a new
	// segment first.
	SegmentBytes int64
}

// segment is one append-only file.  size is the committed length:
// bytes past it (a torn tail from a failed append) are dead and get
// overwritten by the next append.
type segment struct {
	seq  uint64
	path string
	f    *os.File
	size int64
	// live is the bytes of records in this segment that the index still
	// points at; size-live is dead weight (overwritten records, corrupt
	// tails) the compactor can reclaim.
	live int64
	// keys lists every key with a record in this segment (duplicates
	// possible after rewrites), so eviction drops exactly its own index
	// entries without scanning the whole index.
	keys []string
}

// diskLoc locates one value inside a segment.
type diskLoc struct {
	seg    *segment
	valOff int64
	valLen uint32
}

// Disk is the crash-safe disk-backed store: append-only segment files
// plus an in-memory index rebuilt on open.
type Disk struct {
	cfg  DiskConfig
	lock *os.File // flock-held LOCK file enforcing one owner per Dir

	// appendMu serializes Sets end to end so each append owns its
	// reserved offset; the WriteAt itself runs outside mu, keeping
	// index lookups (Gets) unblocked by append I/O.
	appendMu sync.Mutex

	mu     sync.RWMutex // guards the fields below
	segs   []*segment   // ascending seq; last is the active (append) segment
	index  map[string]diskLoc
	total  int64
	closed bool

	hits   atomic.Uint64
	misses atomic.Uint64
	sets   atomic.Uint64
	errs   atomic.Uint64

	// compactions / reclaimed count segments rewritten by the compactor
	// and the net bytes it freed (see compact.go).
	compactions atomic.Uint64
	reclaimed   atomic.Uint64
}

var errClosed = errors.New("resultstore: store is closed")

// OpenDisk opens (or creates) the store in cfg.Dir, replaying the
// existing segments into the in-memory index.  Everything a previous
// process wrote before dying is served again; a torn tail record in the
// last segment is detected by its CRC/length framing and truncated.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, errors.New("resultstore: disk store requires a directory")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.SegmentBytes > cfg.MaxBytes {
		cfg.SegmentBytes = cfg.MaxBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: create %s: %w", cfg.Dir, err)
	}
	// A directory has exactly one owner at a time: two processes
	// appending to the same active segment would silently corrupt it.
	// The advisory lock dies with the process, so a crashed owner never
	// blocks a restart.
	lock, err := lockDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	d := &Disk{cfg: cfg, lock: lock, index: map[string]diskLoc{}}

	paths, err := filepath.Glob(filepath.Join(cfg.Dir, "seg-*.log"))
	if err != nil {
		d.Close()
		return nil, err
	}
	type numbered struct {
		seq  uint64
		path string
	}
	var found []numbered
	for _, p := range paths {
		var seq uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "seg-%d.log", &seq); err == nil {
			found = append(found, numbered{seq, p})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })

	for i, n := range found {
		if err := d.replay(n.path, n.seq, i == len(found)-1); err != nil {
			d.Close()
			return nil, err
		}
	}
	if len(d.segs) == 0 {
		if _, err := d.newSegment(1); err != nil {
			d.Close()
			return nil, err
		}
	}
	// The cap may have shrunk across the restart.
	d.enforceCap()
	return d, nil
}

// replay opens one segment and walks its records into the index.  A
// record that fails its *framing* (short header, implausible lengths, a
// body extending past EOF, or a CRC mismatch) marks the rest of the
// segment dead: in the last segment that is the expected torn tail of a
// crash and is truncated away; in an earlier segment the valid prefix
// is kept and the tail is simply not indexed.  A ReadAt I/O *error* is
// not corruption — truncating on it could destroy valid records — so it
// fails the open instead.
func (d *Disk) replay(path string, seq uint64, last bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: open segment %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("resultstore: stat segment %s: %w", path, err)
	}
	seg := &segment{seq: seq, path: path, f: f, size: st.Size()}

	var (
		off  int64
		hdr  [recHeaderLen]byte
		size = st.Size()
	)
	for off < size {
		if off+recHeaderLen+recTrailerLen > size {
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			f.Close()
			return fmt.Errorf("resultstore: replay %s at %d: %w", path, off, err)
		}
		keyLen := binary.LittleEndian.Uint32(hdr[0:4])
		valLen := binary.LittleEndian.Uint32(hdr[4:8])
		if keyLen == 0 || keyLen > maxKeyLen || valLen > maxValLen {
			break // implausible framing: corruption
		}
		bodyLen := int64(keyLen) + int64(valLen) + recTrailerLen
		if off+recHeaderLen+bodyLen > size {
			break // torn body
		}
		body := make([]byte, bodyLen)
		if _, err := f.ReadAt(body, off+recHeaderLen); err != nil {
			f.Close()
			return fmt.Errorf("resultstore: replay %s at %d: %w", path, off, err)
		}
		payload := body[:keyLen+valLen]
		want := binary.LittleEndian.Uint32(body[len(body)-recTrailerLen:])
		if crc32.ChecksumIEEE(payload) != want {
			break // torn or corrupt record
		}
		key := string(payload[:keyLen])
		if old, ok := d.index[key]; ok {
			// This record supersedes an earlier one: the older record is
			// dead weight in its segment.
			old.seg.live -= recordSize(len(key), int(old.valLen))
		}
		d.index[key] = diskLoc{
			seg:    seg,
			valOff: off + recHeaderLen + int64(keyLen),
			valLen: valLen,
		}
		seg.keys = append(seg.keys, key)
		seg.live += recHeaderLen + bodyLen
		off += recHeaderLen + bodyLen
	}
	if off < size && last {
		// Crash tail: drop it so the next append starts at a clean
		// record boundary.
		if err := f.Truncate(off); err != nil {
			f.Close()
			return fmt.Errorf("resultstore: truncate torn tail of %s: %w", path, err)
		}
		size = off
	}
	seg.size = off
	if !last {
		// Dead tail bytes of a sealed segment still occupy disk.
		seg.size = size
	}
	d.segs = append(d.segs, seg)
	d.total += seg.size
	return nil
}

// newSegment creates and activates segment seq.  Callers hold mu (or
// have exclusive access during OpenDisk).
func (d *Disk) newSegment(seq uint64) (*segment, error) {
	path := filepath.Join(d.cfg.Dir, fmt.Sprintf("seg-%08d.log", seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: create segment %s: %w", path, err)
	}
	seg := &segment{seq: seq, path: path, f: f}
	d.segs = append(d.segs, seg)
	return seg, nil
}

// recordSize is the on-disk footprint of one record.
func recordSize(keyLen, valLen int) int64 {
	return recHeaderLen + int64(keyLen) + int64(valLen) + recTrailerLen
}

// Set appends one record to the active segment, rotating and evicting
// as the size caps require.
func (d *Disk) Set(_ context.Context, key string, val []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("resultstore: key length %d out of range", len(key))
	}
	if len(val) > maxValLen {
		return fmt.Errorf("resultstore: value length %d exceeds %d", len(val), maxValLen)
	}
	d.appendMu.Lock()
	defer d.appendMu.Unlock()
	return d.appendRecord(key, val, true)
}

// appendRecord appends one framed record and installs it in the index.
// The caller holds appendMu.  userSet distinguishes a caller's Set
// (counted, cap-enforced) from a compaction rewrite (neither: the
// compactor settles the byte accounting itself once the victim segment
// is gone).
func (d *Disk) appendRecord(key string, val []byte, userSet bool) error {
	rec := make([]byte, recordSize(len(key), len(val)))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], val)
	crc := crc32.ChecksumIEEE(rec[recHeaderLen : recHeaderLen+len(key)+len(val)])
	binary.LittleEndian.PutUint32(rec[len(rec)-recTrailerLen:], crc)

	// Pick (rotating if needed) the active segment and the append
	// offset under the lock; the committed size only advances after a
	// successful write, so a failed append's bytes are overwritten by
	// the next one (and recovery would truncate them).
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errClosed
	}
	active := d.segs[len(d.segs)-1]
	if active.size > 0 && active.size+int64(len(rec)) > d.cfg.SegmentBytes {
		next, err := d.newSegment(active.seq + 1)
		if err != nil {
			d.mu.Unlock()
			d.errs.Add(1)
			return err
		}
		active = next
	}
	off := active.size
	d.mu.Unlock()

	// The write itself runs outside mu: appendMu guarantees exclusive
	// ownership of [off, off+len(rec)), and eviction never touches the
	// active segment, so concurrent Gets stay unblocked.
	if _, err := active.f.WriteAt(rec, off); err != nil {
		d.errs.Add(1)
		return fmt.Errorf("resultstore: append to %s: %w", active.path, err)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed
	}
	if old, ok := d.index[key]; ok {
		// The overwritten record becomes dead weight in its segment.
		old.seg.live -= recordSize(len(key), int(old.valLen))
	}
	active.size = off + int64(len(rec))
	active.live += int64(len(rec))
	d.total += int64(len(rec))
	d.index[key] = diskLoc{
		seg:    active,
		valOff: off + recHeaderLen + int64(len(key)),
		valLen: uint32(len(val)),
	}
	active.keys = append(active.keys, key)
	if userSet {
		d.sets.Add(1)
		d.enforceCap()
	}
	return nil
}

// enforceCap evicts whole segments oldest-first while the store exceeds
// MaxBytes, keeping at least the active segment.  Each eviction walks
// only the victim's own key list (a key rewritten into a newer segment
// keeps its index entry).  Callers hold mu (or have exclusive access
// during OpenDisk).
func (d *Disk) enforceCap() {
	for d.total > d.cfg.MaxBytes && len(d.segs) > 1 {
		victim := d.segs[0]
		for _, key := range victim.keys {
			if loc, ok := d.index[key]; ok && loc.seg == victim {
				delete(d.index, key)
			}
		}
		victim.f.Close()
		os.Remove(victim.path)
		d.total -= victim.size
		d.segs = d.segs[1:]
	}
}

// Get returns the stored response for key, reading it back from its
// segment.
func (d *Disk) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return d.get(ctx, key, true)
}

// Peek is Get without the hit/miss accounting.
func (d *Disk) Peek(ctx context.Context, key string) ([]byte, bool, error) {
	return d.get(ctx, key, false)
}

func (d *Disk) get(_ context.Context, key string, count bool) ([]byte, bool, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, false, errClosed
	}
	loc, ok := d.index[key]
	d.mu.RUnlock()
	if !ok {
		if count {
			d.misses.Add(1)
		}
		return nil, false, nil
	}
	// Read outside the lock so slow disks never serialize readers
	// behind appends or evictions.  Segment fields used here (f, path)
	// are immutable; if eviction closed the file mid-read, the failed
	// read is re-classified below.
	val := make([]byte, loc.valLen)
	_, err := loc.seg.f.ReadAt(val, loc.valOff)
	if err != nil {
		// The segment may have been evicted (its file closed) between
		// the index lookup and the read: if the key no longer points at
		// this location, the entry is simply gone — a miss, not an I/O
		// failure.
		d.mu.RLock()
		cur, still := d.index[key]
		d.mu.RUnlock()
		if !still || cur != loc {
			if count {
				d.misses.Add(1)
			}
			return nil, false, nil
		}
		d.errs.Add(1)
		return nil, false, fmt.Errorf("resultstore: read %s: %w", loc.seg.path, err)
	}
	if count {
		d.hits.Add(1)
	}
	return val, true, nil
}

// Stats returns the disk tier's counters.
func (d *Disk) Stats() []TierStats {
	d.mu.RLock()
	entries, bytes := len(d.index), d.total
	d.mu.RUnlock()
	return []TierStats{{
		Tier:           "disk",
		Entries:        entries,
		Bytes:          bytes,
		Hits:           d.hits.Load(),
		Misses:         d.misses.Load(),
		Sets:           d.sets.Load(),
		Errors:         d.errs.Load(),
		Compactions:    d.compactions.Load(),
		ReclaimedBytes: int64(d.reclaimed.Load()),
	}}
}

// Len returns the number of distinct keys currently indexed.
func (d *Disk) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.index)
}

// Close closes every segment file.  The store's contents remain on disk
// and are served again by the next OpenDisk of the same directory.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var errs []error
	for _, seg := range d.segs {
		if err := seg.f.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	// Uniform Stats semantics across backends: Entries/Bytes describe
	// what the open store can serve, which after Close is nothing.  (Op
	// counters stay — they are process-lifetime.)
	d.index = map[string]diskLoc{}
	d.total = 0
	if d.lock != nil {
		// Closing the fd releases the flock.
		if err := d.lock.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
