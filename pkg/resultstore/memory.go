package resultstore

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// Memory is a bounded, concurrency-safe LRU response store — the
// process-local hot tier.
type Memory struct {
	mu      sync.Mutex
	cap     int
	closed  bool
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
	sets   atomic.Uint64
}

type memEntry struct {
	key string
	val []byte
}

// NewMemory builds a store holding up to capacity responses;
// capacity < 1 disables storage (every Get misses, Set is a no-op).
func NewMemory(capacity int) *Memory {
	return &Memory{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// Get returns the stored response and marks it most recently used.
func (m *Memory) Get(_ context.Context, key string) ([]byte, bool, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, false, errClosed
	}
	el, ok := m.entries[key]
	if !ok {
		m.mu.Unlock()
		m.misses.Add(1)
		return nil, false, nil
	}
	m.order.MoveToFront(el)
	val := el.Value.(*memEntry).val
	m.mu.Unlock()
	m.hits.Add(1)
	return val, true, nil
}

// Peek returns the stored response without touching the counters or the
// recency order.
func (m *Memory) Peek(_ context.Context, key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errClosed
	}
	el, ok := m.entries[key]
	if !ok {
		return nil, false, nil
	}
	return el.Value.(*memEntry).val, true, nil
}

// Set stores a response, evicting the least recently used entry when
// the store is full.
func (m *Memory) Set(_ context.Context, key string, val []byte) error {
	if m.cap < 1 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed
	}
	m.sets.Add(1)
	if el, ok := m.entries[key]; ok {
		el.Value.(*memEntry).val = val
		m.order.MoveToFront(el)
		return nil
	}
	for m.order.Len() >= m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
	}
	m.entries[key] = m.order.PushFront(&memEntry{key: key, val: val})
	return nil
}

// Len returns the number of stored responses.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Stats returns the memory tier's counters.
func (m *Memory) Stats() []TierStats {
	return []TierStats{{
		Tier:    "memory",
		Entries: m.Len(),
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Sets:    m.sets.Load(),
	}}
}

// Close drops the stored responses; Get and Set fail afterwards (Peek,
// Len and Stats keep working, reporting the emptied store).
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.entries = map[string]*list.Element{}
	m.order = list.New()
	return nil
}
