package resultstore

import (
	"context"
	"errors"
	"hash/fnv"
	"sort"
)

// Scanner is the optional capability of enumerating a store's live key
// set — the keys a Get would currently hit, after newest-wins overwrite
// resolution and eviction.  Memory, Disk and Tiered implement it; Remote
// does not (the memcached protocol has no sane key enumeration), so
// callers discover the capability with ScanKeys and fall back to a peer
// that has it.  The filter restricts the result to keys the caller cares
// about (typically "hashes to my ring slice"); nil means every key.
type Scanner interface {
	Keys(ctx context.Context, filter func(key string) bool) ([]string, error)
}

// ErrScanUnsupported reports that a store (or every tier of a tiered
// store) cannot enumerate its keys.
var ErrScanUnsupported = errors.New("resultstore: store does not support key enumeration")

// ScanKeys enumerates s's live keys when the store supports it.
// ok=false means the capability is absent (s is not a Scanner, or is a
// Tiered store with no scannable tier); err then wraps
// ErrScanUnsupported.  The returned order is unspecified.
func ScanKeys(ctx context.Context, s Store, filter func(key string) bool) (keys []string, ok bool, err error) {
	sc, isScanner := s.(Scanner)
	if !isScanner {
		return nil, false, ErrScanUnsupported
	}
	keys, err = sc.Keys(ctx, filter)
	if errors.Is(err, ErrScanUnsupported) {
		return nil, false, err
	}
	if err != nil {
		return nil, true, err
	}
	return keys, true, nil
}

// Keys enumerates the live key set of the memory tier.
func (m *Memory) Keys(_ context.Context, filter func(key string) bool) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	out := make([]string, 0, len(m.entries))
	for k := range m.entries {
		if filter == nil || filter(k) {
			out = append(out, k)
		}
	}
	return out, nil
}

// Keys enumerates the live key set of the disk store: exactly the keys a
// Get would hit, after newest-wins replay resolution and whole-segment
// eviction.  The index snapshot is taken under the read lock, so a scan
// concurrent with compaction still sees the full live set — compaction
// copies records without changing which keys are live.
func (d *Disk) Keys(_ context.Context, filter func(key string) bool) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, errClosed
	}
	out := make([]string, 0, len(d.index))
	for k := range d.index {
		if filter == nil || filter(k) {
			out = append(out, k)
		}
	}
	return out, nil
}

// Keys enumerates the union of the scannable tiers' live key sets.  A
// tier without the capability is skipped (a Memory-over-Remote store
// scans as just its memory tier); if no tier is scannable the error
// wraps ErrScanUnsupported.  A scannable tier's failure surfaces only
// when every scannable tier failed, mirroring Peek's degraded contract.
func (t *Tiered) Keys(ctx context.Context, filter func(key string) bool) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	var firstErr error
	scannable, succeeded := 0, 0
	for _, tier := range []Store{t.front, t.back} {
		sc, isScanner := tier.(Scanner)
		if !isScanner {
			continue
		}
		scannable++
		keys, err := sc.Keys(ctx, filter)
		if err != nil {
			if errors.Is(err, ErrScanUnsupported) {
				scannable--
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		succeeded++
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	if scannable == 0 {
		return nil, ErrScanUnsupported
	}
	if succeeded == 0 {
		return nil, firstErr
	}
	return out, nil
}

// Digest summarizes a key set for anti-entropy comparison: the key
// count plus an order-independent XOR fold of each key's FNV-1a hash.
// Two stores whose digests match hold the same key set with
// overwhelming probability; a mismatch pins down which bucket to pull.
type Digest struct {
	Count int    `json:"count"`
	Sum   uint64 `json:"sum"`
}

// KeyDigest folds keys into one order-independent digest.
func KeyDigest(keys []string) Digest {
	d := Digest{Count: len(keys)}
	for _, k := range keys {
		d.Sum ^= hashKey64(k)
	}
	return d
}

// DefaultDigestBuckets is the bucket count anti-entropy digests use
// when the caller passes buckets < 1.  64 keeps a differing slice's
// repair pull to ~1/64 of the key space.
const DefaultDigestBuckets = 64

// BucketOf places key into one of buckets fixed hash-space slices.  The
// placement is a pure function of the key, independent of ring
// membership, so two replicas always agree on which bucket a key is in.
func BucketOf(key string, buckets int) int {
	if buckets < 1 {
		buckets = DefaultDigestBuckets
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(buckets))
}

// BucketDigests splits keys into buckets fixed hash-space slices and
// digests each independently, so anti-entropy can find *where* two
// stores diverge and pull only that slice.
func BucketDigests(keys []string, buckets int) []Digest {
	if buckets < 1 {
		buckets = DefaultDigestBuckets
	}
	out := make([]Digest, buckets)
	for _, k := range keys {
		b := BucketOf(k, buckets)
		out[b].Count++
		out[b].Sum ^= hashKey64(k)
	}
	return out
}

// SortKeys sorts keys in place and returns them — scan order is
// unspecified, so anything comparing or serving enumerations sorts
// first for determinism.
func SortKeys(keys []string) []string {
	sort.Strings(keys)
	return keys
}

func hashKey64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
