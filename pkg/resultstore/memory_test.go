package resultstore

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

var ctx = context.Background()

func mustGet(t *testing.T, s Store, key string) ([]byte, bool) {
	t.Helper()
	val, ok, err := s.Get(ctx, key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	return val, ok
}

func mustSet(t *testing.T, s Store, key, val string) {
	t.Helper()
	if err := s.Set(ctx, key, []byte(val)); err != nil {
		t.Fatalf("Set(%q): %v", key, err)
	}
}

func TestMemoryEviction(t *testing.T) {
	m := NewMemory(2)
	mustSet(t, m, "a", "1")
	mustSet(t, m, "b", "2")
	if _, ok := mustGet(t, m, "a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; adding c evicts b.
	mustSet(t, m, "c", "3")
	if _, ok := mustGet(t, m, "b"); ok {
		t.Error("b not evicted")
	}
	if v, ok := mustGet(t, m, "a"); !ok || string(v) != "1" {
		t.Error("a lost")
	}
	if v, ok := mustGet(t, m, "c"); !ok || string(v) != "3" {
		t.Error("c lost")
	}
	if m.Len() != 2 {
		t.Errorf("len = %d", m.Len())
	}
}

func TestMemoryUpdateExisting(t *testing.T) {
	m := NewMemory(2)
	mustSet(t, m, "a", "1")
	mustSet(t, m, "a", "2")
	if m.Len() != 1 {
		t.Fatalf("len = %d after double set", m.Len())
	}
	if v, _ := mustGet(t, m, "a"); string(v) != "2" {
		t.Errorf("a = %q, want updated value", v)
	}
}

func TestMemoryStats(t *testing.T) {
	m := NewMemory(4)
	mustSet(t, m, "a", "1")
	mustGet(t, m, "a")
	mustGet(t, m, "a")
	mustGet(t, m, "missing")
	st := m.Stats()
	if len(st) != 1 || st[0].Tier != "memory" {
		t.Fatalf("stats = %+v, want one memory tier", st)
	}
	if st[0].Hits != 2 || st[0].Misses != 1 || st[0].Sets != 1 || st[0].Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 set / 1 entry", st[0])
	}
}

func TestMemoryPeekInvisible(t *testing.T) {
	m := NewMemory(4)
	mustSet(t, m, "a", "1")
	if v, ok, err := m.Peek(ctx, "a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Peek(a) = %q %v %v", v, ok, err)
	}
	if _, ok, err := m.Peek(ctx, "missing"); err != nil || ok {
		t.Fatalf("Peek(missing) = %v %v", ok, err)
	}
	if st := m.Stats()[0]; st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek perturbed counters: %+v", st)
	}
}

func TestMemoryDisabled(t *testing.T) {
	m := NewMemory(0)
	mustSet(t, m, "a", "1")
	if _, ok := mustGet(t, m, "a"); ok {
		t.Error("disabled store returned a hit")
	}
	if m.Len() != 0 {
		t.Error("disabled store stored an entry")
	}
}

func TestMemoryCapacityBound(t *testing.T) {
	m := NewMemory(8)
	for i := 0; i < 100; i++ {
		mustSet(t, m, fmt.Sprintf("k%d", i), "v")
	}
	if m.Len() != 8 {
		t.Errorf("len = %d, want capacity 8", m.Len())
	}
}

func TestMemoryClosedErrors(t *testing.T) {
	m := NewMemory(4)
	mustSet(t, m, "a", "1")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get(ctx, "a"); err == nil {
		t.Error("Get after Close succeeded")
	}
	if err := m.Set(ctx, "b", []byte("2")); err == nil {
		t.Error("Set after Close succeeded")
	}
	if m.Len() != 0 {
		t.Errorf("closed store still holds %d entries", m.Len())
	}
}

// TestMemoryConcurrent exercises Get/Set/Peek/Stats concurrently; the
// race detector is the assertion.
func TestMemoryConcurrent(t *testing.T) {
	m := NewMemory(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%32)
				m.Set(ctx, key, []byte{byte(i)})
				m.Get(ctx, key)
				m.Peek(ctx, key)
				m.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// TestTotals pins the fold from per-tier stats to the store-level
// counters reported by /v1/cache/stats.
func TestTotals(t *testing.T) {
	entries, hits, misses := Totals([]TierStats{
		{Tier: "memory", Entries: 3, Hits: 10, Misses: 7},
		{Tier: "disk", Entries: 9, Hits: 5, Misses: 2},
	})
	if entries != 9 || hits != 15 || misses != 2 {
		t.Errorf("Totals = %d/%d/%d, want 9 entries, 15 hits, 2 misses", entries, hits, misses)
	}
	if e, h, m := Totals(nil); e != 0 || h != 0 || m != 0 {
		t.Errorf("Totals(nil) = %d/%d/%d, want zeros", e, h, m)
	}
}
