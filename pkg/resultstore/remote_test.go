package resultstore

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/memcachetest"
)

func newRemote(t *testing.T, cfg RemoteConfig) *Remote {
	t.Helper()
	r, err := NewRemote(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestRemoteRoundTrip(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})

	mustSet(t, r, "a", "alpha")
	mustSet(t, r, "b", "beta")
	if v, ok := mustGet(t, r, "a"); !ok || string(v) != "alpha" {
		t.Errorf("a = %q %v", v, ok)
	}
	if v, ok := mustGet(t, r, "b"); !ok || string(v) != "beta" {
		t.Errorf("b = %q %v", v, ok)
	}
	if _, ok := mustGet(t, r, "missing"); ok {
		t.Error("missing key hit")
	}
	st := r.Stats()[0]
	if st.Tier != "remote" || st.Hits != 2 || st.Misses != 1 || st.Sets != 2 || st.Errors != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Overwrite: newest record wins.
	mustSet(t, r, "a", "alpha2")
	if v, ok := mustGet(t, r, "a"); !ok || string(v) != "alpha2" {
		t.Errorf("a after overwrite = %q %v", v, ok)
	}
}

func TestRemotePeekInvisible(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	mustSet(t, r, "k", "v")
	if v, ok, err := r.Peek(ctx, "k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Peek = %q %v %v", v, ok, err)
	}
	if _, ok, err := r.Peek(ctx, "nope"); err != nil || ok {
		t.Fatalf("Peek miss = %v %v", ok, err)
	}
	st := r.Stats()[0]
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek perturbed counters: %+v", st)
	}
}

func TestRemoteTTLExpiry(t *testing.T) {
	srv := memcachetest.Start(t)
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	srv.SetNow(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}, TTL: 60 * time.Second})
	mustSet(t, r, "k", "v")
	if _, ok := mustGet(t, r, "k"); !ok {
		t.Fatal("k missing before expiry")
	}
	mu.Lock()
	now = now.Add(61 * time.Second)
	mu.Unlock()
	if _, ok := mustGet(t, r, "k"); ok {
		t.Fatal("k served after its TTL lapsed")
	}
}

// TestRemoteBatchedGets pins the coalescing behaviour: while one
// multi-get is in flight (the server's injected delay holds the single
// worker busy), further concurrent Gets queue up and the next drain
// carries them in one round trip.
func TestRemoteBatchedGets(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}, Workers: 1})
	for _, k := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		mustSet(t, r, k, "v-"+k)
	}
	srv.SetDelay(50 * time.Millisecond)

	var wg sync.WaitGroup
	start := func(key string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, ok := mustGet(t, r, key); !ok || string(v) != "v-"+key {
				t.Errorf("%s = %q %v", key, v, ok)
			}
		}()
	}
	// The first Get occupies the worker; the rest pile onto the queue
	// while its round trip waits out the server delay.
	start("k0")
	time.Sleep(20 * time.Millisecond)
	for _, k := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		start(k)
	}
	wg.Wait()

	if got := srv.Counts(); got.MaxBatch < 2 {
		t.Errorf("no multi-get batching: server saw max batch %d", got.MaxBatch)
	} else if got.GetKeys != 8 {
		t.Errorf("server saw %d get keys, want 8", got.GetKeys)
	}
	if batches, keys := r.BatchStats(); batches >= keys {
		t.Errorf("client batching stats show no coalescing: %d batches / %d keys", batches, keys)
	}
}

// TestRemoteDeadServerRotation pins the circuit behaviour: an op that
// hits a dead server quarantines it and rotates to the next one, and
// later ops skip the quarantined server without dialing it at all.
func TestRemoteDeadServerRotation(t *testing.T) {
	srvA := memcachetest.Start(t)
	srvB := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{
		Servers:      []string{srvA.Addr(), srvB.Addr()},
		DeadCooldown: time.Minute,
	})

	// Find keys homed on each server so the test is placement-exact.
	keyOn := func(want string) string {
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("key-%d", i)
			if r.pickServers(key)[0].addr == want {
				return key
			}
		}
		t.Fatalf("no key homed on %s", want)
		return ""
	}
	keyA := keyOn(srvA.Addr())

	srvA.Close()

	// The Set dials dead A, quarantines it, and lands on B.
	mustSet(t, r, keyA, "stored-anyway")
	if r.Rotations() == 0 {
		t.Fatal("set on a dead home server did not rotate")
	}
	// The Get now skips A without dialing and finds the value on B.
	if v, ok := mustGet(t, r, keyA); !ok || string(v) != "stored-anyway" {
		t.Fatalf("rotated get = %q %v", v, ok)
	}
	if got := srvB.Counts(); got.Sets != 1 {
		t.Errorf("server B saw %d sets, want 1", got.Sets)
	}
	if st := r.Stats()[0]; st.Errors != 0 {
		t.Errorf("rotation surfaced errors: %+v", st)
	}
}

// TestRemoteAllServersDead pins the degraded mode: every op errors
// (callers treat that as a miss), nothing hangs, and the error counters
// move.
func TestRemoteAllServersDead(t *testing.T) {
	srv := memcachetest.Start(t)
	addr := srv.Addr()
	srv.Close()
	r := newRemote(t, RemoteConfig{Servers: []string{addr}, DeadCooldown: time.Minute})

	if err := r.Set(ctx, "k", []byte("v")); err == nil {
		t.Fatal("Set against a dead server succeeded")
	}
	if _, ok, err := r.Get(ctx, "k"); err == nil || ok {
		t.Fatalf("Get against a dead server = %v %v", ok, err)
	}
	st := r.Stats()[0]
	if st.Errors == 0 {
		t.Errorf("dead-server ops did not count errors: %+v", st)
	}
}

func TestRemoteCloseThenOp(t *testing.T) {
	srv := memcachetest.Start(t)
	r, err := NewRemote(RemoteConfig{Servers: []string{srv.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	mustSet(t, r, "k", "v")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := r.Get(ctx, "k"); err == nil {
		t.Error("Get after Close succeeded")
	}
	if err := r.Set(ctx, "k", []byte("v")); err == nil {
		t.Error("Set after Close succeeded")
	}
}

func TestRemoteRejectsBadKeys(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	for _, key := range []string{"", "has space", "has\nnewline", strings.Repeat("k", 251)} {
		if err := r.Set(ctx, key, []byte("v")); err == nil {
			t.Errorf("Set accepted invalid key %q", key)
		}
		if _, _, err := r.Get(ctx, key); err == nil {
			t.Errorf("Get accepted invalid key %q", key)
		}
	}
}

// garbageServer accepts memcached connections and answers every request
// line with protocol nonsense — the client must surface errors, discard
// the poisoned connection and count the failures, never hang or panic.
func garbageServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					// Consume a set's data block so the next read sees a
					// command line, then answer garbage either way.
					var key string
					var flags uint32
					var exptime int64
					var size int
					if n, _ := fmt.Sscanf(line, "set %s %d %d %d", &key, &flags, &exptime, &size); n == 4 {
						io := make([]byte, size+2)
						if _, err := readFull(br, io); err != nil {
							return
						}
					}
					if _, err := c.Write([]byte("BANANA 0 0\r\n")); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestRemoteGarbageResponses: malformed server responses are errors,
// not corrupt hits — and both op paths count them.
func TestRemoteGarbageResponses(t *testing.T) {
	r := newRemote(t, RemoteConfig{
		Servers:      []string{garbageServer(t)},
		DeadCooldown: time.Nanosecond, // re-dial every op; never report "all dead"
	})
	if _, ok, err := r.Get(ctx, "key"); err == nil || ok {
		t.Errorf("Get over garbage protocol = ok=%v err=%v, want error", ok, err)
	}
	if err := r.Set(ctx, "key", []byte("value")); err == nil ||
		!strings.Contains(err.Error(), "BANANA") {
		t.Errorf("Set over garbage protocol = %v, want server-answered error", err)
	}
	st := r.Stats()[0]
	if st.Errors < 2 {
		t.Errorf("Errors = %d, want >= 2 (one per failed op)", st.Errors)
	}
	if st.Hits != 0 || st.Sets != 0 {
		t.Errorf("garbage responses counted as successes: %+v", st)
	}
}

// TestRemoteOversizedValueRejected: values beyond the protocol bound
// fail fast client-side without touching the network.
func TestRemoteOversizedValueRejected(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	if err := r.Set(ctx, "key", make([]byte, maxValLen+1)); err == nil {
		t.Fatal("oversized value accepted")
	}
	if n := srv.Counts().Sets; n != 0 {
		t.Errorf("oversized value reached the server (%d sets)", n)
	}
}

// TestRemoteStatsEntries pins that Stats reports the server-side entry
// count: the sum of `stats` curr_items across live servers, so capacity
// dashboards see the shared tier's population instead of a constant 0.
func TestRemoteStatsEntries(t *testing.T) {
	a, b := memcachetest.Start(t), memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{a.Addr(), b.Addr()}})
	for i := 0; i < 5; i++ {
		mustSet(t, r, fmt.Sprintf("key-%d", i), "value")
	}
	if st := r.Stats()[0]; st.Entries != 5 {
		t.Fatalf("Entries = %d, want 5 (curr_items summed across servers)", st.Entries)
	}
}

// TestRemoteStatsEntriesCached pins the 1s stats cache: a second Stats
// call inside the refresh window reuses the last count instead of
// re-querying every server.
func TestRemoteStatsEntriesCached(t *testing.T) {
	srv := memcachetest.Start(t)
	r := newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
	mustSet(t, r, "one", "value")
	if st := r.Stats()[0]; st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
	mustSet(t, r, "two", "value")
	if st := r.Stats()[0]; st.Entries != 1 {
		t.Fatalf("Entries = %d inside the refresh window, want the cached 1", st.Entries)
	}
}
