package resultstore

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/memcachetest"
)

// The store conformance suite: one harness, every backend.  Each
// backend registers an opener (and, when it has durable state, a
// reopener standing in for a process restart); the suite then pins the
// Store contract — round trips, newest-record-wins, Peek invisibility,
// Stats accounting and its uniform semantics (op counters are
// process-lifetime, Entries/Bytes describe what the open store serves),
// Close-then-op failures, and concurrent use under -race.  A future
// backend only has to add a case here to inherit the whole contract.

type conformanceCase struct {
	name string
	// open returns a fresh, empty store.
	open func(t *testing.T) Store
	// reopen, when non-nil, closes s and returns a successor over the
	// same durable state — a process restart.  Backends without durable
	// state leave it nil.
	reopen func(t *testing.T, s Store) Store
	// countsEntries is false for backends that cannot know their entry
	// count (the remote client).
	countsEntries bool
}

func conformanceCases() []conformanceCase {
	return []conformanceCase{
		{
			name:          "memory",
			open:          func(t *testing.T) Store { return NewMemory(1024) },
			countsEntries: true,
		},
		{
			name: "disk",
			open: func(t *testing.T) Store {
				return openDisk(t, t.TempDir(), DiskConfig{})
			},
			reopen: func(t *testing.T, s Store) Store {
				d := s.(*Disk)
				dir := d.cfg.Dir
				if err := d.Close(); err != nil {
					t.Fatal(err)
				}
				return openDisk(t, dir, DiskConfig{})
			},
			countsEntries: true,
		},
		{
			name: "tiered",
			open: func(t *testing.T) Store {
				return NewTiered(NewMemory(1024), openDisk(t, t.TempDir(), DiskConfig{}))
			},
			reopen: func(t *testing.T, s Store) Store {
				d := s.(*Tiered).back.(*Disk)
				dir := d.cfg.Dir
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				return NewTiered(NewMemory(1024), openDisk(t, dir, DiskConfig{}))
			},
			countsEntries: true,
		},
		{
			name: "remote",
			open: func(t *testing.T) Store {
				srv := memcachetest.Start(t)
				return newRemote(t, RemoteConfig{Servers: []string{srv.Addr()}})
			},
			reopen: func(t *testing.T, s Store) Store {
				// The server-side data outlives the client: a fresh
				// client over the same servers is this backend's
				// "restart".
				old := s.(*Remote)
				servers := old.cfg.Servers
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				return newRemote(t, RemoteConfig{Servers: servers})
			},
		},
	}
}

// forEachBackend runs fn as a subtest per backend.
func forEachBackend(t *testing.T, fn func(t *testing.T, tc conformanceCase)) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) { fn(t, tc) })
	}
}

func opCounters(s Store) (hits, misses, sets uint64) {
	for _, ts := range s.Stats() {
		hits += ts.Hits
		misses += ts.Misses
		sets += ts.Sets
	}
	return hits, misses, sets
}

func TestConformanceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		mustSet(t, s, "alpha", "one")
		mustSet(t, s, "beta", "two")
		if v, ok := mustGet(t, s, "alpha"); !ok || string(v) != "one" {
			t.Errorf("alpha = %q %v", v, ok)
		}
		if v, ok := mustGet(t, s, "beta"); !ok || string(v) != "two" {
			t.Errorf("beta = %q %v", v, ok)
		}
		if _, ok := mustGet(t, s, "gamma"); ok {
			t.Error("unset key hit")
		}
	})
}

func TestConformanceNewestRecordWins(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		for i := 0; i < 5; i++ {
			mustSet(t, s, "key", fmt.Sprintf("value-%d", i))
		}
		if v, ok := mustGet(t, s, "key"); !ok || string(v) != "value-4" {
			t.Errorf("key = %q %v, want the newest record", v, ok)
		}
	})
}

func TestConformancePeekInvisible(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		mustSet(t, s, "key", "value")
		if v, ok, err := Peek(ctx, s, "key"); err != nil || !ok || string(v) != "value" {
			t.Fatalf("Peek hit = %q %v %v", v, ok, err)
		}
		if _, ok, err := Peek(ctx, s, "missing"); err != nil || ok {
			t.Fatalf("Peek miss = %v %v", ok, err)
		}
		hits, misses, _ := opCounters(s)
		if hits != 0 || misses != 0 {
			t.Errorf("Peek moved the counters: hits=%d misses=%d", hits, misses)
		}
	})
}

func TestConformanceStatsAccounting(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		for i := 0; i < 3; i++ {
			mustSet(t, s, fmt.Sprintf("key-%d", i), "value")
		}
		for i := 0; i < 3; i++ {
			mustGet(t, s, fmt.Sprintf("key-%d", i)) // hits
		}
		mustGet(t, s, "missing-1")
		mustGet(t, s, "missing-2")

		entries, hits, misses := Totals(s.Stats())
		if hits != 3 {
			t.Errorf("hits = %d, want 3", hits)
		}
		if misses != 2 {
			t.Errorf("misses = %d, want 2", misses)
		}
		if tc.countsEntries && entries != 3 {
			t.Errorf("entries = %d, want 3", entries)
		}
		if _, _, sets := opCounters(s); sets < 3 {
			t.Errorf("sets = %d, want >= 3", sets)
		}
	})
}

func TestConformanceCloseThenOp(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		mustSet(t, s, "key", "value")
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close is not idempotent: %v", err)
		}
		if _, _, err := s.Get(ctx, "key"); err == nil {
			t.Error("Get after Close succeeded")
		}
		if err := s.Set(ctx, "key", []byte("value")); err == nil {
			t.Error("Set after Close succeeded")
		}
		// Entries/Bytes describe what the open store can serve — after
		// Close, nothing.
		for _, ts := range s.Stats() {
			if ts.Entries != 0 || ts.Bytes != 0 {
				t.Errorf("tier %s still reports entries=%d bytes=%d after Close",
					ts.Tier, ts.Entries, ts.Bytes)
			}
		}
	})
}

// TestConformanceStatsAfterReopen pins the uniform restart semantics:
// op counters are process-lifetime (zero in the successor), while the
// durable backends serve everything the predecessor stored.
func TestConformanceStatsAfterReopen(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		if tc.reopen == nil {
			t.Skip("no durable state to reopen")
		}
		s := tc.open(t)
		for i := 0; i < 4; i++ {
			mustSet(t, s, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
		}
		mustGet(t, s, "key-0")
		mustGet(t, s, "nope")

		s = tc.reopen(t, s)
		if hits, misses, sets := opCounters(s); hits != 0 || misses != 0 || sets != 0 {
			t.Errorf("reopened store inherited op counters: hits=%d misses=%d sets=%d",
				hits, misses, sets)
		}
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("key-%d", i)
			if v, ok := mustGet(t, s, key); !ok || string(v) != fmt.Sprintf("value-%d", i) {
				t.Errorf("%s after reopen = %q %v", key, v, ok)
			}
		}
		if tc.countsEntries {
			if entries, _, _ := Totals(s.Stats()); entries != 4 {
				t.Errorf("entries after reopen = %d, want 4", entries)
			}
		}
	})
}

// TestConformanceScanKeys pins the Scanner capability across backends:
// scannable stores enumerate exactly the live key set (newest-wins, one
// entry per key, filter honored), the remote client cleanly reports the
// capability absent, and durable backends enumerate the same set after
// a reopen.
func TestConformanceScanKeys(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		want := []string{"alpha", "beta", "gamma"}
		for _, k := range want {
			mustSet(t, s, k, "v1")
		}
		mustSet(t, s, "alpha", "v2") // overwrite must not duplicate the key

		keys, ok, err := ScanKeys(ctx, s, nil)
		if _, isScanner := s.(Scanner); !isScanner {
			if ok || !errors.Is(err, ErrScanUnsupported) {
				t.Fatalf("non-Scanner backend: ScanKeys = ok %v err %v, want capability-absent", ok, err)
			}
			return
		}
		if !ok || err != nil {
			t.Fatalf("ScanKeys = ok %v err %v", ok, err)
		}
		if got := SortKeys(keys); !reflect.DeepEqual(got, want) {
			t.Fatalf("keys = %v, want %v", got, want)
		}

		filtered, _, err := ScanKeys(ctx, s, func(k string) bool { return k == "beta" })
		if err != nil || !reflect.DeepEqual(filtered, []string{"beta"}) {
			t.Fatalf("filtered keys = %v %v, want [beta]", filtered, err)
		}

		if tc.reopen != nil {
			s = tc.reopen(t, s)
			keys, ok, err = ScanKeys(ctx, s, nil)
			if !ok || err != nil {
				t.Fatalf("ScanKeys after reopen = ok %v err %v", ok, err)
			}
			if got := SortKeys(keys); !reflect.DeepEqual(got, want) {
				t.Fatalf("keys after reopen = %v, want %v", got, want)
			}
		}

		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ScanKeys(ctx, s, nil); err == nil {
			t.Error("ScanKeys after Close succeeded")
		}
	})
}

func TestConformanceConcurrent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, tc conformanceCase) {
		s := tc.open(t)
		const (
			goroutines = 8
			rounds     = 25
		)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				own := fmt.Sprintf("own-%d", g)
				for i := 0; i < rounds; i++ {
					if err := s.Set(ctx, own, []byte(fmt.Sprintf("%d-%d", g, i))); err != nil {
						t.Errorf("Set(%s): %v", own, err)
						return
					}
					if _, _, err := s.Get(ctx, own); err != nil {
						t.Errorf("Get(%s): %v", own, err)
						return
					}
					// Everyone also hammers one shared key.
					s.Set(ctx, "shared", []byte(fmt.Sprintf("%d-%d", g, i)))
					s.Get(ctx, "shared")
					Peek(ctx, s, "shared")
				}
			}(g)
		}
		wg.Wait()
		if _, ok := mustGet(t, s, "shared"); !ok {
			t.Error("shared key lost")
		}
	})
}
