package resultstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func newTestTiered(t *testing.T) (*Tiered, *Memory, *Disk) {
	t.Helper()
	mem := NewMemory(8)
	disk := openDisk(t, t.TempDir(), DiskConfig{})
	return NewTiered(mem, disk), mem, disk
}

func TestTieredWriteThrough(t *testing.T) {
	tiered, mem, disk := newTestTiered(t)
	mustSet(t, tiered, "a", "alpha")
	if v, ok, _ := mem.Peek(ctx, "a"); !ok || string(v) != "alpha" {
		t.Errorf("memory tier missing write-through value: %q %v", v, ok)
	}
	if v, ok, _ := disk.Peek(ctx, "a"); !ok || string(v) != "alpha" {
		t.Errorf("disk tier missing write-through value: %q %v", v, ok)
	}
	if v, ok := mustGet(t, tiered, "a"); !ok || string(v) != "alpha" {
		t.Errorf("tiered get = %q %v", v, ok)
	}
}

// TestTieredPromotion fills only the disk tier (as after a restart: the
// memory tier died with the process) and asserts the first Get serves
// from disk and refills memory, so the second is a memory hit.
func TestTieredPromotion(t *testing.T) {
	tiered, mem, disk := newTestTiered(t)
	mustSet(t, disk, "cold", "from-disk")

	if v, ok := mustGet(t, tiered, "cold"); !ok || string(v) != "from-disk" {
		t.Fatalf("tiered get = %q %v", v, ok)
	}
	if v, ok, _ := mem.Peek(ctx, "cold"); !ok || string(v) != "from-disk" {
		t.Errorf("disk hit not promoted into memory: %q %v", v, ok)
	}
	mustGet(t, tiered, "cold") // now a memory hit

	st := tiered.Stats()
	if len(st) != 2 || st[0].Tier != "memory" || st[1].Tier != "disk" {
		t.Fatalf("stats = %+v, want [memory disk]", st)
	}
	if st[0].Hits != 1 || st[0].Misses != 1 {
		t.Errorf("memory tier = %+v, want 1 hit / 1 miss", st[0])
	}
	if st[1].Hits != 1 || st[1].Misses != 0 {
		t.Errorf("disk tier = %+v, want 1 hit / 0 misses", st[1])
	}
}

func TestTieredMissCountsOncePerTier(t *testing.T) {
	tiered, _, _ := newTestTiered(t)
	if _, ok := mustGet(t, tiered, "nope"); ok {
		t.Fatal("empty store hit")
	}
	entries, hits, misses := Totals(tiered.Stats())
	if entries != 0 || hits != 0 || misses != 1 {
		t.Errorf("Totals = %d/%d/%d, want 0 entries, 0 hits, 1 miss", entries, hits, misses)
	}
}

func TestTieredPeekInvisible(t *testing.T) {
	tiered, _, _ := newTestTiered(t)
	mustSet(t, tiered, "a", "1")
	if v, ok, err := tiered.Peek(ctx, "a"); err != nil || !ok || string(v) != "1" {
		t.Fatalf("Peek = %q %v %v", v, ok, err)
	}
	tiered.Peek(ctx, "missing")
	for _, st := range tiered.Stats() {
		if st.Hits != 0 || st.Misses != 0 {
			t.Errorf("Peek perturbed %s counters: %+v", st.Tier, st)
		}
	}
}

// TestTieredDisabledFront degrades gracefully: with a zero-capacity
// memory tier every read is served by the disk tier.
func TestTieredDisabledFront(t *testing.T) {
	disk := openDisk(t, t.TempDir(), DiskConfig{})
	tiered := NewTiered(NewMemory(0), disk)
	mustSet(t, tiered, "a", "alpha")
	if v, ok := mustGet(t, tiered, "a"); !ok || string(v) != "alpha" {
		t.Errorf("get = %q %v", v, ok)
	}
	if st := tiered.Stats(); st[1].Hits != 1 {
		t.Errorf("disk tier did not serve the read: %+v", st)
	}
}

// failStore errors on every operation — a stand-in for a broken tier.
type failStore struct{}

func (failStore) Get(context.Context, string) ([]byte, bool, error) {
	return nil, false, errors.New("tier down")
}
func (failStore) Set(context.Context, string, []byte) error { return errors.New("tier down") }
func (failStore) Stats() []TierStats                        { return []TierStats{{Tier: "memory"}} }
func (failStore) Close() error                              { return nil }

// TestTieredFrontFailureFallsThrough pins the Store contract applied
// between tiers: a failing front tier is treated as a missing one, so
// a back-tier hit is still served.
func TestTieredFrontFailureFallsThrough(t *testing.T) {
	disk := openDisk(t, t.TempDir(), DiskConfig{})
	mustSet(t, disk, "a", "alpha")
	tiered := NewTiered(failStore{}, disk)
	if v, ok := mustGet(t, tiered, "a"); !ok || string(v) != "alpha" {
		t.Errorf("front-tier failure masked a back-tier hit: %q %v", v, ok)
	}
	if v, ok, err := tiered.Peek(ctx, "a"); err != nil || !ok || string(v) != "alpha" {
		t.Errorf("Peek through failing front = %q %v %v", v, ok, err)
	}
	// Set still reports the partial failure while landing in the back.
	if err := tiered.Set(ctx, "b", []byte("beta")); err == nil {
		t.Error("Set with a failing front tier reported no error")
	}
	if v, ok, _ := disk.Peek(ctx, "b"); !ok || string(v) != "beta" {
		t.Errorf("back tier missed the write-through: %q %v", v, ok)
	}
}

func TestTieredConcurrent(t *testing.T) {
	tiered, _, _ := newTestTiered(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", (g*5+i)%16)
				tiered.Set(ctx, key, []byte{byte(i)})
				tiered.Get(ctx, key)
				tiered.Stats()
			}
		}(g)
	}
	wg.Wait()
}
