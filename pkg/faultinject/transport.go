package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrDropped is the transport error a Drop rule produces — the
// client-visible shape of a connection reset.
var ErrDropped = errors.New("faultinject: connection dropped")

// maxPeekBody bounds how much request body the injector reads for
// BodyContains matching.  Simulation requests are a few KB; anything
// larger matches on its prefix.
const maxPeekBody = 1 << 20

// needsBody reports whether any rule matches on the request body, so
// body-free requests skip the read-and-restore.
func (in *Injector) needsBody() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Match.BodyContains != "" {
			return true
		}
	}
	return false
}

// peekBody reads (up to maxPeekBody of) body and returns the bytes plus
// a replacement reader serving the same content.
func peekBody(body io.ReadCloser) ([]byte, io.ReadCloser, error) {
	if body == nil {
		return nil, nil, nil
	}
	defer body.Close()
	raw, err := io.ReadAll(io.LimitReader(body, maxPeekBody))
	if err != nil {
		return nil, nil, err
	}
	return raw, io.NopCloser(bytes.NewReader(raw)), nil
}

// sleepCtx waits d, or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// transport is the client-side injector.
type transport struct {
	in    *Injector
	inner http.RoundTripper
}

// Transport wraps inner (nil selects http.DefaultTransport) so every
// request through it is evaluated against the injector's rules: plant
// it in an http.Client to fault a specific caller without touching the
// backend.
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{in: in, inner: inner}
}

// RoundTrip implements http.RoundTripper.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if t.in.needsBody() && req.Body != nil {
		raw, rc, err := peekBody(req.Body)
		if err != nil {
			return nil, fmt.Errorf("faultinject: peek request body: %w", err)
		}
		body, req.Body = raw, rc
	}
	d := t.in.decide(req.Method, req.URL.Path, req.URL.Host, body)
	if err := sleepCtx(req.Context(), d.latency); err != nil {
		return nil, err
	}
	if d.drop {
		return nil, ErrDropped
	}
	if d.status > 0 {
		return syntheticResponse(req, d.status), nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	wrapResponseBody(t.in, resp, d)
	return resp, nil
}

// syntheticResponse builds the short-circuit error response of a Status
// rule: the backend is never contacted.
func syntheticResponse(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf(`{"error":"faultinject: injected status %d"}`, status)
	return &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// wrapResponseBody applies the body-stage injections (slow-body
// throttling, corrupt-byte) to resp in place.
func wrapResponseBody(in *Injector, resp *http.Response, d decision) {
	if d.slowBody == 0 && !d.corrupt {
		return
	}
	resp.Body = &bodyInjector{
		in:    in,
		inner: resp.Body,
		delay: d.slowBody,

		corrupt: d.corrupt,
	}
}

// bodyInjector throttles and/or corrupts a response body stream.
type bodyInjector struct {
	in    *Injector
	inner io.ReadCloser
	delay time.Duration

	corrupt   bool
	corrupted bool
}

// slowChunk is the read granularity under slow-body throttling.
const slowChunk = 512

func (b *bodyInjector) Read(p []byte) (int, error) {
	if b.delay > 0 {
		if len(p) > slowChunk {
			p = p[:slowChunk]
		}
		time.Sleep(b.delay)
	}
	n, err := b.inner.Read(p)
	if n > 0 && b.corrupt && !b.corrupted {
		b.corrupted = true
		p[b.in.corruptIndex(n)] ^= 0xff
	}
	return n, err
}

func (b *bodyInjector) Close() error { return b.inner.Close() }
