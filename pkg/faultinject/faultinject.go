// Package faultinject is a deterministic fault-injection harness for
// the serving stack: a rule-driven injector that can be planted either
// as an http.RoundTripper (client side) or as a reverse proxy in front
// of a backend (wire side), plus a small HTTP control API so
// integration tests, `make chaos` and examples/distributed can script
// failure scenarios at runtime.
//
// Every probabilistic decision draws from one seeded PRNG, so a given
// seed replays the same injection sequence — chaos runs are
// regression-testable instead of flaky.  Rules compose: a latency rule
// and an error-status rule matching the same request both apply (the
// latency is paid, then the error is served).  Supported injections:
//
//   - Latency      delay before the request is forwarded
//   - Status       short-circuit with an HTTP error status (no forward)
//   - Drop         kill the connection (transport error / aborted response)
//   - SlowBody     throttle the response body, one chunk per delay
//   - CorruptByte  flip one byte of the response body (CRC/decode faults)
//
// The Corrupter is exported on its own so file-level corruption tests
// (e.g. the disk result store's torn-tail recovery) share the same
// seeded byte-mangling path as the HTTP rules.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// Match selects which requests a rule applies to.  Empty fields match
// anything; set fields must all match.
type Match struct {
	// Method is the exact HTTP method ("POST"); empty matches any.
	Method string `json:"method,omitempty"`
	// Path is a request-path prefix ("/v1/simulations"); empty matches
	// any.
	Path string `json:"path,omitempty"`
	// Backend is a substring of the target backend (the proxy's target
	// URL, or the outgoing request host for the Transport); empty
	// matches any.
	Backend string `json:"backend,omitempty"`
	// BodyContains is a substring of the request body — the way to
	// target one benchmark's shard (`"benchmark":"mcf"`) when every
	// shard shares one path.  Empty matches any.
	BodyContains string `json:"body_contains,omitempty"`
}

func (m Match) matches(method, path, backend string, body []byte) bool {
	if m.Method != "" && m.Method != method {
		return false
	}
	if m.Path != "" && !strings.HasPrefix(path, m.Path) {
		return false
	}
	if m.Backend != "" && !strings.Contains(backend, m.Backend) {
		return false
	}
	if m.BodyContains != "" && !strings.Contains(string(body), m.BodyContains) {
		return false
	}
	return true
}

// Rule is one injection: a match, an application probability, an
// optional application budget, and the faults to inject.  Durations are
// plain millisecond integers so rules round-trip through the JSON
// control API without custom encoding.
type Rule struct {
	// ID names the rule (assigned by Add when empty); DELETE
	// /rules?id= removes it.
	ID string `json:"id,omitempty"`
	// Match selects the requests the rule considers.
	Match Match `json:"match,omitzero"`
	// Probability is the chance a considered request is injected
	// (0 selects 1.0 — always).  Draws come from the injector's seeded
	// PRNG in arrival order.
	Probability float64 `json:"probability,omitempty"`
	// MaxCount caps how many requests the rule injects in total
	// (0 = unlimited).  Deterministic scenarios — "the first 4 requests
	// to this backend drop" — use MaxCount with Probability 1.
	MaxCount int `json:"max_count,omitempty"`
	// LatencyMs delays the request before any forwarding.
	LatencyMs int64 `json:"latency_ms,omitempty"`
	// Status short-circuits with this HTTP status and a JSON error
	// envelope; the backend is never contacted.
	Status int `json:"status,omitempty"`
	// Drop kills the connection: the Transport returns a transport
	// error, the Proxy aborts the response mid-flight.
	Drop bool `json:"drop,omitempty"`
	// SlowBodyMs throttles the response body to one chunk per delay.
	SlowBodyMs int64 `json:"slow_body_ms,omitempty"`
	// CorruptByte flips one PRNG-chosen byte of the response body.
	CorruptByte bool `json:"corrupt_byte,omitempty"`

	// Injected counts how many requests this rule has injected.
	Injected uint64 `json:"injected"`
}

// decision is the folded outcome of every matching rule for one
// request.
type decision struct {
	latency  time.Duration
	status   int
	drop     bool
	slowBody time.Duration
	corrupt  bool
}

func (d decision) empty() bool {
	return d.latency == 0 && d.status == 0 && !d.drop && d.slowBody == 0 && !d.corrupt
}

// Stats are the injector's cumulative per-fault counters.
type Stats struct {
	Requests    uint64 `json:"requests"`
	Latency     uint64 `json:"latency"`
	Status      uint64 `json:"status"`
	Drop        uint64 `json:"drop"`
	SlowBody    uint64 `json:"slow_body"`
	CorruptByte uint64 `json:"corrupt_byte"`
}

// Injector owns the rule set and the seeded PRNG.  One Injector may
// back any number of Transports and Proxies; rule evaluation is
// serialized, so the random sequence is a function of arrival order.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	rules  []*Rule
	nextID int
	stats  Stats
}

// New returns an Injector whose probability draws and byte corruption
// derive from seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add installs a rule and returns its ID (assigned when empty).
func (in *Injector) Add(r Rule) string {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r.ID == "" {
		in.nextID++
		r.ID = fmt.Sprintf("rule-%d", in.nextID)
	}
	r.Injected = 0
	rc := r
	in.rules = append(in.rules, &rc)
	return rc.ID
}

// Remove deletes the rule with the given ID, reporting whether it
// existed.
func (in *Injector) Remove(id string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r.ID == id {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Reset removes every rule (counters are kept: they describe history).
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Rules returns a snapshot of the rule set, including per-rule
// injection counts.
func (in *Injector) Rules() []Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Rule, len(in.rules))
	for i, r := range in.rules {
		out[i] = *r
	}
	return out
}

// Stats returns the cumulative injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide evaluates every rule against one request and folds the
// matching injections.  Probability draws happen under the lock, in
// rule order, so a fixed seed replays a fixed draw sequence.
func (in *Injector) decide(method, path, backend string, body []byte) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Requests++
	var d decision
	for _, r := range in.rules {
		if !r.Match.matches(method, path, backend, body) {
			continue
		}
		if r.MaxCount > 0 && r.Injected >= uint64(r.MaxCount) {
			continue
		}
		if p := r.Probability; p > 0 && p < 1 && in.rng.Float64() >= p {
			continue
		}
		r.Injected++
		if r.LatencyMs > 0 {
			d.latency += time.Duration(r.LatencyMs) * time.Millisecond
			in.stats.Latency++
		}
		if r.Status > 0 && d.status == 0 {
			d.status = r.Status
			in.stats.Status++
		}
		if r.Drop {
			d.drop = true
			in.stats.Drop++
		}
		if r.SlowBodyMs > 0 {
			d.slowBody = time.Duration(r.SlowBodyMs) * time.Millisecond
			in.stats.SlowBody++
		}
		if r.CorruptByte {
			d.corrupt = true
			in.stats.CorruptByte++
		}
	}
	return d
}

// corruptIndex draws the byte position to flip for an n-byte body.
func (in *Injector) corruptIndex(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return in.rng.Intn(n)
}

// Corrupter deterministically mangles byte slices — the shared
// corruption path of the HTTP corrupt-byte rule and file-level tests
// (torn segment tails, flipped record bytes) that previously
// hand-picked offsets.
type Corrupter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewCorrupter returns a Corrupter seeded with seed.
func NewCorrupter(seed int64) *Corrupter {
	return &Corrupter{rng: rand.New(rand.NewSource(seed))}
}

// FlipByte inverts one PRNG-chosen byte of b in place and returns its
// index (-1 for an empty slice).
func (c *Corrupter) FlipByte(b []byte) int {
	if len(b) == 0 {
		return -1
	}
	c.mu.Lock()
	i := c.rng.Intn(len(b))
	c.mu.Unlock()
	b[i] ^= 0xff
	return i
}

// FlipByteIn is FlipByte restricted to b[from:to] — corrupting a known
// region (one record's value) while leaving framing around it intact.
func (c *Corrupter) FlipByteIn(b []byte, from, to int) int {
	if from < 0 || to > len(b) || from >= to {
		return -1
	}
	c.mu.Lock()
	i := from + c.rng.Intn(to-from)
	c.mu.Unlock()
	b[i] ^= 0xff
	return i
}

// TornTail returns how many tail bytes to chop off an n-byte file to
// simulate a crash mid-append: 1..max(1, limit) bytes, never the whole
// file.
func (c *Corrupter) TornTail(n, limit int) int {
	if n <= 1 {
		return 0
	}
	if limit < 1 || limit > n-1 {
		limit = n - 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return 1 + c.rng.Intn(limit)
}
