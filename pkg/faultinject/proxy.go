package faultinject

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ControlPrefix is the path prefix under which a Proxy serves its
// injector's control API; everything else is forwarded to the target.
const ControlPrefix = "/__faults"

// Proxy is a fault-injecting reverse proxy: it forwards every request
// to one target backend, applying the injector's rules on the way
// through — the wire-level stand-in for a flaky network path or a
// misbehaving replica, without touching either endpoint's code.
//
// The injector's control API is mounted under /__faults (ControlPrefix)
// on the proxy itself, so a test or demo can install and remove rules
// with plain HTTP while traffic flows.
type Proxy struct {
	target string
	in     *Injector
	client *http.Client
	ctrl   http.Handler
}

// NewProxy returns a proxy forwarding to target (a base URL such as
// "http://127.0.0.1:8723") through in's rules.  client performs the
// upstream requests (nil selects a plain http.Client using
// http.DefaultTransport — deliberately not the faulting Transport: the
// proxy injects on its own).
func NewProxy(target string, in *Injector, client *http.Client) *Proxy {
	if client == nil {
		client = &http.Client{}
	}
	return &Proxy{
		target: strings.TrimRight(target, "/"),
		in:     in,
		client: client,
		ctrl:   in.ControlHandler(),
	}
}

// Target returns the backend base URL the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, ControlPrefix) {
		http.StripPrefix(ControlPrefix, p.ctrl).ServeHTTP(w, r)
		return
	}
	var body []byte
	if r.Body != nil {
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxPeekBody))
		r.Body.Close()
		if err != nil {
			http.Error(w, fmt.Sprintf(`{"error":"faultinject: read body: %v"}`, err), http.StatusBadGateway)
			return
		}
		body = raw
	}

	d := p.in.decide(r.Method, r.URL.Path, p.target, body)
	if err := sleepCtx(r.Context(), d.latency); err != nil {
		panic(http.ErrAbortHandler)
	}
	if d.drop {
		// Abort the connection without a response — the client sees a
		// transport-level failure, exactly like a mid-flight reset.
		panic(http.ErrAbortHandler)
	}
	if d.status > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(d.status)
		fmt.Fprintf(w, `{"error":"faultinject: injected status %d"}`, d.status)
		return
	}

	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"faultinject: build upstream request: %v"}`, err), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := p.client.Do(out)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"faultinject: upstream: %v"}`, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	wrapResponseBody(p.in, resp, d)

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				// NDJSON streams through the proxy must keep their
				// per-line delivery: flush every chunk.
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// ControlHandler serves the injector's runtime rule API:
//
//	GET    /rules        the rule set with per-rule injection counts
//	POST   /rules        add a Rule (JSON body); responds {"id": ...}
//	DELETE /rules?id=ID  remove one rule
//	POST   /reset        remove every rule
//	GET    /stats        cumulative injection counters
func (in *Injector) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /rules", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, in.Rules())
	})
	mux.HandleFunc("POST /rules", func(w http.ResponseWriter, r *http.Request) {
		var rule Rule
		dec := json.NewDecoder(io.LimitReader(r.Body, maxPeekBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rule); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":"faultinject: decode rule: %v"}`, err), http.StatusBadRequest)
			return
		}
		writeJSON(w, struct {
			ID string `json:"id"`
		}{ID: in.Add(rule)})
	})
	mux.HandleFunc("DELETE /rules", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, `{"error":"faultinject: ?id= is required"}`, http.StatusBadRequest)
			return
		}
		if !in.Remove(id) {
			http.Error(w, fmt.Sprintf(`{"error":"faultinject: unknown rule %q"}`, id), http.StatusNotFound)
			return
		}
		writeJSON(w, struct {
			Removed string `json:"removed"`
		}{Removed: id})
	})
	mux.HandleFunc("POST /reset", func(w http.ResponseWriter, _ *http.Request) {
		in.Reset()
		writeJSON(w, struct {
			OK bool `json:"ok"`
		}{OK: true})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, in.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
