package faultinject

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newEchoBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Backend", "echo")
		fmt.Fprintf(w, "echo:%s:%s", r.URL.Path, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestProxyPassthrough(t *testing.T) {
	backend := newEchoBackend(t)
	proxy := httptest.NewServer(NewProxy(backend.URL, New(1), nil))
	defer proxy.Close()

	resp, err := http.Post(proxy.URL+"/v1/simulations", "application/json", strings.NewReader(`{"benchmark":"gzip"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != `echo:/v1/simulations:{"benchmark":"gzip"}` {
		t.Fatalf("passthrough = %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Backend") != "echo" {
		t.Error("backend headers not forwarded")
	}
}

func TestProxyStatusInjection(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	in.Add(Rule{Match: Match{Path: "/v1/"}, Status: 500})
	proxy := httptest.NewServer(NewProxy(backend.URL, in, nil))
	defer proxy.Close()

	resp, err := http.Post(proxy.URL+"/v1/simulations", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d, want injected 500", resp.StatusCode)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == "" {
		t.Fatalf("injected status body is not the JSON error envelope: %v %q", err, env.Error)
	}
	// Non-matching path passes through.
	resp2, err := http.Get(proxy.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("non-matching path got %d", resp2.StatusCode)
	}
	if st := in.Stats(); st.Status != 1 {
		t.Errorf("status injections = %d, want 1", st.Status)
	}
}

func TestProxyDropInjection(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	in.Add(Rule{Drop: true, MaxCount: 1})
	proxy := httptest.NewServer(NewProxy(backend.URL, in, nil))
	defer proxy.Close()

	if _, err := http.Get(proxy.URL + "/x"); err == nil {
		t.Fatal("dropped request returned a response")
	}
	// MaxCount exhausted: the next request flows.
	resp, err := http.Get(proxy.URL + "/x")
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	resp.Body.Close()
}

func TestProxyBodyMatchAndMaxCount(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	in.Add(Rule{Match: Match{BodyContains: `"benchmark":"mcf"`}, Status: 503, MaxCount: 2})
	proxy := httptest.NewServer(NewProxy(backend.URL, in, nil))
	defer proxy.Close()

	post := func(body string) int {
		resp, err := http.Post(proxy.URL+"/v1/simulations", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := post(`{"benchmark":"gzip"}`); got != 200 {
		t.Errorf("gzip got %d", got)
	}
	if got := post(`{"benchmark":"mcf"}`); got != 503 {
		t.Errorf("mcf #1 got %d, want 503", got)
	}
	if got := post(`{"benchmark":"mcf"}`); got != 503 {
		t.Errorf("mcf #2 got %d, want 503", got)
	}
	if got := post(`{"benchmark":"mcf"}`); got != 200 {
		t.Errorf("mcf #3 got %d, want 200 after MaxCount", got)
	}
}

func TestProxyCorruptByte(t *testing.T) {
	payload := strings.Repeat("A", 256)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, payload)
	}))
	defer backend.Close()
	in := New(7)
	in.Add(Rule{CorruptByte: true})
	proxy := httptest.NewServer(NewProxy(backend.URL, in, nil))
	defer proxy.Close()

	resp, err := http.Get(proxy.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if len(body) != len(payload) {
		t.Fatalf("corrupted body length %d, want %d", len(body), len(payload))
	}
	diff := 0
	for i := range body {
		if body[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
}

func TestTransportLatencyAndStatus(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	in.Add(Rule{Match: Match{Method: "POST"}, LatencyMs: 30})
	in.Add(Rule{Match: Match{Method: "POST"}, Status: 502})
	client := &http.Client{Transport: in.Transport(nil)}

	start := time.Now()
	resp, err := client.Post(backend.URL+"/v1/x", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Errorf("latency rule not applied: round trip took %v", took)
	}
	if resp.StatusCode != 502 {
		t.Errorf("status = %d, want composed 502", resp.StatusCode)
	}
	// GET matches neither rule.
	resp2, err := client.Get(backend.URL + "/v1/x")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("GET got %d", resp2.StatusCode)
	}
}

func TestTransportDrop(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	in.Add(Rule{Drop: true})
	client := &http.Client{Transport: in.Transport(nil)}
	if _, err := client.Get(backend.URL + "/x"); err == nil {
		t.Fatal("dropped request returned a response")
	}
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	draw := func(seed int64) []bool {
		in := New(seed)
		in.Add(Rule{Probability: 0.5, Status: 500})
		out := make([]bool, 32)
		for i := range out {
			d := in.decide("POST", "/x", "b", nil)
			out[i] = d.status != 0
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 32-draw sequence")
	}
}

func TestControlAPI(t *testing.T) {
	backend := newEchoBackend(t)
	in := New(1)
	proxy := httptest.NewServer(NewProxy(backend.URL, in, nil))
	defer proxy.Close()

	// Install a rule over the wire.
	resp, err := http.Post(proxy.URL+ControlPrefix+"/rules", "application/json",
		strings.NewReader(`{"match":{"path":"/v1/"},"status":500}`))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if added.ID == "" {
		t.Fatal("POST /rules returned no id")
	}

	if r2, err := http.Post(proxy.URL+"/v1/x", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatal(err)
	} else {
		r2.Body.Close()
		if r2.StatusCode != 500 {
			t.Fatalf("installed rule not applied: %d", r2.StatusCode)
		}
	}

	// List shows the rule with its injection count.
	r3, err := http.Get(proxy.URL + ControlPrefix + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	var rules []Rule
	if err := json.NewDecoder(r3.Body).Decode(&rules); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if len(rules) != 1 || rules[0].Injected != 1 {
		t.Fatalf("rules = %+v, want 1 rule with 1 injection", rules)
	}

	// Delete it; traffic flows again.
	req, _ := http.NewRequest(http.MethodDelete, proxy.URL+ControlPrefix+"/rules?id="+added.ID, nil)
	r4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != 200 {
		t.Fatalf("DELETE rule: %d", r4.StatusCode)
	}
	r5, err := http.Post(proxy.URL+"/v1/x", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r5.Body.Close()
	if r5.StatusCode != 200 {
		t.Fatalf("after delete: %d", r5.StatusCode)
	}
}

func TestCorrupterDeterminism(t *testing.T) {
	mk := func() []byte { return bytes.Repeat([]byte{0x11}, 64) }
	a, b := mk(), mk()
	i := NewCorrupter(5).FlipByte(a)
	j := NewCorrupter(5).FlipByte(b)
	if i != j || !bytes.Equal(a, b) {
		t.Fatalf("same seed corrupted different bytes: %d vs %d", i, j)
	}
	if a[i] != 0x11^0xff {
		t.Errorf("byte %d = %#x, want flipped", i, a[i])
	}
	c := NewCorrupter(5)
	if n := c.TornTail(100, 16); n < 1 || n > 16 {
		t.Errorf("TornTail = %d, want 1..16", n)
	}
	if n := c.TornTail(1, 8); n != 0 {
		t.Errorf("TornTail of 1-byte file = %d, want 0", n)
	}
	if idx := NewCorrupter(9).FlipByteIn(mk(), 10, 20); idx < 10 || idx >= 20 {
		t.Errorf("FlipByteIn = %d, want in [10,20)", idx)
	}
}
