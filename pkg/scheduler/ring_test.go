package scheduler

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node name accepted")
	}
	r, err := NewRing([]string{"b", "a", "b"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Nodes() = %v, want [a b]", got)
	}
}

func TestRingAssignmentIsOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Node(key) != b.Node(key) {
			t.Fatalf("key %q: assignment differs across construction orders (%s vs %s)",
				key, a.Node(key), b.Node(key))
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 10_000
	for i := 0; i < keys; i++ {
		counts[r.Node(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range r.Nodes() {
		if c := counts[n]; c < keys/10 {
			t.Errorf("node %s owns only %d/%d keys — ring badly unbalanced", n, c, keys)
		}
	}
}

func TestRingRemovalMovesOnlyLostKeys(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Node(key)
		after := reduced.Node(key)
		// Consistent hashing: only keys whose home was the removed node
		// may move.
		if before != "n3" && after != before {
			t.Fatalf("key %q moved from surviving node %s to %s when n3 left", key, before, after)
		}
		// Keys that lose their home land on their next ring node.
		if before == "n3" {
			if want := full.Sequence(key)[1]; after != want {
				t.Fatalf("key %q re-homed to %s, want next ring node %s", key, after, want)
			}
		}
	}
}

func TestRingSequenceCoversAllNodesOnce(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.Sequence(key)
		if len(seq) != 4 {
			t.Fatalf("key %q: sequence %v does not cover the ring", key, seq)
		}
		if seq[0] != r.Node(key) {
			t.Fatalf("key %q: sequence head %s != home node %s", key, seq[0], r.Node(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("key %q: node %s repeats in sequence %v", key, n, seq)
			}
			seen[n] = true
		}
	}
}
