package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

func newCachedScheduler(t *testing.T, backends []string) *Scheduler {
	t.Helper()
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends: backends,
		Cache:    resultstore.NewMemory(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestSchedulerCacheAnswersRepeatedSuite is the frontend-tier
// acceptance test: a repeated identical suite is answered entirely from
// the scheduler's response store — the stub backend sees zero
// additional requests.
func TestSchedulerCacheAnswersRepeatedSuite(t *testing.T) {
	stub, requests := cannedBackend(t, nil)
	sched := newCachedScheduler(t, []string{stub.URL})
	suite := frontendsim.SuiteRequest{Benchmarks: []string{"gzip", "mcf"}}
	ctx := context.Background()

	first, served, err := sched.RunSuiteServed(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if requests.Load() != 2 {
		t.Fatalf("first run dispatched %d backend requests, want 2", requests.Load())
	}
	if served.Dispatched != 2 || served.Cached != 0 {
		t.Fatalf("first run served = %+v, want 2 dispatched", served)
	}
	if got := served.XCache(); got != "MISS" {
		t.Errorf("first run XCache = %q, want MISS", got)
	}

	second, served, err := sched.RunSuiteServed(ctx, suite)
	if err != nil {
		t.Fatal(err)
	}
	if requests.Load() != 2 {
		t.Errorf("repeated suite dispatched %d more backend requests, want 0",
			requests.Load()-2)
	}
	if served.Cached != 2 || served.Dispatched != 0 {
		t.Errorf("repeated run served = %+v, want 2 cached", served)
	}
	if got := served.XCache(); got != "HIT" {
		t.Errorf("repeated run XCache = %q, want HIT", got)
	}
	// The cached answer is byte-identical to the dispatched one.
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Error("cached suite response differs from the dispatched one")
	}
	st := sched.Stats()
	if st.Dispatched != 2 || st.CacheHits != 2 {
		t.Errorf("stats = %+v, want 2 dispatched / 2 cache hits", st)
	}

	// A superset suite re-dispatches only the new key.
	_, served, err = sched.RunSuiteServed(ctx, frontendsim.SuiteRequest{
		Benchmarks: []string{"gzip", "mcf", "crafty"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if requests.Load() != 3 {
		t.Errorf("superset suite dispatched %d total backend requests, want 3", requests.Load())
	}
	if served.Cached != 2 || served.Dispatched != 1 {
		t.Errorf("superset run served = %+v, want 2 cached + 1 dispatched", served)
	}
	if got := served.XCache(); got != "PARTIAL" {
		t.Errorf("superset run XCache = %q, want PARTIAL", got)
	}
}

// TestSchedulerCacheSurvivesDeadBackends pins the failover story at its
// strongest: once a suite is cached at the scheduler tier, it is
// answered even with every backend gone.
func TestSchedulerCacheSurvivesDeadBackends(t *testing.T) {
	stub, _ := cannedBackend(t, nil)
	sched := newCachedScheduler(t, []string{stub.URL})
	suite := frontendsim.SuiteRequest{Benchmarks: []string{"gzip"}}
	ctx := context.Background()

	if _, err := sched.RunSuite(ctx, suite); err != nil {
		t.Fatal(err)
	}
	stub.Close()
	res, served, err := sched.RunSuiteServed(ctx, suite)
	if err != nil {
		t.Fatalf("cached suite failed after backend death: %v", err)
	}
	if served.Cached != 1 || res.Results[0] == nil {
		t.Errorf("served = %+v, want 1 cached shard", served)
	}
	// An uncached request still fails — the cache does not mask real
	// dispatch errors.
	if _, err := sched.Dispatch(ctx, frontendsim.Request{Benchmark: "mcf"}); err == nil {
		t.Error("uncached dispatch to a dead ring succeeded")
	}
}

// TestSchedulerServerXCacheHeaders drives the HTTP layer: /v1/suites
// carries X-Cache MISS then HIT across a repeat, /v1/simulations
// reports per-request sources, and /v1/cache/stats exposes the tier.
func TestSchedulerServerXCacheHeaders(t *testing.T) {
	stub, requests := cannedBackend(t, nil)
	sched := newCachedScheduler(t, []string{stub.URL})
	srv := NewServer(sched)

	postSuite := func() *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/suites",
			strings.NewReader(`{"benchmarks":["gzip","mcf"],"request":{}}`))
		srv.ServeHTTP(w, r)
		return w
	}
	first := postSuite()
	if first.Code != http.StatusOK || first.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first suite: status %d, X-Cache %q, want 200 MISS",
			first.Code, first.Header().Get("X-Cache"))
	}
	second := postSuite()
	if second.Header().Get("X-Cache") != "HIT" {
		t.Errorf("repeated suite X-Cache = %q, want HIT", second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cached suite body differs")
	}
	if requests.Load() != 2 {
		t.Errorf("backend saw %d requests, want 2 (second suite fully cached)", requests.Load())
	}

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/simulations",
		strings.NewReader(`{"benchmark":"gzip"}`)))
	if w.Header().Get("X-Cache") != "HIT" {
		t.Errorf("cached simulation X-Cache = %q, want HIT", w.Header().Get("X-Cache"))
	}

	stats := httptest.NewRecorder()
	srv.ServeHTTP(stats, httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil))
	var st struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Tiers   []resultstore.TierStats
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Hits != 3 {
		t.Errorf("cache stats = %+v, want 2 entries / 3 hits", st)
	}
	if len(st.Tiers) != 1 || st.Tiers[0].Tier != "memory" {
		t.Errorf("tiers = %+v, want one memory tier", st.Tiers)
	}
}

// TestSchedulerCoalescedCacheHitCountsAsCached pins the accounting for
// a caller that joins an in-flight lookup the store answered: it was
// served by the cache (no backend contacted on its behalf), so it
// reports SourceCached — a fully cache-served suite says HIT even when
// two identical suites race.
func TestSchedulerCoalescedCacheHitCountsAsCached(t *testing.T) {
	stub, requests := cannedBackend(t, nil)
	sched := newCachedScheduler(t, []string{stub.URL})
	ctx := context.Background()
	req := frontendsim.Request{Benchmark: "gzip"}

	if _, err := sched.Dispatch(ctx, req); err != nil { // warm the store
		t.Fatal(err)
	}
	const callers = 6
	var wg sync.WaitGroup
	sources := make([]Source, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, src, err := sched.DispatchSource(ctx, req)
			if err != nil {
				t.Error(err)
				return
			}
			sources[i] = src
		}(i)
	}
	wg.Wait()
	for i, src := range sources {
		if src != SourceCached {
			t.Errorf("caller %d source = %v, want SourceCached", i, src)
		}
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("backend saw %d requests, want 1 (warming only)", n)
	}
	if st := sched.Stats(); st.CacheHits != callers || st.Coalesced != 0 {
		t.Errorf("stats = %+v, want %d cache hits / 0 coalesced", st, callers)
	}
}

// TestSchedulerNoCacheUnchanged pins the default: without a configured
// store the scheduler re-dispatches repeats and reports MISS.
func TestSchedulerNoCacheUnchanged(t *testing.T) {
	stub, requests := cannedBackend(t, nil)
	sched := newScheduler(t, []string{stub.URL})
	suite := frontendsim.SuiteRequest{Benchmarks: []string{"gzip"}}
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		_, served, err := sched.RunSuiteServed(ctx, suite)
		if err != nil {
			t.Fatal(err)
		}
		if served.Dispatched != 1 || served.XCache() != "MISS" {
			t.Errorf("run %d served = %+v (XCache %s), want 1 dispatched MISS",
				i, served, served.XCache())
		}
	}
	if requests.Load() != 2 {
		t.Errorf("backend saw %d requests, want 2 (no cache tier)", requests.Load())
	}
	if st := sched.Stats(); st.CacheHits != 0 {
		t.Errorf("cacheless scheduler reports %d cache hits", st.CacheHits)
	}
	if got := sched.CacheStats(); got != nil {
		t.Errorf("CacheStats = %+v, want nil", got)
	}
}

// TestSchedulerCachedSuiteByteIdentical runs a real 3-benchmark suite
// through real backends twice — the second run entirely from the
// scheduler store — and asserts both responses are byte-identical to
// the serial in-process reference.
func TestSchedulerCachedSuiteByteIdentical(t *testing.T) {
	backends := newBackends(t, 2)
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends: urls(backends),
		Cache:    resultstore.NewMemory(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	dispatched, _, err := sched.RunSuiteServed(ctx, tenBenchSuite())
	if err != nil {
		t.Fatal(err)
	}
	cached, served, err := sched.RunSuiteServed(ctx, tenBenchSuite())
	if err != nil {
		t.Fatal(err)
	}
	if served.XCache() != "HIT" {
		t.Fatalf("second run XCache = %q, want HIT (served: %+v)", served.XCache(), served)
	}
	want := serialReferenceJSON(t)
	for name, res := range map[string]*frontendsim.SuiteResult{"dispatched": dispatched, "cached": cached} {
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s suite response is not byte-identical to the serial reference", name)
		}
	}
}
