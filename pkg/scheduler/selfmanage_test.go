package scheduler

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
)

// fleetNode is a canned backend for the self-managing-ring tests: it
// serves /healthz and POST /v1/simulations, with switches to take the
// whole node down (kill), fail only the health check, or gate
// simulation responses (for in-flight tests).
type fleetNode struct {
	srv       *httptest.Server
	down      atomic.Bool // everything fails (a killed process)
	unhealthy atomic.Bool // /healthz fails, simulations still served
	simHits   atomic.Int64
	simGate   atomic.Pointer[chan struct{}] // when set, simulations block on it
	started   chan struct{}                 // signalled when a simulation begins
}

func newFleetNode(t *testing.T) *fleetNode {
	t.Helper()
	n := &fleetNode{started: make(chan struct{}, 8)}
	body, _ := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if n.down.Load() {
			http.Error(w, "node is down", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/healthz" {
			if n.unhealthy.Load() {
				http.Error(w, "not ready", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
			return
		}
		n.simHits.Add(1)
		select {
		case n.started <- struct{}{}:
		default:
		}
		if gate := n.simGate.Load(); gate != nil {
			<-*gate
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

func fleetURLs(nodes []*fleetNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.srv.URL
	}
	return out
}

// TestSetBackendsRedirectsTraffic pins the atomic ring swap: a request
// homed on node A lands on A, and after SetBackends removes A the same
// request reshards onto the remaining node.
func TestSetBackendsRedirectsTraffic(t *testing.T) {
	a, b := newFleetNode(t), newFleetNode(t)
	sched := newScheduler(t, []string{a.srv.URL, b.srv.URL})
	req, _ := homedRequest(t, sched, a.srv.URL)

	if _, err := sched.Dispatch(t.Context(), req); err != nil {
		t.Fatal(err)
	}
	if a.simHits.Load() != 1 || b.simHits.Load() != 0 {
		t.Fatalf("before swap: hits a=%d b=%d, want 1/0", a.simHits.Load(), b.simHits.Load())
	}

	if err := sched.SetBackends([]string{b.srv.URL}); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Dispatch(t.Context(), req); err != nil {
		t.Fatal(err)
	}
	if a.simHits.Load() != 1 || b.simHits.Load() != 1 {
		t.Fatalf("after swap: hits a=%d b=%d, want 1/1", a.simHits.Load(), b.simHits.Load())
	}
	if st := sched.Stats(); st.RingSwaps != 1 || st.Retried != 0 {
		t.Errorf("stats = %+v, want 1 ring swap and 0 retries", st)
	}

	if err := sched.SetBackends(nil); err == nil {
		t.Error("SetBackends(nil) = nil error, want rejection (last ring must survive)")
	}
	if got := sched.Ring().Nodes(); len(got) != 1 || got[0] != b.srv.URL {
		t.Errorf("ring after rejected empty swap = %v, want [%s]", got, b.srv.URL)
	}
}

// TestRingSwapUnderConcurrentDispatch hammers SetBackends while
// dispatches are in flight (run under -race): every dispatch must
// succeed against whichever ring it captured, and no swap may corrupt
// routing.
func TestRingSwapUnderConcurrentDispatch(t *testing.T) {
	a, b, c := newFleetNode(t), newFleetNode(t), newFleetNode(t)
	all := []string{a.srv.URL, b.srv.URL, c.srv.URL}
	sched := newScheduler(t, all)

	rings := [][]string{all, {a.srv.URL, b.srv.URL}, {b.srv.URL, c.srv.URL}, {c.srv.URL}}
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := sched.SetBackends(rings[i%len(rings)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var dispatchers sync.WaitGroup
	benches := frontendsim.Benchmarks()
	for w := 0; w < 4; w++ {
		dispatchers.Add(1)
		go func(w int) {
			defer dispatchers.Done()
			for i := 0; i < 50; i++ {
				req := frontendsim.Request{Benchmark: benches[(w*50+i)%len(benches)], Frontends: 1 + i%4}
				if req.Frontends == 3 { // 4 clusters must divide evenly
					req.Frontends = 4
				}
				if _, err := sched.Dispatch(t.Context(), req); err != nil {
					t.Errorf("dispatch during ring churn: %v", err)
					return
				}
			}
		}(w)
	}
	dispatchers.Wait()
	close(stop)
	swapper.Wait()
	if st := sched.Stats(); st.Dispatched == 0 {
		t.Errorf("stats = %+v, want dispatches recorded", st)
	}
}

// TestQuarantinedMemberServesInFlight pins the drain semantics: a
// member whose health check starts failing is quarantined (new traffic
// reshards away) while a request already in flight to it runs to
// completion, uninterrupted.
func TestQuarantinedMemberServesInFlight(t *testing.T) {
	a, b := newFleetNode(t), newFleetNode(t)
	sched := newScheduler(t, []string{a.srv.URL, b.srv.URL})
	reg, err := membership.New(membership.Config{
		ProbeInterval:   time.Hour, // driven manually via ProbeNow
		ProbeTimeout:    2 * time.Second,
		QuarantineAfter: 1,
		EvictAfter:      -1,
		OnChange:        sched.OnMembershipChange(),
	}, []string{a.srv.URL, b.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	// Park a request on A, gated so it stays in flight.
	gate := make(chan struct{})
	a.simGate.Store(&gate)
	req, _ := homedRequest(t, sched, a.srv.URL)
	type result struct {
		res *frontendsim.Result
		err error
	}
	resc := make(chan result, 1)
	go func() {
		res, err := sched.Dispatch(t.Context(), req)
		resc <- result{res, err}
	}()
	select {
	case <-a.started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached A")
	}

	// A's health collapses; one probe round quarantines it and swaps the
	// ring — but must not touch the parked request.
	a.unhealthy.Store(true)
	reg.ProbeNow(t.Context())
	if got := reg.Active(); len(got) != 1 || got[0] != b.srv.URL {
		t.Fatalf("active after failed probe = %v, want just B", got)
	}
	if got := sched.Ring().Nodes(); len(got) != 1 || got[0] != b.srv.URL {
		t.Fatalf("ring after quarantine = %v, want just B", got)
	}

	// New dispatches reshard onto B while A drains.  (A distinct key:
	// re-dispatching the parked request would coalesce with it.)
	other := req
	other.BankHopping = !req.BankHopping
	if _, err := sched.Dispatch(t.Context(), other); err != nil {
		t.Fatalf("resharded dispatch: %v", err)
	}
	if b.simHits.Load() == 0 {
		t.Error("resharded dispatch did not land on B")
	}

	// Release the gate: the parked request on quarantined A completes.
	close(gate)
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("in-flight request on quarantined member = %v, want completion", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete after quarantine")
	}
}

// postSimulation runs one request through the scheduler HTTP server and
// returns the response status (body drained and closed).
func postSimulation(t *testing.T, baseURL string, req frontendsim.Request) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/simulations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/simulations: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestSelfManagingRingIntegration is the acceptance test from the
// issue: a 3-backend fleet under continuous load; killing one backend
// quarantines it within QuarantineAfter probe rounds and evicts it
// after the deadline with zero client-visible request failures; a
// restart plus admin rejoin puts it back in rotation; and /metrics
// reflects the quarantine, the eviction and the request traffic.
func TestSelfManagingRingIntegration(t *testing.T) {
	nodes := []*fleetNode{newFleetNode(t), newFleetNode(t), newFleetNode(t)}
	metrics := obs.NewRegistry()
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends: fleetURLs(nodes),
		Metrics:  metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg, regErr := membership.New(membership.Config{
		ProbeInterval:   time.Hour, // rounds driven manually: "within 2
		ProbeTimeout:    2 * time.Second,
		QuarantineAfter: 2, // probe intervals" holds by construction
		EvictAfter:      60 * time.Millisecond,
		OnChange:        sched.OnMembershipChange(),
		Metrics:         metrics,
	}, fleetURLs(nodes))
	if regErr != nil {
		t.Fatal(regErr)
	}
	front := httptest.NewServer(NewServer(sched, WithMembership(reg), WithMetrics(metrics)))
	t.Cleanup(front.Close)

	// Continuous client load: every benchmark, repeatedly, recording any
	// non-200 response.  The scheduler's ring walk must absorb the kill,
	// the quarantine, the eviction and the rejoin invisibly.
	benches := frontendsim.Benchmarks()
	var failures atomic.Int64
	loadRound := func() {
		for _, bench := range benches {
			if code := postSimulation(t, front.URL, frontendsim.Request{Benchmark: bench}); code != http.StatusOK {
				failures.Add(1)
				t.Errorf("client saw status %d for %s", code, bench)
			}
		}
	}

	loadRound() // healthy baseline
	victim := nodes[0]
	victimReq, _ := homedRequest(t, sched, victim.srv.URL)

	// Kill the victim.  Requests homed on it now fail over inside the
	// walk until the probes catch up.
	victim.down.Store(true)
	loadRound()

	// First failed probe round: still active (QuarantineAfter=2).
	reg.ProbeNow(t.Context())
	if got := len(reg.Active()); got != 3 {
		t.Fatalf("active after 1 failed probe = %d members, want 3", got)
	}
	loadRound()

	// Second failed round: quarantined, ring swaps to 2 nodes.
	reg.ProbeNow(t.Context())
	if got := reg.Active(); len(got) != 2 {
		t.Fatalf("active after 2 failed probes = %v, want 2 members", got)
	}
	if got := sched.Ring().Nodes(); len(got) != 2 {
		t.Fatalf("ring after quarantine = %v, want 2 nodes", got)
	}
	epochAtQuarantine := reg.Epoch()
	hitsAtQuarantine := victim.simHits.Load()
	loadRound()
	if got := victim.simHits.Load(); got != hitsAtQuarantine {
		t.Errorf("quarantined backend received %d new requests, want 0", got-hitsAtQuarantine)
	}

	// Past the deadline the next round evicts it permanently.
	time.Sleep(80 * time.Millisecond)
	reg.ProbeNow(t.Context())
	if got := len(reg.Snapshot()); got != 2 {
		t.Fatalf("members after eviction deadline = %d, want 2", got)
	}
	if st := reg.Stats(); st.Quarantines != 1 || st.Evictions != 1 {
		t.Fatalf("membership stats = %+v, want 1 quarantine and 1 eviction", st)
	}
	loadRound()

	// "Restart" the victim and rejoin it through the admin API — the
	// same call simd's -announce flag makes on startup.
	victim.down.Store(false)
	if err := membership.Announce(t.Context(), nil, front.URL, victim.srv.URL); err != nil {
		t.Fatalf("rejoin announce: %v", err)
	}
	if got := reg.Active(); len(got) != 3 {
		t.Fatalf("active after rejoin = %v, want 3 members", got)
	}
	if got := sched.Ring().Nodes(); len(got) != 3 {
		t.Fatalf("ring after rejoin = %v, want 3 nodes", got)
	}
	if reg.Epoch() <= epochAtQuarantine {
		t.Errorf("epoch after rejoin = %d, want > %d", reg.Epoch(), epochAtQuarantine)
	}
	loadRound()

	// The rejoined backend is back in rotation: its homed request lands
	// on it again.
	before := victim.simHits.Load()
	if code := postSimulation(t, front.URL, victimReq); code != http.StatusOK {
		t.Fatalf("post-rejoin homed request: status %d", code)
	}
	if victim.simHits.Load() != before+1 {
		t.Error("post-rejoin homed request did not land on the rejoined backend")
	}

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d client-visible failures across kill/quarantine/evict/rejoin, want 0", got)
	}

	// GET /v1/ring reports membership state alongside the ring.
	resp, err := http.Get(front.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ringOut struct {
		Backends []string          `json:"backends"`
		Epoch    uint64            `json:"epoch"`
		Members  []membership.Info `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ringOut); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ringOut.Backends) != 3 || len(ringOut.Members) != 3 || ringOut.Epoch == 0 {
		t.Errorf("GET /v1/ring = %+v, want 3 backends, 3 members, nonzero epoch", ringOut)
	}

	// /metrics shows the lifecycle counters and the traffic histograms.
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(raw)
	for _, want := range []string{
		`ring_transitions_total{kind="quarantine"} 1`,
		`ring_transitions_total{kind="evict"} 1`,
		`ring_members{state="active"} 3`,
		`scheduler_ring_size 3`,
		`http_request_duration_seconds_count{handler="POST /v1/simulations",code="200"}`,
		`scheduler_dispatches_total{kind="dispatched"}`,
		`scheduler_dispatches_total{kind="retried"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The kill forced real failovers, so the retried counter must have
	// moved — the histograms and counters change under fleet events, not
	// just exist.
	if st := sched.Stats(); st.Retried == 0 {
		t.Errorf("stats = %+v, want retries recorded while the victim was dead but routable", st)
	}
}
