package scheduler

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/resultstore"
)

func TestHintQueueBoundsAndDedup(t *testing.T) {
	h := newHintQueue(3, 0, []string{"http://a", "http://b"}, nil)
	h.setMember("http://b", true)

	// Enqueue against a member that is not quarantined is a no-op.
	h.enqueue("http://a", "k0", []byte("v0"))
	if got := h.backlog("http://a"); got != 0 {
		t.Fatalf("backlog for active member = %d, want 0", got)
	}

	for i := 1; i <= 3; i++ {
		h.enqueue("http://b", fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if got := h.backlog("http://b"); got != 3 {
		t.Fatalf("backlog = %d, want 3", got)
	}

	// A recomputed key overwrites its pending body in place.
	h.enqueue("http://b", "k2", []byte("v2-new"))
	if got := h.backlog("http://b"); got != 3 {
		t.Fatalf("backlog after dedup = %d, want 3", got)
	}

	// A fourth distinct key drops the oldest pending write.
	h.enqueue("http://b", "k4", []byte("v4"))
	if got := h.backlog("http://b"); got != 3 {
		t.Fatalf("backlog after overflow = %d, want the limit 3", got)
	}
	if got := h.dropped.Load(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}

	entries := h.take("http://b")
	want := []hintEntry{
		{key: "k2", body: []byte("v2-new")},
		{key: "k3", body: []byte("v3")},
		{key: "k4", body: []byte("v4")},
	}
	if len(entries) != len(want) {
		t.Fatalf("take = %d entries (%v), want %d", len(entries), entries, len(want))
	}
	for i := range want {
		if entries[i].key != want[i].key || string(entries[i].body) != string(want[i].body) {
			t.Errorf("entry %d = {%s %s}, want {%s %s}",
				i, entries[i].key, entries[i].body, want[i].key, want[i].body)
		}
	}
	if got := h.queued.Load(); got != 4 {
		t.Errorf("queued = %d, want 4 distinct keys", got)
	}
}

func TestHintQueueRemoveMemberDropsBacklog(t *testing.T) {
	h := newHintQueue(8, 0, []string{"http://a", "http://b"}, nil)
	h.setMember("http://b", true)
	h.enqueue("http://b", "k1", []byte("v1"))
	h.enqueue("http://b", "k2", []byte("v2"))
	h.removeMember("http://b")
	if got := h.dropped.Load(); got != 2 {
		t.Fatalf("dropped = %d, want the 2 abandoned hints", got)
	}
	if got := h.backlog("http://b"); got != 0 {
		t.Fatalf("backlog after removal = %d", got)
	}
}

// hintBackend is a simd replica whose store and engine-run count the
// test can inspect directly.
type hintBackend struct {
	api   *simd.Server
	store resultstore.Store
	runs  *atomic.Int64
	url   string
}

func newHintBackend(t *testing.T) *hintBackend {
	t.Helper()
	store := resultstore.NewMemory(64)
	t.Cleanup(func() { store.Close() })
	var runs atomic.Int64
	eng := frontendsim.New(append(testOpts(),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				runs.Add(1)
			}
		})))...)
	api := simd.NewServerWithStore(eng, store)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return &hintBackend{api: api, store: store, runs: &runs, url: srv.URL}
}

// TestHintedHandoffReplaysOnReinstatement is the hinted-handoff
// acceptance test: quarantine backend B, compute B-homed keys on the
// survivor, reinstate B, and B must serve those keys from its replayed
// store — X-Cache: HIT, byte-identical to the survivor's computation,
// zero engine runs on B.
func TestHintedHandoffReplaysOnReinstatement(t *testing.T) {
	a, b := newHintBackend(t), newHintBackend(t)
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:  []string{a.url, b.url},
		HintLimit: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	members, err := membership.New(membership.Config{
		QuarantineAfter: 1,
		EvictAfter:      -1,
		OnChange:        sched.OnMembershipChange(),
		OnTransition:    sched.OnMembershipTransition(),
	}, []string{a.url, b.url})
	if err != nil {
		t.Fatal(err)
	}
	defer members.Close()

	// Which benchmarks home on B under the full two-member ring?
	eng := frontendsim.New(testOpts()...)
	fullRing, err := NewRing([]string{a.url, b.url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var onB []string
	keyOf := map[string]string{}
	for _, bench := range frontendsim.Benchmarks() {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if fullRing.Node(key) == b.url {
			onB = append(onB, bench)
			keyOf[bench] = key
		}
	}
	if len(onB) == 0 {
		t.Fatal("no benchmark homed on B")
	}

	// One failed dispatch quarantines B; the scheduler now routes its
	// slice to A, and every B-homed result accrues a hint.
	members.ReportDispatch(b.url, fmt.Errorf("injected dispatch failure"))
	if _, err := sched.RunSuite(context.Background(), frontendsim.SuiteRequest{Benchmarks: onB}); err != nil {
		t.Fatal(err)
	}
	if got := sched.HintBacklog(b.url); got != len(onB) {
		t.Fatalf("backlog = %d, want one hint per B-homed benchmark (%d)", got, len(onB))
	}
	if st := sched.Stats(); st.HintsQueued != uint64(len(onB)) {
		t.Fatalf("HintsQueued = %d, want %d", st.HintsQueued, len(onB))
	}
	if got := b.runs.Load(); got != 0 {
		t.Fatalf("quarantined B ran its engine %d times", got)
	}

	// Reinstating B replays the backlog asynchronously.
	if err := members.Join(b.url); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sched.Stats().HintsReplayed < uint64(len(onB)) {
		if time.Now().After(deadline) {
			t.Fatalf("replayed %d of %d before deadline (dropped %d)",
				sched.Stats().HintsReplayed, len(onB), sched.Stats().HintsDropped)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := sched.HintBacklog(b.url); got != 0 {
		t.Fatalf("backlog after replay = %d", got)
	}

	// B now serves its slice byte-identical from the replayed store.
	for _, bench := range onB {
		want, ok, err := resultstore.Peek(context.Background(), a.store, keyOf[bench])
		if err != nil || !ok {
			t.Fatalf("survivor's store missing %s", bench)
		}
		req, _ := http.NewRequest(http.MethodPost, b.url+"/v1/simulations",
			strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("benchmark %s on reinstated B: status %d X-Cache %q",
				bench, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
		if string(body) != string(want) {
			t.Errorf("benchmark %s: replayed body differs from the survivor's computation", bench)
		}
	}
	if got := b.runs.Load(); got != 0 {
		t.Errorf("reinstated B recomputed %d times; the replayed hints must serve instead", got)
	}
}

// TestHintsDroppedOnEviction pins the abandonment path: hints buffered
// for a member that is evicted are dropped, not leaked.
func TestHintsDroppedOnEviction(t *testing.T) {
	a, b := newHintBackend(t), newHintBackend(t)
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:  []string{a.url, b.url},
		HintLimit: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	transition := sched.OnMembershipTransition()
	transition(b.url, membership.TransitionQuarantine)

	eng := frontendsim.New(testOpts()...)
	fullRing, err := NewRing([]string{a.url, b.url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var onB []string
	for _, bench := range frontendsim.Benchmarks() {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if fullRing.Node(key) == b.url {
			onB = append(onB, bench)
		}
	}
	if _, err := sched.RunSuite(context.Background(), frontendsim.SuiteRequest{Benchmarks: onB[:1]}); err != nil {
		t.Fatal(err)
	}
	if got := sched.HintBacklog(b.url); got != 1 {
		t.Fatalf("backlog = %d, want 1", got)
	}
	transition(b.url, membership.TransitionEvict)
	if got := sched.HintBacklog(b.url); got != 0 {
		t.Fatalf("backlog after eviction = %d", got)
	}
	if st := sched.Stats(); st.HintsDropped != 1 {
		t.Fatalf("HintsDropped = %d, want 1", st.HintsDropped)
	}
}

// TestHintsDisabledByDefault: without HintLimit the dispatch path never
// buffers and the stats stay zero.
func TestHintsDisabledByDefault(t *testing.T) {
	backends := newBackends(t, 2)
	sched := newScheduler(t, urls(backends))
	sched.OnMembershipTransition()(backends[1].URL(), membership.TransitionQuarantine)
	if _, err := sched.RunSuite(context.Background(), frontendsim.SuiteRequest{
		Benchmarks: frontendsim.Benchmarks()[:2],
	}); err != nil {
		t.Fatal(err)
	}
	st := sched.Stats()
	if st.HintsQueued != 0 || st.HintsReplayed != 0 || st.HintsDropped != 0 {
		t.Fatalf("hint stats moved with hints disabled: %+v", st)
	}
	if sched.HintBacklog(backends[1].URL()) != 0 {
		t.Fatal("backlog nonzero with hints disabled")
	}
}
