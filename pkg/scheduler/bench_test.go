package scheduler

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/pkg/frontendsim"
)

// BenchmarkSchedulerDispatch measures the pure dispatch overhead per
// request — canonical-key hashing, ring lookup, HTTP round trip to a
// stub backend and result decode — with zero simulation cost, the
// distributed-tier counterpart of BenchmarkSimulatorThroughput.
func BenchmarkSchedulerDispatch(b *testing.B) {
	canned, err := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	if err != nil {
		b.Fatal(err)
	}
	var nodes []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Write(canned)
		}))
		defer srv.Close()
		nodes = append(nodes, srv.URL)
	}
	sched, err := New(frontendsim.New(), Config{Backends: nodes})
	if err != nil {
		b.Fatal(err)
	}

	// Rotate over distinct keys so the ring, not one backend's socket, is
	// exercised.
	benches := frontendsim.Benchmarks()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Dispatch(ctx, frontendsim.Request{Benchmark: benches[i%len(benches)]}); err != nil {
			b.Fatal(err)
		}
	}
}
