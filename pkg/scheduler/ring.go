// Package scheduler distributes frontendsim suite requests across a ring
// of simd backends (the multi-node tier of the simulation service; see
// cmd/simsched).  Sharding is consistent hashing on the canonical
// RequestKey: each per-benchmark request has one home backend, assignment
// is a pure function of the backend set (stable across scheduler
// restarts and independent of configuration order), and a backend
// failure re-routes only that backend's keys to their next ring node.
// Within the scheduler, identical requests are single-flighted so a key
// is dispatched at most once at any moment, even across concurrent
// suites.
package scheduler

import "repro/internal/hashring"

// Ring is an immutable consistent-hash ring over a set of backend nodes.
// The implementation lives in internal/hashring so the backends' warm-up
// and anti-entropy paths share the exact assignment arithmetic without
// importing this package; Ring here is an alias, so values are
// interchangeable.
type Ring = hashring.Ring

// DefaultReplicas is the virtual-point count per node used when
// NewRing is given replicas < 1.
const DefaultReplicas = hashring.DefaultReplicas

// NewRing builds a ring over nodes (duplicates are collapsed).  The
// resulting assignment depends only on the set of node names — not their
// order — so a restarted scheduler with the same backend set shards
// identically.
func NewRing(nodes []string, replicas int) (*Ring, error) {
	return hashring.New(nodes, replicas)
}
