// Package scheduler is the multi-node suite frontend (cmd/simsched): a
// Thanos-query-frontend-style tier that expands a benchmark suite into
// per-benchmark requests, shards them across a consistent-hash ring of
// simd backends by canonical request key, fails over along the ring
// when a backend dies, and aggregates results deterministically — the
// suite response is byte-identical to a serial in-process
// frontendsim.Engine.RunSuite.
//
// The tier stack, front to back:
//
//   - Response cache (Config.Cache, a resultstore.Store): a fully
//     cached suite is answered without contacting a single backend;
//     Served/Source report the X-Cache accounting.
//   - Single-flight (internal/singleflight): identical concurrent
//     dispatches — across suites and plain simulations — resolve to
//     one store lookup and at most one backend call, with
//     reference-counted cancellation.
//   - Ring dispatch (Ring, Client): each key's home node first, then
//     up to Config.Retries failover nodes; request errors (4xx) never
//     retry, transport errors and 5xx walk the ring.
//
// De-duplication holds at every tier: duplicate keys within one suite
// dispatch once (frontendsim suite sharding), identical concurrent
// dispatches coalesce, the scheduler store absorbs repeats, and each
// simd backend single-flights and caches on the same canonical key.
//
// Ring assignment is a pure function of the backend set (128 virtual
// points per node by default): stable across scheduler restarts and
// backend-list reorderings, and removing a node re-homes only that
// node's keys.  Combined with a shared backend-side result store (see
// pkg/resultstore and examples/distributed), the ring neighbour that
// inherits a dead backend's keys serves them from the shared tier
// without recomputing — the serving-tier mirror of the paper's move of
// distributing a hot centralized structure across cooler replicas.
//
// See docs/ARCHITECTURE.md for the full request lifecycle and
// docs/OPERATIONS.md for running a backend ring.
package scheduler
