package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
)

// TestCallerCancellationIsPermanent is the retry-classification
// regression test: when the caller's own context is cancelled mid
// attempt, the ring walk stops — no useless failover dispatch of a dead
// request to the remaining backends.
func TestCallerCancellationIsPermanent(t *testing.T) {
	started := make(chan struct{}, 1)
	var first, second atomic.Int64
	blocking := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		first.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-r.Context().Done()
	}))
	t.Cleanup(blocking.Close)
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		second.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(other.Close)

	// Force the blocking backend to be every key's first attempt by
	// making it the only node, then adding the observer as failover via
	// a 2-node ring where we pick a key homed on the blocker.
	sched := newScheduler(t, []string{blocking.URL, other.URL})
	req, key := homedRequest(t, sched, blocking.URL)
	_ = key

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sched.Dispatch(ctx, req)
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch did not return after cancellation")
	}
	if n := second.Load(); n != 0 {
		t.Errorf("cancelled dispatch failed over to %d other backend(s), want 0", n)
	}
	if st := sched.Stats(); st.Retried != 0 {
		t.Errorf("stats = %+v, want 0 retried for a caller-cancelled dispatch", st)
	}
}

// TestPerAttemptTimeoutStaysRetryable is the other half of the
// classification: a hung backend that trips the HTTP client's own
// timeout (a DeadlineExceeded NOT from the caller) must keep the walk
// going — that is the case failover exists for.
func TestPerAttemptTimeoutStaysRetryable(t *testing.T) {
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hang until the client gives up
	}))
	t.Cleanup(hung.Close)
	body, _ := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	var healthyHits atomic.Int64
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		healthyHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(healthy.Close)

	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{hung.URL, healthy.URL},
		HTTPClient: &http.Client{Timeout: 150 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := homedRequest(t, sched, hung.URL)

	res, err := sched.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatalf("dispatch after per-attempt timeout = %v, want failover success", err)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("result = %+v", res)
	}
	if healthyHits.Load() != 1 {
		t.Errorf("healthy backend hits = %d, want 1", healthyHits.Load())
	}
	if st := sched.Stats(); st.Retried != 1 {
		t.Errorf("stats = %+v, want 1 retried", st)
	}
}

// homedRequest returns a valid request whose canonical key is homed on
// node, so tests can pin which backend an attempt hits first.
func homedRequest(t *testing.T, sched *Scheduler, node string) (frontendsim.Request, string) {
	t.Helper()
	for _, bench := range frontendsim.Benchmarks() {
		for _, fe := range []int{0, 2, 4} {
			req := frontendsim.Request{Benchmark: bench, Frontends: fe}
			key, err := sched.eng.RequestKey(req)
			if err != nil {
				t.Fatal(err)
			}
			if sched.Ring().Node(key) == node {
				return req, key
			}
		}
	}
	t.Fatalf("no benchmark/config homes on %s", node)
	return frontendsim.Request{}, ""
}

// slowFastPair builds two canned backends, one answering after delay,
// one immediately.
func slowFastPair(t *testing.T, delay time.Duration) (slow, fast *httptest.Server, slowHits, fastHits *atomic.Int64) {
	t.Helper()
	body, _ := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	mk := func(d time.Duration, hits *atomic.Int64) *httptest.Server {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			hits.Add(1)
			if d > 0 {
				select {
				case <-time.After(d):
				case <-r.Context().Done():
					return
				}
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	slowHits, fastHits = new(atomic.Int64), new(atomic.Int64)
	return mk(delay, slowHits), mk(0, fastHits), slowHits, fastHits
}

// TestHedgedDispatchWins pins the tail-latency path: the home node is
// slow, the hedge timer fires, the next ring node answers first, and
// the dispatch returns at hedge speed with the win accounted.
func TestHedgedDispatchWins(t *testing.T) {
	slow, fast, slowHits, fastHits := slowFastPair(t, 2*time.Second)
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{slow.URL, fast.URL},
		HedgeDelay: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := homedRequest(t, sched, slow.URL)

	start := time.Now()
	res, err := sched.Dispatch(context.Background(), req)
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("result = %+v", res)
	}
	if took > time.Second {
		t.Errorf("hedged dispatch took %v — the slow node's full latency; hedge did not fire", took)
	}
	if slowHits.Load() != 1 || fastHits.Load() != 1 {
		t.Errorf("hits = slow %d / fast %d, want 1/1", slowHits.Load(), fastHits.Load())
	}
	st := sched.Stats()
	if st.Hedged != 1 || st.HedgeWins != 1 {
		t.Errorf("stats = %+v, want 1 hedged + 1 hedge win", st)
	}
	if st.Retried != 0 {
		t.Errorf("stats = %+v: hedges must not count as retries", st)
	}
}

// TestHedgedDispatchPrimaryWins: a healthy-but-not-instant home node
// still wins when the hedge fires late or the hedged node is slower.
func TestHedgedDispatchPrimaryWins(t *testing.T) {
	fastFirst, slowSecond, _, _ := slowFastPair(t, 0)
	_ = slowSecond
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{fastFirst.URL, slowSecond.URL},
		HedgeDelay: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := homedRequest(t, sched, fastFirst.URL)
	if _, err := sched.Dispatch(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := sched.Stats(); st.Hedged != 0 || st.HedgeWins != 0 {
		t.Errorf("stats = %+v, want no hedges for a fast primary", st)
	}
}

// TestHedgedWalkStillFailsOver: with hedging enabled, hard failures
// still walk the ring (hedge is an addition, not a replacement).
func TestHedgedWalkStillFailsOver(t *testing.T) {
	var deadHits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "down"})
	}))
	t.Cleanup(dead.Close)
	body, _ := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(healthy.Close)

	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{dead.URL, healthy.URL},
		HedgeDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := homedRequest(t, sched, dead.URL)
	res, err := sched.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("result = %+v", res)
	}
	if st := sched.Stats(); st.Retried != 1 {
		t.Errorf("stats = %+v, want 1 retried (5xx failover inside the hedged walk)", st)
	}

	// And a request error still aborts everything immediately.
	refusing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "no"})
	}))
	t.Cleanup(refusing.Close)
	sched2, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{refusing.URL, healthy.URL},
		HedgeDelay: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	req2, _ := homedRequest(t, sched2, refusing.URL)
	var be *BackendError
	if _, err := sched2.Dispatch(context.Background(), req2); !errors.As(err, &be) || be.Status != http.StatusBadRequest {
		t.Errorf("err = %v, want a 400 BackendError with no failover", err)
	}
}

// TestLatencyTrackerPercentile pins the adaptive hedge trigger.
func TestLatencyTrackerPercentile(t *testing.T) {
	var lt latencyTracker
	if got := lt.percentile(0.95); got != 0 {
		t.Errorf("empty tracker percentile = %v, want 0 (not enough samples)", got)
	}
	for i := 1; i <= 100; i++ {
		lt.observe(time.Duration(i) * time.Millisecond)
	}
	p95 := lt.percentile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Errorf("p95 = %v, want ~95ms", p95)
	}
	p50 := lt.percentile(0.50)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}

	// The hedge trigger never drops below the configured floor.
	s := &Scheduler{hedgeDelay: time.Second}
	for i := 1; i <= 100; i++ {
		s.lat.observe(time.Duration(i) * time.Millisecond)
	}
	if got := s.hedgeAfter(); got != time.Second {
		t.Errorf("hedgeAfter = %v, want the 1s floor", got)
	}
	s.hedgeDelay = time.Millisecond
	if got := s.hedgeAfter(); got != p95 {
		t.Errorf("hedgeAfter = %v, want the observed p95 %v", got, p95)
	}
}

// TestConcurrentObserveAndPercentile is the tracker's -race gate.
func TestConcurrentObserveAndPercentile(t *testing.T) {
	var lt latencyTracker
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				lt.observe(time.Duration(j))
				if j%100 == 0 {
					lt.percentile(0.95)
				}
			}
		}()
	}
	wg.Wait()
}
