package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/singleflight"
	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// Config configures a Scheduler.
type Config struct {
	// Backends are the simd base URLs forming the ring (e.g.
	// "http://sim-1:8723").  At least one is required.
	Backends []string
	// Replicas is the virtual-point count per backend (< 1 selects
	// DefaultReplicas).
	Replicas int
	// Retries bounds how many additional ring nodes are tried after the
	// home node fails.  0 (the zero value) selects every remaining node;
	// a negative value disables failover entirely.
	Retries int
	// HTTPClient overrides the backend HTTP client (nil selects
	// http.DefaultClient).
	HTTPClient *http.Client
	// Cache is the scheduler-tier response store (Thanos
	// query-frontend results cache): it is consulted — inside the
	// single-flight group, so identical concurrent requests do one
	// lookup — before any ring dispatch, and filled after every
	// successful dispatch.  A fully cached suite is answered without
	// contacting a single backend.  nil disables the tier.
	Cache resultstore.Store
}

// Stats are cumulative dispatch counters.
type Stats struct {
	// Dispatched counts simulations shipped to a backend (after suite
	// de-duplication and single-flight coalescing).
	Dispatched uint64 `json:"dispatched"`
	// Retried counts dispatch attempts that failed over to another ring
	// node after a backend failure.
	Retried uint64 `json:"retried"`
	// Coalesced counts dispatches served by joining an identical
	// in-flight dispatch instead of contacting a backend.
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts dispatches answered by the scheduler-tier
	// response store without contacting a backend — directly, or by
	// joining an in-flight store lookup another caller started.
	CacheHits uint64 `json:"cache_hits"`
}

// Scheduler is the multi-node suite frontend: it expands a suite into
// per-benchmark requests, shards them across the backend ring by
// canonical RequestKey, retries failed dispatches on the next ring node,
// and aggregates results in deterministic suite order — byte-identical
// to a serial in-process Engine.RunSuite of the same suite.
//
// De-duplication holds at every tier: duplicate keys within one suite
// dispatch once (frontendsim suite sharding), identical concurrent
// dispatches across suites single-flight into one backend call, and the
// backend itself single-flights and caches on the same canonical key.
//
// A Scheduler is safe for concurrent use.
type Scheduler struct {
	eng     *frontendsim.Engine
	ring    *Ring
	client  *Client
	retries int
	cache   resultstore.Store // nil disables the scheduler-tier store
	flight  singleflight.Group[outcome]

	dispatched atomic.Uint64
	retried    atomic.Uint64
	coalesced  atomic.Uint64
	cacheHits  atomic.Uint64
}

// outcome is one single-flighted dispatch's result plus whether the
// scheduler-tier store served it.
type outcome struct {
	res    *frontendsim.Result
	cached bool
}

// New builds a Scheduler over eng's request canonicalization (RequestKey
// and suite expansion use eng's defaults, so they must match the
// backends' engine flags for cross-tier cache keys to align — sharding
// and aggregation are correct either way).
func New(eng *frontendsim.Engine, cfg Config) (*Scheduler, error) {
	ring, err := NewRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	retries := cfg.Retries
	if max := len(ring.Nodes()) - 1; retries == 0 || retries > max {
		retries = max
	} else if retries < 0 {
		retries = 0
	}
	return &Scheduler{
		eng:     eng,
		ring:    ring,
		client:  NewClient(cfg.HTTPClient),
		retries: retries,
		cache:   cfg.Cache,
	}, nil
}

// Ring returns the scheduler's backend ring.
func (s *Scheduler) Ring() *Ring { return s.ring }

// Stats returns a snapshot of the cumulative dispatch counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Dispatched: s.dispatched.Load(),
		Retried:    s.retried.Load(),
		Coalesced:  s.coalesced.Load(),
		CacheHits:  s.cacheHits.Load(),
	}
}

// CacheStats returns the scheduler-tier store's per-tier counters (nil
// when the tier is disabled).
func (s *Scheduler) CacheStats() []resultstore.TierStats {
	if s.cache == nil {
		return nil
	}
	return s.cache.Stats()
}

// Source reports how one dispatch was served.
type Source int

const (
	// SourceDispatched: the request was shipped to a backend.
	SourceDispatched Source = iota
	// SourceCached: the scheduler-tier store answered, no backend was
	// contacted.
	SourceCached
	// SourceCoalesced: the caller joined an identical in-flight
	// dispatch started by another caller.
	SourceCoalesced
)

// String returns the X-Cache spelling of the source.
func (s Source) String() string {
	switch s {
	case SourceCached:
		return "HIT"
	case SourceCoalesced:
		return "COALESCED"
	}
	return "MISS"
}

// Served is a suite's breakdown of how its unique shards (canonical
// keys) were served.
type Served struct {
	// Cached shards were answered by the scheduler-tier store.
	Cached uint64 `json:"cached"`
	// Dispatched shards were shipped to a backend.
	Dispatched uint64 `json:"dispatched"`
	// Coalesced shards joined an identical in-flight dispatch.
	Coalesced uint64 `json:"coalesced"`
}

// XCache is the frontend-tier X-Cache value of a suite response: HIT
// when every shard came from the scheduler store, PARTIAL when some
// did, MISS when none did.
func (v Served) XCache() string {
	total := v.Cached + v.Dispatched + v.Coalesced
	switch {
	case total > 0 && v.Cached == total:
		return "HIT"
	case v.Cached > 0:
		return "PARTIAL"
	}
	return "MISS"
}

// RunSuite runs the suite across the backend ring.  Results arrive in
// suite order with the deterministic aggregate; the response is
// byte-identical (as JSON) to a serial in-process Engine.RunSuite with
// the same engine defaults.
func (s *Scheduler) RunSuite(ctx context.Context, suite frontendsim.SuiteRequest) (*frontendsim.SuiteResult, error) {
	res, _, err := s.RunSuiteServed(ctx, suite)
	return res, err
}

// RunSuiteServed is RunSuite plus the per-suite breakdown of how each
// unique shard was served — the basis of the frontend tier's X-Cache
// accounting.
func (s *Scheduler) RunSuiteServed(ctx context.Context, suite frontendsim.SuiteRequest) (*frontendsim.SuiteResult, Served, error) {
	var cached, dispatched, coalesced atomic.Uint64
	res, err := s.eng.RunSuiteVia(ctx, suite, func(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, error) {
		r, src, err := s.DispatchSource(ctx, req)
		if err != nil {
			return nil, err
		}
		switch src {
		case SourceCached:
			cached.Add(1)
		case SourceCoalesced:
			coalesced.Add(1)
		default:
			dispatched.Add(1)
		}
		return r, nil
	})
	served := Served{
		Cached:     cached.Load(),
		Dispatched: dispatched.Load(),
		Coalesced:  coalesced.Load(),
	}
	return res, served, err
}

// Dispatch ships one request to its home backend, walking the ring on
// failure.  Identical concurrent dispatches (same canonical key, e.g.
// from two overlapping suites) coalesce into one backend call, and the
// scheduler-tier store (when configured) answers without any backend
// call at all.
func (s *Scheduler) Dispatch(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, error) {
	res, _, err := s.DispatchSource(ctx, req)
	return res, err
}

// DispatchSource is Dispatch plus how the request was served.  The
// single-flight group stays in front of the store: concurrent identical
// requests resolve to one store lookup and (on a miss) one backend
// dispatch, whose result is written back to the store.
func (s *Scheduler) DispatchSource(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, Source, error) {
	key, err := s.eng.RequestKey(req)
	if err != nil {
		return nil, SourceDispatched, err
	}
	out, err, shared := s.flight.Do(ctx, key, func(runCtx context.Context) (outcome, error) {
		if res := s.cacheGet(runCtx, key); res != nil {
			return outcome{res: res, cached: true}, nil
		}
		res, err := s.dispatchKey(runCtx, key, req)
		if err != nil {
			return outcome{}, err
		}
		s.cacheSet(runCtx, key, res)
		return outcome{res: res}, nil
	})
	if err != nil {
		src := SourceDispatched
		if shared {
			s.coalesced.Add(1)
			src = SourceCoalesced
		}
		return nil, src, err
	}
	// A caller that joined an execution the store answered was still
	// served by the store — no backend was contacted on its behalf — so
	// it counts as a cache hit, not a coalesce; only joins of real
	// dispatches count as coalesced.  This keeps a fully cache-served
	// suite reporting X-Cache: HIT even when two identical suites race.
	switch {
	case out.cached:
		s.cacheHits.Add(1)
		return out.res, SourceCached, nil
	case shared:
		s.coalesced.Add(1)
		return out.res, SourceCoalesced, nil
	}
	return out.res, SourceDispatched, nil
}

// cacheGet reads one result from the scheduler-tier store; any failure
// (store error, undecodable entry) is a miss — the ring can always
// recompute.
func (s *Scheduler) cacheGet(ctx context.Context, key string) *frontendsim.Result {
	if s.cache == nil {
		return nil
	}
	body, ok, err := s.cache.Get(ctx, key)
	if err != nil || !ok {
		return nil
	}
	var res frontendsim.Result
	if json.Unmarshal(body, &res) != nil {
		return nil
	}
	return &res
}

// cacheSet writes one dispatched result back to the scheduler-tier
// store, best-effort: a store failure only costs a later recompute.
func (s *Scheduler) cacheSet(ctx context.Context, key string, res *frontendsim.Result) {
	if s.cache == nil {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		return
	}
	s.cache.Set(ctx, key, body)
}

// dispatchKey walks the key's ring sequence: the home node first, then
// up to retries failover nodes.  Request errors (4xx — every backend
// would refuse) and context cancellation abort the walk immediately.
func (s *Scheduler) dispatchKey(ctx context.Context, key string, req frontendsim.Request) (*frontendsim.Result, error) {
	s.dispatched.Add(1)
	nodes := s.ring.Sequence(key)
	attempts := s.retries + 1
	if attempts > len(nodes) {
		attempts = len(nodes)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.retried.Add(1)
		}
		res, err := s.client.Simulate(ctx, nodes[i], req)
		if err == nil {
			return res, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller (or every coalesced caller) gave up; don't hammer
			// the remaining backends with a dead request.
			return nil, ctxErr
		}
		var be *BackendError
		if errors.As(err, &be) && !be.Retryable() {
			return nil, err
		}
		lastErr = err
	}
	return nil, &ExhaustedError{Benchmark: req.Benchmark, Attempts: attempts, Last: lastErr}
}

// ExhaustedError reports that every permitted ring node failed to serve
// a request.
type ExhaustedError struct {
	Benchmark string
	Attempts  int
	Last      error // the last backend's failure
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("scheduler: %s failed on %d backend(s): %v", e.Benchmark, e.Attempts, e.Last)
}

// Unwrap exposes the last backend failure.
func (e *ExhaustedError) Unwrap() error { return e.Last }
