package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/singleflight"
	"repro/pkg/frontendsim"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// Config configures a Scheduler.
type Config struct {
	// Backends are the simd base URLs forming the ring (e.g.
	// "http://sim-1:8723").  At least one is required.
	Backends []string
	// Replicas is the virtual-point count per backend (< 1 selects
	// DefaultReplicas).
	Replicas int
	// Retries bounds how many additional ring nodes are tried after the
	// home node fails.  0 (the zero value) selects every remaining node;
	// a negative value disables failover entirely.
	Retries int
	// HTTPClient overrides the backend HTTP client (nil selects
	// http.DefaultClient).
	HTTPClient *http.Client
	// Cache is the scheduler-tier response store (Thanos
	// query-frontend results cache): it is consulted — inside the
	// single-flight group, so identical concurrent requests do one
	// lookup — before any ring dispatch, and filled after every
	// successful dispatch.  A fully cached suite is answered without
	// contacting a single backend.  nil disables the tier.
	Cache resultstore.Store
	// HedgeDelay enables hedged dispatches for tail-latency control:
	// when a shard's first attempt has been in flight longer than the
	// observed p95 dispatch latency (never less than HedgeDelay itself),
	// a second attempt fires to the next ring node and the first
	// response wins.  0 disables hedging.
	HedgeDelay time.Duration
	// Metrics, when set, re-exports the dispatch counters and the
	// scheduler-tier store counters on the registry (GET /metrics).
	Metrics *obs.Registry
	// RetryBackoff enables jittered exponential backoff between ring-walk
	// retry attempts: the nth retry of a shard waits ~RetryBackoff·2ⁿ⁻¹
	// (jittered ±50%) before hammering the next backend.  0 disables
	// (retries fire back-to-back, the pre-backoff behaviour).
	RetryBackoff time.Duration
	// BreakerThreshold enables the per-backend passive circuit breaker:
	// that many consecutive dispatch failures open a backend's circuit
	// and the ring walk diverts around it until a cooldown probe
	// succeeds.  0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit diverts traffic before
	// admitting a half-open probe (0 selects 5s; only meaningful with
	// BreakerThreshold > 0).
	BreakerCooldown time.Duration
	// ReportDispatch, when set, receives every dispatch attempt's verdict
	// about a backend: nil error for success, the failure otherwise.
	// Attempts that say nothing about the backend (caller cancellation,
	// 4xx request errors, reaped hedge losers) are not reported.  Wire it
	// to membership.Registry.ReportDispatch so real traffic quarantines a
	// flapping backend between probe rounds.
	ReportDispatch func(node string, err error)
	// PartialResults switches RunSuite* to graceful degradation: shards
	// whose ring walk exhausts every backend become per-shard error
	// entries (X-Cache: PARTIAL-ERROR at the server tier) instead of
	// failing the whole suite.
	PartialResults bool
	// HintLimit enables hinted handoff: up to this many write-throughs
	// per quarantined member are buffered and replayed into its store
	// (PUT /v1/store/entries/{key}) on reinstatement, so the member
	// serves the keys computed during its absence without recompute.
	// Requires OnMembershipTransition to be wired to
	// membership.Config.OnTransition.  0 disables.
	HintLimit int
}

// Stats are cumulative dispatch counters.
type Stats struct {
	// Dispatched counts simulations shipped to a backend (after suite
	// de-duplication and single-flight coalescing).
	Dispatched uint64 `json:"dispatched"`
	// Retried counts dispatch attempts that failed over to another ring
	// node after a backend failure.
	Retried uint64 `json:"retried"`
	// Coalesced counts dispatches served by joining an identical
	// in-flight dispatch instead of contacting a backend.
	Coalesced uint64 `json:"coalesced"`
	// CacheHits counts dispatches answered by the scheduler-tier
	// response store without contacting a backend — directly, or by
	// joining an in-flight store lookup another caller started.
	CacheHits uint64 `json:"cache_hits"`
	// Hedged counts speculative second attempts launched because the
	// first exceeded the hedge latency threshold.
	Hedged uint64 `json:"hedged"`
	// HedgeWins counts dispatches where a hedged attempt answered first.
	HedgeWins uint64 `json:"hedge_wins"`
	// RingSwaps counts atomic ring replacements (SetBackends).
	RingSwaps uint64 `json:"ring_swaps"`
	// BreakerSkips counts dispatch attempts diverted around an open
	// circuit (the breaker doing its job: no request burned on a backend
	// that just failed repeatedly).
	BreakerSkips uint64 `json:"breaker_skips"`
	// Backoffs counts jittered waits slept between retry attempts.
	Backoffs uint64 `json:"backoffs"`
	// HintsQueued counts write-throughs buffered for quarantined
	// members (hinted handoff).
	HintsQueued uint64 `json:"hints_queued"`
	// HintsReplayed counts buffered writes delivered into a reinstated
	// member's store.
	HintsReplayed uint64 `json:"hints_replayed"`
	// HintsDropped counts buffered writes lost to the per-member bound,
	// replay failures, or the member's eviction/departure.
	HintsDropped uint64 `json:"hints_dropped"`
}

// Scheduler is the multi-node suite frontend: it expands a suite into
// per-benchmark requests, shards them across the backend ring by
// canonical RequestKey, retries failed dispatches on the next ring node,
// and aggregates results in deterministic suite order — byte-identical
// to a serial in-process Engine.RunSuite of the same suite.
//
// De-duplication holds at every tier: duplicate keys within one suite
// dispatch once (frontendsim suite sharding), identical concurrent
// dispatches across suites single-flight into one backend call, and the
// backend itself single-flights and caches on the same canonical key.
//
// A Scheduler is safe for concurrent use.
type Scheduler struct {
	eng      *frontendsim.Engine
	ring     atomic.Pointer[Ring]
	client   *Client
	replicas int
	// retries keeps the Config semantics (0 = all remaining, <0 = none)
	// and is resolved against the current ring size on every dispatch —
	// the ring can grow and shrink at runtime.
	retries    int
	hedgeDelay time.Duration
	lat        latencyTracker
	cache      resultstore.Store // nil disables the scheduler-tier store
	flight     singleflight.Group[outcome]

	// Resilience plumbing: the passive per-backend breaker (nil when
	// disabled), the jittered retry backoff, and the passive membership
	// feed.  sleep is injectable so backoff tests assert spacing under a
	// stubbed clock.
	brk            *breaker
	retryBackoff   time.Duration
	rngMu          sync.Mutex
	rng            *rand.Rand
	sleep          func(ctx context.Context, d time.Duration) error
	backoffSeconds *obs.Histogram
	reportDispatch func(node string, err error)
	partial        bool
	// hints is the hinted-handoff queue (nil when disabled).
	hints *hintQueue

	dispatched   atomic.Uint64
	retried      atomic.Uint64
	coalesced    atomic.Uint64
	cacheHits    atomic.Uint64
	hedged       atomic.Uint64
	hedgeWins    atomic.Uint64
	ringSwaps    atomic.Uint64
	breakerSkips atomic.Uint64
	backoffs     atomic.Uint64
}

// outcome is one single-flighted dispatch's result plus whether the
// scheduler-tier store served it.
type outcome struct {
	res    *frontendsim.Result
	cached bool
}

// New builds a Scheduler over eng's request canonicalization (RequestKey
// and suite expansion use eng's defaults, so they must match the
// backends' engine flags for cross-tier cache keys to align — sharding
// and aggregation are correct either way).
func New(eng *frontendsim.Engine, cfg Config) (*Scheduler, error) {
	ring, err := NewRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		eng:            eng,
		client:         NewClient(cfg.HTTPClient),
		replicas:       cfg.Replicas,
		retries:        cfg.Retries,
		hedgeDelay:     cfg.HedgeDelay,
		cache:          cfg.Cache,
		retryBackoff:   cfg.RetryBackoff,
		rng:            newJitterRNG(),
		sleep:          sleepCtx,
		reportDispatch: cfg.ReportDispatch,
		partial:        cfg.PartialResults,
	}
	if cfg.BreakerThreshold > 0 {
		s.brk = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	if cfg.HintLimit > 0 {
		s.hints = newHintQueue(cfg.HintLimit, cfg.Replicas, cfg.Backends, cfg.HTTPClient)
	}
	s.ring.Store(ring)
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
	}
	return s, nil
}

// registerMetrics re-exports the scheduler counters on reg.
func (s *Scheduler) registerMetrics(reg *obs.Registry) {
	reg.Sampled("scheduler_dispatches_total", "Dispatch outcomes by kind.",
		obs.TypeCounter, []string{"kind"}, func(emit func([]string, float64)) {
			st := s.Stats()
			emit([]string{"dispatched"}, float64(st.Dispatched))
			emit([]string{"retried"}, float64(st.Retried))
			emit([]string{"coalesced"}, float64(st.Coalesced))
			emit([]string{"cache_hit"}, float64(st.CacheHits))
			emit([]string{"hedged"}, float64(st.Hedged))
			emit([]string{"hedge_win"}, float64(st.HedgeWins))
		})
	reg.Sampled("scheduler_ring_swaps_total", "Atomic ring replacements.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.ringSwaps.Load()))
		})
	reg.Sampled("scheduler_ring_size", "Backends in the routing ring.",
		obs.TypeGauge, nil, func(emit func([]string, float64)) {
			emit(nil, float64(len(s.Ring().Nodes())))
		})
	reg.Sampled("scheduler_store_ops_total", "Scheduler-tier response store counters.",
		obs.TypeCounter, []string{"tier", "op"}, func(emit func([]string, float64)) {
			for _, t := range s.CacheStats() {
				emit([]string{t.Tier, "hit"}, float64(t.Hits))
				emit([]string{t.Tier, "miss"}, float64(t.Misses))
				emit([]string{t.Tier, "set"}, float64(t.Sets))
				emit([]string{t.Tier, "error"}, float64(t.Errors))
			}
		})
	h := reg.Histogram("sched_retry_backoff_seconds",
		"Jittered backoff slept between ring-walk retry attempts.", nil)
	s.backoffSeconds = &h
	reg.Sampled("sched_breaker_transitions_total", "Circuit-breaker state transitions, by destination state.",
		obs.TypeCounter, []string{"to"}, func(emit func([]string, float64)) {
			if s.brk == nil {
				return
			}
			emit([]string{"open"}, float64(s.brk.opened.Load()))
			emit([]string{"half_open"}, float64(s.brk.halfOpen.Load()))
			emit([]string{"closed"}, float64(s.brk.closed.Load()))
		})
	reg.Sampled("sched_breaker_skips_total", "Dispatch attempts diverted around an open circuit.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.breakerSkips.Load()))
		})
	reg.Sampled("sched_hints_queued_total", "Write-throughs buffered for quarantined members (hinted handoff).",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.Stats().HintsQueued))
		})
	reg.Sampled("sched_hints_replayed_total", "Buffered writes delivered into reinstated members' stores.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.Stats().HintsReplayed))
		})
	reg.Sampled("sched_hints_dropped_total", "Buffered writes lost to the per-member bound, replay failures, or eviction.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.Stats().HintsDropped))
		})
}

// OnMembershipChange returns a callback for membership.Config.OnChange
// that atomically swaps the scheduler's ring to each new active set.  A
// total outage (empty active set) keeps the last ring in place: routing
// to recently-dead backends degrades to per-request failures, which
// beats having no ring at all when the fleet comes back.
func (s *Scheduler) OnMembershipChange() func(epoch uint64, active []string) {
	return func(_ uint64, active []string) {
		if len(active) == 0 {
			return
		}
		s.SetBackends(active)
	}
}

// Ring returns the scheduler's current backend ring.  The ring is
// immutable; SetBackends replaces it wholesale.
func (s *Scheduler) Ring() *Ring { return s.ring.Load() }

// SetBackends atomically replaces the routing ring with one over nodes.
// In-flight dispatches keep the ring they started with (a request to a
// removed backend runs to completion); new dispatches shard over the new
// set.  An empty node list is rejected — the last ring stays in place so
// a total outage degrades to per-request failures instead of a nil ring.
func (s *Scheduler) SetBackends(nodes []string) error {
	ring, err := NewRing(nodes, s.replicas)
	if err != nil {
		return err
	}
	s.ring.Store(ring)
	s.ringSwaps.Add(1)
	return nil
}

// Stats returns a snapshot of the cumulative dispatch counters.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Dispatched:   s.dispatched.Load(),
		Retried:      s.retried.Load(),
		Coalesced:    s.coalesced.Load(),
		CacheHits:    s.cacheHits.Load(),
		Hedged:       s.hedged.Load(),
		HedgeWins:    s.hedgeWins.Load(),
		RingSwaps:    s.ringSwaps.Load(),
		BreakerSkips: s.breakerSkips.Load(),
		Backoffs:     s.backoffs.Load(),
	}
	if s.hints != nil {
		st.HintsQueued = s.hints.queued.Load()
		st.HintsReplayed = s.hints.replayed.Load()
		st.HintsDropped = s.hints.dropped.Load()
	}
	return st
}

// CacheStats returns the scheduler-tier store's per-tier counters (nil
// when the tier is disabled).
func (s *Scheduler) CacheStats() []resultstore.TierStats {
	if s.cache == nil {
		return nil
	}
	return s.cache.Stats()
}

// Source reports how one dispatch was served.
type Source int

const (
	// SourceDispatched: the request was shipped to a backend.
	SourceDispatched Source = iota
	// SourceCached: the scheduler-tier store answered, no backend was
	// contacted.
	SourceCached
	// SourceCoalesced: the caller joined an identical in-flight
	// dispatch started by another caller.
	SourceCoalesced
)

// String returns the X-Cache spelling of the source.
func (s Source) String() string {
	switch s {
	case SourceCached:
		return "HIT"
	case SourceCoalesced:
		return "COALESCED"
	}
	return "MISS"
}

// Served is a suite's breakdown of how its unique shards (canonical
// keys) were served.
type Served struct {
	// Cached shards were answered by the scheduler-tier store.
	Cached uint64 `json:"cached"`
	// Dispatched shards were shipped to a backend.
	Dispatched uint64 `json:"dispatched"`
	// Coalesced shards joined an identical in-flight dispatch.
	Coalesced uint64 `json:"coalesced"`
	// Failed shards exhausted the ring and were recorded as per-shard
	// errors (PartialResults mode only; without it a failed shard fails
	// the whole suite instead).
	Failed uint64 `json:"failed"`
}

// XCache is the frontend-tier X-Cache value of a suite response.  It
// reports the backend cost incurred on *this* request's behalf:
//
//	HIT        every unique shard came from the scheduler store
//	COALESCED  zero shards were dispatched for this request, but at
//	           least one joined another caller's in-flight dispatch
//	           (an all-coalesced suite is not a MISS — no backend work
//	           was started on its behalf)
//	PARTIAL    a mix: some shards served locally (store or join), some
//	           dispatched
//	MISS       every shard was dispatched to the ring
//
// PARTIAL-ERROR overrides them all: some shards failed and the response
// carries per-shard error entries (PartialResults mode) — a degraded
// answer must never masquerade as a clean one.
func (v Served) XCache() string {
	if v.Failed > 0 {
		return "PARTIAL-ERROR"
	}
	total := v.Cached + v.Dispatched + v.Coalesced
	switch {
	case total == 0:
		return "MISS"
	case v.Cached == total:
		return "HIT"
	case v.Dispatched == 0:
		return "COALESCED"
	case v.Cached+v.Coalesced > 0:
		return "PARTIAL"
	}
	return "MISS"
}

// RunSuite runs the suite across the backend ring.  Results arrive in
// suite order with the deterministic aggregate; the response is
// byte-identical (as JSON) to a serial in-process Engine.RunSuite with
// the same engine defaults.
func (s *Scheduler) RunSuite(ctx context.Context, suite frontendsim.SuiteRequest) (*frontendsim.SuiteResult, error) {
	res, _, err := s.RunSuiteServed(ctx, suite)
	return res, err
}

// RunSuiteServed is RunSuite plus the per-suite breakdown of how each
// unique shard was served — the basis of the frontend tier's X-Cache
// accounting.
func (s *Scheduler) RunSuiteServed(ctx context.Context, suite frontendsim.SuiteRequest) (*frontendsim.SuiteResult, Served, error) {
	return s.RunSuiteStream(ctx, suite, nil)
}

// RunSuiteStream is the streamed fan-in: the suite's unique shards run
// through the whole cache → singleflight → hedged-dispatch stack
// exactly as in RunSuiteServed, but every shard is emitted to sink the
// moment it completes — a partially cached sweep streams its cached
// shards in the first milliseconds while only the missing shards wait
// on backends.  Each shard carries its suite positions and source
// (HIT/COALESCED/MISS); sink calls are serialized.  The returned
// SuiteResult is byte-identical (as JSON) to RunSuite of the same
// suite.  A nil sink degrades to RunSuiteServed.
// With Config.PartialResults, a shard whose ring walk exhausts every
// backend is emitted as a ShardResult with Err set (the server renders
// it as a {"type":"shard-error"} line), counted in Served.Failed, and
// the suite completes with per-shard error entries — one dead shard no
// longer fails an otherwise-servable sweep.
func (s *Scheduler) RunSuiteStream(ctx context.Context, suite frontendsim.SuiteRequest, sink frontendsim.StreamSink) (*frontendsim.SuiteResult, Served, error) {
	var cached, dispatched, coalesced atomic.Uint64
	dispatch := func(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, string, error) {
		r, src, err := s.DispatchSource(ctx, req)
		if err != nil {
			return nil, "", err
		}
		switch src {
		case SourceCached:
			cached.Add(1)
		case SourceCoalesced:
			coalesced.Add(1)
		default:
			dispatched.Add(1)
		}
		return r, src.String(), nil
	}
	var res *frontendsim.SuiteResult
	var err error
	if s.partial {
		res, err = s.eng.RunSuitePartial(ctx, suite, dispatch, sink)
	} else {
		res, err = s.eng.RunSuiteStream(ctx, suite, dispatch, sink)
	}
	served := Served{
		Cached:     cached.Load(),
		Dispatched: dispatched.Load(),
		Coalesced:  coalesced.Load(),
	}
	if res != nil {
		// Count only the failures that made it into the degraded result:
		// in strict mode a failure aborts the run (the error is the
		// answer), and a cancelled partial run must not report
		// PARTIAL-ERROR accounting for a response that never formed.
		served.Failed = uint64(len(res.Errors))
	}
	return res, served, err
}

// Dispatch ships one request to its home backend, walking the ring on
// failure.  Identical concurrent dispatches (same canonical key, e.g.
// from two overlapping suites) coalesce into one backend call, and the
// scheduler-tier store (when configured) answers without any backend
// call at all.
func (s *Scheduler) Dispatch(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, error) {
	res, _, err := s.DispatchSource(ctx, req)
	return res, err
}

// DispatchSource is Dispatch plus how the request was served.  The
// single-flight group stays in front of the store: concurrent identical
// requests resolve to one store lookup and (on a miss) one backend
// dispatch, whose result is written back to the store.
func (s *Scheduler) DispatchSource(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, Source, error) {
	key, err := s.eng.RequestKey(req)
	if err != nil {
		return nil, SourceDispatched, err
	}
	out, err, shared := s.flight.Do(ctx, key, func(runCtx context.Context) (outcome, error) {
		if res := s.cacheGet(runCtx, key); res != nil {
			return outcome{res: res, cached: true}, nil
		}
		res, err := s.dispatchKey(runCtx, key, req)
		if err != nil {
			return outcome{}, err
		}
		s.cacheSet(runCtx, key, res)
		s.hintResult(key, res)
		return outcome{res: res}, nil
	})
	if err != nil {
		// A joined execution that failed served nobody: the caller was
		// not spared a backend dispatch, it inherited a failure.  The
		// source still reports the join, but failed shares stay out of
		// the Coalesced counter — it counts work actually saved.
		src := SourceDispatched
		if shared {
			src = SourceCoalesced
		}
		return nil, src, err
	}
	// A caller that joined an execution the store answered was still
	// served by the store — no backend was contacted on its behalf — so
	// it counts as a cache hit, not a coalesce; only joins of real
	// dispatches count as coalesced.  This keeps a fully cache-served
	// suite reporting X-Cache: HIT even when two identical suites race.
	switch {
	case out.cached:
		s.cacheHits.Add(1)
		return out.res, SourceCached, nil
	case shared:
		s.coalesced.Add(1)
		return out.res, SourceCoalesced, nil
	}
	return out.res, SourceDispatched, nil
}

// cacheGet reads one result from the scheduler-tier store; any failure
// (store error, undecodable entry) is a miss — the ring can always
// recompute.
func (s *Scheduler) cacheGet(ctx context.Context, key string) *frontendsim.Result {
	if s.cache == nil {
		return nil
	}
	body, ok, err := s.cache.Get(ctx, key)
	if err != nil || !ok {
		return nil
	}
	var res frontendsim.Result
	if json.Unmarshal(body, &res) != nil {
		return nil
	}
	return &res
}

// cacheSet writes one dispatched result back to the scheduler-tier
// store, best-effort: a store failure only costs a later recompute.
func (s *Scheduler) cacheSet(ctx context.Context, key string, res *frontendsim.Result) {
	if s.cache == nil {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		return
	}
	s.cache.Set(ctx, key, body)
}

// attempts resolves the Config.Retries semantics against the current
// ring size: 0 selects every node, negative disables failover.
func (s *Scheduler) attempts(ringSize int) int {
	switch {
	case s.retries < 0:
		return 1
	case s.retries == 0 || s.retries+1 > ringSize:
		return ringSize
	}
	return s.retries + 1
}

// permanent reports whether err cannot be cured by trying another
// backend, so the ring walk must stop: the caller's own cancellation or
// deadline (retrying a dead request would hammer the remaining
// backends), or a request error (4xx — every backend would refuse the
// same request).  A per-attempt transport timeout (the HTTP client's
// own deadline, with the caller's context still live) stays retryable:
// that is exactly the hung-backend case failover exists for.
func permanent(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return true
	}
	if errors.Is(err, context.Canceled) {
		// A Canceled without ctx being done can only have leaked in from
		// the caller side of a race; no backend produces one.
		return true
	}
	var be *BackendError
	return errors.As(err, &be) && !be.Retryable()
}

// dispatchKey walks the key's ring sequence: the home node first, then
// up to retries failover nodes.  Request errors (4xx — every backend
// would refuse) and the caller's own cancellation abort the walk
// immediately.  Nodes whose circuit breaker is open are skipped without
// burning an attempt; retries after the first attempt wait out the
// jittered backoff.  With hedging enabled, a slow first attempt
// additionally fires a speculative attempt to the next ring node
// (dispatchHedged).
func (s *Scheduler) dispatchKey(ctx context.Context, key string, req frontendsim.Request) (*frontendsim.Result, error) {
	s.dispatched.Add(1)
	nodes := s.Ring().Sequence(key)
	attempts := s.attempts(len(nodes))
	if s.hedgeDelay > 0 {
		return s.dispatchHedged(ctx, nodes[:attempts], req)
	}
	var lastErr error
	tried := 0
	for i := 0; i < attempts; i++ {
		if !s.allowNode(nodes[i]) {
			continue
		}
		if tried > 0 {
			s.retried.Add(1)
			if err := s.backoff(ctx, tried); err != nil {
				return nil, err
			}
		}
		tried++
		res, err := s.client.Simulate(ctx, nodes[i], req)
		s.reportAttempt(ctx, nodes[i], err)
		if err == nil {
			return res, nil
		}
		if permanent(ctx, err) {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		lastErr = err
	}
	if tried == 0 && attempts > 0 {
		// Every permitted node's circuit is open.  Refusing outright
		// would make a fleet-wide blip self-sustaining (no requests, no
		// probes, no recovery) — force one attempt at the home node; it
		// doubles as a breaker probe.
		res, err := s.client.Simulate(ctx, nodes[0], req)
		s.reportAttempt(ctx, nodes[0], err)
		if err == nil {
			return res, nil
		}
		if permanent(ctx, err) {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, err
		}
		lastErr, tried = err, 1
	}
	return nil, &ExhaustedError{Benchmark: req.Benchmark, Attempts: tried, Last: lastErr}
}

// ExhaustedError reports that every permitted ring node failed to serve
// a request.
type ExhaustedError struct {
	Benchmark string
	Attempts  int
	Last      error // the last backend's failure
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("scheduler: %s failed on %d backend(s): %v", e.Benchmark, e.Attempts, e.Last)
}

// Unwrap exposes the last backend failure.
func (e *ExhaustedError) Unwrap() error { return e.Last }
