package scheduler

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/singleflight"
	"repro/pkg/frontendsim"
)

// Config configures a Scheduler.
type Config struct {
	// Backends are the simd base URLs forming the ring (e.g.
	// "http://sim-1:8723").  At least one is required.
	Backends []string
	// Replicas is the virtual-point count per backend (< 1 selects
	// DefaultReplicas).
	Replicas int
	// Retries bounds how many additional ring nodes are tried after the
	// home node fails.  0 (the zero value) selects every remaining node;
	// a negative value disables failover entirely.
	Retries int
	// HTTPClient overrides the backend HTTP client (nil selects
	// http.DefaultClient).
	HTTPClient *http.Client
}

// Stats are cumulative dispatch counters.
type Stats struct {
	// Dispatched counts simulations shipped to a backend (after suite
	// de-duplication and single-flight coalescing).
	Dispatched uint64 `json:"dispatched"`
	// Retried counts dispatch attempts that failed over to another ring
	// node after a backend failure.
	Retried uint64 `json:"retried"`
	// Coalesced counts dispatches served by joining an identical
	// in-flight dispatch instead of contacting a backend.
	Coalesced uint64 `json:"coalesced"`
}

// Scheduler is the multi-node suite frontend: it expands a suite into
// per-benchmark requests, shards them across the backend ring by
// canonical RequestKey, retries failed dispatches on the next ring node,
// and aggregates results in deterministic suite order — byte-identical
// to a serial in-process Engine.RunSuite of the same suite.
//
// De-duplication holds at every tier: duplicate keys within one suite
// dispatch once (frontendsim suite sharding), identical concurrent
// dispatches across suites single-flight into one backend call, and the
// backend itself single-flights and caches on the same canonical key.
//
// A Scheduler is safe for concurrent use.
type Scheduler struct {
	eng     *frontendsim.Engine
	ring    *Ring
	client  *Client
	retries int
	flight  singleflight.Group[*frontendsim.Result]

	dispatched atomic.Uint64
	retried    atomic.Uint64
	coalesced  atomic.Uint64
}

// New builds a Scheduler over eng's request canonicalization (RequestKey
// and suite expansion use eng's defaults, so they must match the
// backends' engine flags for cross-tier cache keys to align — sharding
// and aggregation are correct either way).
func New(eng *frontendsim.Engine, cfg Config) (*Scheduler, error) {
	ring, err := NewRing(cfg.Backends, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	retries := cfg.Retries
	if max := len(ring.Nodes()) - 1; retries == 0 || retries > max {
		retries = max
	} else if retries < 0 {
		retries = 0
	}
	return &Scheduler{
		eng:     eng,
		ring:    ring,
		client:  NewClient(cfg.HTTPClient),
		retries: retries,
	}, nil
}

// Ring returns the scheduler's backend ring.
func (s *Scheduler) Ring() *Ring { return s.ring }

// Stats returns a snapshot of the cumulative dispatch counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Dispatched: s.dispatched.Load(),
		Retried:    s.retried.Load(),
		Coalesced:  s.coalesced.Load(),
	}
}

// RunSuite runs the suite across the backend ring.  Results arrive in
// suite order with the deterministic aggregate; the response is
// byte-identical (as JSON) to a serial in-process Engine.RunSuite with
// the same engine defaults.
func (s *Scheduler) RunSuite(ctx context.Context, suite frontendsim.SuiteRequest) (*frontendsim.SuiteResult, error) {
	return s.eng.RunSuiteVia(ctx, suite, s.Dispatch)
}

// Dispatch ships one request to its home backend, walking the ring on
// failure.  Identical concurrent dispatches (same canonical key, e.g.
// from two overlapping suites) coalesce into one backend call.
func (s *Scheduler) Dispatch(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, error) {
	key, err := s.eng.RequestKey(req)
	if err != nil {
		return nil, err
	}
	res, err, shared := s.flight.Do(ctx, key, func(runCtx context.Context) (*frontendsim.Result, error) {
		return s.dispatchKey(runCtx, key, req)
	})
	if shared {
		s.coalesced.Add(1)
	}
	return res, err
}

// dispatchKey walks the key's ring sequence: the home node first, then
// up to retries failover nodes.  Request errors (4xx — every backend
// would refuse) and context cancellation abort the walk immediately.
func (s *Scheduler) dispatchKey(ctx context.Context, key string, req frontendsim.Request) (*frontendsim.Result, error) {
	s.dispatched.Add(1)
	nodes := s.ring.Sequence(key)
	attempts := s.retries + 1
	if attempts > len(nodes) {
		attempts = len(nodes)
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.retried.Add(1)
		}
		res, err := s.client.Simulate(ctx, nodes[i], req)
		if err == nil {
			return res, nil
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller (or every coalesced caller) gave up; don't hammer
			// the remaining backends with a dead request.
			return nil, ctxErr
		}
		var be *BackendError
		if errors.As(err, &be) && !be.Retryable() {
			return nil, err
		}
		lastErr = err
	}
	return nil, &ExhaustedError{Benchmark: req.Benchmark, Attempts: attempts, Last: lastErr}
}

// ExhaustedError reports that every permitted ring node failed to serve
// a request.
type ExhaustedError struct {
	Benchmark string
	Attempts  int
	Last      error // the last backend's failure
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("scheduler: %s failed on %d backend(s): %v", e.Benchmark, e.Attempts, e.Last)
}

// Unwrap exposes the last backend failure.
func (e *ExhaustedError) Unwrap() error { return e.Last }
