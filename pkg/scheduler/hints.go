package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/frontendsim"
	"repro/pkg/membership"
)

// Hinted handoff: when a dispatch succeeds for a key whose *full-ring*
// home (the ring over every known member, quarantined included) is a
// quarantined member, the write-through that member's store would have
// received is lost — it serves misses on reinstatement and the fleet
// recomputes.  The hint queue buffers those writes, bounded per member,
// and replays them through PUT /v1/store/entries/{key} when membership
// reinstates the member.  Eviction or departure drops the backlog: the
// member's next incarnation warms up from a peer instead.

// hintEntry is one buffered write-through: the canonical key plus the
// exact body the member's store would have received (the backend's
// stored representation, newline-terminated JSON), so a replayed entry
// is served byte-identical.
type hintEntry struct {
	key  string
	body []byte
}

// hintQueue tracks the full member set (active and quarantined), the
// ring over it, and one bounded FIFO of pending writes per quarantined
// member.  It is safe for concurrent use.
type hintQueue struct {
	limit    int // per-member buffered writes
	replicas int
	client   *http.Client

	mu      sync.Mutex
	members map[string]bool        // member URL -> quarantined?
	ring    *Ring                  // over every key of members; nil when empty
	queues  map[string][]hintEntry // per quarantined member, oldest first
	slots   map[string]map[string]int

	queued   atomic.Uint64
	replayed atomic.Uint64
	dropped  atomic.Uint64
}

func newHintQueue(limit, replicas int, seeds []string, client *http.Client) *hintQueue {
	if client == nil {
		client = http.DefaultClient
	}
	h := &hintQueue{
		limit:    limit,
		replicas: replicas,
		client:   client,
		members:  map[string]bool{},
		queues:   map[string][]hintEntry{},
		slots:    map[string]map[string]int{},
	}
	for _, u := range seeds {
		h.members[u] = false
	}
	h.rebuildLocked()
	return h
}

// rebuildLocked recomputes the full-membership ring.  Caller holds mu.
func (h *hintQueue) rebuildLocked() {
	if len(h.members) == 0 {
		h.ring = nil
		return
	}
	nodes := make([]string, 0, len(h.members))
	for u := range h.members {
		nodes = append(nodes, u)
	}
	if ring, err := NewRing(nodes, h.replicas); err == nil {
		h.ring = ring
	}
}

// setMember records url as a member with the given quarantine state,
// adding it if unknown.
func (h *hintQueue) setMember(url string, quarantined bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, known := h.members[url]
	h.members[url] = quarantined
	if !known {
		h.rebuildLocked()
	}
}

// removeMember forgets url and drops its backlog.
func (h *hintQueue) removeMember(url string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, known := h.members[url]; !known {
		return
	}
	delete(h.members, url)
	h.dropped.Add(uint64(len(h.queues[url])))
	delete(h.queues, url)
	delete(h.slots, url)
	h.rebuildLocked()
}

// quarantinedHome returns key's home on the full-membership ring when
// that home is currently quarantined.
func (h *hintQueue) quarantinedHome(key string) (string, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ring == nil {
		return "", false
	}
	home := h.ring.Node(key)
	return home, h.members[home]
}

// enqueue buffers one write for member, deduplicating by key (a
// recomputed key overwrites its pending body) and dropping the oldest
// pending write when the member's buffer is full.
func (h *hintQueue) enqueue(member, key string, body []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.members[member] {
		return // reinstated (or removed) since the caller checked
	}
	if slot, ok := h.slots[member][key]; ok {
		h.queues[member][slot].body = body
		return
	}
	q := h.queues[member]
	for len(q) >= h.limit {
		oldest := q[0]
		q = q[1:]
		delete(h.slots[member], oldest.key)
		for k, s := range h.slots[member] {
			h.slots[member][k] = s - 1
		}
		h.dropped.Add(1)
	}
	if h.slots[member] == nil {
		h.slots[member] = map[string]int{}
	}
	h.slots[member][key] = len(q)
	h.queues[member] = append(q, hintEntry{key: key, body: body})
	h.queued.Add(1)
}

// take removes and returns member's backlog, oldest first.
func (h *hintQueue) take(member string) []hintEntry {
	h.mu.Lock()
	defer h.mu.Unlock()
	entries := h.queues[member]
	delete(h.queues, member)
	delete(h.slots, member)
	return entries
}

// backlog returns member's pending-write count.
func (h *hintQueue) backlog(member string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queues[member])
}

// put replays one buffered write into member's store.
func (h *hintQueue) put(ctx context.Context, member, key string, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		member+"/v1/store/entries/"+url.PathEscape(key), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("scheduler: hint replay to %s: status %d", member, resp.StatusCode)
	}
	return nil
}

// hintResult buffers the write-through owed to a quarantined member:
// when hinted handoff is enabled and key's full-ring home is
// quarantined, the result is serialized exactly as the backend stores
// it (newline-terminated JSON) and queued for replay.  The marshal
// happens only on this cold path.
func (s *Scheduler) hintResult(key string, res *frontendsim.Result) {
	if s.hints == nil {
		return
	}
	home, quarantined := s.hints.quarantinedHome(key)
	if !quarantined {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		return
	}
	s.hints.enqueue(home, key, append(body, '\n'))
}

// replayHints drains member's backlog into its store, oldest first.  A
// failed PUT drops that entry (anti-entropy repairs it later) rather
// than blocking the queue behind a member that flapped again.
func (s *Scheduler) replayHints(member string) {
	entries := s.hints.take(member)
	for _, e := range entries {
		if err := s.hints.put(context.Background(), member, e.key, e.body); err != nil {
			s.hints.dropped.Add(1)
			continue
		}
		s.hints.replayed.Add(1)
	}
}

// HintBacklog returns the pending hinted writes buffered for member (0
// when hinted handoff is disabled).
func (s *Scheduler) HintBacklog(member string) int {
	if s.hints == nil {
		return 0
	}
	return s.hints.backlog(member)
}

// OnMembershipTransition returns a callback for
// membership.Config.OnTransition that drives the hint queue: a
// quarantined member starts accruing hints, a reinstated member gets
// its backlog replayed (asynchronously — the membership callback must
// not block on network I/O), and a member that leaves or is evicted has
// its backlog dropped.  Wire it alongside OnMembershipChange.
func (s *Scheduler) OnMembershipTransition() func(url string, t membership.Transition) {
	return func(url string, t membership.Transition) {
		if s.hints == nil {
			return
		}
		switch t {
		case membership.TransitionJoin:
			s.hints.setMember(url, false)
		case membership.TransitionQuarantine:
			s.hints.setMember(url, true)
		case membership.TransitionReinstate:
			s.hints.setMember(url, false)
			go s.replayHints(url)
		case membership.TransitionLeave, membership.TransitionEvict:
			s.hints.removeMember(url)
		}
	}
}
