package scheduler

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// readStream decodes a complete NDJSON body into typed lines.
func readStream(t *testing.T, r io.Reader) []frontendsim.SuiteStreamLine {
	t.Helper()
	var lines []frontendsim.SuiteStreamLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l frontendsim.SuiteStreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSchedulerStreamMatchesBlocking is the fan-in byte-identity test:
// the terminal aggregate line of POST /v1/suites/stream is
// byte-identical (as JSON) to the blocking POST /v1/suites response of
// the same suite, with per-shard sources reflecting the scheduler
// store (MISS cold, HIT warm).
func TestSchedulerStreamMatchesBlocking(t *testing.T) {
	stub, _ := cannedBackend(t, nil)
	sched := newCachedScheduler(t, []string{stub.URL})
	srv := NewServer(sched)
	suite := `{"benchmarks":["gzip","mcf","gzip"],"request":{}}`

	blocking := httptest.NewRecorder()
	srv.ServeHTTP(blocking, httptest.NewRequest(http.MethodPost, "/v1/suites", strings.NewReader(suite)))
	if blocking.Code != http.StatusOK {
		t.Fatalf("blocking status = %d, body %s", blocking.Code, blocking.Body.String())
	}

	streamed := httptest.NewRecorder()
	srv.ServeHTTP(streamed, httptest.NewRequest(http.MethodPost, "/v1/suites/stream", strings.NewReader(suite)))
	if streamed.Code != http.StatusOK {
		t.Fatalf("stream status = %d, body %s", streamed.Code, streamed.Body.String())
	}
	if ct := streamed.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	lines := readStream(t, streamed.Body)
	if len(lines) != 3 { // 2 unique shards + aggregate
		t.Fatalf("%d stream lines, want 3: %+v", len(lines), lines)
	}
	positions := map[int]bool{}
	for _, l := range lines[:2] {
		if l.Type != "shard" || l.Result == nil {
			t.Fatalf("non-shard line before the aggregate: %+v", l)
		}
		// The blocking run warmed the scheduler store for both keys.
		if l.Source != "HIT" {
			t.Errorf("shard %q source = %q, want HIT (warmed by the blocking run)", l.Benchmark, l.Source)
		}
		for _, p := range l.Positions {
			positions[p] = true
		}
	}
	if len(positions) != 3 {
		t.Errorf("shard lines cover %d of 3 suite positions", len(positions))
	}
	last := lines[2]
	if last.Type != "aggregate" || last.Suite == nil {
		t.Fatalf("terminal line is %+v, want an aggregate", last)
	}
	aggJSON, err := json.Marshal(last.Suite)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(aggJSON, '\n'), blocking.Body.Bytes()) {
		t.Error("streamed aggregate is not byte-identical to the blocking /v1/suites response")
	}
}

// TestSchedulerStreamFirstLineBeatsSlowShard is the latency acceptance
// test: with a warm scheduler cache for one shard and a deliberately
// held backend for the other, the cached shard's line arrives on the
// wire while the slow shard is still in flight — the whole point of
// streaming the fan-in.
func TestSchedulerStreamFirstLineBeatsSlowShard(t *testing.T) {
	body, err := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	var gated atomic.Bool
	gate := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if gated.Load() {
			select {
			case <-gate:
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(backend.Close)

	sched := newCachedScheduler(t, []string{backend.URL})
	// Warm the scheduler store for gzip only, then hold the backend.
	if _, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: "gzip"}); err != nil {
		t.Fatal(err)
	}
	gated.Store(true)

	srv := httptest.NewServer(NewServer(sched))
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+"/v1/suites/stream", "application/json",
		strings.NewReader(`{"benchmarks":["gzip","mcf"],"request":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The first line must arrive while the mcf dispatch is still held on
	// the gate — it can only be the cached gzip shard.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	firstLine := make(chan frontendsim.SuiteStreamLine, 1)
	scanErr := make(chan error, 1)
	go func() {
		if !sc.Scan() {
			scanErr <- sc.Err()
			return
		}
		var l frontendsim.SuiteStreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			scanErr <- err
			return
		}
		firstLine <- l
	}()
	select {
	case l := <-firstLine:
		if l.Type != "shard" || l.Benchmark != "gzip" || l.Source != "HIT" {
			t.Fatalf("first streamed line = %+v, want the cached gzip shard", l)
		}
	case err := <-scanErr:
		t.Fatalf("stream ended before the first shard line: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no shard line arrived while the slow shard was held — streaming is buffered until completion")
	}

	// Release the held shard and drain the rest: the mcf shard, then the
	// terminal aggregate, byte-identical to the blocking endpoint.
	close(gate)
	var rest []frontendsim.SuiteStreamLine
	for sc.Scan() {
		var l frontendsim.SuiteStreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rest = append(rest, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Type != "shard" || rest[0].Benchmark != "mcf" {
		t.Fatalf("remaining lines = %+v, want the mcf shard then the aggregate", rest)
	}
	if rest[1].Type != "aggregate" || rest[1].Suite == nil {
		t.Fatalf("terminal line = %+v, want an aggregate", rest[1])
	}
	aggJSON, err := json.Marshal(rest[1].Suite)
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := http.Post(srv.URL+"/v1/suites", "application/json",
		strings.NewReader(`{"benchmarks":["gzip","mcf"],"request":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer blocking.Body.Close()
	blockingBody, err := io.ReadAll(blocking.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(aggJSON, '\n'), blockingBody) {
		t.Error("streamed aggregate differs from the blocking response")
	}
}

// TestSchedulerStreamDisconnectCancelsDispatch asserts a client that
// hangs up mid-stream cancels the in-flight backend dispatches — no
// shard keeps simulating for a reader that left (and no goroutine
// leaks, which -race plus the test's own timeout would surface).
func TestSchedulerStreamDisconnectCancelsDispatch(t *testing.T) {
	var once sync.Once
	started := make(chan struct{})
	unblocked := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		once.Do(func() { close(started) })
		<-r.Context().Done() // hold until the scheduler hangs up
		close(unblocked)
	}))
	t.Cleanup(backend.Close)

	srv := httptest.NewServer(NewServer(newScheduler(t, []string{backend.URL})))
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/suites/stream",
		strings.NewReader(`{"benchmarks":["gzip"],"request":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	<-started // the shard dispatch reached the backend
	cancel()  // client walks away mid-stream
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("backend dispatch not cancelled after the streaming client disconnected")
	}
}

// TestSchedulerStreamErrorLine pins mid-stream failure reporting: when
// a shard exhausts the ring after the 200 is committed, the stream
// ends with a terminal error line instead of an aggregate.
func TestSchedulerStreamErrorLine(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "down"})
	}))
	t.Cleanup(dead.Close)
	srv := NewServer(newScheduler(t, []string{dead.URL}))

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/suites/stream",
		strings.NewReader(`{"benchmarks":["gzip"],"request":{}}`)))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream already committed)", w.Code)
	}
	lines := readStream(t, w.Body)
	if len(lines) != 1 || lines[0].Type != "error" || !strings.Contains(lines[0].Error, "failed on") {
		t.Fatalf("stream lines = %+v, want a single ring-exhausted error line", lines)
	}

	// Before the stream commits, failures are still plain HTTP errors.
	bad := httptest.NewRecorder()
	srv.ServeHTTP(bad, httptest.NewRequest(http.MethodPost, "/v1/suites/stream",
		strings.NewReader(`{"benchmarks":["nosuch"],"request":{}}`)))
	if bad.Code != http.StatusBadRequest {
		t.Errorf("invalid suite status = %d, want 400", bad.Code)
	}
}

// TestSchedulerStreamCoalescesAcrossRequests asserts the streamed path
// runs through the same single-flight stack as everything else: two
// concurrent identical streamed suites produce one backend call, and
// the joiner reports COALESCED.
func TestSchedulerStreamCoalescesAcrossRequests(t *testing.T) {
	gate := make(chan struct{})
	stub, requests := cannedBackend(t, gate)
	sched := newScheduler(t, []string{stub.URL})
	suite := frontendsim.SuiteRequest{Benchmarks: []string{"gzip"}}

	var wg sync.WaitGroup
	sources := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := sched.RunSuiteStream(context.Background(), suite, func(sh frontendsim.ShardResult) {
				sources[i] = sh.Source
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // let both reach the flight group
	close(gate)
	wg.Wait()

	if n := requests.Load(); n != 1 {
		t.Errorf("backend saw %d requests for 2 identical streamed suites, want 1", n)
	}
	var miss, coalesced int
	for _, src := range sources {
		switch src {
		case "MISS":
			miss++
		case "COALESCED":
			coalesced++
		}
	}
	if miss != 1 || coalesced != 1 {
		t.Errorf("sources = %v, want one MISS and one COALESCED", sources)
	}
}

// TestSchedulerServerBodyCap asserts oversized bodies get 413 with the
// JSON envelope on every decoding route, and under-cap requests on the
// same server still work.
func TestSchedulerServerBodyCap(t *testing.T) {
	stub, _ := cannedBackend(t, nil)
	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends: []string{stub.URL},
		Cache:    resultstore.NewMemory(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sched, WithMaxBodyBytes(512))

	huge := `{"benchmarks":["gzip"],"pad":"` + strings.Repeat("x", 4096) + `"}`
	for _, route := range []struct{ method, path string }{
		{http.MethodPost, "/v1/suites"},
		{http.MethodPost, "/v1/suites/stream"},
		{http.MethodPost, "/v1/simulations"},
	} {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest(route.method, route.path, strings.NewReader(huge)))
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", route.path, w.Code)
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: non-JSON 413 body %q", route.path, w.Body.String())
		}
	}
	ok := httptest.NewRecorder()
	srv.ServeHTTP(ok, httptest.NewRequest(http.MethodPost, "/v1/suites",
		strings.NewReader(`{"benchmarks":["gzip"],"request":{}}`)))
	if ok.Code != http.StatusOK {
		t.Errorf("under-cap suite status = %d, want 200 (body %s)", ok.Code, ok.Body.String())
	}
}

// TestSchedulerStreamNotFoundRoutes sanity-checks the route table after
// the new mount: the stream route answers POST only.
func TestSchedulerStreamNotFoundRoutes(t *testing.T) {
	stub, _ := cannedBackend(t, nil)
	srv := NewServer(newScheduler(t, []string{stub.URL}))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/suites/stream", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/suites/stream status = %d, want 405", w.Code)
	}
	if !strings.Contains(Describe(), "/v1/suites/stream") {
		t.Error("Describe() does not mention the stream route")
	}
}
