package scheduler

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// dispatchOutcome classifies one finished attempt for the breaker and
// the passive membership feed.
type dispatchOutcome int

const (
	// outcomeSuccess: the backend served the request.
	outcomeSuccess dispatchOutcome = iota
	// outcomeFailure: the backend (or the path to it) is at fault —
	// transport error, 5xx, or a hang past the per-attempt deadline.
	outcomeFailure
	// outcomeUnknown: the attempt says nothing about the backend — the
	// caller cancelled (including a hedge loser reaped by the winner) or
	// the request itself was refused (4xx, every backend would refuse).
	outcomeUnknown
)

// classifyDispatch maps one attempt's error to its outcome.  ctx is the
// caller's context, NOT the per-attempt one: a hedged loser cancelled by
// the winner carries context.Canceled while ctx is still live, and must
// not count against the backend.  A DeadlineExceeded while ctx is live
// is the per-attempt transport timeout — a hung backend, a failure.
func classifyDispatch(ctx context.Context, err error) dispatchOutcome {
	if err == nil {
		return outcomeSuccess
	}
	if ctx.Err() != nil || errors.Is(err, context.Canceled) {
		return outcomeUnknown
	}
	var be *BackendError
	if errors.As(err, &be) && !be.Retryable() {
		return outcomeUnknown
	}
	return outcomeFailure
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerNode is one backend's breaker.
type breakerNode struct {
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// breaker is the scheduler's passive per-backend circuit breaker:
// consecutive dispatch failures open a node's circuit, an open circuit
// diverts the ring walk around the node (no request is burned on a
// backend that just failed threshold times in a row), and after
// cooldown a single probe request is let through — success closes the
// circuit, failure re-opens it for another cooldown.  Unlike the
// membership registry's active /healthz probes, the breaker reacts at
// dispatch speed: a backend that starts failing is diverted within
// `threshold` requests, not at the next probe round.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	nodes     map[string]*breakerNode

	// Transition counters, by destination state
	// (sched_breaker_transitions_total{to}).
	opened   atomic.Uint64
	halfOpen atomic.Uint64
	closed   atomic.Uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		nodes:     make(map[string]*breakerNode),
	}
}

func (b *breaker) node(url string) *breakerNode {
	n := b.nodes[url]
	if n == nil {
		n = &breakerNode{}
		b.nodes[url] = n
	}
	return n
}

// allow reports whether a dispatch to url may proceed.  An open circuit
// past its cooldown flips to half-open and admits exactly one probe;
// further requests are diverted until the probe resolves (record).
func (b *breaker) allow(url string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.node(url)
	switch n.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(n.openedAt) < b.cooldown {
			return false
		}
		n.state = breakerHalfOpen
		n.probing = true
		b.halfOpen.Add(1)
		return true
	default: // half-open
		if n.probing {
			return false
		}
		n.probing = true
		return true
	}
}

// record feeds one attempt's outcome back.  Success closes the circuit;
// a failure while half-open re-opens it immediately, while closed it
// opens once `threshold` consecutive failures accumulate.  An unknown
// outcome only releases a held probe slot — a cancelled probe must not
// wedge the circuit half-open forever, and must not re-open it either.
func (b *breaker) record(url string, out dispatchOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.node(url)
	switch out {
	case outcomeSuccess:
		if n.state != breakerClosed {
			b.closed.Add(1)
		}
		n.state = breakerClosed
		n.fails = 0
		n.probing = false
	case outcomeFailure:
		n.probing = false
		if n.state == breakerHalfOpen {
			n.state = breakerOpen
			n.openedAt = b.now()
			b.opened.Add(1)
			return
		}
		if n.state == breakerClosed {
			n.fails++
			if n.fails >= b.threshold {
				n.state = breakerOpen
				n.openedAt = b.now()
				b.opened.Add(1)
			}
		}
	default:
		n.probing = false
	}
}

// stateOf returns url's current breaker state (for tests and metrics).
func (b *breaker) stateOf(url string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := b.nodes[url]; n != nil {
		return n.state
	}
	return breakerClosed
}

// allowNode is the breaker gate of the ring walk (true when the breaker
// is disabled).
func (s *Scheduler) allowNode(url string) bool {
	if s.brk == nil {
		return true
	}
	if s.brk.allow(url) {
		return true
	}
	s.breakerSkips.Add(1)
	return false
}

// reportAttempt feeds one finished dispatch attempt to the breaker and
// the passive membership feed.  ctx is the caller's context (see
// classifyDispatch); unknown outcomes reach neither — they carry no
// information about the backend.
func (s *Scheduler) reportAttempt(ctx context.Context, node string, err error) {
	out := classifyDispatch(ctx, err)
	if s.brk != nil {
		s.brk.record(node, out)
	}
	if s.reportDispatch == nil {
		return
	}
	switch out {
	case outcomeSuccess:
		s.reportDispatch(node, nil)
	case outcomeFailure:
		s.reportDispatch(node, err)
	}
}

// backoff sleeps the jittered exponential delay before retry attempt
// `attempt` (1 = the first retry), observing the slept duration in the
// sched_retry_backoff_seconds histogram.  Disabled (0 RetryBackoff)
// or non-positive attempts return immediately.
func (s *Scheduler) backoff(ctx context.Context, attempt int) error {
	if s.retryBackoff <= 0 || attempt < 1 {
		return nil
	}
	shift := attempt - 1
	if shift > 6 {
		shift = 6 // cap the exponent: 64x base is already a long wait
	}
	d := s.retryBackoff << shift
	// Full jitter around the exponential midpoint: [0.5d, 1.5d).
	// Decorrelates the ring walks of concurrent shards so a recovering
	// backend sees a trickle, not a thundering herd.
	s.rngMu.Lock()
	d = d/2 + time.Duration(s.rng.Int63n(int64(d)))
	s.rngMu.Unlock()
	if s.backoffSeconds != nil {
		s.backoffSeconds.Observe(d.Seconds())
	}
	s.backoffs.Add(1)
	return s.sleep(ctx, d)
}

// sleepCtx waits d or fails with ctx's error — the default
// Scheduler.sleep (tests substitute a stub to assert spacing without
// real waiting).
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newJitterRNG seeds the backoff jitter source.  Crypto quality is
// irrelevant; per-scheduler seeding only has to decorrelate replicas.
func newJitterRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
