package scheduler

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
)

// TestRearmTimerDrainsStaleExpiry pins the stop-drain-reset idiom: a
// timer that already fired (tick unconsumed in its channel) must not
// deliver that stale tick after being re-armed — a bare Reset would,
// and in the hedge loop that stale tick launched a spurious instant
// hedge right after a failed attempt's fallback.
func TestRearmTimerDrainsStaleExpiry(t *testing.T) {
	timer := time.NewTimer(time.Millisecond)
	defer timer.Stop()
	time.Sleep(20 * time.Millisecond) // expired; tick sits unconsumed in timer.C

	rearmTimer(timer, 300*time.Millisecond)
	select {
	case <-timer.C:
		t.Fatal("stale expiry delivered immediately after re-arm")
	case <-time.After(50 * time.Millisecond):
	}
	// Exactly one tick at the new deadline.
	select {
	case <-timer.C:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never fired")
	}

	// Re-arming a live (not yet expired) timer also postpones it.
	rearmTimer(timer, time.Hour)
	rearmTimer(timer, 20*time.Millisecond)
	select {
	case <-timer.C:
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed live timer never fired at the shortened deadline")
	}
}

// TestHedgeCountAfterFailedAttempt pins the hedge accounting around
// the failure-fallback path: a home node that fails immediately falls
// back sequentially (Retried), and with the hedge delay far above the
// test's runtime, no speculative attempt may ever be counted — the
// stale-timer bug inflated Hedged exactly here.
func TestHedgeCountAfterFailedAttempt(t *testing.T) {
	var deadHits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "down"})
	}))
	t.Cleanup(dead.Close)
	body, err := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(healthy.Close)

	sched, err := New(frontendsim.New(testOpts()...), Config{
		Backends:   []string{dead.URL, healthy.URL},
		HedgeDelay: time.Minute, // far beyond the test: any hedge is spurious
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := homedRequest(t, sched, dead.URL)
	for i := 0; i < 5; i++ {
		if _, err := sched.Dispatch(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := sched.Stats()
	if st.Hedged != 0 {
		t.Errorf("stats = %+v: %d spurious hedge(s) with a one-minute hedge delay", st, st.Hedged)
	}
	if st.Retried != 5 {
		t.Errorf("stats = %+v, want 5 retried (one sequential fallback per dispatch)", st)
	}
	if n := deadHits.Load(); n != 5 {
		t.Errorf("dead backend saw %d requests, want 5", n)
	}
}

// TestServedXCacheSpellings is the spelling table of the suite-level
// X-Cache header, including the fixed all-coalesced case (previously
// misreported as MISS).
func TestServedXCacheSpellings(t *testing.T) {
	cases := []struct {
		served Served
		want   string
	}{
		{Served{}, "MISS"},
		{Served{Dispatched: 3}, "MISS"},
		{Served{Cached: 3}, "HIT"},
		{Served{Coalesced: 3}, "COALESCED"},
		{Served{Cached: 1, Coalesced: 2}, "COALESCED"},
		{Served{Cached: 1, Dispatched: 2}, "PARTIAL"},
		{Served{Coalesced: 1, Dispatched: 2}, "PARTIAL"},
		{Served{Cached: 1, Coalesced: 1, Dispatched: 1}, "PARTIAL"},
	}
	for _, tc := range cases {
		if got := tc.served.XCache(); got != tc.want {
			t.Errorf("%+v.XCache() = %q, want %q", tc.served, got, tc.want)
		}
	}
}

// TestAllCoalescedSuiteReportsCoalesced drives the fixed spelling
// through the real stack: a suite whose only shard joins another
// caller's in-flight dispatch reports X-Cache COALESCED, not MISS.
func TestAllCoalescedSuiteReportsCoalesced(t *testing.T) {
	gate := make(chan struct{})
	stub, requests := cannedBackend(t, gate)
	sched := newScheduler(t, []string{stub.URL})
	ctx := context.Background()

	// First caller owns the dispatch and blocks on the gate.
	firstStarted := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(firstStarted)
		if _, err := sched.Dispatch(ctx, frontendsim.Request{Benchmark: "gzip"}); err != nil {
			t.Error(err)
		}
	}()
	<-firstStarted
	time.Sleep(200 * time.Millisecond) // let the dispatch reach the flight group

	servedc := make(chan Served, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, served, err := sched.RunSuiteServed(ctx, frontendsim.SuiteRequest{Benchmarks: []string{"gzip"}})
		if err != nil {
			t.Error(err)
			return
		}
		servedc <- served
	}()
	time.Sleep(200 * time.Millisecond) // let the suite's shard join the flight
	close(gate)
	wg.Wait()

	served := <-servedc
	if served.Coalesced != 1 || served.Dispatched != 0 {
		t.Fatalf("served = %+v, want the single shard coalesced", served)
	}
	if got := served.XCache(); got != "COALESCED" {
		t.Errorf("all-coalesced suite XCache = %q, want COALESCED", got)
	}
	if n := requests.Load(); n != 1 {
		t.Errorf("backend saw %d requests, want 1", n)
	}
}

// TestFailedShareDoesNotCountCoalesced pins the counter fix: callers
// that join an in-flight dispatch which then FAILS inherited a
// failure, not saved work — the Coalesced stat must not move.
func TestFailedShareDoesNotCountCoalesced(t *testing.T) {
	gate := make(chan struct{})
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-gate:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]string{"error": "boom"})
	}))
	t.Cleanup(failing.Close)
	sched := newScheduler(t, []string{failing.URL})

	const callers = 4
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = sched.DispatchSource(context.Background(), frontendsim.Request{Benchmark: "gzip"})
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // let every caller join the flight group
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d succeeded against an all-failing ring", i)
		}
	}
	if st := sched.Stats(); st.Coalesced != 0 {
		t.Errorf("stats = %+v: failed shares were counted as coalesced work saved", st)
	}
}

// TestInternalFaultFailsOver closes the loop on the simd statusFor fix:
// a backend surfacing an internal fault the way simd now does (500 +
// JSON envelope) must be failed over, where the old 400 classification
// aborted the walk.  internal/simd's TestInternalFaultIs500 pins the
// other half (faults actually are 500).
func TestInternalFaultFailsOver(t *testing.T) {
	faulty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		writeJSONError(w, http.StatusInternalServerError, "simd: decode cached result: invalid character")
	}))
	t.Cleanup(faulty.Close)
	body, err := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(healthy.Close)

	sched := newScheduler(t, []string{faulty.URL, healthy.URL})
	req, _ := homedRequest(t, sched, faulty.URL)
	res, err := sched.Dispatch(context.Background(), req)
	if err != nil {
		t.Fatalf("internal backend fault did not fail over: %v", err)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("result = %+v", res)
	}
	if st := sched.Stats(); st.Retried != 1 {
		t.Errorf("stats = %+v, want 1 retried", st)
	}

	// Sanity: the classification boundary itself — 500 retryable, 400 not.
	if !(&BackendError{Status: 500}).Retryable() {
		t.Error("500 BackendError not retryable")
	}
	if (&BackendError{Status: 400}).Retryable() {
		t.Error("400 BackendError retryable")
	}
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
