package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simd"
	"repro/pkg/frontendsim"
)

// testOpts are the reduced simulation lengths shared by every engine in
// these tests — scheduler, backends and the serial reference must agree
// for canonical keys and results to line up.
func testOpts() []frontendsim.Option {
	return []frontendsim.Option{
		frontendsim.WithWarmupOps(12_000),
		frontendsim.WithMeasureOps(25_000),
	}
}

// serialReference computes the serial in-process reference for
// tenBenchSuite once — it is the byte-identity baseline of three suite
// tests, and simulations are expensive under -race.
var (
	serialOnce sync.Once
	serialJSON []byte
	serialErr  error
)

func serialReferenceJSON(t *testing.T) []byte {
	t.Helper()
	serialOnce.Do(func() {
		res, err := frontendsim.New(append(testOpts(), frontendsim.WithWorkers(1))...).
			RunSuite(context.Background(), tenBenchSuite())
		if err != nil {
			serialErr = err
			return
		}
		serialJSON, serialErr = json.Marshal(res)
	})
	if serialErr != nil {
		t.Fatal(serialErr)
	}
	return serialJSON
}

// backend is one in-process simd instance with a request counter.
type backend struct {
	srv      *httptest.Server
	requests atomic.Int64
}

func (b *backend) URL() string { return b.srv.URL }

// newBackends spins n in-process simd servers (each with its own engine
// and cache) and registers their shutdown with t.
func newBackends(t *testing.T, n int) []*backend {
	t.Helper()
	out := make([]*backend, n)
	for i := range out {
		b := &backend{}
		inner := simd.NewServer(frontendsim.New(testOpts()...), 64)
		b.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			b.requests.Add(1)
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(b.srv.Close)
		out[i] = b
	}
	return out
}

func urls(backends []*backend) []string {
	out := make([]string, len(backends))
	for i, b := range backends {
		out[i] = b.URL()
	}
	return out
}

func newScheduler(t *testing.T, backends []string) *Scheduler {
	t.Helper()
	sched, err := New(frontendsim.New(testOpts()...), Config{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// tenBenchSuite is the 10-benchmark integration suite.
func tenBenchSuite() frontendsim.SuiteRequest {
	return frontendsim.SuiteRequest{
		Benchmarks: frontendsim.Benchmarks()[:10],
		Request:    frontendsim.Request{BankHopping: true},
	}
}

// TestSchedulerMatchesSerialRunSuite is the multi-backend integration
// test: a 10-benchmark suite through 3 real simd backends must be
// byte-identical to a serial in-process Engine.RunSuite, with every
// request landing on its home backend and the shard assignment stable
// across a scheduler restart with a reordered backend list.
func TestSchedulerMatchesSerialRunSuite(t *testing.T) {
	backends := newBackends(t, 3)
	sched := newScheduler(t, urls(backends))

	distributed, err := sched.RunSuite(context.Background(), tenBenchSuite())
	if err != nil {
		t.Fatal(err)
	}
	distJSON, err := json.Marshal(distributed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distJSON, serialReferenceJSON(t)) {
		t.Error("3-backend scheduler suite is not byte-identical to the serial run")
	}

	// Every dispatch landed on the key's home backend, exactly once.
	homes := map[string]int64{}
	for _, bench := range tenBenchSuite().Benchmarks {
		key, err := sched.eng.RequestKey(frontendsim.Request{Benchmark: bench, BankHopping: true})
		if err != nil {
			t.Fatal(err)
		}
		homes[sched.Ring().Node(key)]++
	}
	var spread int
	for _, b := range backends {
		if want := homes[b.URL()]; b.requests.Load() != want {
			t.Errorf("backend %s served %d requests, ring assigns it %d keys",
				b.URL(), b.requests.Load(), want)
		}
		if homes[b.URL()] > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("suite sharded onto %d backend(s), want at least 2", spread)
	}
	if st := sched.Stats(); st.Dispatched != 10 || st.Retried != 0 {
		t.Errorf("stats = %+v, want 10 dispatched, 0 retried", st)
	}

	// Restart: a scheduler rebuilt over the same backends in a different
	// order assigns every key identically.
	reordered := []string{backends[2].URL(), backends[0].URL(), backends[1].URL()}
	restarted := newScheduler(t, reordered)
	for _, bench := range frontendsim.Benchmarks() {
		key, err := sched.eng.RequestKey(frontendsim.Request{Benchmark: bench, BankHopping: true})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := sched.Ring().Node(key), restarted.Ring().Node(key); a != b {
			t.Errorf("benchmark %s re-homed across restart: %s -> %s", bench, a, b)
		}
	}
}

// TestSchedulerFailsOverDeadBackend kills one backend and asserts every
// benchmark it owned retries onto the next ring node, with the aggregate
// still byte-identical to serial — no duplicate, no missing benchmark.
func TestSchedulerFailsOverDeadBackend(t *testing.T) {
	backends := newBackends(t, 3)
	sched := newScheduler(t, urls(backends))

	// Find a backend that owns at least one of the suite's keys and kill
	// it before the suite runs.
	suite := tenBenchSuite()
	owned := map[string]int{}
	for _, bench := range suite.Benchmarks {
		key, err := sched.eng.RequestKey(frontendsim.Request{Benchmark: bench, BankHopping: true})
		if err != nil {
			t.Fatal(err)
		}
		owned[sched.Ring().Node(key)]++
	}
	var victim *backend
	for _, b := range backends {
		if owned[b.URL()] > 0 {
			victim = b
			break
		}
	}
	if victim == nil {
		t.Fatal("no backend owns any suite key")
	}
	victim.srv.Close()

	distributed, err := sched.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}

	// No missing and no duplicate benchmark: results are exactly the
	// suite, in order.
	for i, bench := range suite.Benchmarks {
		if distributed.Results[i] == nil || distributed.Results[i].Benchmark != bench {
			t.Fatalf("result %d is %v, want benchmark %s", i, distributed.Results[i], bench)
		}
	}
	distJSON, _ := json.Marshal(distributed)
	if !bytes.Equal(distJSON, serialReferenceJSON(t)) {
		t.Error("failed-over suite is not byte-identical to the serial run")
	}
	if st := sched.Stats(); st.Retried < uint64(owned[victim.URL()]) {
		t.Errorf("stats = %+v, want at least %d retried (victim owned that many keys)",
			st, owned[victim.URL()])
	}
}

// TestSchedulerFailsOverMidSuite lets one backend serve its first
// request and then start failing, mid-suite.
func TestSchedulerFailsOverMidSuite(t *testing.T) {
	healthy := newBackends(t, 1)[0]

	// The flaky backend serves exactly one request, then returns 500s.
	var served atomic.Int64
	inner := simd.NewServer(frontendsim.New(testOpts()...), 64)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": "backend going down"})
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	sched := newScheduler(t, []string{healthy.URL(), flaky.URL})
	suite := tenBenchSuite()
	distributed, err := sched.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	for i, bench := range suite.Benchmarks {
		if distributed.Results[i] == nil || distributed.Results[i].Benchmark != bench {
			t.Fatalf("result %d is %v, want benchmark %s", i, distributed.Results[i], bench)
		}
	}
	distJSON, _ := json.Marshal(distributed)
	if !bytes.Equal(distJSON, serialReferenceJSON(t)) {
		t.Error("mid-suite failover result is not byte-identical to the serial run")
	}
}

// TestSchedulerRequestErrorDoesNotRetry asserts request errors (4xx)
// abort the ring walk: every backend would refuse the same request.
func TestSchedulerRequestErrorDoesNotRetry(t *testing.T) {
	var total atomic.Int64
	refusing := func() *httptest.Server {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			total.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]string{"error": "computer says no"})
		}))
		t.Cleanup(srv.Close)
		return srv
	}
	sched := newScheduler(t, []string{refusing().URL, refusing().URL, refusing().URL})

	_, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: "gzip"})
	var be *BackendError
	if !errors.As(err, &be) || be.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 BackendError", err)
	}
	if n := total.Load(); n != 1 {
		t.Errorf("request error contacted %d backends, want 1 (no retry)", n)
	}
	if st := sched.Stats(); st.Retried != 0 {
		t.Errorf("request error was retried: %+v", st)
	}

	// An unknown benchmark fails locally, before any dispatch.
	if _, err := sched.RunSuite(context.Background(), frontendsim.SuiteRequest{
		Benchmarks: []string{"nosuch"},
	}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if n := total.Load(); n != 1 {
		t.Errorf("invalid suite reached a backend (%d total requests)", n)
	}
}

// TestSchedulerCancellationPropagates cancels a suite mid-flight and
// asserts the in-flight backend request's own context is cancelled too
// (through the single-flight layer's reference counting).
func TestSchedulerCancellationPropagates(t *testing.T) {
	var once sync.Once
	started := make(chan struct{})
	unblocked := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only watches for a client
		// abort once the request has been consumed.
		io.Copy(io.Discard, r.Body)
		once.Do(func() { close(started) })
		<-r.Context().Done() // block until the scheduler hangs up
		close(unblocked)
	}))
	defer stub.Close()

	sched := newScheduler(t, []string{stub.URL})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sched.RunSuite(ctx, frontendsim.SuiteRequest{
			Benchmarks: []string{"gzip"},
		})
		errc <- err
	}()

	<-started
	cancel()
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("backend request context not cancelled after suite cancellation")
	}
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RunSuite error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunSuite did not return after cancellation")
	}
}

// cannedBackend returns a stub that answers every simulation with a
// fixed pre-marshalled result, plus its request counter — for tests of
// pure dispatch mechanics with no simulation cost.
func cannedBackend(t *testing.T, gate <-chan struct{}) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	body, err := json.Marshal(&frontendsim.Result{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	var requests atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		requests.Add(1)
		if gate != nil {
			select {
			case <-gate:
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv, &requests
}

// TestSchedulerCoalescesConcurrentDispatches fires N identical
// concurrent dispatches and asserts exactly one backend call.
func TestSchedulerCoalescesConcurrentDispatches(t *testing.T) {
	gate := make(chan struct{})
	stub, requests := cannedBackend(t, gate)
	sched := newScheduler(t, []string{stub.URL})

	const callers = 6
	var wg sync.WaitGroup
	results := make([]*frontendsim.Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: "gzip"})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	// Give every caller time to reach the single-flight group, then let
	// the one backend call complete.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := requests.Load(); n != 1 {
		t.Errorf("backend received %d requests for %d identical dispatches, want 1", n, callers)
	}
	for i, res := range results {
		if res == nil || res.Benchmark != "gzip" {
			t.Errorf("caller %d got %+v", i, res)
		}
	}
	if st := sched.Stats(); st.Coalesced != callers-1 {
		t.Errorf("stats = %+v, want %d coalesced", st, callers-1)
	}
}

// TestSchedulerDedupsDuplicateSuiteKeys asserts a suite containing the
// same benchmark several times dispatches each canonical key once.
func TestSchedulerDedupsDuplicateSuiteKeys(t *testing.T) {
	stub, requests := cannedBackend(t, nil)
	sched := newScheduler(t, []string{stub.URL})

	res, err := sched.RunSuite(context.Background(), frontendsim.SuiteRequest{
		Benchmarks: []string{"gzip", "gzip", "mcf", "gzip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := requests.Load(); n != 2 {
		t.Errorf("backend received %d requests for 2 unique keys, want 2", n)
	}
	if len(res.Results) != 4 || res.Aggregate.Benchmarks != 4 {
		t.Errorf("suite shape %d results / %d aggregate benchmarks, want 4/4",
			len(res.Results), res.Aggregate.Benchmarks)
	}
	if res.Results[0] != res.Results[1] || res.Results[1] != res.Results[3] {
		t.Error("duplicate suite entries do not share the dispatched result")
	}
}
