package scheduler

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := newBreaker(3, time.Minute)
	node := "http://backend-1"
	fault := errors.New("boom")

	for i := 0; i < 2; i++ {
		if !b.allow(node) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.record(node, classifyDispatch(context.Background(), fault))
	}
	if b.stateOf(node) != breakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.record(node, outcomeFailure) // third consecutive failure
	if b.stateOf(node) != breakerOpen {
		t.Fatal("breaker did not open at threshold")
	}
	if b.allow(node) {
		t.Error("open breaker admitted a request inside the cooldown")
	}
	if b.opened.Load() != 1 {
		t.Errorf("opened transitions = %d, want 1", b.opened.Load())
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b := newBreaker(1, time.Minute)
	node := "http://backend-1"
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	b.allow(node)
	b.record(node, outcomeFailure)
	if b.allow(node) {
		t.Fatal("open breaker admitted a request")
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.allow(node) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.stateOf(node) != breakerHalfOpen {
		t.Fatal("probe admission did not flip to half-open")
	}
	if b.allow(node) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// A failed probe re-opens for another full cooldown.
	b.record(node, outcomeFailure)
	if b.stateOf(node) != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow(node) {
		t.Fatal("re-opened breaker admitted a request")
	}

	// Next probe succeeds: closed, traffic flows.
	now = now.Add(2 * time.Minute)
	if !b.allow(node) {
		t.Fatal("second probe refused")
	}
	b.record(node, outcomeSuccess)
	if b.stateOf(node) != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.allow(node) || !b.allow(node) {
		t.Error("closed breaker limits traffic")
	}
	if b.closed.Load() != 1 || b.opened.Load() != 2 || b.halfOpen.Load() != 2 {
		t.Errorf("transitions open=%d half=%d closed=%d, want 2/2/1",
			b.opened.Load(), b.halfOpen.Load(), b.closed.Load())
	}
}

func TestBreakerCancelledProbeReleasesSlot(t *testing.T) {
	b := newBreaker(1, time.Minute)
	node := "http://backend-1"
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	b.allow(node)
	b.record(node, outcomeFailure)
	now = now.Add(2 * time.Minute)
	if !b.allow(node) {
		t.Fatal("probe refused")
	}
	// The probe's caller went away: outcome unknown.  The slot must free
	// so the *next* request can probe — and the circuit must not re-open.
	b.record(node, outcomeUnknown)
	if b.stateOf(node) != breakerHalfOpen {
		t.Fatal("unknown outcome changed the breaker state")
	}
	if !b.allow(node) {
		t.Fatal("released probe slot not re-admitted")
	}
}

func TestClassifyDispatch(t *testing.T) {
	bg := context.Background()
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want dispatchOutcome
	}{
		{"success", bg, nil, outcomeSuccess},
		{"transport failure", bg, errors.New("connection refused"), outcomeFailure},
		{"5xx", bg, &BackendError{Status: 503}, outcomeFailure},
		{"attempt timeout with live caller", bg, fmt.Errorf("wrap: %w", context.DeadlineExceeded), outcomeFailure},
		{"4xx", bg, &BackendError{Status: 400}, outcomeUnknown},
		{"caller gone", cancelled, errors.New("anything"), outcomeUnknown},
		{"hedge loser", bg, fmt.Errorf("wrap: %w", context.Canceled), outcomeUnknown},
	}
	for _, c := range cases {
		if got := classifyDispatch(c.ctx, c.err); got != c.want {
			t.Errorf("%s: classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// homedOn returns benchmarks whose ring-walk home is node, in benchmark
// order — so breaker tests pick dispatches that deterministically
// contact (or avoid) a chosen backend.
func homedOn(t *testing.T, s *Scheduler, node string) []string {
	t.Helper()
	var out []string
	for _, bench := range frontendsim.Benchmarks() {
		key, err := s.eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if s.Ring().Sequence(key)[0] == node {
			out = append(out, bench)
		}
	}
	return out
}

// TestSchedulerBreakerDivertsRingWalk runs a real two-backend ring where
// one backend always 500s: after threshold failures its circuit opens
// and subsequent dispatches homed on it divert to the healthy node
// without contacting it.
func TestSchedulerBreakerDivertsRingWalk(t *testing.T) {
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		badHits.Add(1)
		http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := newBackends(t, 1)[0]

	eng := frontendsim.New(testOpts()...)
	sched, err := New(eng, Config{
		Backends:         []string{bad.URL, good.URL()},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no probe during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	onBad := homedOn(t, sched, bad.URL)
	if len(onBad) < 4 {
		t.Fatalf("only %d benchmarks homed on the bad backend; need 4", len(onBad))
	}

	// Two dispatches homed on the bad backend: each fails there, fails
	// over to the healthy node, and succeeds.  The second failure trips
	// the breaker.
	for _, bench := range onBad[:2] {
		if _, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: bench}); err != nil {
			t.Fatalf("dispatch %s: %v", bench, err)
		}
	}
	if got := sched.brk.stateOf(bad.URL); got != breakerOpen {
		t.Fatalf("bad backend breaker state = %v, want open", got)
	}
	hitsWhenOpen := badHits.Load()

	// Further dispatches homed on the bad backend divert around the open
	// circuit: they succeed without contacting it.
	for _, bench := range onBad[2:4] {
		if _, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: bench}); err != nil {
			t.Fatalf("dispatch %s after open: %v", bench, err)
		}
	}
	if got := badHits.Load(); got != hitsWhenOpen {
		t.Errorf("open circuit still passed %d requests to the bad backend", got-hitsWhenOpen)
	}
	if sched.Stats().BreakerSkips == 0 {
		t.Error("no breaker skips recorded")
	}
}

// TestSchedulerBackoffSpacing pins the retry backoff schedule under a
// stubbed clock: attempt n's wait is drawn from [0.5, 1.5)·base·2ⁿ⁻¹.
func TestSchedulerBackoffSpacing(t *testing.T) {
	// Three backends that always fail → a full ring walk with two
	// retries, each preceded by one recorded backoff.
	var nodes []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
		}))
		defer srv.Close()
		nodes = append(nodes, srv.URL)
	}

	const base = 10 * time.Millisecond
	eng := frontendsim.New(testOpts()...)
	sched, err := New(eng, Config{Backends: nodes, RetryBackoff: base})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	sched.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d) // stubbed clock: record, don't wait
		return nil
	}

	_, err = sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: "gzip"})
	var ee *ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if len(slept) != 2 {
		t.Fatalf("recorded %d backoffs (%v), want 2", len(slept), slept)
	}
	for i, d := range slept {
		scale := time.Duration(1) << i // attempt 1 → 1×base, attempt 2 → 2×base
		lo, hi := base*scale/2, base*scale*3/2
		if d < lo || d >= hi {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i+1, d, lo, hi)
		}
	}
	if got := sched.Stats().Backoffs; got != 2 {
		t.Errorf("Backoffs = %d, want 2", got)
	}
}

// TestSchedulerReportDispatch asserts the passive membership feed: every
// attempt that says something about a backend — success or failure — is
// reported with that verdict.
func TestSchedulerReportDispatch(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := newBackends(t, 1)[0]

	var mu struct {
		fails, oks map[string]int
	}
	mu.fails, mu.oks = map[string]int{}, map[string]int{}
	var reportMu sync.Mutex
	eng := frontendsim.New(testOpts()...)
	sched, err := New(eng, Config{
		Backends: []string{bad.URL, good.URL()},
		ReportDispatch: func(node string, err error) {
			reportMu.Lock()
			defer reportMu.Unlock()
			if err != nil {
				mu.fails[node]++
			} else {
				mu.oks[node]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	onBad := homedOn(t, sched, bad.URL)
	if len(onBad) == 0 {
		t.Fatal("no benchmark homed on the bad backend")
	}
	if _, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: onBad[0]}); err != nil {
		t.Fatalf("dispatch: %v", err)
	}
	reportMu.Lock()
	defer reportMu.Unlock()
	if mu.fails[bad.URL] != 1 {
		t.Errorf("bad backend failure reports = %d, want 1", mu.fails[bad.URL])
	}
	if mu.oks[good.URL()] != 1 {
		t.Errorf("good backend success reports = %d, want 1", mu.oks[good.URL()])
	}
}

// TestSchedulerPartialResults exercises graceful degradation through a
// real ring: one benchmark is refused by every backend, yet the suite
// answers with per-shard errors, a reduced aggregate, and the
// PARTIAL-ERROR X-Cache marker.
func TestSchedulerPartialResults(t *testing.T) {
	// Each ring node proxies to a real simd backend but 500s any request
	// naming the doomed benchmark — on every node, so its ring walk
	// exhausts.
	const doomed = "mcf"
	backends := make([]string, 2)
	for i := range backends {
		inner := newBackends(t, 1)[0]
		filter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, `{"error":"read"}`, http.StatusBadRequest)
				return
			}
			if bytes.Contains(body, []byte(`"`+doomed+`"`)) {
				http.Error(w, `{"error":"injected: shard down"}`, http.StatusInternalServerError)
				return
			}
			resp, err := http.Post(inner.URL()+r.URL.Path, "application/json", bytes.NewReader(body))
			if err != nil {
				http.Error(w, `{"error":"proxy"}`, http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
		}))
		t.Cleanup(filter.Close)
		backends[i] = filter.URL
	}

	eng := frontendsim.New(testOpts()...)
	sched, err := New(eng, Config{Backends: backends, PartialResults: true})
	if err != nil {
		t.Fatal(err)
	}
	suite := frontendsim.SuiteRequest{Benchmarks: []string{"gzip", doomed, "swim"}}
	res, served, err := sched.RunSuiteServed(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	if served.Failed != 1 || served.XCache() != "PARTIAL-ERROR" {
		t.Errorf("served = %+v (XCache %s), want 1 failure / PARTIAL-ERROR", served, served.XCache())
	}
	if len(res.Errors) != 1 || res.Errors[0].Benchmark != doomed {
		t.Fatalf("Errors = %+v, want one %s entry", res.Errors, doomed)
	}
	if res.Results[1] != nil {
		t.Error("doomed shard has a result")
	}
	if res.Results[0] == nil || res.Results[2] == nil {
		t.Error("surviving shards missing results")
	}
	if res.Aggregate.Benchmarks != 2 {
		t.Errorf("aggregate over %d benchmarks, want 2", res.Aggregate.Benchmarks)
	}
}
