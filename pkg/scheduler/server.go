package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// Server is the HTTP API of the suite scheduler (served by cmd/simsched).
//
//	POST /v1/suites      JSON frontendsim.SuiteRequest -> JSON SuiteResult,
//	                     sharded across the backend ring; X-Cache reports
//	                     HIT (all shards from the scheduler store),
//	                     PARTIAL or MISS
//	POST /v1/simulations JSON frontendsim.Request -> JSON Result, served
//	                     from the scheduler store or routed to the
//	                     request's home backend (ring passthrough);
//	                     X-Cache: HIT|MISS|COALESCED
//	GET  /v1/ring        ring topology and dispatch counters
//	GET  /v1/cache/stats scheduler-tier response-store counters
//	GET  /healthz        liveness
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer builds the HTTP frontend over sched.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/suites", s.handleSuite)
	s.mux.HandleFunc("POST /v1/simulations", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/ring", s.handleRing)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// statusFor maps dispatch errors to HTTP statuses: client cancellations
// to 499, exhausted retries to 502, backend refusals to their own
// status, everything else (request validation) to 400.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	var ee *ExhaustedError
	if errors.As(err, &ee) {
		return http.StatusBadGateway
	}
	var be *BackendError
	if errors.As(err, &be) {
		return be.Status
	}
	return http.StatusBadRequest
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var suite frontendsim.SuiteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&suite); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("scheduler: decode suite request: %w", err))
		return
	}
	res, served, err := s.sched.RunSuiteServed(r.Context(), suite)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", served.XCache())
	json.NewEncoder(w).Encode(res)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req frontendsim.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("scheduler: decode request: %w", err))
		return
	}
	res, source, err := s.sched.DispatchSource(r.Context(), req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source.String())
	json.NewEncoder(w).Encode(res)
}

// handleCacheStats reports the scheduler-tier response store's
// counters, in the same shape as simd's /v1/cache/stats (an empty tier
// list means the store is disabled).
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	tiers := s.sched.CacheStats()
	entries, hits, misses := resultstore.Totals(tiers)
	if tiers == nil {
		tiers = []resultstore.TierStats{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries   int                     `json:"entries"`
		Hits      uint64                  `json:"hits"`
		Misses    uint64                  `json:"misses"`
		Coalesced uint64                  `json:"coalesced"`
		Tiers     []resultstore.TierStats `json:"tiers"`
	}{Entries: entries, Hits: hits, Misses: misses, Coalesced: s.sched.Stats().Coalesced, Tiers: tiers})
}

// handleRing reports the ring topology, the per-benchmark home nodes of
// a default-configuration suite, and the dispatch counters.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	assignment := map[string]string{}
	for _, bench := range frontendsim.Benchmarks() {
		if key, err := s.sched.eng.RequestKey(frontendsim.Request{Benchmark: bench}); err == nil {
			assignment[bench] = s.sched.ring.Node(key)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Backends   []string          `json:"backends"`
		Assignment map[string]string `json:"assignment"`
		Stats      Stats             `json:"stats"`
	}{Backends: s.sched.ring.Nodes(), Assignment: assignment, Stats: s.sched.Stats()})
}

// Describe returns a one-line routing summary (used by cmd/simsched
// startup logging).
func Describe() string {
	return strings.Join([]string{
		"POST /v1/suites",
		"POST /v1/simulations",
		"GET /v1/ring",
		"GET /v1/cache/stats",
		"GET /healthz",
	}, ", ")
}
