package scheduler

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// Server is the HTTP API of the suite scheduler (served by cmd/simsched).
//
//	POST   /v1/suites        JSON frontendsim.SuiteRequest -> JSON SuiteResult,
//	                         sharded across the backend ring; X-Cache reports
//	                         HIT (all shards from the scheduler store),
//	                         COALESCED, PARTIAL or MISS
//	POST   /v1/suites/stream same request, answered as application/x-ndjson:
//	                         one {"type":"shard"} line per completed shard
//	                         (cache hits first), then a terminal
//	                         {"type":"aggregate"} line byte-identical to the
//	                         blocking response, or {"type":"error"}
//	POST   /v1/simulations   JSON frontendsim.Request -> JSON Result, served
//	                         from the scheduler store or routed to the
//	                         request's home backend (ring passthrough);
//	                         X-Cache: HIT|MISS|COALESCED
//	GET    /v1/ring          ring topology, per-member health state and
//	                         dispatch counters
//	POST   /v1/ring/members  join a backend at runtime ({"url": ...})
//	DELETE /v1/ring/members  remove a backend at runtime ({"url": ...} or
//	                         ?url=)
//	GET    /v1/cache/stats   scheduler-tier response-store counters
//	GET    /metrics          Prometheus text exposition (with WithMetrics)
//	GET    /healthz          liveness
type Server struct {
	sched      *Scheduler
	members    *membership.Registry
	metrics    *obs.Registry
	mux        *http.ServeMux
	routeNames []string
	maxBody    int64
	// ready gates /healthz: SetReady(false) flips it to 503 so load
	// balancers stop routing here while srv.Shutdown drains in-flight
	// suites.
	ready atomic.Bool
}

// DefaultMaxBodyBytes caps request bodies accepted by the scheduler
// API.  Suite requests are a benchmark list plus one configuration —
// a megabyte is orders of magnitude above any legitimate request, and
// the cap keeps a misbehaving client from buffering the node into the
// ground.
const DefaultMaxBodyBytes = 1 << 20

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithMembership wires the live member registry: GET /v1/ring reports
// per-member health, and the POST/DELETE /v1/ring/members admin verbs
// join and remove backends at runtime.  The caller is responsible for
// subscribing the scheduler to the registry's changes (see
// membership.Config.OnChange).
func WithMembership(reg *membership.Registry) ServerOption {
	return func(s *Server) { s.members = reg }
}

// WithMetrics mounts reg's exposition on GET /metrics and instruments
// every route with the standard HTTP server metrics.
func WithMetrics(reg *obs.Registry) ServerOption {
	return func(s *Server) { s.metrics = reg }
}

// WithMaxBodyBytes overrides the request-body cap (default
// DefaultMaxBodyBytes).  Oversized bodies are rejected with 413.
// Non-positive values keep the default.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// NewServer builds the HTTP frontend over sched.
func NewServer(sched *Scheduler, opts ...ServerOption) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux(), maxBody: DefaultMaxBodyBytes}
	s.ready.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	s.handle("POST /v1/suites", s.handleSuite)
	s.handle("POST /v1/suites/stream", s.handleSuiteStream)
	s.handle("POST /v1/simulations", s.handleSimulate)
	s.handle("GET /v1/ring", s.handleRing)
	s.handle("POST /v1/ring/members", s.handleJoin)
	s.handle("DELETE /v1/ring/members", s.handleLeave)
	s.handle("GET /v1/cache/stats", s.handleCacheStats)
	s.handle("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, errors.New("scheduler: draining"))
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if s.metrics != nil {
		s.mux.Handle("GET /metrics", s.metrics.Handler())
		s.routeNames = append(s.routeNames, "GET /metrics")
	}
	return s
}

// handle mounts pattern, instrumented when a metrics registry is
// configured.  The handler label is the route pattern, so the duration
// histograms split by endpoint.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routeNames = append(s.routeNames, pattern)
	if s.metrics != nil {
		s.mux.Handle(pattern, s.metrics.InstrumentHandlerFunc(pattern, h))
		return
	}
	s.mux.HandleFunc(pattern, h)
}

// Routes returns the mounted route patterns (startup logging).
func (s *Server) Routes() string { return strings.Join(s.routeNames, ", ") }

// SetReady flips the /healthz verdict.  cmd/simsched calls
// SetReady(false) when shutdown begins, so load balancers drain this
// frontend before srv.Shutdown stops accepting connections — in-flight
// suite runs (including open NDJSON streams) still complete.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// requestContext derives the handler context: the request's own,
// bounded by the caller's X-Deadline-Budget when the hop carries one.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return frontendsim.ApplyDeadlineBudget(r.Context(), r.Header.Get(frontendsim.DeadlineBudgetHeader))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// statusFor maps dispatch errors to HTTP statuses: client cancellations
// to 499, exhausted retries to 502, backend refusals to their own
// status, everything else (request validation) to 400.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	var ee *ExhaustedError
	if errors.As(err, &ee) {
		return http.StatusBadGateway
	}
	var be *BackendError
	if errors.As(err, &be) {
		return be.Status
	}
	return http.StatusBadRequest
}

// decodeStatus maps body-decode failures: an http.MaxBytesReader trip
// is 413 (the client must shrink the request, not fix its syntax),
// anything else is a plain 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeBody caps r.Body at the configured limit and decodes one JSON
// value into v, rejecting unknown fields.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	var suite frontendsim.SuiteRequest
	if err := s.decodeBody(w, r, &suite); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("scheduler: decode suite request: %w", err))
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	res, served, err := s.sched.RunSuiteServed(ctx, suite)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", served.XCache())
	json.NewEncoder(w).Encode(res)
}

// handleSuiteStream is handleSuite with incremental delivery: NDJSON,
// one "shard" line the moment each shard completes (scheduler-store
// hits first, then coalesced and dispatched shards in completion
// order), terminated by an "aggregate" line whose suite field is
// byte-identical to the blocking POST /v1/suites response body, or an
// "error" line if the run failed mid-stream.  Every line is flushed as
// it is written, so a client sees first results while slow shards are
// still walking the ring.
func (s *Server) handleSuiteStream(w http.ResponseWriter, r *http.Request) {
	var suite frontendsim.SuiteRequest
	if err := s.decodeBody(w, r, &suite); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("scheduler: decode suite request: %w", err))
		return
	}
	if err := suite.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the committed 200 to the wire now: the first shard may
		// be arbitrarily slow, and a client must be able to observe
		// (and abandon) the stream before any line arrives.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(line frontendsim.SuiteStreamLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	res, _, err := s.sched.RunSuiteStream(ctx, suite, func(sh frontendsim.ShardResult) {
		if sh.Err != "" {
			// A failed shard of a partial-results run: the stream keeps
			// going and the terminal aggregate excludes this shard.
			emit(frontendsim.SuiteStreamLine{
				Type:      "shard-error",
				Positions: sh.Positions,
				Benchmark: sh.Benchmark,
				Error:     sh.Err,
			})
			return
		}
		emit(frontendsim.SuiteStreamLine{
			Type:      "shard",
			Positions: sh.Positions,
			Benchmark: sh.Benchmark,
			Source:    sh.Source,
			Result:    sh.Result,
		})
	})
	if err != nil {
		emit(frontendsim.SuiteStreamLine{Type: "error", Error: err.Error()})
		return
	}
	emit(frontendsim.SuiteStreamLine{Type: "aggregate", Suite: res})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req frontendsim.Request
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("scheduler: decode request: %w", err))
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	res, source, err := s.sched.DispatchSource(ctx, req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source.String())
	json.NewEncoder(w).Encode(res)
}

// handleCacheStats reports the scheduler-tier response store's
// counters, in the same shape as simd's /v1/cache/stats (an empty tier
// list means the store is disabled).
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	tiers := s.sched.CacheStats()
	entries, hits, misses := resultstore.Totals(tiers)
	if tiers == nil {
		tiers = []resultstore.TierStats{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries   int                     `json:"entries"`
		Hits      uint64                  `json:"hits"`
		Misses    uint64                  `json:"misses"`
		Coalesced uint64                  `json:"coalesced"`
		Tiers     []resultstore.TierStats `json:"tiers"`
	}{Entries: entries, Hits: hits, Misses: misses, Coalesced: s.sched.Stats().Coalesced, Tiers: tiers})
}

// handleRing reports the ring topology (with per-member health when a
// membership registry is wired), the per-benchmark home nodes of a
// default-configuration suite, and the dispatch counters.
func (s *Server) handleRing(w http.ResponseWriter, _ *http.Request) {
	assignment := map[string]string{}
	ring := s.sched.Ring()
	for _, bench := range frontendsim.Benchmarks() {
		if key, err := s.sched.eng.RequestKey(frontendsim.Request{Benchmark: bench}); err == nil {
			assignment[bench] = ring.Node(key)
		}
	}
	out := struct {
		Backends   []string          `json:"backends"`
		Assignment map[string]string `json:"assignment"`
		Stats      Stats             `json:"stats"`
		Epoch      uint64            `json:"epoch,omitempty"`
		Members    []membership.Info `json:"members,omitempty"`
		Membership *membership.Stats `json:"membership,omitempty"`
	}{Backends: ring.Nodes(), Assignment: assignment, Stats: s.sched.Stats()}
	if s.members != nil {
		out.Epoch = s.members.Epoch()
		out.Members = s.members.Snapshot()
		st := s.members.Stats()
		out.Membership = &st
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// memberRequest is the join/leave admin body.
type memberRequest struct {
	URL string `json:"url"`
}

// decodeMemberURL accepts the URL as a JSON body or a ?url= query
// parameter (DELETE bodies are awkward from curl).
func (s *Server) decodeMemberURL(w http.ResponseWriter, r *http.Request) (string, error) {
	if u := r.URL.Query().Get("url"); u != "" {
		return strings.TrimRight(u, "/"), nil
	}
	var req memberRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		return "", fmt.Errorf("scheduler: decode member request: %w", err)
	}
	if req.URL == "" {
		return "", fmt.Errorf("scheduler: member url is required")
	}
	return strings.TrimRight(req.URL, "/"), nil
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	if s.members == nil {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("scheduler: ring membership is static (no membership registry configured)"))
		return
	}
	url, err := s.decodeMemberURL(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if err := s.members.Join(url); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Epoch   uint64            `json:"epoch"`
		Members []membership.Info `json:"members"`
	}{Epoch: s.members.Epoch(), Members: s.members.Snapshot()})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	if s.members == nil {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("scheduler: ring membership is static (no membership registry configured)"))
		return
	}
	url, err := s.decodeMemberURL(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if err := s.members.Leave(url); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Epoch   uint64            `json:"epoch"`
		Members []membership.Info `json:"members"`
	}{Epoch: s.members.Epoch(), Members: s.members.Snapshot()})
}

// Describe returns a one-line routing summary (used by cmd/simsched
// startup logging).
func Describe() string {
	return strings.Join([]string{
		"POST /v1/suites",
		"POST /v1/suites/stream",
		"POST /v1/simulations",
		"GET/POST/DELETE /v1/ring[/members]",
		"GET /v1/cache/stats",
		"GET /metrics",
		"GET /healthz",
	}, ", ")
}
