package scheduler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/pkg/frontendsim"
)

// BackendError is a simd backend's refusal or failure to serve one
// request: a non-2xx HTTP response.  Transport-level failures (backend
// down, connection reset) are not BackendErrors; the dispatcher treats
// those as retryable.
type BackendError struct {
	Node   string // backend base URL
	Status int    // HTTP status code
	Msg    string // error message from the backend's JSON envelope
}

// Error implements error.
func (e *BackendError) Error() string {
	return fmt.Sprintf("scheduler: backend %s: status %d: %s", e.Node, e.Status, e.Msg)
}

// Retryable reports whether another backend could plausibly serve the
// request: server-side failures are retryable, request errors (4xx —
// the request itself is invalid, every backend would refuse it) are not.
func (e *BackendError) Retryable() bool {
	return e.Status >= 500
}

// Client posts simulation requests to simd backends.
type Client struct {
	hc *http.Client
}

// NewClient wraps hc (nil selects http.DefaultClient).  Timeouts and
// transport tuning belong to the supplied client; the dispatcher bounds
// each call with the request context.
func NewClient(hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{hc: hc}
}

// Simulate posts req to node's POST /v1/simulations and decodes the
// result.  Cancellation of ctx aborts the in-flight HTTP request.
func (c *Client) Simulate(ctx context.Context, node string, req frontendsim.Request) (*frontendsim.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("scheduler: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/simulations", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("scheduler: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if budget := frontendsim.EncodeDeadlineBudget(ctx); budget != "" {
		// Propagate the caller's remaining deadline so the backend bounds
		// its own work: a retried shard never outlives the patience of
		// the caller that asked for it.
		hreq.Header.Set(frontendsim.DeadlineBudgetHeader, budget)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		// Transport failure: wrap with the node so retries are traceable.
		return nil, fmt.Errorf("scheduler: backend %s: %w", node, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &BackendError{Node: node, Status: resp.StatusCode, Msg: backendMessage(resp.Body)}
	}
	var res frontendsim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("scheduler: backend %s: decode result: %w", node, err)
	}
	// Drain the trailing newline so the keep-alive connection returns to
	// the pool instead of being torn down.
	io.Copy(io.Discard, resp.Body)
	return &res, nil
}

// backendMessage extracts the error string from simd's JSON envelope,
// falling back to the raw (truncated) body.
func backendMessage(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil {
		return err.Error()
	}
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		return env.Error
	}
	return string(bytes.TrimSpace(raw))
}
