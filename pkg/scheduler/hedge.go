package scheduler

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/pkg/frontendsim"
)

// latencyTracker keeps a sliding window of successful dispatch
// latencies and answers percentile queries — the hedge trigger adapts
// to what the fleet actually serves instead of a guessed constant.
type latencyTracker struct {
	mu      sync.Mutex
	samples [256]time.Duration // ring buffer
	n       uint64             // total observations
}

// minHedgeSamples is how many latencies must be observed before the
// percentile is trusted; until then the configured HedgeDelay alone
// drives hedging.
const minHedgeSamples = 16

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.n%uint64(len(t.samples))] = d
	t.n++
	t.mu.Unlock()
}

// percentile returns the p-quantile (0 < p < 1) of the window, or 0
// while fewer than minHedgeSamples latencies have been observed.
func (t *latencyTracker) percentile(p float64) time.Duration {
	t.mu.Lock()
	n := t.n
	if n < minHedgeSamples {
		t.mu.Unlock()
		return 0
	}
	if n > uint64(len(t.samples)) {
		n = uint64(len(t.samples))
	}
	window := make([]time.Duration, n)
	copy(window, t.samples[:n])
	t.mu.Unlock()
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(p * float64(len(window)-1))
	return window[idx]
}

// hedgeAfter is the in-flight duration beyond which a dispatch fires a
// speculative attempt to the next ring node: the observed p95 dispatch
// latency, never less than the configured HedgeDelay floor.
func (s *Scheduler) hedgeAfter() time.Duration {
	if p := s.lat.percentile(0.95); p > s.hedgeDelay {
		return p
	}
	return s.hedgeDelay
}

// rearmTimer is the stop-drain-reset idiom: it re-arms t for d from
// now, discarding a stale, un-consumed expiry first.  A bare
// timer.Reset after the timer already fired leaves the old expiry
// sitting in t.C, and the next select consumes it immediately — for the
// hedge loop that meant a spurious instant hedge right after a failed
// attempt's fallback launch (and an inflated Hedged counter).  Only
// safe when no other goroutine receives from t.C, which holds here: the
// dispatch loop is the channel's sole consumer.
func rearmTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// dispatchHedged walks nodes like the sequential ring walk, but with
// tail-latency hedging: while an attempt is in flight, a timer at
// hedgeAfter() launches the next node speculatively; the first
// successful response wins and the losers' requests are cancelled.
// Failures behave exactly like the sequential walk — a retryable error
// moves on to the next node (counted as Retried), a permanent error or
// the caller's cancellation aborts everything.
func (s *Scheduler) dispatchHedged(ctx context.Context, nodes []string, req frontendsim.Request) (*frontendsim.Result, error) {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap every losing attempt on return

	type attempt struct {
		idx    int
		hedged bool
		res    *frontendsim.Result
		err    error
		took   time.Duration
	}
	resc := make(chan attempt, len(nodes))
	launched, pending, attemptNo := 0, 0, 0
	// fire starts one attempt at nodes[idx] unconditionally.
	fire := func(idx int, hedged bool) {
		if attemptNo > 0 {
			if hedged {
				s.hedged.Add(1)
			} else {
				s.retried.Add(1)
			}
		}
		attemptNo++
		pending++
		go func() {
			start := time.Now()
			res, err := s.client.Simulate(hctx, nodes[idx], req)
			s.reportAttempt(ctx, nodes[idx], err)
			resc <- attempt{idx: idx, hedged: hedged, res: res, err: err, took: time.Since(start)}
		}()
	}
	// launch advances to the next node whose circuit admits a request
	// and fires it; skipped nodes don't burn an attempt.  Reports false
	// when every remaining node is breaker-open.
	launch := func(hedged bool) bool {
		for launched < len(nodes) {
			idx := launched
			launched++
			if !s.allowNode(nodes[idx]) {
				continue
			}
			fire(idx, hedged)
			return true
		}
		return false
	}
	if !launch(false) {
		// Every node's circuit is open: force the home node (it doubles
		// as a breaker probe) rather than fail with nothing tried.
		fire(0, false)
	}
	timer := time.NewTimer(s.hedgeAfter())
	defer timer.Stop()

	var lastErr error
	for pending > 0 {
		select {
		case a := <-resc:
			pending--
			if a.err == nil {
				s.lat.observe(a.took)
				if a.hedged {
					s.hedgeWins.Add(1)
				}
				return a.res, nil
			}
			if permanent(ctx, a.err) {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, a.err
			}
			lastErr = a.err
			if pending == 0 && launched < len(nodes) {
				// Every in-flight attempt failed: fall back to the plain
				// sequential walk on the next node, after the jittered
				// retry backoff (nothing is pending, so sleeping here
				// stalls no other attempt).  The timer may have expired
				// while we were waiting on resc, leaving a stale tick in
				// timer.C — stop-drain-reset, or the next select
				// iteration hedges instantly.
				if err := s.backoff(ctx, attemptNo); err != nil {
					return nil, err
				}
				launch(false)
				rearmTimer(timer, s.hedgeAfter())
			}
		case <-timer.C:
			if launched < len(nodes) {
				launch(true)
				timer.Reset(s.hedgeAfter())
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return nil, &ExhaustedError{Benchmark: req.Benchmark, Attempts: attemptNo, Last: lastErr}
}
