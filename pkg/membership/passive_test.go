package membership

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestReportDispatchQuarantines feeds passive dispatch failures into the
// registry: the consecutive-failure streak quarantines a member at
// QuarantineAfter without waiting for a probe round, and the change is
// announced through OnChange like any probe-driven transition.
func TestReportDispatchQuarantines(t *testing.T) {
	stub := newHealthStub(t)
	var epochs []uint64
	var mu sync.Mutex
	cfg := testConfig()
	cfg.OnChange = func(epoch uint64, _ []string) {
		mu.Lock()
		epochs = append(epochs, epoch)
		mu.Unlock()
	}
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	fault := errors.New("dispatch: connection refused")
	reg.ReportDispatch(stub.srv.URL, fault)
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("member quarantined after 1 passive failure (threshold 2): %v", got)
	}
	reg.ReportDispatch(stub.srv.URL, fault)
	if got := reg.Active(); len(got) != 0 {
		t.Fatalf("member still active after 2 passive failures: %v", got)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].State != StateQuarantined || snap[0].LastError == "" {
		t.Fatalf("snapshot = %+v, want quarantined with error detail", snap)
	}

	st := reg.Stats()
	if st.PassiveReports != 2 || st.PassiveFailures != 2 || st.Quarantines != 1 {
		t.Errorf("stats = %+v, want 2 passive reports, 2 failures, 1 quarantine", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 1 {
		t.Errorf("epochs = %v, want exactly 1 change (quarantine)", epochs)
	}
}

// TestReportDispatchSuccessResetsStreak interleaves passive failures
// with a success: the streak resets, so the member never quarantines.
func TestReportDispatchSuccessResetsStreak(t *testing.T) {
	stub := newHealthStub(t)
	reg, err := New(testConfig(), []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	fault := errors.New("dispatch: 500")
	reg.ReportDispatch(stub.srv.URL, fault)
	reg.ReportDispatch(stub.srv.URL, nil) // streak reset
	reg.ReportDispatch(stub.srv.URL, fault)
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("member quarantined despite interleaved success: %v", got)
	}
	if snap := reg.Snapshot(); snap[0].ConsecutiveFailures != 1 {
		t.Errorf("streak = %d, want 1", snap[0].ConsecutiveFailures)
	}
}

// TestReportDispatchDoesNotReinstate pins the recovery policy: a passive
// success must NOT reinstate a quarantined member — a quarantined
// backend receives no routed traffic, so any late success belongs to a
// request from before quarantine.  Recovery stays probe-driven.
func TestReportDispatchDoesNotReinstate(t *testing.T) {
	stub := newHealthStub(t)
	reg, err := New(testConfig(), []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	fault := errors.New("dispatch: down")
	reg.ReportDispatch(stub.srv.URL, fault)
	reg.ReportDispatch(stub.srv.URL, fault)
	if got := reg.Active(); len(got) != 0 {
		t.Fatal("member not quarantined")
	}

	// A straggler in-flight request succeeds: still quarantined.
	reg.ReportDispatch(stub.srv.URL, nil)
	if got := reg.Active(); len(got) != 0 {
		t.Fatal("passive success reinstated a quarantined member")
	}

	// The recovery probe reinstates.
	reg.ProbeNow(context.Background())
	if got := reg.Active(); len(got) != 1 {
		t.Fatal("recovery probe did not reinstate")
	}
}

// TestReportDispatchUnknownMember ignores verdicts about members the
// registry no longer tracks (dispatch racing an eviction or leave).
func TestReportDispatchUnknownMember(t *testing.T) {
	stub := newHealthStub(t)
	reg, err := New(testConfig(), []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	reg.ReportDispatch("http://gone.invalid", errors.New("refused"))
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("unknown-member report disturbed the ring: %v", got)
	}
	if st := reg.Stats(); st.PassiveReports != 1 || st.Quarantines != 0 {
		t.Errorf("stats = %+v, want 1 report, 0 quarantines", st)
	}
}
