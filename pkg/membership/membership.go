// Package membership is the self-managing backend ring: a registry of
// simd members that owns which backends are routable.  Each member is
// actively probed (GET /healthz with a per-probe timeout) on a fixed
// interval; after QuarantineAfter consecutive failures a member is
// quarantined — still probed, no longer routable — and a single
// successful recovery probe reinstates it.  A member that stays
// quarantined past EvictAfter is permanently evicted and must rejoin
// through the admin API (simd's -announce flag does this on startup, so
// a restarted backend rejoins by itself).
//
// Every change to the routable set bumps an epoch and invokes OnChange
// with the new active list; the scheduler subscribes and swaps its
// consistent-hash ring atomically, so a dead backend stops receiving
// shards within about one probe interval instead of one connect timeout
// per request.  In-flight requests to a member that gets quarantined are
// not interrupted — quarantine only stops new routing.
package membership

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/obs"
)

// State is a member's lifecycle state.
type State string

// Member lifecycle: Active (routable) -> Quarantined (probed, not
// routable) -> evicted (removed).  Evicted members do not appear in
// snapshots; rejoin re-creates them as Active.
const (
	StateActive      State = "active"
	StateQuarantined State = "quarantined"
)

// Transition is one member lifecycle event, delivered through
// Config.OnTransition.
type Transition string

// Member lifecycle events.  Join covers only brand-new members; a Join
// call that revives a quarantined member is delivered as Reinstate.
const (
	TransitionJoin       Transition = "join"
	TransitionReinstate  Transition = "reinstate"
	TransitionQuarantine Transition = "quarantine"
	TransitionLeave      Transition = "leave"
	TransitionEvict      Transition = "evict"
)

// Config configures a Registry.  Zero values select the defaults.
type Config struct {
	// ProbeInterval is the time between probe rounds (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each member's health probe (default 1s).  A
	// timeout longer than ProbeInterval is allowed: a member whose probe
	// is still in flight is simply skipped by the next round.
	ProbeTimeout time.Duration
	// QuarantineAfter is the consecutive probe-failure count that
	// quarantines a member (default 3).
	QuarantineAfter int
	// EvictAfter is how long a member may stay quarantined before it is
	// permanently evicted (default 1m).  0 selects the default; negative
	// disables eviction.
	EvictAfter time.Duration
	// HealthPath is the probe path (default "/healthz").
	HealthPath string
	// HTTPClient performs the probes (nil builds a client with
	// ProbeTimeout; a supplied client's own timeout is left alone and
	// each probe is additionally bounded by a ProbeTimeout context).
	HTTPClient *http.Client
	// OnChange, when set, is called after every routable-set change with
	// the new epoch and active member URLs (sorted).  Calls are
	// serialized and strictly ordered by epoch.  The callback must not
	// block for long (it runs on the probe/admin path) and must not call
	// the registry's mutating methods (Join/Leave/ProbeNow) — reads like
	// Active and Snapshot are fine.
	OnChange func(epoch uint64, active []string)
	// OnTransition, when set, is called once per member lifecycle event
	// (join, reinstate, quarantine, leave, evict) with the member URL.
	// Calls are serialized with each other and with OnChange; for an
	// event that changes the routable set, OnChange (with the bumped
	// epoch) is delivered first.  The same blocking/re-entrancy rules as
	// OnChange apply.  The scheduler's hinted-handoff queue subscribes
	// here: quarantine starts buffering a member's writes, reinstatement
	// replays them, eviction drops them.
	OnTransition func(url string, t Transition)
	// Metrics, when set, registers the membership counters and state
	// gauges on the registry.
	Metrics *obs.Registry
	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.EvictAfter == 0 {
		c.EvictAfter = time.Minute
	}
	if c.HealthPath == "" {
		c.HealthPath = "/healthz"
	}
}

// member is the registry's record of one backend.
type member struct {
	url           string
	state         State
	fails         int // consecutive probe failures
	lastProbe     time.Time
	lastLatency   time.Duration
	lastErr       string
	joinedAt      time.Time
	quarantinedAt time.Time
	// probing guards against two overlapping probes of the same member
	// (a slow probe outliving the next round).
	probing bool
}

// Info is a point-in-time public view of one member (GET /v1/ring).
type Info struct {
	URL string `json:"url"`
	// State is "active" or "quarantined".
	State State `json:"state"`
	// ConsecutiveFailures is the current probe failure streak.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastProbe is when the member was last probed (zero before the
	// first probe completes).
	LastProbe time.Time `json:"last_probe,omitzero"`
	// LastProbeLatency is the last probe's duration.
	LastProbeLatency time.Duration `json:"last_probe_latency_ns"`
	// LastError is the last probe failure ("" after a success).
	LastError string `json:"last_error,omitempty"`
	// QuarantinedFor is how long the member has been quarantined (0 when
	// active).
	QuarantinedFor time.Duration `json:"quarantined_for_ns,omitempty"`
}

// Registry is the health-checked member registry.  It is safe for
// concurrent use.
type Registry struct {
	cfg    Config
	client *http.Client

	// changeMu serializes every mutation that may bump the epoch
	// (Join, Leave, probe application), so OnChange callbacks observe
	// epochs strictly in order.  It is always acquired before mu.
	changeMu sync.Mutex

	mu      sync.Mutex
	members map[string]*member
	epoch   uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// now is the clock, swappable by tests in this package.
	now func() time.Time

	// counters (also exported through cfg.Metrics when set)
	probes         atomic.Uint64
	probeFails     atomic.Uint64
	passiveReports atomic.Uint64
	passiveFails   atomic.Uint64
	quarantines    atomic.Uint64
	reinstates     atomic.Uint64
	evictions      atomic.Uint64
	joins          atomic.Uint64
	leaves         atomic.Uint64
}

// Stats are the registry's cumulative transition counters.
type Stats struct {
	Probes uint64 `json:"probes"`
	// PassiveReports counts dispatch verdicts fed in through
	// ReportDispatch — real traffic standing in for probes between
	// rounds.
	PassiveReports  uint64 `json:"passive_reports"`
	ProbeFailures   uint64 `json:"probe_failures"`
	PassiveFailures uint64 `json:"passive_failures"`
	Quarantines     uint64 `json:"quarantines"`
	Reinstatements  uint64 `json:"reinstatements"`
	Evictions       uint64 `json:"evictions"`
	Joins           uint64 `json:"joins"`
	Leaves          uint64 `json:"leaves"`
}

// New builds a registry seeded with the given member URLs, all initially
// active (optimistically routable; the first probe round corrects any
// that are down).  Call Start to begin probing.
func New(cfg Config, seeds []string) (*Registry, error) {
	cfg.applyDefaults()
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: cfg.ProbeTimeout}
	}
	r := &Registry{
		cfg:     cfg,
		client:  client,
		members: map[string]*member{},
		stop:    make(chan struct{}),
		now:     time.Now,
	}
	for _, u := range seeds {
		if u == "" {
			return nil, fmt.Errorf("membership: empty seed URL")
		}
		if _, ok := r.members[u]; ok {
			continue
		}
		r.members[u] = &member{url: u, state: StateActive, joinedAt: r.now()}
	}
	if len(r.members) == 0 {
		return nil, fmt.Errorf("membership: at least one seed member is required")
	}
	r.joins.Add(uint64(len(r.members)))
	if cfg.Metrics != nil {
		r.registerMetrics(cfg.Metrics)
	}
	return r, nil
}

// registerMetrics exports the registry's state through an obs.Registry.
func (r *Registry) registerMetrics(m *obs.Registry) {
	m.Sampled("ring_members", "Ring members by state.", obs.TypeGauge, []string{"state"},
		func(emit func([]string, float64)) {
			active, quarantined := 0, 0
			for _, info := range r.Snapshot() {
				if info.State == StateActive {
					active++
				} else {
					quarantined++
				}
			}
			emit([]string{string(StateActive)}, float64(active))
			emit([]string{string(StateQuarantined)}, float64(quarantined))
		})
	m.Sampled("ring_epoch", "Monotonic ring epoch; bumps on every routable-set change.",
		obs.TypeGauge, nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.Epoch()))
		})
	m.Sampled("ring_probes_total", "Health probes, by result.", obs.TypeCounter, []string{"result"},
		func(emit func([]string, float64)) {
			st := r.Stats()
			emit([]string{"ok"}, float64(st.Probes-st.ProbeFailures))
			emit([]string{"fail"}, float64(st.ProbeFailures))
		})
	m.Sampled("ring_passive_reports_total", "Dispatch verdicts fed in via ReportDispatch, by result.",
		obs.TypeCounter, []string{"result"}, func(emit func([]string, float64)) {
			st := r.Stats()
			emit([]string{"ok"}, float64(st.PassiveReports-st.PassiveFailures))
			emit([]string{"fail"}, float64(st.PassiveFailures))
		})
	m.Sampled("ring_transitions_total", "Member lifecycle transitions.", obs.TypeCounter, []string{"kind"},
		func(emit func([]string, float64)) {
			st := r.Stats()
			emit([]string{"quarantine"}, float64(st.Quarantines))
			emit([]string{"reinstate"}, float64(st.Reinstatements))
			emit([]string{"evict"}, float64(st.Evictions))
			emit([]string{"join"}, float64(st.Joins))
			emit([]string{"leave"}, float64(st.Leaves))
		})
}

// Start launches the probe loop.  Close stops it.
func (r *Registry) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.ProbeNow(context.Background())
			}
		}
	}()
}

// Close stops the probe loop and waits for in-flight probes.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Epoch returns the current ring epoch.  The epoch bumps exactly when
// the routable (active) set changes.
func (r *Registry) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Active returns the routable member URLs, sorted.
func (r *Registry) Active() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked()
}

func (r *Registry) activeLocked() []string {
	out := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m.state == StateActive {
			out = append(out, m.url)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot returns every member's state, sorted by URL.
func (r *Registry) Snapshot() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]Info, 0, len(r.members))
	for _, m := range r.members {
		info := Info{
			URL:                 m.url,
			State:               m.state,
			ConsecutiveFailures: m.fails,
			LastProbe:           m.lastProbe,
			LastProbeLatency:    m.lastLatency,
			LastError:           m.lastErr,
		}
		if m.state == StateQuarantined {
			info.QuarantinedFor = now.Sub(m.quarantinedAt)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Stats returns the cumulative transition counters.
func (r *Registry) Stats() Stats {
	return Stats{
		Probes:          r.probes.Load(),
		PassiveReports:  r.passiveReports.Load(),
		ProbeFailures:   r.probeFails.Load(),
		PassiveFailures: r.passiveFails.Load(),
		Quarantines:     r.quarantines.Load(),
		Reinstatements:  r.reinstates.Load(),
		Evictions:       r.evictions.Load(),
		Joins:           r.joins.Load(),
		Leaves:          r.leaves.Load(),
	}
}

// ReportDispatch feeds one real dispatch attempt's verdict into the
// registry: err == nil is a success, anything else a failure.  Passive
// failures share the member's consecutive-failure streak with probes, so
// a backend that fails live traffic is quarantined as soon as the streak
// reaches QuarantineAfter — without waiting for the next probe round.
// A passive success resets an active member's streak but does NOT
// reinstate a quarantined one: reinstatement stays probe- (or join-)
// driven, since a quarantined member receives no routed traffic and any
// late success belongs to an in-flight request from before quarantine.
// Unknown members are ignored (the dispatch may have raced an eviction).
// Wire scheduler.Config.ReportDispatch to this method.
func (r *Registry) ReportDispatch(url string, dispatchErr error) {
	r.passiveReports.Add(1)
	if dispatchErr != nil {
		r.passiveFails.Add(1)
	}

	r.changeMu.Lock()
	defer r.changeMu.Unlock()
	r.mu.Lock()
	m, ok := r.members[url]
	if !ok {
		r.mu.Unlock()
		return
	}
	if dispatchErr == nil {
		if m.state == StateActive {
			m.fails = 0
			m.lastErr = ""
		}
		r.mu.Unlock()
		return
	}
	m.fails++
	m.lastErr = dispatchErr.Error()
	if m.state == StateActive && m.fails >= r.cfg.QuarantineAfter {
		m.state = StateQuarantined
		m.quarantinedAt = r.now()
		r.quarantines.Add(1)
		r.logf("membership: %s quarantined after %d consecutive failures (dispatch: %v)",
			url, m.fails, dispatchErr)
		r.bumpLocked() // unlocks
		r.notifyTransition(url, TransitionQuarantine)
		return
	}
	r.mu.Unlock()
}

// Join adds (or reinstates) a member as active.  Joining an existing
// active member is a no-op; joining a quarantined member reinstates it
// immediately (the caller asserts it is back).
func (r *Registry) Join(url string) error {
	if url == "" {
		return fmt.Errorf("membership: empty member URL")
	}
	r.changeMu.Lock()
	defer r.changeMu.Unlock()
	r.mu.Lock()
	m, ok := r.members[url]
	event := TransitionJoin
	switch {
	case !ok:
		r.members[url] = &member{url: url, state: StateActive, joinedAt: r.now()}
		r.joins.Add(1)
		r.logf("membership: %s joined", url)
	case m.state == StateQuarantined:
		m.state = StateActive
		m.fails = 0
		m.lastErr = ""
		r.reinstates.Add(1)
		r.logf("membership: %s reinstated by join", url)
		event = TransitionReinstate
	default:
		r.mu.Unlock()
		return nil
	}
	r.bumpLocked() // unlocks
	r.notifyTransition(url, event)
	return nil
}

// Leave removes a member entirely, whatever its state.  Unknown URLs
// are an error.  In-flight requests to the member are unaffected.
func (r *Registry) Leave(url string) error {
	r.changeMu.Lock()
	defer r.changeMu.Unlock()
	r.mu.Lock()
	m, ok := r.members[url]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("membership: unknown member %s", url)
	}
	wasActive := m.state == StateActive
	delete(r.members, url)
	r.leaves.Add(1)
	r.logf("membership: %s left", url)
	if wasActive {
		r.bumpLocked() // unlocks
	} else {
		r.mu.Unlock()
	}
	r.notifyTransition(url, TransitionLeave)
	return nil
}

// bumpLocked bumps the epoch, snapshots the active set, unlocks, and
// notifies.  The caller must hold r.changeMu and r.mu; bumpLocked
// releases r.mu (keeping changeMu so epochs are delivered in order).
func (r *Registry) bumpLocked() {
	r.epoch++
	epoch := r.epoch
	active := r.activeLocked()
	r.mu.Unlock()
	if r.cfg.OnChange != nil {
		r.cfg.OnChange(epoch, active)
	}
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// ProbeNow runs one probe round synchronously: every member not already
// being probed is probed concurrently, results are applied, and members
// quarantined past the eviction deadline are evicted.  The probe loop
// calls this on every tick; tests and admins may call it directly.
func (r *Registry) ProbeNow(ctx context.Context) {
	r.mu.Lock()
	targets := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if !m.probing {
			m.probing = true
			targets = append(targets, m)
		}
	}
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, m := range targets {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			latency, err := r.probe(ctx, m.url)
			r.applyProbe(m, latency, err)
		}(m)
	}
	wg.Wait()
	r.evictOverdue()
}

// probe performs one health check.
func (r *Registry) probe(ctx context.Context, url string) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+r.cfg.HealthPath, nil)
	if err != nil {
		return 0, err
	}
	start := r.now()
	resp, err := r.client.Do(req)
	latency := r.now().Sub(start)
	if err != nil {
		return latency, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return latency, fmt.Errorf("health check returned status %d", resp.StatusCode)
	}
	return latency, nil
}

// applyProbe records one probe result.  A member removed (Leave) or
// re-created (Leave+Join) while its probe was in flight is left alone:
// the result belongs to the old incarnation, identified by pointer.
func (r *Registry) applyProbe(m *member, latency time.Duration, probeErr error) {
	r.probes.Add(1)
	if probeErr != nil {
		r.probeFails.Add(1)
	}

	r.changeMu.Lock()
	defer r.changeMu.Unlock()
	r.mu.Lock()
	if r.members[m.url] != m {
		// Raced a concurrent Leave (or Leave+Join, which re-creates the
		// member): drop the stale result.
		r.mu.Unlock()
		return
	}
	m.probing = false
	url := m.url
	m.lastProbe = r.now()
	m.lastLatency = latency

	if probeErr == nil {
		m.fails = 0
		m.lastErr = ""
		if m.state == StateQuarantined {
			m.state = StateActive
			r.reinstates.Add(1)
			r.logf("membership: %s recovered, reinstated", url)
			r.bumpLocked() // unlocks
			r.notifyTransition(url, TransitionReinstate)
			return
		}
		r.mu.Unlock()
		return
	}

	m.fails++
	m.lastErr = probeErr.Error()
	if m.state == StateActive && m.fails >= r.cfg.QuarantineAfter {
		m.state = StateQuarantined
		m.quarantinedAt = r.now()
		r.quarantines.Add(1)
		r.logf("membership: %s quarantined after %d consecutive probe failures (%v)",
			url, m.fails, probeErr)
		r.bumpLocked() // unlocks
		r.notifyTransition(url, TransitionQuarantine)
		return
	}
	r.mu.Unlock()
}

// evictOverdue permanently removes members quarantined past EvictAfter.
// Eviction does not bump the epoch — the member already left the
// routable set when it was quarantined — but it is still an
// OnTransition event, so changeMu is held to keep the event stream
// ordered against epoch changes.
func (r *Registry) evictOverdue() {
	if r.cfg.EvictAfter < 0 {
		return
	}
	r.changeMu.Lock()
	defer r.changeMu.Unlock()
	r.mu.Lock()
	now := r.now()
	var evicted []string
	for url, m := range r.members {
		if m.state == StateQuarantined && now.Sub(m.quarantinedAt) >= r.cfg.EvictAfter {
			delete(r.members, url)
			evicted = append(evicted, url)
		}
	}
	r.evictions.Add(uint64(len(evicted)))
	r.mu.Unlock()
	for _, url := range evicted {
		r.logf("membership: %s evicted after %v in quarantine", url, r.cfg.EvictAfter)
		r.notifyTransition(url, TransitionEvict)
	}
}

// notifyTransition delivers one lifecycle event.  The caller must hold
// changeMu (and not mu), so events arrive strictly ordered against
// OnChange epochs.
func (r *Registry) notifyTransition(url string, t Transition) {
	if r.cfg.OnTransition != nil {
		r.cfg.OnTransition(url, t)
	}
}

// Announce registers selfURL with a scheduler's ring admin API (POST
// /v1/ring/members) — called by simd on startup so a restarted backend
// rejoins the ring without operator action.
func Announce(ctx context.Context, client *http.Client, schedulerURL, selfURL string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body := fmt.Sprintf(`{"url":%q}`, selfURL)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		schedulerURL+"/v1/ring/members", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("membership: announce to %s: status %d", schedulerURL, resp.StatusCode)
	}
	return nil
}

// Depart removes selfURL from a scheduler's ring (DELETE
// /v1/ring/members) — simd's graceful-shutdown counterpart to Announce.
// Departing a member the scheduler no longer knows (already evicted) is
// not an error.
func Depart(ctx context.Context, client *http.Client, schedulerURL, selfURL string) error {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		schedulerURL+"/v1/ring/members?url="+url.QueryEscape(selfURL), nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("membership: depart from %s: status %d", schedulerURL, resp.StatusCode)
	}
	return nil
}
