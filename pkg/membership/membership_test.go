package membership

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/obs"
)

// healthStub is a backend whose /healthz can be flipped between healthy,
// failing, and hanging.
type healthStub struct {
	srv   *httptest.Server
	fail  atomic.Bool
	block chan struct{} // when non-nil via setBlock, handlers wait on it
	mu    sync.Mutex
}

func newHealthStub(t *testing.T) *healthStub {
	t.Helper()
	s := &healthStub{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		block := s.block
		s.mu.Unlock()
		if block != nil {
			select {
			case <-block:
			case <-r.Context().Done():
				return
			}
		}
		if s.fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *healthStub) setBlock(ch chan struct{}) {
	s.mu.Lock()
	s.block = ch
	s.mu.Unlock()
}

// testConfig probes fast and quarantines after 2 failures.
func testConfig() Config {
	return Config{
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    200 * time.Millisecond,
		QuarantineAfter: 2,
		EvictAfter:      -1, // tests drive eviction explicitly
	}
}

func TestQuarantineAndReinstate(t *testing.T) {
	stub := newHealthStub(t)
	var epochs []uint64
	var actives [][]string
	var mu sync.Mutex
	cfg := testConfig()
	cfg.OnChange = func(epoch uint64, active []string) {
		mu.Lock()
		epochs = append(epochs, epoch)
		actives = append(actives, active)
		mu.Unlock()
	}
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	reg.ProbeNow(ctx)
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("healthy member not active: %v", got)
	}

	// Two consecutive failures quarantine; one is not enough.
	stub.fail.Store(true)
	reg.ProbeNow(ctx)
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("member quarantined after 1 failure (threshold 2): %v", got)
	}
	reg.ProbeNow(ctx)
	if got := reg.Active(); len(got) != 0 {
		t.Fatalf("member still active after %d failures: %v", 2, got)
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].State != StateQuarantined || snap[0].ConsecutiveFailures != 2 {
		t.Fatalf("snapshot = %+v, want quarantined with 2 fails", snap)
	}
	if snap[0].LastError == "" || snap[0].LastProbe.IsZero() {
		t.Errorf("snapshot missing probe detail: %+v", snap[0])
	}

	// One successful recovery probe reinstates.
	stub.fail.Store(false)
	reg.ProbeNow(ctx)
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("recovered member not reinstated: %v", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(epochs) != 2 {
		t.Fatalf("epochs = %v, want exactly 2 changes (quarantine, reinstate)", epochs)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] != epochs[i-1]+1 {
			t.Errorf("epochs not monotonic: %v", epochs)
		}
	}
	if len(actives[0]) != 0 || len(actives[1]) != 1 {
		t.Errorf("active sets = %v, want [] then [url]", actives)
	}
	st := reg.Stats()
	if st.Quarantines != 1 || st.Reinstatements != 1 {
		t.Errorf("stats = %+v, want 1 quarantine + 1 reinstatement", st)
	}
}

func TestEvictionAfterDeadline(t *testing.T) {
	stub := newHealthStub(t)
	cfg := testConfig()
	cfg.EvictAfter = time.Hour
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stub.fail.Store(true)
	reg.ProbeNow(ctx)
	reg.ProbeNow(ctx)
	if snap := reg.Snapshot(); len(snap) != 1 || snap[0].State != StateQuarantined {
		t.Fatalf("snapshot = %+v, want one quarantined member", snap)
	}

	// Not evicted before the deadline…
	reg.ProbeNow(ctx)
	if snap := reg.Snapshot(); len(snap) != 1 {
		t.Fatalf("member evicted before deadline: %+v", snap)
	}
	// …evicted once the (test-warped) clock passes it.
	reg.mu.Lock()
	reg.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	reg.mu.Unlock()
	reg.ProbeNow(ctx)
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Fatalf("member not evicted after deadline: %+v", snap)
	}
	if st := reg.Stats(); st.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 eviction", st)
	}

	// Rejoin after eviction: the member is back, active.
	if err := reg.Join(stub.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := reg.Active(); len(got) != 1 {
		t.Fatalf("rejoined member not active: %v", got)
	}
}

func TestJoinLeave(t *testing.T) {
	a, b := newHealthStub(t), newHealthStub(t)
	var changes atomic.Int64
	cfg := testConfig()
	cfg.OnChange = func(uint64, []string) { changes.Add(1) }
	reg, err := New(cfg, []string{a.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	if err := reg.Join(b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := reg.Active(); len(got) != 2 {
		t.Fatalf("active = %v, want 2", got)
	}
	// Idempotent join: no epoch bump.
	before := reg.Epoch()
	if err := reg.Join(b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch() != before {
		t.Error("idempotent join bumped the epoch")
	}

	if err := reg.Leave(b.srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := reg.Active(); len(got) != 1 || got[0] != a.srv.URL {
		t.Fatalf("active = %v, want just %s", got, a.srv.URL)
	}
	if err := reg.Leave(b.srv.URL); err == nil {
		t.Error("leaving an unknown member did not error")
	}
	if changes.Load() != 2 {
		t.Errorf("OnChange fired %d times, want 2 (join, leave)", changes.Load())
	}
}

// TestProbeRacesConcurrentLeave starts a probe that blocks inside the
// backend, removes the member mid-probe, then unblocks — the stale
// result must be dropped: the member stays gone and no epoch bump or
// state transition happens on its behalf.
func TestProbeRacesConcurrentLeave(t *testing.T) {
	stub := newHealthStub(t)
	other := newHealthStub(t)
	cfg := testConfig()
	reg, err := New(cfg, []string{stub.srv.URL, other.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	stub.setBlock(gate)
	done := make(chan struct{})
	go func() {
		reg.ProbeNow(context.Background())
		close(done)
	}()

	// Wait until the probe is inside the handler, then remove the member.
	deadline := time.After(2 * time.Second)
	for {
		if reg.mu.TryLock() {
			m := reg.members[stub.srv.URL]
			probing := m != nil && m.probing
			reg.mu.Unlock()
			if probing {
				break
			}
		}
		select {
		case <-deadline:
			t.Fatal("probe never started")
		case <-time.After(time.Millisecond):
		}
	}
	epochBefore := reg.Epoch()
	if err := reg.Leave(stub.srv.URL); err != nil {
		t.Fatal(err)
	}
	close(gate)
	<-done

	for _, info := range reg.Snapshot() {
		if info.URL == stub.srv.URL {
			t.Error("left member re-appeared from a stale probe result")
		}
	}
	// Leave bumped once; the stale probe must not bump again.
	if got := reg.Epoch(); got != epochBefore+1 {
		t.Errorf("epoch = %d, want %d (one bump from Leave only)", got, epochBefore+1)
	}
	if got := reg.Active(); len(got) != 1 || got[0] != other.srv.URL {
		t.Errorf("active = %v, want just the surviving member", got)
	}
}

// TestProbeRacesLeaveThenRejoin covers the nastier incarnation race: the
// member leaves and rejoins while its old probe is still in flight.  The
// stale result belongs to the dead incarnation and must not touch the
// fresh one.
func TestProbeRacesLeaveThenRejoin(t *testing.T) {
	stub := newHealthStub(t)
	cfg := testConfig()
	cfg.QuarantineAfter = 1
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}

	stub.fail.Store(true) // the in-flight probe will come back a failure
	gate := make(chan struct{})
	stub.setBlock(gate)
	done := make(chan struct{})
	go func() {
		reg.ProbeNow(context.Background())
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for {
		reg.mu.Lock()
		m := reg.members[stub.srv.URL]
		probing := m != nil && m.probing
		reg.mu.Unlock()
		if probing {
			break
		}
		select {
		case <-deadline:
			t.Fatal("probe never started")
		case <-time.After(time.Millisecond):
		}
	}
	if err := reg.Leave(stub.srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := reg.Join(stub.srv.URL); err != nil {
		t.Fatal(err)
	}
	close(gate)
	<-done

	// The stale failure (threshold 1!) must not have quarantined the new
	// incarnation.
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].State != StateActive || snap[0].ConsecutiveFailures != 0 {
		t.Fatalf("snapshot = %+v, want a fresh active member untouched by the stale probe", snap)
	}
}

// TestConcurrentProbesJoinsLeaves is the -race exercise: the probe loop
// runs hot while members join and leave concurrently.
func TestConcurrentProbesJoinsLeaves(t *testing.T) {
	stubs := make([]*healthStub, 4)
	for i := range stubs {
		stubs[i] = newHealthStub(t)
	}
	cfg := testConfig()
	cfg.ProbeInterval = time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	var epochMu sync.Mutex
	last := uint64(0)
	cfg.OnChange = func(epoch uint64, _ []string) {
		epochMu.Lock()
		if epoch != last+1 {
			t.Errorf("epoch %d delivered after %d", epoch, last)
		}
		last = epoch
		epochMu.Unlock()
	}
	reg, err := New(cfg, []string{stubs[0].srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()

	var wg sync.WaitGroup
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(s *healthStub) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				reg.Join(s.srv.URL)
				s.fail.Store(j%2 == 0)
				time.Sleep(time.Millisecond)
				reg.Leave(s.srv.URL)
			}
		}(stubs[i])
	}
	wg.Wait()
	// The seed member is still there and the registry still answers.
	if got := reg.Active(); len(got) != 1 || got[0] != stubs[0].srv.URL {
		t.Errorf("active = %v, want just the seed", got)
	}
	if !strings.Contains(cfg.Metrics.Render(), "ring_epoch") {
		t.Error("metrics registry missing ring_epoch")
	}
}

func TestAnnounce(t *testing.T) {
	var gotBody atomic.Value
	sched := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/ring/members" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		b := make([]byte, 256)
		n, _ := r.Body.Read(b)
		gotBody.Store(string(b[:n]))
		w.WriteHeader(http.StatusOK)
	}))
	defer sched.Close()

	if err := Announce(context.Background(), nil, sched.URL, "http://sim-1:8723"); err != nil {
		t.Fatal(err)
	}
	if got, _ := gotBody.Load().(string); got != `{"url":"http://sim-1:8723"}` {
		t.Errorf("announce body = %q", got)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer bad.Close()
	if err := Announce(context.Background(), nil, bad.URL, "http://sim-1:8723"); err == nil {
		t.Error("announce to refusing scheduler did not error")
	}
}

func TestDepart(t *testing.T) {
	var gotURL atomic.Value
	sched := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete || r.URL.Path != "/v1/ring/members" {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		gotURL.Store(r.URL.Query().Get("url"))
		w.WriteHeader(http.StatusOK)
	}))
	defer sched.Close()

	if err := Depart(context.Background(), nil, sched.URL, "http://sim-1:8723"); err != nil {
		t.Fatal(err)
	}
	if got, _ := gotURL.Load().(string); got != "http://sim-1:8723" {
		t.Errorf("depart url = %q", got)
	}

	// An already-evicted member (404) is a clean depart, not an error.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer gone.Close()
	if err := Depart(context.Background(), nil, gone.URL, "http://sim-1:8723"); err != nil {
		t.Errorf("depart of already-evicted member = %v, want nil", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if err := Depart(context.Background(), nil, bad.URL, "http://sim-1:8723"); err == nil {
		t.Error("depart from failing scheduler did not error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := New(Config{}, []string{""}); err == nil {
		t.Error("empty seed URL accepted")
	}
	reg, err := New(Config{}, []string{"http://a", "http://a", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Active(); len(got) != 2 {
		t.Errorf("duplicate seeds not collapsed: %v", got)
	}
	if fmt.Sprint(reg.Epoch()) != "0" {
		t.Errorf("fresh registry epoch = %d, want 0", reg.Epoch())
	}
}

// transitionLog records OnTransition deliveries in order.
type transitionLog struct {
	mu     sync.Mutex
	events []string
}

func (l *transitionLog) record(url string, tr Transition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf("%s:%s", tr, url))
}

func (l *transitionLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

// TestTransitionLifecycle drives one member through every transition —
// join, quarantine, reinstate, leave, rejoin, quarantine, evict — and
// pins the OnTransition sequence plus its ordering after OnChange for
// epoch-bumping events.
func TestTransitionLifecycle(t *testing.T) {
	stub := newHealthStub(t)
	url := stub.srv.URL
	seed := newHealthStub(t).srv.URL

	var log transitionLog
	var changeSeen atomic.Int64
	cfg := testConfig()
	cfg.EvictAfter = time.Hour
	cfg.OnChange = func(uint64, []string) { changeSeen.Add(1) }
	cfg.OnTransition = func(u string, tr Transition) {
		// Every epoch-bumping transition must observe its OnChange
		// already delivered — replay wiring relies on the new ring
		// being in place before the hint queue reacts.
		if changeSeen.Load() == 0 {
			t.Errorf("transition %s:%s delivered before any OnChange", tr, u)
		}
		log.record(u, tr)
	}
	reg, err := New(cfg, []string{seed})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	if err := reg.Join(url); err != nil { // brand-new member
		t.Fatal(err)
	}
	stub.fail.Store(true)
	reg.ProbeNow(ctx)
	reg.ProbeNow(ctx)                     // second failure quarantines
	if err := reg.Join(url); err != nil { // join while quarantined = reinstate
		t.Fatal(err)
	}
	if err := reg.Leave(url); err != nil {
		t.Fatal(err)
	}
	if err := reg.Join(url); err != nil { // back again
		t.Fatal(err)
	}
	reg.ProbeNow(ctx)
	reg.ProbeNow(ctx)
	reg.mu.Lock()
	reg.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	reg.mu.Unlock()
	reg.ProbeNow(ctx) // past the deadline: evict

	want := []string{
		"join:" + url,
		"quarantine:" + url,
		"reinstate:" + url,
		"leave:" + url,
		"join:" + url,
		"quarantine:" + url,
		"evict:" + url,
	}
	got := log.snapshot()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestTransitionReinstateViaProbe pins that a probe-driven recovery
// (not just an explicit Join) delivers TransitionReinstate.
func TestTransitionReinstateViaProbe(t *testing.T) {
	stub := newHealthStub(t)
	var log transitionLog
	cfg := testConfig()
	cfg.OnTransition = log.record
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx := context.Background()

	stub.fail.Store(true)
	reg.ProbeNow(ctx)
	reg.ProbeNow(ctx)
	stub.fail.Store(false)
	reg.ProbeNow(ctx)

	want := []string{"quarantine:" + stub.srv.URL, "reinstate:" + stub.srv.URL}
	if got := log.snapshot(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

// TestTransitionQuarantineViaDispatch pins that live dispatch verdicts
// (ReportDispatch) deliver TransitionQuarantine like probes do.
func TestTransitionQuarantineViaDispatch(t *testing.T) {
	stub := newHealthStub(t)
	var log transitionLog
	cfg := testConfig()
	cfg.OnTransition = log.record
	reg, err := New(cfg, []string{stub.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	reg.ReportDispatch(stub.srv.URL, fmt.Errorf("boom"))
	reg.ReportDispatch(stub.srv.URL, fmt.Errorf("boom"))
	if got := log.snapshot(); len(got) != 1 || got[0] != "quarantine:"+stub.srv.URL {
		t.Fatalf("transitions = %v, want one quarantine", got)
	}
	// Success does not reinstate through the dispatch path (that is the
	// probe's job), so no further transitions.
	reg.ReportDispatch(stub.srv.URL, nil)
	if got := log.snapshot(); len(got) != 1 {
		t.Fatalf("transitions after success report = %v", got)
	}
}
