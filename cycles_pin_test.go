package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// expectedThroughputCycles is the committed cycle count of the
// BenchmarkSimulatorThroughput workload (gzip, LengthScale 1, 50k
// micro-ops, baseline config).  The simulator is deterministic, so any
// drift means the machine's timing semantics changed; update this value
// (and BENCH_results.json, and the golden fixtures) only in a PR that
// documents the semantic change.
const expectedThroughputCycles = 265471

// newThroughputProcessor builds the exact workload of
// BenchmarkSimulatorThroughput; the benchmark and the pin test share it
// so the pinned cycle count always gates what the benchmark measures.
func newThroughputProcessor(tb testing.TB) *core.Processor {
	tb.Helper()
	prof, ok := workload.ByName("gzip")
	if !ok {
		tb.Fatal("gzip profile missing")
	}
	prof.LengthScale = 1
	return core.New(core.DefaultConfig(), workload.NewGenerator(prof, 50_000))
}

// TestSimulatorThroughputCyclesPinned is the cycles/op regression gate
// run by `make bench-short`: it pins the exact cycle count the
// throughput benchmark reports as its cycles/op metric.
func TestSimulatorThroughputCyclesPinned(t *testing.T) {
	p := newThroughputProcessor(t)
	p.Run(0)
	if p.Stats.Cycles != expectedThroughputCycles {
		t.Fatalf("throughput workload ran %d cycles, committed expectation is %d (timing semantics changed? update the constant, BENCH_results.json and the goldens together)",
			p.Stats.Cycles, expectedThroughputCycles)
	}
}
