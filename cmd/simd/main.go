// Command simd serves thermal simulations over HTTP: a thin
// request/response frontend (in the spirit of Thanos's query-frontend)
// over the public frontendsim Engine, with a pluggable response store
// keyed on the canonical request hash.
//
// Usage:
//
//	simd [-addr :8723] [-cache 512] [-workers N] [-max-body-bytes N]
//	     [-store memory|disk|tiered|remote|tiered-remote] [-store-dir DIR]
//	     [-store-max-bytes N] [-remote-servers HOST:PORT,...] [-remote-ttl D]
//	     [-compact-threshold 0.5] [-compact-interval 30s]
//	     [-max-queue 64] [-queue-wait 5s] [-partial-results]
//	     [-announce SCHED_URL] [-self SELF_URL]
//	     [-warmup-peer URL,...] [-warmup-timeout 2m] [-warmup-concurrency 8]
//	     [-antientropy-interval D]
//	     [-warmup N] [-measure N] [-interval N] [-pprof ADDR]
//
// Admission control: at most -workers simulations run concurrently; up
// to -max-queue further requests wait at most -queue-wait for a slot.
// Anything beyond either bound is shed immediately with 503 and a
// Retry-After header (visible as simd_shed_total{reason} on /metrics)
// instead of stacking goroutines behind clients that will give up
// anyway.  Zero for either flag removes that bound.
//
// With -partial-results, a suite whose shards partly fail answers 200
// with per-shard `errors` entries, an aggregate over the shards that
// completed, and X-Cache: PARTIAL-ERROR (the streaming endpoint emits
// {"type":"shard-error"} lines) — graceful degradation instead of one
// dead shard failing the sweep.
//
// With -announce, simd registers -self with the scheduler's ring admin
// API on startup (retrying until the scheduler answers) and departs on
// graceful shutdown — a restarted backend rejoins the ring by itself,
// even after the scheduler evicted it.
//
// With -warmup-peer, a joining replica pulls its ring slice of stored
// results from a live peer's store plane (GET /v1/store/keys +
// /v1/store/entries/{key}) before reporting ready: /healthz answers 503
// and the ring announcement waits until the warm-up completes, so the
// scheduler never routes to a cold replica.  The slice is computed from
// the scheduler's current ring (-announce) plus this replica; without
// -announce every peer key is pulled.  A warm-up that exhausts
// -warmup-timeout logs the shortfall and serves cold rather than never
// joining.
//
// With -antientropy-interval > 0, a background repair loop periodically
// exchanges per-bucket key-set digests with a ring neighbor and pulls
// entries this replica is missing — divergence from missed writes heals
// in the background instead of surfacing as recomputation.  Peers come
// from the scheduler ring (-announce) or, without one, the static
// -warmup-peer list.
//
// Store backends (-store):
//
//	memory         in-process LRU of -cache entries; dies with the process (default)
//	disk           crash-safe segment files under -store-dir; survives restarts
//	tiered         memory LRU in front of the disk store, write-through — the
//	               hot set answers from RAM, everything survives a restart
//	remote         shared memcached tier at -remote-servers; replicas on
//	               different machines serve each other's results
//	tiered-remote  memory LRU in front of the remote tier — the production
//	               fleet shape: hot set in RAM, shared tier across machines,
//	               and an unreachable remote degrades to local serving
//
// Disk-backed stores run a background compactor (see -compact-threshold
// / -compact-interval): sealed segments whose live-byte ratio falls
// below the threshold are rewritten so overwrite-heavy workloads
// reclaim space without waiting for whole-segment eviction.
//
// Endpoints:
//
//	POST /v1/simulations        JSON request -> JSON result (cached, coalesced)
//	POST /v1/simulations/stream JSON request -> NDJSON per-interval stream
//	POST /v1/suites             whole-suite run (single-node mode; see simsched)
//	POST /v1/suites/stream      suite run as NDJSON: per-shard lines as they
//	                            complete, terminal deterministic aggregate
//	GET  /v1/benchmarks         available benchmark profiles
//	GET  /v1/cache/stats        per-tier response-store counters
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               readiness (503 while draining or when the
//	                            response store is down)
//
// Example:
//
//	simd -store tiered -store-dir /var/lib/simd
//	curl -s localhost:8723/v1/simulations -d '{"benchmark":"gzip","frontends":2,"bank_hopping":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/pprofserve"
	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// storeFlags is the store-related flag set shared by buildStore.
type storeFlags struct {
	kind          string
	dir           string
	maxBytes      int64
	cacheSize     int
	remoteServers string
	remoteTTL     time.Duration
}

// buildStore assembles the response store selected by the flags.  The
// *Disk return is non-nil when a disk tier is part of the stack, so the
// caller can hang the background compactor off it.
func buildStore(f storeFlags) (resultstore.Store, *resultstore.Disk, error) {
	switch f.kind {
	case "memory":
		return resultstore.NewMemory(f.cacheSize), nil, nil
	case "disk", "tiered":
		if f.dir == "" {
			return nil, nil, fmt.Errorf("simd: -store=%s requires -store-dir", f.kind)
		}
		disk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: f.dir, MaxBytes: f.maxBytes})
		if err != nil {
			return nil, nil, err
		}
		if f.kind == "disk" {
			return disk, disk, nil
		}
		return resultstore.NewTiered(resultstore.NewMemory(f.cacheSize), disk), disk, nil
	case "remote", "tiered-remote":
		if f.remoteServers == "" {
			return nil, nil, fmt.Errorf("simd: -store=%s requires -remote-servers", f.kind)
		}
		remote, err := resultstore.NewRemote(resultstore.RemoteConfig{
			Servers: splitServers(f.remoteServers),
			TTL:     f.remoteTTL,
		})
		if err != nil {
			return nil, nil, err
		}
		if f.kind == "remote" {
			return remote, nil, nil
		}
		return resultstore.NewTiered(resultstore.NewMemory(f.cacheSize), remote), nil, nil
	}
	return nil, nil, fmt.Errorf("simd: unknown -store %q (memory|disk|tiered|remote|tiered-remote)", f.kind)
}

// splitServers parses a comma-separated host:port list.
func splitServers(s string) []string {
	var out []string
	for _, addr := range strings.Split(s, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			out = append(out, addr)
		}
	}
	return out
}

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		cacheSize = flag.Int("cache", 512, "memory-tier response entries (0 disables the memory tier)")
		storeKind = flag.String("store", "memory", "response store backend: memory|disk|tiered|remote|tiered-remote")
		storeDir  = flag.String("store-dir", "", "disk-store segment directory (required for -store=disk|tiered)")
		storeMax  = flag.Int64("store-max-bytes", resultstore.DefaultMaxBytes, "disk-store total size cap in bytes")
		remoteSrv = flag.String("remote-servers", "", "comma-separated memcached host:port list (required for -store=remote|tiered-remote)")
		remoteTTL = flag.Duration("remote-ttl", 0, "expiry stored with remote-store writes (0 = no expiry)")
		compactTh = flag.Float64("compact-threshold", resultstore.DefaultCompactThreshold, "rewrite a sealed disk segment when its live-byte ratio falls below this")
		compactIv = flag.Duration("compact-interval", 30*time.Second, "disk-store compaction scan period (0 disables the compactor)")
		workers   = flag.Int("workers", 0, "max concurrent simulations (default: GOMAXPROCS)")
		maxBody   = flag.Int64("max-body-bytes", simd.DefaultMaxBodyBytes, "request-body size cap in bytes (oversized bodies get 413)")
		maxQueue  = flag.Int("max-queue", 64, "max requests waiting for a simulation slot; excess is shed with 503 (0 = unbounded)")
		queueWait = flag.Duration("queue-wait", 5*time.Second, "max time a request waits for a simulation slot before being shed with 503 (0 = unbounded)")
		partial   = flag.Bool("partial-results", false, "degrade suite runs gracefully: per-shard error entries and X-Cache: PARTIAL-ERROR instead of failing the whole suite")
		warmup    = flag.Uint64("warmup", 0, "default warmup micro-ops (0 = paper default)")
		measure   = flag.Uint64("measure", 0, "default measured micro-ops (0 = paper default)")
		interval  = flag.Uint64("interval", 0, "default interval cycles (0 = paper default)")
		announce  = flag.String("announce", "", "scheduler base URL to join on startup and depart on shutdown (empty disables)")
		self      = flag.String("self", "", "advertised base URL of this backend (required with -announce)")
		warmPeers = flag.String("warmup-peer", "", "comma-separated peer simd base URLs to pull this replica's ring slice from before reporting ready (empty disables)")
		warmTO    = flag.Duration("warmup-timeout", 2*time.Minute, "join-time warm-up deadline; on expiry the replica logs the shortfall and serves cold")
		warmConc  = flag.Int("warmup-concurrency", 8, "concurrent entry pulls during join-time warm-up")
		aeIvl     = flag.Duration("antientropy-interval", 0, "background digest-exchange repair period (0 disables; needs -self plus -announce or -warmup-peer)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	if *announce != "" && *self == "" {
		fmt.Fprintln(os.Stderr, "simd: -announce requires -self (the URL the scheduler should route to)")
		os.Exit(2)
	}
	if *aeIvl > 0 && (*self == "" || (*announce == "" && *warmPeers == "")) {
		fmt.Fprintln(os.Stderr, "simd: -antientropy-interval requires -self plus -announce or -warmup-peer")
		os.Exit(2)
	}

	if *compactTh <= 0 || *compactTh > 1 {
		fmt.Fprintf(os.Stderr, "simd: -compact-threshold %v out of range (0, 1]\n", *compactTh)
		os.Exit(2)
	}

	pprofserve.Maybe("simd", *pprofAddr)

	store, disk, err := buildStore(storeFlags{
		kind:          *storeKind,
		dir:           *storeDir,
		maxBytes:      *storeMax,
		cacheSize:     *cacheSize,
		remoteServers: *remoteSrv,
		remoteTTL:     *remoteTTL,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer store.Close()
	if disk != nil && *compactIv > 0 {
		compactor := resultstore.StartCompactor(disk, resultstore.CompactorConfig{
			Threshold: *compactTh,
			Interval:  *compactIv,
		})
		defer compactor.Close()
	}

	eng := frontendsim.New(
		frontendsim.WithWarmupOps(*warmup),
		frontendsim.WithMeasureOps(*measure),
		frontendsim.WithIntervalCycles(*interval),
		frontendsim.WithWorkers(*workers),
	)
	apiOpts := []simd.Option{
		simd.WithMetrics(obs.NewRegistry()),
		simd.WithMaxBodyBytes(*maxBody),
		simd.WithAdmission(*maxQueue, *queueWait),
	}
	if *partial {
		apiOpts = append(apiOpts, simd.WithPartialResults())
	}
	api := simd.NewServerWithStore(eng, store, apiOpts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM included so orchestrated stops (systemd, containers) get
	// the same drain-and-depart path as an interactive Ctrl-C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Fail the health check first so the scheduler's probes stop
		// routing new work here, then tell it explicitly and drain.
		api.SetReady(false)
		if *announce != "" {
			departCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := membership.Depart(departCtx, nil, *announce, *self); err != nil {
				fmt.Fprintf(os.Stderr, "simd: depart: %v\n", err)
			}
			cancel()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	// Startup sequencing: warm the store from peers first (the replica
	// answers /healthz 503 the whole time, so probes keep it out of
	// rotation), then flip ready, then announce — the scheduler never
	// sees a joined-but-cold replica.
	announceLoop := func() {
		// Register with the scheduler once it answers; a restarted
		// backend rejoins the ring this way even after eviction.
		for {
			annCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err := membership.Announce(annCtx, nil, *announce, *self)
			cancel()
			if err == nil {
				fmt.Fprintf(os.Stderr, "simd: joined ring at %s as %s\n", *announce, *self)
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}
	peerList := splitServers(*warmPeers)
	for i, p := range peerList {
		peerList[i] = strings.TrimRight(p, "/")
	}
	var antiEntropy *simd.AntiEntropy
	if *aeIvl > 0 {
		// Prefer live ring discovery; fall back to the static peer list
		// when no scheduler is announced.
		aePeers := []string(nil)
		if *announce == "" {
			aePeers = peerList
		}
		antiEntropy, err = api.NewAntiEntropy(simd.AntiEntropyConfig{
			SelfURL:  *self,
			RingURL:  *announce,
			Peers:    aePeers,
			Interval: *aeIvl,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer antiEntropy.Close()
	}
	if len(peerList) > 0 {
		api.SetReady(false)
		go func() {
			res, err := api.Warmup(ctx, simd.WarmupConfig{
				Peers:       peerList,
				SelfURL:     *self,
				RingURL:     *announce,
				Timeout:     *warmTO,
				Concurrency: *warmConc,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, format+"\n", args...)
				},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "simd: warm-up incomplete, serving cold: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "simd: warm-up done: pulled %d, already present %d\n",
					res.Pulled, res.Skipped)
			}
			api.SetReady(true)
			if antiEntropy != nil {
				antiEntropy.Start()
			}
			if *announce != "" {
				announceLoop()
			}
		}()
	} else {
		if antiEntropy != nil {
			antiEntropy.Start()
		}
		if *announce != "" {
			go announceLoop()
		}
	}

	fmt.Fprintf(os.Stderr, "simd: listening on %s, %s store (%s)\n",
		*addr, *storeKind, simd.Describe())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
