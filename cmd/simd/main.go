// Command simd serves thermal simulations over HTTP: a thin
// request/response frontend (in the spirit of Thanos's query-frontend)
// over the public frontendsim Engine, with a pluggable response store
// keyed on the canonical request hash.
//
// Usage:
//
//	simd [-addr :8723] [-cache 512] [-workers N]
//	     [-store memory|disk|tiered] [-store-dir DIR] [-store-max-bytes N]
//	     [-warmup N] [-measure N] [-interval N] [-pprof ADDR]
//
// Store backends (-store):
//
//	memory  in-process LRU of -cache entries; dies with the process (default)
//	disk    crash-safe segment files under -store-dir; survives restarts
//	tiered  memory LRU in front of the disk store, write-through — the
//	        hot set answers from RAM, everything survives a restart
//
// Endpoints:
//
//	POST /v1/simulations        JSON request -> JSON result (cached, coalesced)
//	POST /v1/simulations/stream JSON request -> NDJSON per-interval stream
//	POST /v1/suites             whole-suite run (single-node mode; see simsched)
//	GET  /v1/benchmarks         available benchmark profiles
//	GET  /v1/cache/stats        per-tier response-store counters
//	GET  /healthz               liveness
//
// Example:
//
//	simd -store tiered -store-dir /var/lib/simd
//	curl -s localhost:8723/v1/simulations -d '{"benchmark":"gzip","frontends":2,"bank_hopping":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/pprofserve"
	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// buildStore assembles the response store selected by the flags.
func buildStore(kind, dir string, maxBytes int64, cacheSize int) (resultstore.Store, error) {
	switch kind {
	case "memory":
		return resultstore.NewMemory(cacheSize), nil
	case "disk", "tiered":
		if dir == "" {
			return nil, fmt.Errorf("simd: -store=%s requires -store-dir", kind)
		}
		disk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir, MaxBytes: maxBytes})
		if err != nil {
			return nil, err
		}
		if kind == "disk" {
			return disk, nil
		}
		return resultstore.NewTiered(resultstore.NewMemory(cacheSize), disk), nil
	}
	return nil, fmt.Errorf("simd: unknown -store %q (memory|disk|tiered)", kind)
}

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		cacheSize = flag.Int("cache", 512, "memory-tier response entries (0 disables the memory tier)")
		storeKind = flag.String("store", "memory", "response store backend: memory|disk|tiered")
		storeDir  = flag.String("store-dir", "", "disk-store segment directory (required for -store=disk|tiered)")
		storeMax  = flag.Int64("store-max-bytes", resultstore.DefaultMaxBytes, "disk-store total size cap in bytes")
		workers   = flag.Int("workers", 0, "max concurrent simulations (default: GOMAXPROCS)")
		warmup    = flag.Uint64("warmup", 0, "default warmup micro-ops (0 = paper default)")
		measure   = flag.Uint64("measure", 0, "default measured micro-ops (0 = paper default)")
		interval  = flag.Uint64("interval", 0, "default interval cycles (0 = paper default)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	pprofserve.Maybe("simd", *pprofAddr)

	store, err := buildStore(*storeKind, *storeDir, *storeMax, *cacheSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer store.Close()

	eng := frontendsim.New(
		frontendsim.WithWarmupOps(*warmup),
		frontendsim.WithMeasureOps(*measure),
		frontendsim.WithIntervalCycles(*interval),
		frontendsim.WithWorkers(*workers),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           simd.NewServerWithStore(eng, store),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "simd: listening on %s, %s store (%s)\n",
		*addr, *storeKind, simd.Describe())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
