// Command simd serves thermal simulations over HTTP: a thin
// request/response frontend (in the spirit of Thanos's query-frontend)
// over the public frontendsim Engine, with a pluggable response store
// keyed on the canonical request hash.
//
// Usage:
//
//	simd [-addr :8723] [-cache 512] [-workers N] [-max-body-bytes N]
//	     [-store memory|disk|tiered] [-store-dir DIR] [-store-max-bytes N]
//	     [-max-queue 64] [-queue-wait 5s] [-partial-results]
//	     [-announce SCHED_URL] [-self SELF_URL]
//	     [-warmup N] [-measure N] [-interval N] [-pprof ADDR]
//
// Admission control: at most -workers simulations run concurrently; up
// to -max-queue further requests wait at most -queue-wait for a slot.
// Anything beyond either bound is shed immediately with 503 and a
// Retry-After header (visible as simd_shed_total{reason} on /metrics)
// instead of stacking goroutines behind clients that will give up
// anyway.  Zero for either flag removes that bound.
//
// With -partial-results, a suite whose shards partly fail answers 200
// with per-shard `errors` entries, an aggregate over the shards that
// completed, and X-Cache: PARTIAL-ERROR (the streaming endpoint emits
// {"type":"shard-error"} lines) — graceful degradation instead of one
// dead shard failing the sweep.
//
// With -announce, simd registers -self with the scheduler's ring admin
// API on startup (retrying until the scheduler answers) and departs on
// graceful shutdown — a restarted backend rejoins the ring by itself,
// even after the scheduler evicted it.
//
// Store backends (-store):
//
//	memory  in-process LRU of -cache entries; dies with the process (default)
//	disk    crash-safe segment files under -store-dir; survives restarts
//	tiered  memory LRU in front of the disk store, write-through — the
//	        hot set answers from RAM, everything survives a restart
//
// Endpoints:
//
//	POST /v1/simulations        JSON request -> JSON result (cached, coalesced)
//	POST /v1/simulations/stream JSON request -> NDJSON per-interval stream
//	POST /v1/suites             whole-suite run (single-node mode; see simsched)
//	POST /v1/suites/stream      suite run as NDJSON: per-shard lines as they
//	                            complete, terminal deterministic aggregate
//	GET  /v1/benchmarks         available benchmark profiles
//	GET  /v1/cache/stats        per-tier response-store counters
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               readiness (503 while draining or when the
//	                            response store is down)
//
// Example:
//
//	simd -store tiered -store-dir /var/lib/simd
//	curl -s localhost:8723/v1/simulations -d '{"benchmark":"gzip","frontends":2,"bank_hopping":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/pprofserve"
	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// buildStore assembles the response store selected by the flags.
func buildStore(kind, dir string, maxBytes int64, cacheSize int) (resultstore.Store, error) {
	switch kind {
	case "memory":
		return resultstore.NewMemory(cacheSize), nil
	case "disk", "tiered":
		if dir == "" {
			return nil, fmt.Errorf("simd: -store=%s requires -store-dir", kind)
		}
		disk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir, MaxBytes: maxBytes})
		if err != nil {
			return nil, err
		}
		if kind == "disk" {
			return disk, nil
		}
		return resultstore.NewTiered(resultstore.NewMemory(cacheSize), disk), nil
	}
	return nil, fmt.Errorf("simd: unknown -store %q (memory|disk|tiered)", kind)
}

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		cacheSize = flag.Int("cache", 512, "memory-tier response entries (0 disables the memory tier)")
		storeKind = flag.String("store", "memory", "response store backend: memory|disk|tiered")
		storeDir  = flag.String("store-dir", "", "disk-store segment directory (required for -store=disk|tiered)")
		storeMax  = flag.Int64("store-max-bytes", resultstore.DefaultMaxBytes, "disk-store total size cap in bytes")
		workers   = flag.Int("workers", 0, "max concurrent simulations (default: GOMAXPROCS)")
		maxBody   = flag.Int64("max-body-bytes", simd.DefaultMaxBodyBytes, "request-body size cap in bytes (oversized bodies get 413)")
		maxQueue  = flag.Int("max-queue", 64, "max requests waiting for a simulation slot; excess is shed with 503 (0 = unbounded)")
		queueWait = flag.Duration("queue-wait", 5*time.Second, "max time a request waits for a simulation slot before being shed with 503 (0 = unbounded)")
		partial   = flag.Bool("partial-results", false, "degrade suite runs gracefully: per-shard error entries and X-Cache: PARTIAL-ERROR instead of failing the whole suite")
		warmup    = flag.Uint64("warmup", 0, "default warmup micro-ops (0 = paper default)")
		measure   = flag.Uint64("measure", 0, "default measured micro-ops (0 = paper default)")
		interval  = flag.Uint64("interval", 0, "default interval cycles (0 = paper default)")
		announce  = flag.String("announce", "", "scheduler base URL to join on startup and depart on shutdown (empty disables)")
		self      = flag.String("self", "", "advertised base URL of this backend (required with -announce)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	if *announce != "" && *self == "" {
		fmt.Fprintln(os.Stderr, "simd: -announce requires -self (the URL the scheduler should route to)")
		os.Exit(2)
	}

	pprofserve.Maybe("simd", *pprofAddr)

	store, err := buildStore(*storeKind, *storeDir, *storeMax, *cacheSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer store.Close()

	eng := frontendsim.New(
		frontendsim.WithWarmupOps(*warmup),
		frontendsim.WithMeasureOps(*measure),
		frontendsim.WithIntervalCycles(*interval),
		frontendsim.WithWorkers(*workers),
	)
	apiOpts := []simd.Option{
		simd.WithMetrics(obs.NewRegistry()),
		simd.WithMaxBodyBytes(*maxBody),
		simd.WithAdmission(*maxQueue, *queueWait),
	}
	if *partial {
		apiOpts = append(apiOpts, simd.WithPartialResults())
	}
	api := simd.NewServerWithStore(eng, store, apiOpts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM included so orchestrated stops (systemd, containers) get
	// the same drain-and-depart path as an interactive Ctrl-C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Fail the health check first so the scheduler's probes stop
		// routing new work here, then tell it explicitly and drain.
		api.SetReady(false)
		if *announce != "" {
			departCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := membership.Depart(departCtx, nil, *announce, *self); err != nil {
				fmt.Fprintf(os.Stderr, "simd: depart: %v\n", err)
			}
			cancel()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	if *announce != "" {
		// Register with the scheduler once it answers; a restarted
		// backend rejoins the ring this way even after eviction.
		go func() {
			for {
				annCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				err := membership.Announce(annCtx, nil, *announce, *self)
				cancel()
				if err == nil {
					fmt.Fprintf(os.Stderr, "simd: joined ring at %s as %s\n", *announce, *self)
					return
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(time.Second):
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "simd: listening on %s, %s store (%s)\n",
		*addr, *storeKind, simd.Describe())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
