// Command simd serves thermal simulations over HTTP: a thin
// request/response frontend (in the spirit of Thanos's query-frontend)
// over the public frontendsim Engine, with an in-memory LRU response
// cache keyed on the canonical request hash.
//
// Usage:
//
//	simd [-addr :8723] [-cache 512] [-workers N]
//	     [-warmup N] [-measure N] [-interval N]
//
// Endpoints:
//
//	POST /v1/simulations        JSON request -> JSON result (cached, coalesced)
//	POST /v1/simulations/stream JSON request -> NDJSON per-interval stream
//	POST /v1/suites             whole-suite run (single-node mode; see simsched)
//	GET  /v1/benchmarks         available benchmark profiles
//	GET  /v1/cache/stats        response-cache counters
//	GET  /healthz               liveness
//
// Example:
//
//	curl -s localhost:8723/v1/simulations -d '{"benchmark":"gzip","frontends":2,"bank_hopping":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/simd"
	"repro/pkg/frontendsim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8723", "listen address")
		cacheSize = flag.Int("cache", 512, "LRU response cache entries (0 disables)")
		workers   = flag.Int("workers", 0, "max concurrent simulations (default: GOMAXPROCS)")
		warmup    = flag.Uint64("warmup", 0, "default warmup micro-ops (0 = paper default)")
		measure   = flag.Uint64("measure", 0, "default measured micro-ops (0 = paper default)")
		interval  = flag.Uint64("interval", 0, "default interval cycles (0 = paper default)")
	)
	flag.Parse()

	eng := frontendsim.New(
		frontendsim.WithWarmupOps(*warmup),
		frontendsim.WithMeasureOps(*measure),
		frontendsim.WithIntervalCycles(*interval),
		frontendsim.WithWorkers(*workers),
	)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           simd.NewServer(eng, *cacheSize),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "simd: listening on %s (%s)\n", *addr, simd.Describe())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
