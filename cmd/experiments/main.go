// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-table1] [-fig1] [-fig12] [-fig13] [-fig14] [-all]
//	            [-benchmarks gzip,mcf,...] [-quick]
//	            [-warmup N] [-measure N] [-interval N]
//
// With no figure flags, -all is assumed.  Output is the row data of each
// figure in the shape the paper plots (suite-average reductions of the
// temperature rise over ambient plus slowdowns).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (processor configuration)")
		fig1   = flag.Bool("fig1", false, "run Figure 1 (baseline temperature landscape)")
		fig12  = flag.Bool("fig12", false, "run Figure 12 (distributed rename and commit)")
		fig13  = flag.Bool("fig13", false, "run Figure 13 (thermal-aware trace cache)")
		fig14  = flag.Bool("fig14", false, "run Figure 14 (combined distributed frontend)")
		all    = flag.Bool("all", false, "run everything")

		benchList = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 26)")
		quick     = flag.Bool("quick", false, "6-benchmark subset at reduced length")
		warmup    = flag.Uint64("warmup", 0, "override warmup micro-ops")
		measure   = flag.Uint64("measure", 0, "override measured micro-ops")
		interval  = flag.Uint64("interval", 0, "override interval cycles")
		workers   = flag.Int("workers", 0, "suite worker pool size (default: GOMAXPROCS)")
	)
	flag.Parse()

	if !*table1 && !*fig1 && !*fig12 && !*fig13 && !*fig14 {
		*all = true
	}
	if *all {
		*table1, *fig1, *fig12, *fig13, *fig14 = true, true, true, true, true
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *benchList != "" {
		opt.Benchmarks = strings.Split(*benchList, ",")
	}
	if *warmup > 0 {
		opt.Sim.WarmupOps = *warmup
	}
	if *measure > 0 {
		opt.Sim.MeasureOps = *measure
	}
	if *interval > 0 {
		opt.Sim.IntervalCycles = *interval
	}
	opt.Workers = *workers

	out := os.Stdout
	progress := os.Stderr
	names, err := experiments.SuiteNames(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(progress, "suite: %s\n", strings.Join(names, " "))

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *table1 {
		experiments.Banner(out, "Table 1")
		experiments.Table1(out)
	}
	if *fig1 {
		experiments.Banner(out, "Figure 1")
		fmt.Fprint(progress, "figure 1:")
		r, err := experiments.Figure1(opt, progress)
		fail(err)
		r.Print(out)
	}
	if *fig12 {
		experiments.Banner(out, "Figure 12")
		fmt.Fprint(progress, "figure 12:")
		rows, err := experiments.Figure12(opt, progress)
		fail(err)
		experiments.PrintRows(out, "Figure 12. Reduction of temperature for the distributed renaming and commit", rows)
	}
	if *fig13 {
		experiments.Banner(out, "Figure 13")
		fmt.Fprint(progress, "figure 13:")
		rows, err := experiments.Figure13(opt, progress)
		fail(err)
		experiments.PrintRows(out, "Figure 13. Sub-banked trace cache temperature improvements", rows)
	}
	if *fig14 {
		experiments.Banner(out, "Figure 14")
		fmt.Fprint(progress, "figure 14:")
		rows, err := experiments.Figure14(opt, progress)
		fail(err)
		experiments.PrintRows(out, "Figure 14. Overall temperature results for the distributed frontend", rows)
	}
}
