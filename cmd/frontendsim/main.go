// Command frontendsim runs a single configuration on a single benchmark
// through the public frontendsim Engine and reports pipeline, power and
// temperature results.  Ctrl-C cancels the run between thermal intervals.
//
// Usage:
//
//	frontendsim [-bench gzip] [-distributed] [-hopping] [-biased] [-blank]
//	            [-dtm] [-warmup N] [-measure N] [-intervals] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/internal/experiments"
	"repro/pkg/frontendsim"
)

func main() {
	var (
		bench       = flag.String("bench", "gzip", "benchmark name (one of the 26 SPEC2000 profiles)")
		distributed = flag.Bool("distributed", false, "distributed rename and commit (2 frontends)")
		hopping     = flag.Bool("hopping", false, "trace-cache bank hopping")
		biased      = flag.Bool("biased", false, "thermal-aware biased bank mapping")
		blank       = flag.Bool("blank", false, "blank-silicon comparison configuration")
		dtmOn       = flag.Bool("dtm", false, "enable the fetch-toggling DTM controller")
		warmup      = flag.Uint64("warmup", 120_000, "warmup micro-ops (0 = paper default)")
		measure     = flag.Uint64("measure", 300_000, "measured micro-ops (0 = paper default)")
		stream      = flag.Bool("intervals", false, "stream per-interval snapshots to stderr")
		verbose     = flag.Bool("v", false, "per-block power/temperature dump")
	)
	flag.Parse()

	req := frontendsim.Request{
		Benchmark:     *bench,
		BankHopping:   *hopping,
		BiasedMapping: *biased,
		BlankSilicon:  *blank,
		DTM:           *dtmOn,
		WarmupOps:     *warmup,
		MeasureOps:    *measure,
	}
	if *distributed {
		req.Frontends = 2
	}
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	eng := frontendsim.New()
	var observers []frontendsim.Observer
	if *stream {
		observers = append(observers, frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			peak := 0.0
			for _, t := range s.TempsC {
				if t > peak {
					peak = t
				}
			}
			fmt.Fprintf(os.Stderr, "interval %3d: %7d cycles, IPC %5.3f, peak %6.1f°C, hops %d\n",
				s.Interval, s.DeltaCycles, s.IPC, peak, s.Hops)
		}))
	}
	r, err := eng.RunObserved(ctx, req, observers...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "run cancelled")
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
	cfg := r.Config

	fmt.Printf("benchmark      %s\n", r.Benchmark)
	fmt.Printf("configuration  frontends=%d tcBanks=%d hopping=%v biased=%v staticGate=%d\n",
		cfg.Frontends, cfg.TC.Banks, cfg.TC.Hopping, cfg.TC.Biased, cfg.TC.StaticGate)
	fmt.Printf("measured       %d µops in %d cycles (IPC %.3f)\n", r.MeasOps, r.MeasCycles, r.IPC)
	fmt.Printf("trace cache    hit rate %.4f, hops %d\n", r.TCHitRate, r.TCHops)
	raw := r.Raw()
	fmt.Printf("mispredicts    %d, copies %d (cross-frontend %d)\n",
		raw.Stats.Mispredicts, raw.Stats.Copies, raw.Stats.CrossFrontend)
	if *verbose {
		fmt.Printf("event queue    %d pushes, %d pops, %d store wakeups, %d polls avoided\n",
			raw.Stats.EventPushes, raw.Stats.EventPops,
			raw.Stats.StoreWakeups, raw.Stats.StorePollsAvoided)
	}
	if *dtmOn {
		fmt.Printf("dtm            %d engagements, %d throttled intervals, min duty %d\n",
			r.DTMEngagements, r.DTMThrottled, r.DTMMinDuty)
	}

	units := []string{
		frontendsim.UnitProcessor,
		frontendsim.UnitFrontend,
		frontendsim.UnitBackend,
		frontendsim.UnitUL2,
		frontendsim.UnitROB,
		frontendsim.UnitRAT,
		frontendsim.UnitTraceCache,
	}
	fmt.Printf("\n%-11s %8s %8s %8s   (rise over %.0f°C ambient)\n",
		"unit", "AbsMax", "Average", "AvgMax", r.AmbientC)
	for _, u := range units {
		tr := r.Units[u]
		fmt.Printf("%-11s %8.1f %8.1f %8.1f\n", u, tr.AbsMax, tr.Average, tr.AvgMax)
	}

	if *verbose {
		experiments.Banner(os.Stdout, "per-block detail")
		type row struct {
			name  string
			power float64
			peak  float64
		}
		var rows []row
		for i, name := range r.Blocks {
			rows = append(rows, row{name, r.AvgPowerW[i], r.PeakRiseC[i]})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].peak > rows[j].peak })
		for _, rw := range rows {
			fmt.Printf("%-9s %7.2f W   peak rise %6.1f\n", rw.name, rw.power, rw.peak)
		}
	}
}
