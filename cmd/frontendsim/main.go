// Command frontendsim runs a single configuration on a single benchmark
// and reports pipeline, power and temperature results.
//
// Usage:
//
//	frontendsim [-bench gzip] [-distributed] [-hopping] [-biased] [-blank]
//	            [-warmup N] [-measure N] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		bench       = flag.String("bench", "gzip", "benchmark name (one of the 26 SPEC2000 profiles)")
		distributed = flag.Bool("distributed", false, "distributed rename and commit (2 frontends)")
		hopping     = flag.Bool("hopping", false, "trace-cache bank hopping")
		biased      = flag.Bool("biased", false, "thermal-aware biased bank mapping")
		blank       = flag.Bool("blank", false, "blank-silicon comparison configuration")
		warmup      = flag.Uint64("warmup", 120_000, "warmup micro-ops")
		measure     = flag.Uint64("measure", 300_000, "measured micro-ops")
		verbose     = flag.Bool("v", false, "per-block power/temperature dump")
	)
	flag.Parse()

	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available: %v\n", *bench, workload.Names())
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	if *distributed {
		cfg = cfg.WithDistributedFrontend(2)
	}
	if *hopping {
		cfg = cfg.WithBankHopping()
	}
	if *biased {
		cfg = cfg.WithBiasedMapping()
	}
	if *blank {
		if *hopping {
			fmt.Fprintln(os.Stderr, "-blank and -hopping are mutually exclusive")
			os.Exit(1)
		}
		cfg = cfg.WithBlankSilicon()
	}

	opt := sim.DefaultOptions()
	opt.WarmupOps = *warmup
	opt.MeasureOps = *measure
	r := sim.Run(cfg, prof, opt)

	fmt.Printf("benchmark      %s\n", r.Bench)
	fmt.Printf("configuration  frontends=%d tcBanks=%d hopping=%v biased=%v staticGate=%d\n",
		cfg.Frontends, cfg.TC.Banks, cfg.TC.Hopping, cfg.TC.Biased, cfg.TC.StaticGate)
	fmt.Printf("measured       %d µops in %d cycles (IPC %.3f)\n", r.MeasOps, r.MeasCycles, r.IPC())
	fmt.Printf("trace cache    hit rate %.4f, hops %d\n", r.TCHitRate, r.TCHops)
	fmt.Printf("mispredicts    %d, copies %d (cross-frontend %d)\n",
		r.Stats.Mispredicts, r.Stats.Copies, r.Stats.CrossFrontend)

	units := []struct {
		name   string
		filter func(string) bool
	}{
		{"Processor", nil},
		{"Frontend", floorplan.IsFrontend},
		{"Backend", floorplan.IsBackend},
		{"UL2", func(n string) bool { return n == floorplan.UL2 }},
		{"ROB", floorplan.IsROB},
		{"RAT", floorplan.IsRAT},
		{"TraceCache", floorplan.IsTraceCache},
	}
	fmt.Printf("\n%-11s %8s %8s %8s   (rise over %.0f°C ambient)\n",
		"unit", "AbsMax", "Average", "AvgMax", r.Temps.Ambient())
	for _, u := range units {
		tr := r.Temps.Unit(u.filter)
		fmt.Printf("%-11s %8.1f %8.1f %8.1f\n", u.name, tr.AbsMax, tr.Average, tr.AvgMax)
	}

	if *verbose {
		experiments.Banner(os.Stdout, "per-block detail")
		type row struct {
			name  string
			power float64
			peak  float64
		}
		var rows []row
		for i, b := range r.Floorplan.Blocks {
			name := b.Name
			rows = append(rows, row{name, r.AvgPower[i],
				r.Temps.AbsMax(func(n string) bool { return n == name })})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].peak > rows[j].peak })
		for _, rw := range rows {
			fmt.Printf("%-9s %7.2f W   peak rise %6.1f\n", rw.name, rw.power, rw.peak)
		}
	}
}
