// Command simsched is the multi-node suite scheduler: a query-frontend
// that shards benchmark-suite requests across a ring of simd backends by
// consistent hashing on the canonical request key, fails over to the
// next ring node when a backend dies, single-flights identical
// concurrent work, and aggregates results deterministically — the
// /v1/suites response is byte-identical to a serial in-process
// Engine.RunSuite.  POST /v1/suites/stream serves the same run as
// NDJSON, one line per shard the moment it completes (cache hits
// first), terminated by the same deterministic aggregate.
//
// A scheduler-tier response cache (Thanos query-frontend results
// cache) answers repeated suites without dispatching to any backend:
// every unique shard already in the cache is served at this tier, and
// the suite response carries X-Cache: HIT|PARTIAL|MISS accordingly.
//
// The backend ring is self-managing: every backend is health-probed on
// -probe-interval, quarantined (routed around, still probed) after
// -quarantine-threshold consecutive failures, reinstated by one
// successful probe, and evicted for good after -evict-after in
// quarantine.  Backends join and leave at runtime through POST/DELETE
// /v1/ring/members (simd's -announce flag does this automatically), and
// GET /metrics exposes the ring, dispatch and HTTP counters in
// Prometheus text format.
//
// Usage:
//
//	simsched -backends http://sim-1:8723,http://sim-2:8723 [-addr :8724]
//	         [-replicas 128] [-retries -1] [-cache 512] [-workers N]
//	         [-store memory|remote|tiered-remote] [-remote-servers HOST:PORT,...]
//	         [-remote-ttl D] [-max-body-bytes N]
//	         [-timeout 10m] [-probe-interval 2s] [-probe-timeout 1s]
//	         [-quarantine-threshold 3] [-evict-after 1m] [-hedge-delay 0]
//	         [-retry-backoff 5ms] [-breaker-threshold 3] [-breaker-cooldown 5s]
//	         [-hint-limit 256] [-partial-results]
//	         [-warmup N] [-measure N] [-interval N] [-pprof ADDR]
//
// Resilience: retries within one dispatch wait out a jittered
// exponential backoff (-retry-backoff, 0 disables) before the next ring
// node; -breaker-threshold consecutive dispatch failures open a
// per-backend circuit that diverts the ring walk around the backend for
// -breaker-cooldown before a single half-open probe (0 disables the
// breaker).  Every dispatch verdict also feeds the membership registry,
// so live traffic quarantines a flapping backend between probe rounds.
// With -partial-results, a suite whose shards exhaust the ring answers
// 200 with per-shard `errors` entries and X-Cache: PARTIAL-ERROR
// instead of failing the whole sweep.
//
// Hinted handoff: results computed while their home backend is
// quarantined are buffered (up to -hint-limit per backend, newest kept)
// and replayed into the backend's store the moment the membership
// registry reinstates it, so a briefly-dead backend answers its ring
// slice from cache instead of recomputing
// (sched_hints_{queued,replayed,dropped}_total on /metrics).
//
// The -warmup/-measure/-interval defaults must match the backends' simd
// flags: the scheduler canonicalizes requests under its own engine
// defaults, and matching flags keep the two tiers' cache keys aligned.
//
// Example:
//
//	simd -addr :8723 & simd -addr :8733 &
//	simsched -backends http://localhost:8723,http://localhost:8733
//	curl -s localhost:8724/v1/suites -d '{"benchmarks":["gzip","mcf"],"request":{"bank_hopping":true}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/pprofserve"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
	"repro/pkg/scheduler"
)

// buildStore assembles the scheduler-tier response cache.  A nil store
// (memory kind with -cache 0) disables the tier entirely.
func buildStore(kind string, cache int, remoteServers string, ttl time.Duration) (resultstore.Store, error) {
	newRemote := func() (resultstore.Store, error) {
		if remoteServers == "" {
			return nil, fmt.Errorf("simsched: -store=%s requires -remote-servers", kind)
		}
		var servers []string
		for _, addr := range strings.Split(remoteServers, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				servers = append(servers, addr)
			}
		}
		return resultstore.NewRemote(resultstore.RemoteConfig{Servers: servers, TTL: ttl})
	}
	switch kind {
	case "memory":
		if cache <= 0 {
			return nil, nil
		}
		return resultstore.NewMemory(cache), nil
	case "remote":
		return newRemote()
	case "tiered-remote":
		remote, err := newRemote()
		if err != nil {
			return nil, err
		}
		if cache <= 0 {
			return remote, nil
		}
		return resultstore.NewTiered(resultstore.NewMemory(cache), remote), nil
	}
	return nil, fmt.Errorf("simsched: unknown -store %q (memory|remote|tiered-remote)", kind)
}

func main() {
	var (
		addr      = flag.String("addr", ":8724", "listen address")
		backends  = flag.String("backends", "", "comma-separated simd base URLs (required)")
		replicas  = flag.Int("replicas", 0, "virtual ring points per backend (0 = default)")
		retries   = flag.Int("retries", 0, "failover nodes tried after the home backend (0 = all remaining, -1 = none)")
		cache     = flag.Int("cache", 512, "scheduler-tier response cache entries (0 disables)")
		storeKind = flag.String("store", "memory", "scheduler-tier response cache backend: memory|remote|tiered-remote")
		remoteSrv = flag.String("remote-servers", "", "comma-separated memcached host:port list (required for -store=remote|tiered-remote)")
		remoteTTL = flag.Duration("remote-ttl", 0, "expiry stored with remote-store writes (0 = no expiry)")
		workers   = flag.Int("workers", 0, "max concurrent backend dispatches per suite (default: GOMAXPROCS)")
		maxBody   = flag.Int64("max-body-bytes", scheduler.DefaultMaxBodyBytes, "request-body size cap in bytes (oversized bodies get 413)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "per-backend-request timeout")
		probeInt  = flag.Duration("probe-interval", 2*time.Second, "backend health-probe interval")
		probeTO   = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		quarAfter = flag.Int("quarantine-threshold", 3, "consecutive probe failures before a backend is quarantined")
		evictAft  = flag.Duration("evict-after", time.Minute, "quarantine time before permanent eviction (negative disables)")
		hedge     = flag.Duration("hedge-delay", 0, "hedged-request floor: speculative retry to the next ring node after max(p95, this) in flight (0 disables hedging)")
		backoff   = flag.Duration("retry-backoff", 5*time.Millisecond, "jittered exponential backoff base between ring-walk retries (0 disables)")
		brkThresh = flag.Int("breaker-threshold", 3, "consecutive dispatch failures that open a backend's circuit (0 disables the breaker)")
		brkCool   = flag.Duration("breaker-cooldown", 5*time.Second, "time an open circuit diverts traffic before a half-open probe")
		hintLimit = flag.Int("hint-limit", 256, "hinted-handoff entries buffered per quarantined backend, replayed on reinstatement (0 disables)")
		partial   = flag.Bool("partial-results", false, "degrade suite runs gracefully: per-shard error entries and X-Cache: PARTIAL-ERROR instead of failing the whole suite")
		warmup    = flag.Uint64("warmup", 0, "default warmup micro-ops (0 = paper default; match simd)")
		measure   = flag.Uint64("measure", 0, "default measured micro-ops (0 = paper default; match simd)")
		interval  = flag.Uint64("interval", 0, "default interval cycles (0 = paper default; match simd)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty disables)")
	)
	flag.Parse()

	pprofserve.Maybe("simsched", *pprofAddr)

	var nodes []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			nodes = append(nodes, strings.TrimRight(b, "/"))
		}
	}
	if len(nodes) == 0 {
		fmt.Fprintln(os.Stderr, "simsched: -backends is required (comma-separated simd base URLs)")
		os.Exit(2)
	}

	eng := frontendsim.New(
		frontendsim.WithWarmupOps(*warmup),
		frontendsim.WithMeasureOps(*measure),
		frontendsim.WithIntervalCycles(*interval),
		frontendsim.WithWorkers(*workers),
	)
	store, err := buildStore(*storeKind, *cache, *remoteSrv, *remoteTTL)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	metrics := obs.NewRegistry()
	if store != nil {
		resultstore.RegisterMetrics(metrics, store)
	}
	// members is assigned below, before the server starts accepting
	// requests; the closure lets the scheduler feed dispatch verdicts
	// back into the registry that will own the ring.
	var members *membership.Registry
	sched, err := scheduler.New(eng, scheduler.Config{
		Backends:         nodes,
		Replicas:         *replicas,
		Retries:          *retries,
		HTTPClient:       &http.Client{Timeout: *timeout},
		Cache:            store,
		HedgeDelay:       *hedge,
		Metrics:          metrics,
		RetryBackoff:     *backoff,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		HintLimit:        *hintLimit,
		PartialResults:   *partial,
		ReportDispatch: func(node string, err error) {
			if members != nil {
				members.ReportDispatch(node, err)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	members, err = membership.New(membership.Config{
		ProbeInterval:   *probeInt,
		ProbeTimeout:    *probeTO,
		QuarantineAfter: *quarAfter,
		EvictAfter:      *evictAft,
		OnChange:        sched.OnMembershipChange(),
		OnTransition:    sched.OnMembershipTransition(),
		Metrics:         metrics,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	members.Start()
	defer members.Close()

	api := scheduler.NewServer(sched,
		scheduler.WithMembership(members), scheduler.WithMetrics(metrics),
		scheduler.WithMaxBodyBytes(*maxBody))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Fail the health check first so upstream load balancers stop
		// sending new suites here, then drain in-flight runs.
		api.SetReady(false)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "simsched: listening on %s, %d backend(s) (%s)\n",
		*addr, len(nodes), scheduler.Describe())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
