// Command tempmap renders the floorplans of Figures 10 and 11 as ASCII
// maps, optionally annotated with steady-state block temperatures from a
// short simulation.
//
// Usage:
//
//	tempmap [-layout baseline|hopping|distributed|combined] [-temps] [-bench gzip]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/pkg/frontendsim"
)

func main() {
	var (
		layout = flag.String("layout", "baseline", "baseline | hopping | distributed | combined")
		temps  = flag.Bool("temps", false, "annotate with simulated temperatures")
		bench  = flag.String("bench", "gzip", "benchmark for -temps")
	)
	flag.Parse()

	var cfg core.Config
	switch *layout {
	case "baseline":
		cfg = core.DefaultConfig()
	case "hopping":
		cfg = core.DefaultConfig().WithBankHopping()
	case "distributed":
		cfg = core.DefaultConfig().WithDistributedFrontend(2)
	case "combined":
		cfg = core.DefaultConfig().WithDistributedFrontend(2).WithBankHopping()
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q\n", *layout)
		os.Exit(1)
	}

	fp := floorplan.New(floorplan.Config{
		TCBanks:     cfg.TC.Banks,
		Distributed: cfg.Distributed(),
		Partitions:  cfg.Frontends,
		Clusters:    cfg.Clusters,
	})
	fmt.Printf("Floorplan %q: %d blocks, %.1f mm²\n\n", *layout, len(fp.Blocks), fp.TotalArea())
	fmt.Println(fp.Render(0.5))

	if !*temps {
		return
	}
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(60_000),
		frontendsim.WithMeasureOps(120_000),
	)
	r, err := eng.Run(context.Background(), frontendsim.Request{Benchmark: *bench, Config: &cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	type row struct {
		name string
		peak float64
	}
	var rows []row
	for i, name := range r.Blocks {
		rows = append(rows, row{name, r.PeakRiseC[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].peak > rows[j].peak })
	fmt.Printf("Peak rise over ambient on %s:\n", *bench)
	for _, rw := range rows {
		bar := ""
		for i := 0; i < int(rw.peak/2); i++ {
			bar += "#"
		}
		fmt.Printf("%-9s %6.1f %s\n", rw.name, rw.peak, bar)
	}
}
