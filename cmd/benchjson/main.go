// benchjson converts `go test -bench` output on stdin into a JSON report.
// It passes the raw output through to stdout unchanged (so `make bench`
// stays readable) and writes the parsed form to the -o file:
//
//	go test -bench . -benchmem | benchjson -o BENCH_results.json
//
// Each benchmark line becomes one record with the iteration count and
// every reported metric (ns/op, B/op, allocs/op, custom ReportMetric
// units) keyed by unit name.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output JSON path")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			records = append(records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkX-8  3  123 ns/op  4 B/op ..." line.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
