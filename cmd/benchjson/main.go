// benchjson converts `go test -bench` output on stdin into a JSON report.
// It passes the raw output through to stdout unchanged (so `make bench`
// stays readable) and writes the parsed form to the -o file:
//
//	go test -bench . -benchmem | benchjson -o BENCH_results.json
//
// Each benchmark line becomes one record with the iteration count and
// every reported metric (ns/op, B/op, allocs/op, custom ReportMetric
// units) keyed by unit name.
//
// When a baseline report exists (-baseline, default: the previous
// contents of the -o file — normally the committed BENCH_results.json),
// a per-benchmark delta of every shared metric is printed after the run,
// so a bench refresh shows what moved against the committed numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result line.
type Record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output JSON path")
	baseline := flag.String("baseline", "", "baseline JSON to diff against (default: previous contents of -o)")
	flag.Parse()

	basePath := *baseline
	if basePath == "" {
		basePath = *out
	}
	base := readBaseline(basePath) // before -o is overwritten

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			records = append(records, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
	printDelta(base, basePath, records)
}

// readBaseline loads a previous report; a missing or unparsable file just
// disables the delta (first runs have nothing to diff against).
func readBaseline(path string) []Record {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var records []Record
	if json.Unmarshal(b, &records) != nil {
		return nil
	}
	return records
}

// printDelta prints, per benchmark present in both reports, the old and
// new value of every shared metric with its relative change.
func printDelta(base []Record, basePath string, records []Record) {
	if len(base) == 0 {
		return
	}
	old := make(map[string]map[string]float64, len(base))
	for _, r := range base {
		old[r.Name] = r.Metrics
	}
	printed := false
	for _, r := range records {
		om, ok := old[r.Name]
		if !ok {
			continue
		}
		var units []string
		for u := range r.Metrics {
			if _, ok := om[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		var parts []string
		for _, u := range units {
			ov, nv := om[u], r.Metrics[u]
			if ov == nv {
				continue
			}
			part := fmt.Sprintf("%s %s -> %s", u, formatVal(ov), formatVal(nv))
			if ov != 0 {
				part += fmt.Sprintf(" (%+.1f%%)", (nv-ov)/ov*100)
			}
			parts = append(parts, part)
		}
		if len(parts) == 0 {
			continue
		}
		if !printed {
			fmt.Printf("\ndelta vs %s:\n", basePath)
			printed = true
		}
		fmt.Printf("  %-32s %s\n", r.Name, strings.Join(parts, ", "))
	}
	if printed {
		fmt.Println()
	}
}

// formatVal renders a metric without trailing noise for integral values.
func formatVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// parseLine parses one "BenchmarkX-8  3  123 ns/op  4 B/op ..." line.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	r := Record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
