// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (§4) as Go benchmarks.  Each benchmark runs a
// reduced-suite experiment and reports the figure's headline numbers as
// custom benchmark metrics (percent reductions of the temperature rise
// over ambient, slowdown percent), so `go test -bench=.` prints the same
// rows the paper plots.  cmd/experiments runs the full-length versions.
//
// Ablation benchmarks cover the design choices called out in DESIGN.md §7:
// hop interval length, the 3°C/×2 biasing rule, the number of trace-cache
// banks, and the number of frontend partitions.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcache"
	"repro/internal/workload"
)

// benchOpts returns the reduced-length options used by the benchmark
// harness (3 benchmarks spanning int/memory-bound/FP behaviour).
func benchOpts() experiments.Options {
	o := experiments.QuickOptions()
	o.Benchmarks = []string{"gzip", "mcf", "swim"}
	o.Sim.WarmupOps = 50_000
	o.Sim.MeasureOps = 120_000
	return o
}

func reportTriple(b *testing.B, prefix string, t metrics.Triple) {
	b.ReportMetric(t.AbsMax*100, prefix+"_absmax_%")
	b.ReportMetric(t.Average*100, prefix+"_avg_%")
	b.ReportMetric(t.AvgMax*100, prefix+"_avgmax_%")
}

// BenchmarkTable1Config measures processor construction at the Table 1
// configuration (a pure-CPU sanity benchmark for the machine setup path).
func BenchmarkTable1Config(b *testing.B) {
	prof, _ := workload.ByName("gzip")
	for i := 0; i < b.N; i++ {
		p := core.New(core.DefaultConfig(), workload.NewGenerator(prof, 1))
		if p.Config().ROBEntries != 256 {
			b.Fatal("bad config")
		}
	}
}

// BenchmarkFigure1 regenerates the baseline temperature landscape.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Processor.AbsMax, "processor_peak_C")
		b.ReportMetric(r.Processor.Average, "processor_avg_C")
		b.ReportMetric(r.Frontend.AbsMax, "frontend_peak_C")
		b.ReportMetric(r.Frontend.Average, "frontend_avg_C")
		b.ReportMetric(r.Backend.AbsMax, "backend_peak_C")
		b.ReportMetric(r.UL2.AbsMax, "ul2_peak_C")
	}
}

// BenchmarkFigure12 regenerates the distributed rename/commit figure.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure12(benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[0]
		reportTriple(b, "rob", r.ROB)
		reportTriple(b, "rat", r.RAT)
		b.ReportMetric(r.Slowdown*100, "slowdown_%")
	}
}

// BenchmarkFigure13 regenerates the thermal-aware trace cache figure.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure13(benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Name {
			case "Address Biasing":
				b.ReportMetric(r.TC.AbsMax*100, "bias_tc_absmax_%")
			case "Bank Hopping":
				reportTriple(b, "hop_tc", r.TC)
				b.ReportMetric(r.RAT.AbsMax*100, "hop_rat_absmax_%")
				b.ReportMetric(r.Slowdown*100, "hop_slowdown_%")
				b.ReportMetric(r.TCHitLoss*100, "hop_hitloss_%")
			case "Bank Hopping + Address Biasing":
				reportTriple(b, "hopbias_tc", r.TC)
			}
		}
	}
}

// BenchmarkFigure14 regenerates the combined distributed frontend figure.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure14(benchOpts(), nil)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1] // the full combination
		reportTriple(b, "rob", r.ROB)
		reportTriple(b, "rat", r.RAT)
		reportTriple(b, "tc", r.TC)
		b.ReportMetric(r.Slowdown*100, "slowdown_%")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles/s)
// on the baseline machine.  The workload is shared with the cycles/op
// pin test (cycles_pin_test.go) so the committed expectation always
// gates exactly what this benchmark measures.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := newThroughputProcessor(b)
		p.Run(0)
		b.ReportMetric(float64(p.Stats.Cycles), "cycles/op")
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §7)

func ablationRun(b *testing.B, cfg core.Config, opt sim.Options, bench string) *sim.Result {
	b.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		b.Fatal("unknown benchmark")
	}
	return sim.Run(cfg, prof, opt)
}

// BenchmarkAblationHopInterval sweeps the bank-hopping interval: longer
// intervals lose fewer trace-cache contents (lower slowdown) but migrate
// activity less often (less peak reduction).
func BenchmarkAblationHopInterval(b *testing.B) {
	for _, ic := range []uint64{25_000, 100_000, 400_000} {
		ic := ic
		b.Run(intervalName(ic), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := sim.DefaultOptions()
				opt.WarmupOps, opt.MeasureOps = 50_000, 150_000
				opt.IntervalCycles = ic
				opt.IntervalSeconds = 1e-3 * float64(ic) / 100_000
				base := ablationRun(b, core.DefaultConfig(), opt, "gzip")
				hop := ablationRun(b, core.DefaultConfig().WithBankHopping(), opt, "gzip")
				red := metrics.ReductionTriple(
					base.Temps.Unit(floorplan.IsTraceCache),
					hop.Temps.Unit(floorplan.IsTraceCache))
				b.ReportMetric(red.AbsMax*100, "tc_absmax_red_%")
				b.ReportMetric(metrics.Slowdown(base.MeasCycles, hop.MeasCycles)*100, "slowdown_%")
			}
		})
	}
}

func intervalName(ic uint64) string {
	switch ic {
	case 25_000:
		return "quarter"
	case 100_000:
		return "paper"
	default:
		return "quadruple"
	}
}

// BenchmarkAblationBiasRule sweeps the biasing halving rule around the
// paper's experimentally found 3°C (§3.2.2).
func BenchmarkAblationBiasRule(b *testing.B) {
	for _, deg := range []float64{1.5, 3, 6} {
		deg := deg
		name := map[float64]string{1.5: "aggressive_1.5C", 3: "paper_3C", 6: "gentle_6C"}[deg]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := sim.DefaultOptions()
				opt.WarmupOps, opt.MeasureOps = 50_000, 150_000
				base := ablationRun(b, core.DefaultConfig(), opt, "gzip")
				cfg := core.DefaultConfig().WithBiasedMapping()
				cfg.TC.BiasDegreesPerHalving = deg
				biased := ablationRun(b, cfg, opt, "gzip")
				red := metrics.ReductionTriple(
					base.Temps.Unit(floorplan.IsTraceCache),
					biased.Temps.Unit(floorplan.IsTraceCache))
				b.ReportMetric(red.AbsMax*100, "tc_absmax_red_%")
				b.ReportMetric(metrics.Slowdown(base.MeasCycles, biased.MeasCycles)*100, "slowdown_%")
			}
		})
	}
}

// BenchmarkAblationBankCount sweeps the number of trace-cache banks under
// hopping (the paper uses 2+1).
func BenchmarkAblationBankCount(b *testing.B) {
	for _, banks := range []int{2, 3, 4} {
		banks := banks
		b.Run(bankName(banks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := sim.DefaultOptions()
				opt.WarmupOps, opt.MeasureOps = 50_000, 150_000
				base := ablationRun(b, core.DefaultConfig(), opt, "gzip")
				cfg := core.DefaultConfig()
				cfg.TC.Banks = banks
				cfg.TC.Hopping = true
				// Keep the effective capacity close to the baseline (one
				// bank is always gated), rounded down to a power of two
				// so the bank tag stores keep power-of-two sets.
				per := cfg.TC.TracesPerBank * 2 / (banks - 1)
				pow := 1
				for pow*2 <= per {
					pow *= 2
				}
				cfg.TC.TracesPerBank = pow
				hop := ablationRun(b, cfg, opt, "gzip")
				red := metrics.ReductionTriple(
					base.Temps.Unit(floorplan.IsTraceCache),
					hop.Temps.Unit(floorplan.IsTraceCache))
				b.ReportMetric(red.AbsMax*100, "tc_absmax_red_%")
				b.ReportMetric(red.Average*100, "tc_avg_red_%")
				b.ReportMetric(metrics.Slowdown(base.MeasCycles, hop.MeasCycles)*100, "slowdown_%")
			}
		})
	}
}

func bankName(b int) string {
	switch b {
	case 2:
		return "1+1banks"
	case 3:
		return "2+1banks_paper"
	default:
		return "3+1banks"
	}
}

// BenchmarkAblationFrontends sweeps the number of frontend partitions for
// the distributed rename/commit mechanism (the paper evaluates 2).
func BenchmarkAblationFrontends(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		n := n
		name := map[int]string{1: "centralized", 2: "paper_2", 4: "four"}[n]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := sim.DefaultOptions()
				opt.WarmupOps, opt.MeasureOps = 50_000, 150_000
				base := ablationRun(b, core.DefaultConfig(), opt, "gcc")
				cfg := core.DefaultConfig().WithDistributedFrontend(n)
				dist := ablationRun(b, cfg, opt, "gcc")
				red := metrics.ReductionTriple(
					base.Temps.Unit(floorplan.IsROB),
					dist.Temps.Unit(floorplan.IsROB))
				b.ReportMetric(red.AbsMax*100, "rob_absmax_red_%")
				b.ReportMetric(metrics.Slowdown(base.MeasCycles, dist.MeasCycles)*100, "slowdown_%")
				b.ReportMetric(float64(dist.Stats.CrossFrontend), "xfe_copies")
			}
		})
	}
}

// BenchmarkTraceCacheAccess microbenchmarks the banked trace cache with
// the biased mapping (the structure on the critical fetch path).
func BenchmarkTraceCacheAccess(b *testing.B) {
	tc := tcache.New(tcache.Config{
		Banks: 3, TracesPerBank: 256, Ways: 4, Hopping: true, Biased: true, StaticGate: -1,
	})
	temps := []float64{70, 73, 68}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i) % 1024
		if hit, _ := tc.Access(id); !hit {
			tc.Fill(id)
		}
		if i%4096 == 0 {
			tc.Reconfigure(temps)
		}
	}
}
