// Package thermal implements the dynamic compact thermal model of §2.1 of
// the paper: an RC network exploiting the duality between heat transfer
// and electrical phenomena, in the style of Skadron et al.'s HotSpot.
//
// Every floorplan block is one silicon node with
//
//   - a thermal capacitance proportional to its area (die thickness is
//     folded into the per-area constant),
//   - a vertical conductance to the heat spreader (through the silicon
//     bulk and the thermal interface material), and
//   - lateral conductances to each adjacent block, proportional to the
//     shared edge length and inversely proportional to the center
//     distance.
//
// The copper heat spreader and the heat sink of §4 (3.1x3.1x0.23 cm
// spreader, 7x8.3x4.11 cm sink) are single lumped nodes; the sink
// convects to ambient air at a fixed temperature.  Their capacitances are
// orders of magnitude larger than the blocks', which is why the paper
// warm-starts simulations at the steady state: package time constants are
// seconds while program intervals are milliseconds.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
)

// Params are the physical constants of the RC network.  DefaultParams
// provides values calibrated for the paper's 65 nm / 10 GHz design point;
// they reproduce the Figure 1 temperature landscape (frontend ≈ 62°C rise
// peak, ≈ 25°C average) at the power model's nominal activity.
type Params struct {
	Ambient float64 // °C (paper: 45°C inside-box temperature)

	// Per-block silicon constants.
	CapPerMM2  float64 // J/K per mm² of block area
	VertRAreaK float64 // vertical resistance·area, K·mm²/W (bulk + TIM)
	LatK       float64 // lateral conductance scale, W/K per (mm shared / mm dist)

	// Package.
	SpreaderC    float64 // J/K
	SpreaderR    float64 // K/W spreader→sink
	SinkC        float64 // J/K
	SinkR        float64 // K/W sink→ambient (convection)
	EmergencyCap float64 // °C; steady-state solutions are capped here (381 K)
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		Ambient:      45,
		CapPerMM2:    2.0e-4,
		VertRAreaK:   17.0,
		LatK:         0.08,
		SpreaderC:    7.5,
		SpreaderR:    0.04,
		SinkC:        500,
		SinkR:        0.07,
		EmergencyCap: 108, // 381 K
	}
}

// Model is the RC network for one floorplan.
type Model struct {
	fp     *floorplan.Floorplan
	p      Params
	n      int // number of block nodes; node n = spreader, n+1 = sink
	caps   []float64
	gVert  []float64 // block → spreader
	adj    []floorplan.Adjacency
	gLat   []float64 // conductance per adjacency
	temps  []float64 // length n+2
	minTau float64

	// Persistent scratch so the per-interval entry points allocate
	// nothing: the Step derivative vector and the steady-state solver's
	// matrix.  The conductance part of the steady-state system depends
	// only on the geometry, so it is assembled once (ssBase) and copied
	// into the working matrix per solve.
	dTdt      []float64
	ssBase    []float64   // flat (n+2) x (n+3) augmented matrix template
	ssScratch []float64   // working copy of ssBase
	ssRows    [][]float64 // row headers into ssScratch (reset per solve)
}

// New builds the thermal model, with all nodes at ambient.
func New(fp *floorplan.Floorplan, p Params) *Model {
	n := len(fp.Blocks)
	m := &Model{fp: fp, p: p, n: n}
	m.caps = make([]float64, n+2)
	m.gVert = make([]float64, n)
	for i, b := range fp.Blocks {
		m.caps[i] = p.CapPerMM2 * b.Area()
		m.gVert[i] = b.Area() / p.VertRAreaK
	}
	m.caps[n] = p.SpreaderC
	m.caps[n+1] = p.SinkC
	m.adj = fp.Adjacencies()
	m.gLat = make([]float64, len(m.adj))
	for i, a := range m.adj {
		d := a.Dist
		if d < 0.1 {
			d = 0.1
		}
		m.gLat[i] = p.LatK * a.Shared / d
	}
	m.temps = make([]float64, n+2)
	for i := range m.temps {
		m.temps[i] = p.Ambient
	}
	// Stability bound for explicit integration: tau = C / G_total.
	m.minTau = math.Inf(1)
	gTot := make([]float64, n+2)
	for i := 0; i < n; i++ {
		gTot[i] += m.gVert[i]
		gTot[n] += m.gVert[i]
	}
	for i, a := range m.adj {
		gTot[a.A] += m.gLat[i]
		gTot[a.B] += m.gLat[i]
	}
	gTot[n] += 1 / p.SpreaderR
	gTot[n+1] += 1/p.SpreaderR + 1/p.SinkR
	for i := range gTot {
		if gTot[i] > 0 {
			if tau := m.caps[i] / gTot[i]; tau < m.minTau {
				m.minTau = tau
			}
		}
	}
	m.dTdt = make([]float64, n+2)
	m.buildSteadyBase()
	return m
}

// buildSteadyBase assembles the geometry-dependent part of the
// steady-state system G·T = P once: every conductance entry and the
// constant ambient term of the sink row.  Per-block powers are the only
// per-solve inputs.
func (m *Model) buildSteadyBase() {
	n := m.n
	size := n + 2
	stride := size + 1
	m.ssBase = make([]float64, size*stride)
	m.ssScratch = make([]float64, size*stride)
	m.ssRows = make([][]float64, size)
	at := func(i, j int) *float64 { return &m.ssBase[i*stride+j] }
	addG := func(i, j int, g float64) {
		*at(i, i) += g
		*at(j, j) += g
		*at(i, j) -= g
		*at(j, i) -= g
	}
	for i := 0; i < n; i++ {
		addG(i, n, m.gVert[i])
	}
	for i, ad := range m.adj {
		addG(ad.A, ad.B, m.gLat[i])
	}
	addG(n, n+1, 1/m.p.SpreaderR)
	*at(n+1, n+1) += 1 / m.p.SinkR
	*at(n+1, size) += m.p.Ambient / m.p.SinkR
}

// Blocks returns the number of block nodes.
func (m *Model) Blocks() int { return m.n }

// Temp returns the temperature (°C) of block i.
func (m *Model) Temp(i int) float64 { return m.temps[i] }

// Temps returns the block temperatures (°C); the slice is a copy.
func (m *Model) Temps() []float64 {
	return m.TempsInto(make([]float64, m.n))
}

// TempsInto copies the block temperatures (°C) into out and returns it.
// len(out) must equal Blocks().
func (m *Model) TempsInto(out []float64) []float64 {
	if len(out) != m.n {
		panic(fmt.Sprintf("thermal: TempsInto scratch has %d blocks, want %d", len(out), m.n))
	}
	copy(out, m.temps[:m.n])
	return out
}

// SpreaderTemp and SinkTemp return the package node temperatures.
func (m *Model) SpreaderTemp() float64 { return m.temps[m.n] }

// SinkTemp returns the heat-sink temperature.
func (m *Model) SinkTemp() float64 { return m.temps[m.n+1] }

// Ambient returns the ambient temperature.
func (m *Model) Ambient() float64 { return m.p.Ambient }

// Rise returns block i's rise over ambient.
func (m *Model) Rise(i int) float64 { return m.temps[i] - m.p.Ambient }

// SetTemps overrides all node temperatures (blocks, spreader, sink).
func (m *Model) SetTemps(block []float64, spreader, sink float64) {
	if len(block) != m.n {
		panic(fmt.Sprintf("thermal: SetTemps with %d blocks, want %d", len(block), m.n))
	}
	copy(m.temps, block)
	m.temps[m.n] = spreader
	m.temps[m.n+1] = sink
}

// maxSubsteps bounds the explicit-integration subdivision of one Step
// call.  A degenerate floorplan (a sliver block with near-zero area, or
// extreme parameter overrides) can drive minTau toward zero; without the
// cap the inner loop would silently explode to billions of iterations.
// At the default parameters a 1 ms interval takes a few hundred substeps,
// so the cap is far outside the calibrated regime.
const maxSubsteps = 1_000_000

// Step advances the network by dt seconds with the given per-block power
// (W).  It subdivides dt to honour the explicit-integration stability
// bound, capped at maxSubsteps (accuracy degrades past the cap rather
// than the loop running away).
func (m *Model) Step(power []float64, dt float64) {
	if len(power) != m.n {
		panic(fmt.Sprintf("thermal: Step with %d powers, want %d blocks", len(power), m.n))
	}
	sub := m.minTau / 3
	steps := 1
	if sub > 0 && dt > sub { // guard: degenerate minTau (0, NaN) falls through to 1
		steps = int(dt/sub) + 1
		if steps > maxSubsteps || steps < 1 { // < 1: int overflow on huge dt/sub
			steps = maxSubsteps
		}
	}
	h := dt / float64(steps)
	n := m.n
	dTdt := m.dTdt
	for s := 0; s < steps; s++ {
		for i := range dTdt {
			dTdt[i] = 0
		}
		for i := 0; i < n; i++ {
			dTdt[i] += power[i]
			flow := m.gVert[i] * (m.temps[i] - m.temps[n])
			dTdt[i] -= flow
			dTdt[n] += flow
		}
		for i, a := range m.adj {
			flow := m.gLat[i] * (m.temps[a.A] - m.temps[a.B])
			dTdt[a.A] -= flow
			dTdt[a.B] += flow
		}
		fSpSink := (m.temps[n] - m.temps[n+1]) / m.p.SpreaderR
		dTdt[n] -= fSpSink
		dTdt[n+1] += fSpSink
		dTdt[n+1] -= (m.temps[n+1] - m.p.Ambient) / m.p.SinkR
		for i := range m.temps {
			m.temps[i] += h * dTdt[i] / m.caps[i]
		}
	}
}

// SteadyState solves the network for the equilibrium temperatures under
// the given constant per-block power and installs them.  This implements
// the paper's warm start: "we assume that the processor has already been
// running for a long time ... until temperature converges".  Solutions
// are capped at the emergency limit (381 K), as the paper caps its warm-
// up.
func (m *Model) SteadyState(power []float64) {
	if len(power) != m.n {
		panic(fmt.Sprintf("thermal: SteadyState with %d powers, want %d blocks", len(power), m.n))
	}
	n := m.n
	size := n + 2
	stride := size + 1
	// G·T = P with ambient folded into the sink row: the conductance
	// structure is geometry-only and was assembled once in New; per call
	// only the right-hand side changes.
	copy(m.ssScratch, m.ssBase)
	a := m.ssRows
	for i := 0; i < size; i++ {
		a[i] = m.ssScratch[i*stride : (i+1)*stride]
	}
	for i := 0; i < n; i++ {
		a[i][size] = power[i]
	}

	solveInPlace(a)
	for i := 0; i < size; i++ {
		t := a[i][size]
		if t > m.p.EmergencyCap {
			t = m.p.EmergencyCap
		}
		m.temps[i] = t
	}
}

// solveInPlace performs Gaussian elimination with partial pivoting on an
// augmented matrix, leaving the solution in the last column.
func solveInPlace(a [][]float64) {
	size := len(a)
	for col := 0; col < size; col++ {
		pivot := col
		for r := col + 1; r < size; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-18 {
			continue // singular row; leave zero
		}
		inv := 1 / a[col][col]
		for r := 0; r < size; r++ {
			if r == col {
				continue
			}
			factor := a[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= size; c++ {
				a[r][c] -= factor * a[col][c]
			}
		}
	}
	for i := 0; i < size; i++ {
		if math.Abs(a[i][i]) > 1e-18 {
			a[i][size] /= a[i][i]
		}
	}
}
