package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/floorplan"
)

func model() *Model {
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	return New(fp, DefaultParams())
}

func TestStartsAtAmbient(t *testing.T) {
	m := model()
	for i := 0; i < m.Blocks(); i++ {
		if m.Temp(i) != m.Ambient() {
			t.Fatalf("block %d starts at %v", i, m.Temp(i))
		}
	}
	if m.SpreaderTemp() != m.Ambient() || m.SinkTemp() != m.Ambient() {
		t.Fatal("package nodes not at ambient")
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	m := model()
	p := make([]float64, m.Blocks())
	m.Step(p, 1e-3)
	for i := 0; i < m.Blocks(); i++ {
		if math.Abs(m.Rise(i)) > 1e-9 {
			t.Fatalf("block %d drifted to %v with zero power", i, m.Temp(i))
		}
	}
	m.SteadyState(p)
	for i := 0; i < m.Blocks(); i++ {
		if math.Abs(m.Rise(i)) > 1e-6 {
			t.Fatalf("steady state with zero power: block %d at %v", i, m.Temp(i))
		}
	}
}

func TestSteadyStateEnergyBalance(t *testing.T) {
	// At steady state the total power must flow to ambient through the
	// sink: T_sink - T_amb = P_total * SinkR.
	m := model()
	p := make([]float64, m.Blocks())
	total := 0.0
	for i := range p {
		p[i] = 0.5 + float64(i%3)
		total += p[i]
	}
	m.SteadyState(p)
	want := total * DefaultParams().SinkR
	got := m.SinkTemp() - m.Ambient()
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("sink rise = %v, want %v (energy conservation)", got, want)
	}
	// Spreader must be hotter than sink, blocks hotter than spreader on
	// average.
	if m.SpreaderTemp() <= m.SinkTemp() {
		t.Fatal("spreader not hotter than sink")
	}
}

func TestHotterBlockForMorePower(t *testing.T) {
	m := model()
	p := make([]float64, m.Blocks())
	p[0] = 1
	p[1] = 5 // same chip, one block hotter
	m.SteadyState(p)
	if m.Temp(1) <= m.Temp(0) {
		t.Fatalf("block with 5x power not hotter: %v vs %v", m.Temp(1), m.Temp(0))
	}
}

func TestDensityNotJustPowerMatters(t *testing.T) {
	// Equal power into a small block (RAT) and a big one (UL2): the small
	// block must get hotter (higher power density).
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	m := New(fp, DefaultParams())
	p := make([]float64, m.Blocks())
	rat, ul2 := fp.Index(floorplan.RAT), fp.Index(floorplan.UL2)
	p[rat] = 3
	p[ul2] = 3
	m.SteadyState(p)
	if m.Temp(rat) <= m.Temp(ul2) {
		t.Fatalf("dense block not hotter: RAT %v vs UL2 %v", m.Temp(rat), m.Temp(ul2))
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	m1, m2 := model(), model()
	p := make([]float64, m1.Blocks())
	for i := range p {
		p[i] = 1.0
	}
	m1.SteadyState(p)
	// Transient integration for many block time constants must approach
	// the same solution for the block-spreader subsystem.  (The sink has
	// a ~minute-scale constant, so pin spreader/sink at the steady state
	// and let the blocks settle.)
	blocks := make([]float64, m2.Blocks())
	for i := range blocks {
		blocks[i] = m2.Ambient()
	}
	m2.SetTemps(blocks, m1.SpreaderTemp(), m1.SinkTemp())
	for s := 0; s < 2000; s++ {
		m2.Step(p, 1e-3)
	}
	for i := 0; i < m1.Blocks(); i++ {
		if d := math.Abs(m1.Temp(i) - m2.Temp(i)); d > 0.5 {
			t.Fatalf("block %d: transient %.2f vs steady %.2f", i, m2.Temp(i), m1.Temp(i))
		}
	}
}

func TestThermalInertia(t *testing.T) {
	// One short step must move a block only partway to equilibrium.
	m := model()
	p := make([]float64, m.Blocks())
	p[0] = 5
	eq := model()
	eq.SteadyState(p)
	m.Step(p, 1e-4)
	if m.Temp(0) >= eq.Temp(0) {
		t.Fatal("no thermal inertia: single step reached equilibrium")
	}
	if m.Temp(0) <= m.Ambient() {
		t.Fatal("block did not heat at all")
	}
}

func TestEmergencyCapApplied(t *testing.T) {
	m := model()
	p := make([]float64, m.Blocks())
	p[0] = 10000 // absurd power
	m.SteadyState(p)
	if m.Temp(0) > DefaultParams().EmergencyCap+1e-9 {
		t.Fatalf("steady state %v exceeds the 381 K emergency cap", m.Temp(0))
	}
}

func TestLateralCoupling(t *testing.T) {
	// Heating ROB must warm its neighbour RAT more than the distant UL2
	// (per mm², both unpowered).
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	m := New(fp, DefaultParams())
	p := make([]float64, m.Blocks())
	p[fp.Index(floorplan.ROB)] = 8
	m.SteadyState(p)
	rat := m.Temp(fp.Index(floorplan.RAT))
	far := m.Temp(fp.Index("C3.IS"))
	if rat <= far {
		t.Fatalf("neighbour RAT (%v) not hotter than far block (%v)", rat, far)
	}
}

func TestSetTempsValidation(t *testing.T) {
	m := model()
	defer func() {
		if recover() == nil {
			t.Error("SetTemps with wrong length did not panic")
		}
	}()
	m.SetTemps([]float64{1, 2, 3}, 45, 45)
}

func TestStepValidation(t *testing.T) {
	m := model()
	defer func() {
		if recover() == nil {
			t.Error("Step with wrong power length did not panic")
		}
	}()
	m.Step([]float64{1}, 1e-3)
}

func TestSteadyStateValidation(t *testing.T) {
	m := model()
	defer func() {
		if recover() == nil {
			t.Error("SteadyState with wrong power length did not panic")
		}
	}()
	m.SteadyState([]float64{1})
}

// Property: steady-state temperatures are monotone in power — more power
// in any block cannot cool any other block.
func TestQuickMonotonePower(t *testing.T) {
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	f := func(blockSeed uint8, extra uint8) bool {
		m1 := New(fp, DefaultParams())
		m2 := New(fp, DefaultParams())
		p := make([]float64, m1.Blocks())
		for i := range p {
			p[i] = 1
		}
		m1.SteadyState(p)
		i := int(blockSeed) % len(p)
		p[i] += 0.1 + float64(extra)/64
		m2.SteadyState(p)
		for j := 0; j < m1.Blocks(); j++ {
			if m2.Temp(j) < m1.Temp(j)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: rises scale linearly with power (the RC network is linear).
func TestQuickLinearity(t *testing.T) {
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	m1 := New(fp, DefaultParams())
	m2 := New(fp, DefaultParams())
	p1 := make([]float64, m1.Blocks())
	p2 := make([]float64, m1.Blocks())
	for i := range p1 {
		p1[i] = 0.5
		p2[i] = 1.0
	}
	m1.SteadyState(p1)
	m2.SteadyState(p2)
	for i := 0; i < m1.Blocks(); i++ {
		r1, r2 := m1.Rise(i), m2.Rise(i)
		if r1 > 1e-9 && math.Abs(r2/r1-2) > 1e-6 {
			t.Fatalf("block %d: rises %v, %v not linear", i, r1, r2)
		}
	}
}

// A degenerate parameter set (near-zero thermal capacitance drives the
// stability time constant toward zero) must not explode the Step
// subdivision loop: substeps are capped at maxSubsteps.
func TestStepDegenerateTauIsBounded(t *testing.T) {
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	p := DefaultParams()
	p.CapPerMM2 = 1e-30 // minTau ~ 1e-29 s: uncapped, 1 ms would need ~1e25 substeps
	m := New(fp, p)
	power := make([]float64, m.Blocks())
	for i := range power {
		power[i] = 1.0
	}
	done := make(chan struct{})
	go func() {
		m.Step(power, 1e-3)
		close(done)
	}()
	select {
	case <-done:
		// The integration is necessarily inaccurate this far past the
		// stability bound; the cap only guarantees the loop terminates.
	case <-time.After(2 * time.Minute):
		t.Fatal("Step did not return: substep cap not applied")
	}
}

// The cap must leave the calibrated regime untouched: at DefaultParams a
// full 1 ms interval subdivides far below maxSubsteps.
func TestStepDefaultParamsFarFromCap(t *testing.T) {
	fp := floorplan.New(floorplan.Config{TCBanks: 2, Clusters: 4})
	m := New(fp, DefaultParams())
	steps := int(1e-3/(m.minTau/3)) + 1
	if steps >= maxSubsteps/100 {
		t.Fatalf("default-parameter substeps %d too close to cap %d", steps, maxSubsteps)
	}
}
