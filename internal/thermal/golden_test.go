package thermal

import (
	"flag"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/goldentest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

func allTemps(m *Model) []float64 {
	out := m.Temps()
	return append(out, m.SpreaderTemp(), m.SinkTemp())
}

// TestGoldenStepSteadyState pins the exact bits of the RC network's
// trajectory: a steady-state warm start followed by a sequence of Step
// calls (full and fractional intervals) under varying power.
func TestGoldenStepSteadyState(t *testing.T) {
	fp := floorplan.New(floorplan.Config{TCBanks: 3, Distributed: true, Partitions: 2, Clusters: 4})
	m := New(fp, DefaultParams())
	n := m.Blocks()
	power := make([]float64, n)
	for i := range power {
		power[i] = 0.3 + 0.07*float64(i%11)
	}
	m.SteadyState(power)
	got := map[string][]string{"steady": goldentest.Vec(allTemps(m))}
	for s := 0; s < 5; s++ {
		for i := range power {
			power[i] = 0.25 + 0.06*float64((i+3*s)%13)
		}
		dt := 1e-3
		if s == 4 {
			dt = 0.37e-3 // short final interval
		}
		m.Step(power, dt)
		got[fmt.Sprintf("step%d", s)] = goldentest.Vec(allTemps(m))
	}
	goldentest.Check(t, filepath.Join("testdata", "golden_trajectory.json"), got, *updateGolden)
}
