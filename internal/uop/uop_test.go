package uop

import "testing"

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		IntALU: "IntALU", IntMul: "IntMul", IntDiv: "IntDiv",
		FPAdd: "FPAdd", FPMul: "FPMul", FPDiv: "FPDiv",
		Load: "Load", Store: "Store", Branch: "Branch", Copy: "Copy",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Class(200).String(); got != "Class(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestClassPredicates(t *testing.T) {
	if !Load.IsMem() || !Store.IsMem() {
		t.Error("Load/Store must be memory classes")
	}
	if IntALU.IsMem() || Branch.IsMem() || Copy.IsMem() {
		t.Error("non-memory class reported as memory")
	}
	for _, c := range []Class{FPAdd, FPMul, FPDiv} {
		if !c.IsFP() {
			t.Errorf("%v must be FP", c)
		}
		if c.IsInt() {
			t.Errorf("%v must not be Int", c)
		}
	}
	for _, c := range []Class{IntALU, IntMul, IntDiv, Branch} {
		if !c.IsInt() {
			t.Errorf("%v must be Int", c)
		}
		if c.IsFP() {
			t.Errorf("%v must not be FP", c)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if c.Latency() < 1 {
			t.Errorf("%v latency %d < 1", c, c.Latency())
		}
	}
	if IntDiv.Latency() <= IntMul.Latency() {
		t.Error("IntDiv must be slower than IntMul")
	}
	if FPDiv.Latency() <= FPMul.Latency() {
		t.Error("FPDiv must be slower than FPMul")
	}
}

func TestRegisterSpaces(t *testing.T) {
	if NumLogicalRegs != NumIntRegs+NumFPRegs {
		t.Fatal("register space sizes inconsistent")
	}
	if IsFPReg(0) || IsFPReg(NumIntRegs-1) {
		t.Error("integer registers classified as FP")
	}
	if !IsFPReg(NumIntRegs) || !IsFPReg(NumLogicalRegs-1) {
		t.Error("FP registers not classified as FP")
	}
}

func TestSources(t *testing.T) {
	u := MicroOp{Src1: 3, Src2: RegNone}
	srcs, n := u.Sources()
	if n != 1 || srcs[0] != 3 {
		t.Errorf("Sources() = %v, %d; want [3], 1", srcs[:n], n)
	}
	u = MicroOp{Src1: RegNone, Src2: RegNone}
	if _, n := u.Sources(); n != 0 {
		t.Errorf("Sources() on empty op returned %d", n)
	}
	u = MicroOp{Src1: 1, Src2: 17, Dst: RegNone}
	srcs, n = u.Sources()
	if n != 2 || srcs[0] != 1 || srcs[1] != 17 {
		t.Errorf("Sources() = %v, %d", srcs[:n], n)
	}
	if u.HasDst() {
		t.Error("HasDst true for op without destination")
	}
	u.Dst = 5
	if !u.HasDst() {
		t.Error("HasDst false for op with destination")
	}
}
