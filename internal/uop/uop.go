// Package uop defines the micro-operation model used throughout the
// simulator.
//
// The simulated machine is a clustered IA32-like microarchitecture whose
// frontend reads macro-instructions, translates them into micro-ops and
// stores them in a trace cache (see the paper, Section 2).  This package
// models only what the timing, power and thermal models need: the op class,
// the logical registers read and written, memory addresses, and branch
// behaviour.  Macro-instruction decoding itself is abstracted behind the
// trace abstraction in package workload.
package uop

import "fmt"

// Class enumerates micro-op classes.  Each class maps to one functional
// unit type and one issue queue in the backend.
type Class uint8

// Micro-op classes.  Copy is generated internally by the rename stage to
// move register values between clusters; it never appears in a program
// trace.
const (
	IntALU     Class = iota // single-cycle integer ALU op
	IntMul                  // pipelined integer multiply
	IntDiv                  // unpipelined integer divide
	FPAdd                   // floating-point add/sub/convert
	FPMul                   // floating-point multiply
	FPDiv                   // unpipelined floating-point divide
	Load                    // memory load
	Store                   // memory store
	Branch                  // conditional or indirect branch
	Copy                    // inter-cluster register copy (internal)
	NumClasses              // number of classes; not a real class
)

var classNames = [NumClasses]string{
	"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv",
	"Load", "Store", "Branch", "Copy",
}

// String returns the mnemonic name of the class.
func (c Class) String() string {
	if c < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsFP reports whether the class executes on the floating-point unit.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// IsInt reports whether the class executes on the integer unit.
func (c Class) IsInt() bool {
	return c == IntALU || c == IntMul || c == IntDiv || c == Branch
}

// Latency returns the execution latency of the class in cycles.  The values
// are typical for a deeply pipelined high-frequency design (the paper
// assumes a 10 GHz processor at 65 nm).
func (c Class) Latency() int {
	switch c {
	case IntALU, Branch:
		return 1
	case IntMul:
		return 4
	case IntDiv:
		return 20
	case FPAdd:
		return 4
	case FPMul:
		return 6
	case FPDiv:
		return 24
	case Load:
		return 1 // address generation; cache latency is added separately
	case Store:
		return 1 // address generation; data is written at commit
	case Copy:
		return 1 // register-file read; link traversal is added separately
	}
	return 1
}

// Logical register file layout.  The IA32 architectural state is modelled
// as a flat space of logical registers: the first NumIntRegs name integer
// registers (including flags and address registers), the rest name
// floating-point/SSE registers.
const (
	NumIntRegs     = 16
	NumFPRegs      = 16
	NumLogicalRegs = NumIntRegs + NumFPRegs
)

// RegNone marks an absent register operand.
const RegNone int8 = -1

// IsFPReg reports whether logical register r belongs to the floating-point
// register space.
func IsFPReg(r int8) bool { return r >= NumIntRegs }

// MicroOp is one micro-operation flowing through the pipeline.
//
// Register operands are logical register indices or RegNone.  Addr is the
// effective data address for loads and stores.  Branch micro-ops carry
// their resolved direction and whether the (simulated) branch predictor
// mispredicted them; the simulator charges a pipeline redirect when a
// mispredicted branch executes.
type MicroOp struct {
	Seq      uint64 // program order sequence number, dense from 0
	PC       uint64 // micro-op PC (trace-constructed)
	Class    Class
	Src1     int8 // first source logical register or RegNone
	Src2     int8 // second source logical register or RegNone
	Dst      int8 // destination logical register or RegNone
	Addr     uint64
	Taken    bool // branch resolved taken
	Mispred  bool // branch was mispredicted at fetch
	TraceEnd bool // last micro-op of its trace-cache line
}

// HasDst reports whether the op writes a logical register.
func (u *MicroOp) HasDst() bool { return u.Dst != RegNone }

// Sources returns the op's source registers, skipping RegNone entries.
func (u *MicroOp) Sources() (srcs [2]int8, n int) {
	if u.Src1 != RegNone {
		srcs[n] = u.Src1
		n++
	}
	if u.Src2 != RegNone {
		srcs[n] = u.Src2
		n++
	}
	return srcs, n
}

// Trace is a trace-cache line: a short sequence of consecutive micro-ops
// identified by the address of its first instruction combined with the
// directions of its internal branches (the paper's "branch bits plus the PC
// of the first instruction of the trace").
type Trace struct {
	ID  uint64 // trace identifier (start PC ⊕ branch-bit field)
	Ops []MicroOp
}

// MaxTraceOps is the maximum number of micro-ops per trace-cache line.
// The machine fetches up to one trace line per cycle and dispatches up to
// 8 micro-ops per cycle (Table 1), so lines hold at most 8 micro-ops.
const MaxTraceOps = 8
