package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/workload"
)

func TestDTMThrottlesHotRuns(t *testing.T) {
	// With an artificially low trigger, the controller must engage,
	// reduce the peak temperature, and cost performance — the emergency
	// behaviour the paper's techniques aim to avoid.
	prof, _ := workload.ByName("gzip")
	opt := quick()
	base := Run(core.DefaultConfig(), prof, opt)

	cfg := dtm.DefaultConfig()
	cfg.TriggerC = base.Temps.AbsMax(nil) + base.Temps.Ambient() - 10 // well below the observed peak
	cfg.ReleaseC = cfg.TriggerC - 4
	optDTM := opt
	optDTM.DTM = &cfg
	dtmRes := Run(core.DefaultConfig(), prof, optDTM)

	if dtmRes.DTMEngagements == 0 {
		t.Fatal("controller never engaged below-peak trigger")
	}
	if dtmRes.DTMMinDuty >= 8 {
		t.Fatal("duty cycle never reduced")
	}
	if dtmRes.Temps.AbsMax(nil) >= base.Temps.AbsMax(nil) {
		t.Errorf("DTM did not reduce the peak: %.1f vs %.1f",
			dtmRes.Temps.AbsMax(nil), base.Temps.AbsMax(nil))
	}
	if dtmRes.MeasCycles <= base.MeasCycles {
		t.Errorf("throttling was free: %d vs %d cycles", dtmRes.MeasCycles, base.MeasCycles)
	}
}

func TestDTMIdleWhenCool(t *testing.T) {
	// With the paper's real 381 K trigger, a calibrated run never
	// reaches an emergency and the controller must stay out of the way.
	prof, _ := workload.ByName("eon")
	opt := quick()
	cfg := dtm.DefaultConfig()
	opt.DTM = &cfg
	r := Run(core.DefaultConfig(), prof, opt)
	if r.DTMEngagements != 0 {
		t.Errorf("controller engaged %d times below the emergency limit", r.DTMEngagements)
	}
}

func TestBranchPredictorIntegration(t *testing.T) {
	// With the gshare predictor enabled, mispredictions come from real
	// prediction errors; the rate must be plausible (the synthetic
	// streams have partly random outcomes) and the run must complete.
	prof, _ := workload.ByName("vpr")
	cfg := core.DefaultConfig()
	cfg.UseBranchPredictor = true
	r := Run(cfg, prof, quick())
	if r.MeasOps == 0 {
		t.Fatal("predictor run did not measure")
	}
	if r.Stats.Mispredicts == 0 {
		t.Error("gshare predicted a partly-random stream perfectly")
	}
}

func TestBranchPredictorVsProfileRates(t *testing.T) {
	// Both misprediction sources must yield the same order of magnitude
	// of redirects — the profile rates are calibrated stand-ins.
	prof, _ := workload.ByName("gzip")
	base := Run(core.DefaultConfig(), prof, quick())
	cfg := core.DefaultConfig()
	cfg.UseBranchPredictor = true
	pred := Run(cfg, prof, quick())
	lo, hi := base.Stats.Mispredicts/8, base.Stats.Mispredicts*8
	if pred.Stats.Mispredicts < lo || pred.Stats.Mispredicts > hi {
		t.Errorf("predictor mispredicts %d wildly off profile-rate %d",
			pred.Stats.Mispredicts, base.Stats.Mispredicts)
	}
}
