// Package sim drives a full power/thermal simulation of one processor
// configuration on one benchmark, following the paper's methodology (§4):
//
//  1. A profiling phase measures the nominal average dynamic power per
//     block (the paper uses 50M instructions).
//  2. The thermal model is warm-started at the steady state of nominal
//     power plus converged leakage, capped at the 381 K emergency limit.
//  3. The measurement phase then runs interval by interval: every
//     IntervalCycles the per-block power of the interval is fed to the RC
//     network, temperatures advance by the paper-equivalent interval time,
//     the per-bank trace-cache statistics reach the reconfiguration logic
//     (bank hopping rotation and/or the thermal-aware mapping function),
//     and the temperature metrics are sampled.
//
// The paper's 10M-cycle interval at 10 GHz is 1 ms of thermal time; the
// scaled default interval keeps that thermal step so heating rates versus
// hop periods are preserved (DESIGN.md §6).
package sim

import (
	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Options controls one simulation run.
type Options struct {
	// WarmupOps is the length of the profiling phase in micro-ops.
	WarmupOps uint64
	// MeasureOps is the length of the measured phase in micro-ops.
	MeasureOps uint64
	// IntervalCycles is the reconfiguration/thermal interval (scaled
	// stand-in for the paper's 10M cycles).
	IntervalCycles uint64
	// IntervalSeconds is the thermal time per interval (the paper's
	// interval is 1 ms at 10 GHz).
	IntervalSeconds float64
	// Thermal overrides the default RC parameters when non-nil.
	Thermal *thermal.Params
	// Power overrides the default energy table when non-nil.
	Power *power.Constants
	// DTM enables the dynamic thermal management controller (fetch
	// toggling at thermal emergencies) when non-nil.
	DTM *dtm.Config
}

// DefaultOptions returns the scaled defaults used by the experiments.
func DefaultOptions() Options {
	return Options{
		WarmupOps:       120_000,
		MeasureOps:      300_000,
		IntervalCycles:  100_000,
		IntervalSeconds: 1e-3,
	}
}

// Result is the outcome of one run.
type Result struct {
	Config     core.Config
	Bench      string
	Stats      core.Stats // full-run pipeline statistics
	WarmCycles uint64     // cycles spent in the profiling phase
	MeasCycles uint64     // cycles of the measured phase
	MeasOps    uint64     // micro-ops committed in the measured phase

	Floorplan *floorplan.Floorplan
	Temps     *metrics.Series // per-interval block temperatures
	AvgPower  []float64       // measured-phase average per-block power (W)
	Nominal   []float64       // profiling-phase nominal dynamic power (W)

	TCHitRate float64
	TCHops    uint64

	// DTM statistics (zero unless Options.DTM was set).
	DTMEngagements uint64
	DTMThrottled   uint64
	DTMMinDuty     int
}

// IPC returns the measured-phase IPC.
func (r *Result) IPC() float64 {
	if r.MeasCycles == 0 {
		return 0
	}
	return float64(r.MeasOps) / float64(r.MeasCycles)
}

// Interval is the per-interval snapshot handed to a Hook at the end of
// every measured interval, after the thermal step and the end-of-interval
// reconfiguration (bank hop / mapping re-bias / DTM update) have run.
type Interval struct {
	// Index counts measured intervals from 0.
	Index int
	// DeltaCycles/DeltaOps are the cycles and committed micro-ops of this
	// interval alone; Cycles/Ops are cumulative over the measured phase.
	DeltaCycles uint64
	DeltaOps    uint64
	Cycles      uint64
	Ops         uint64
	// Temps are the per-block temperatures (°C) after the thermal step;
	// Power is the per-block dynamic+leakage power (W) fed to it.  Both
	// are copies owned by the hook.
	Temps []float64
	Power []float64
	// Hops is the cumulative trace-cache bank-hop count.
	Hops uint64
	// DutyNum/DutyDen is the fetch duty cycle set by the DTM controller
	// for the next interval (DutyDen == 0 when DTM is disabled), and
	// Throttled reports whether the controller is currently engaged.
	DutyNum   int
	DutyDen   int
	Throttled bool
}

// Hook observes each measured interval.  Returning a non-nil error aborts
// the run: the partially filled Result and the error are returned to the
// caller.  This is the primitive the public pkg/frontendsim Engine builds
// its context cancellation and streaming observers on.
type Hook func(Interval) error

// Run simulates one configuration on one benchmark profile.  It is a thin
// adapter over RunHooked with no hook installed (a nil hook never aborts).
func Run(cfg core.Config, prof workload.Profile, opt Options) *Result {
	res, _ := RunHooked(cfg, prof, opt, nil)
	return res
}

// RunHooked simulates one configuration on one benchmark profile, calling
// hook (when non-nil) at the end of every measured interval.
func RunHooked(cfg core.Config, prof workload.Profile, opt Options, hook Hook) (*Result, error) {
	if opt.IntervalCycles == 0 {
		opt = DefaultOptions()
	}
	tp := thermal.DefaultParams()
	if opt.Thermal != nil {
		tp = *opt.Thermal
	}
	pk := power.DefaultConstants()
	if opt.Power != nil {
		pk = *opt.Power
	}

	fp := floorplan.New(floorplan.Config{
		TCBanks:     cfg.TC.Banks,
		Distributed: cfg.Distributed(),
		Partitions:  cfg.Frontends,
		Clusters:    cfg.Clusters,
	})
	pm := power.New(cfg, fp, pk)
	tm := thermal.New(fp, tp)

	total := opt.WarmupOps + opt.MeasureOps
	gen := workload.NewGenerator(prof, total)
	proc := core.New(cfg, gen)

	res := &Result{Config: cfg, Bench: prof.Name, Floorplan: fp}

	// Scratch owned by the loop: two cumulative Activity snapshots that
	// flip roles each interval, one delta, and the per-block power and
	// temperature vectors.  The steady-state pipeline below allocates
	// nothing per interval.
	nBlocks := len(fp.Blocks)
	var cur, prev, delta core.Activity
	dyn := make([]float64, nBlocks)
	leak := make([]float64, nBlocks)
	p := make([]float64, nBlocks)
	temps := make([]float64, nBlocks)
	enabled := make([]bool, cfg.TC.Banks)
	bankT := make([]float64, cfg.TC.Banks)

	// ---- Phase 1: profiling for nominal power (hopping rotates, the
	// mapping stays balanced: there are no converged temperatures yet).
	warmupTarget := uint64(float64(opt.WarmupOps) * prof.LengthScaleOrOne())
	start := proc.Activity()
	tcEnabledInto(proc, enabled)
	// Finer chunks than the full interval so short benchmark slices are
	// not consumed entirely inside the profiling phase; hopping still
	// rotates once per full interval's worth of cycles.
	chunk := opt.IntervalCycles / 8
	if chunk == 0 {
		chunk = 1
	}
	sinceHop := uint64(0)
	for !proc.Done() && proc.Stats.Committed < warmupTarget {
		proc.RunCycles(chunk)
		sinceHop += chunk
		if sinceHop >= opt.IntervalCycles {
			proc.TraceCache().Reconfigure(nil)
			sinceHop = 0
		}
		tcEnabledInto(proc, enabled)
	}
	warmAct := proc.Activity().Sub(start)
	res.WarmCycles = warmAct.Cycles
	nominal := pm.Dynamic(warmAct, enabled)
	pm.SetNominal(nominal)
	res.Nominal = nominal

	// ---- Phase 2: steady-state warm start with leakage convergence.
	temps = converge(tm, pm, nominal, enabled, temps)

	var controller *dtm.Controller
	if opt.DTM != nil {
		controller = dtm.New(*opt.DTM)
	}

	// ---- Phase 3: measurement.
	series := metrics.NewSeries(fp.Names(), areas(fp), tm.Ambient())
	avgPower := make([]float64, len(fp.Blocks))
	intervals := 0
	proc.ActivityInto(&prev)
	tcIdx := make([]int, cfg.TC.Banks)
	for b := range tcIdx {
		tcIdx[b] = fp.Index(floorplan.TCBank(b))
	}
	measStartCycles := proc.Cycle()
	measStartOps := proc.Stats.Committed
	finalize := func() {
		if intervals > 0 {
			for i := range avgPower {
				avgPower[i] /= float64(intervals)
			}
		}
		res.Stats = proc.Stats
		res.MeasCycles = proc.Cycle() - measStartCycles
		res.MeasOps = proc.Stats.Committed - measStartOps
		res.Temps = series
		res.AvgPower = avgPower
		res.TCHitRate = proc.TCHitRate()
		res.TCHops = proc.TraceCache().Stats.Hops
		if controller != nil {
			res.DTMEngagements = controller.Engagements
			res.DTMThrottled = controller.ThrottledSteps
			res.DTMMinDuty = controller.MinDuty
		}
	}
	for !proc.Done() {
		proc.RunCycles(opt.IntervalCycles)
		proc.ActivityInto(&cur)
		cur.SubInto(&prev, &delta)
		cur, prev = prev, cur // flip: prev now holds this interval's snapshot
		if delta.Cycles == 0 {
			break
		}
		tcEnabledInto(proc, enabled)
		pm.DynamicInto(&delta, enabled, dyn)
		pm.LeakageInto(temps, enabled, leak)
		power.AddInto(p, dyn, leak)
		// Scale the thermal step when the final interval is short.
		dt := opt.IntervalSeconds * float64(delta.Cycles) / float64(opt.IntervalCycles)
		tm.Step(p, dt)
		tm.TempsInto(temps)
		series.Add(temps)
		for i, w := range p {
			avgPower[i] += w
		}
		intervals++
		// End-of-interval reconfiguration: hop the gated bank and/or
		// re-bias the mapping from the per-bank sensor temperatures.
		proc.TraceCache().Reconfigure(bankTempsInto(tcIdx, temps, bankT))
		var dutyNum, dutyDen int
		var throttled bool
		if controller != nil {
			peak := temps[0]
			for _, tv := range temps {
				if tv > peak {
					peak = tv
				}
			}
			dutyNum, dutyDen = controller.Update(peak)
			proc.SetFetchGate(dutyNum, dutyDen)
			throttled = controller.Throttled()
		}
		if hook != nil {
			iv := Interval{
				Index:       intervals - 1,
				DeltaCycles: delta.Cycles,
				DeltaOps:    delta.Committed,
				Cycles:      proc.Cycle() - measStartCycles,
				Ops:         proc.Stats.Committed - measStartOps,
				Temps:       append([]float64(nil), temps...),
				Power:       append([]float64(nil), p...),
				Hops:        proc.TraceCache().Stats.Hops,
				DutyNum:     dutyNum,
				DutyDen:     dutyDen,
				Throttled:   throttled,
			}
			if err := hook(iv); err != nil {
				finalize()
				return res, err
			}
		}
	}
	finalize()
	return res, nil
}

// converge iterates steady state <-> leakage until the temperatures
// settle (the paper: "until temperature converges or reaches the
// emergency limit").  temps is caller scratch; the converged block
// temperatures are returned in it.
func converge(tm *thermal.Model, pm *power.Model, nominal []float64, enabled []bool, temps []float64) []float64 {
	for i := range temps {
		temps[i] = tm.Ambient()
	}
	leak := make([]float64, len(temps))
	p := make([]float64, len(temps))
	next := make([]float64, len(temps))
	for iter := 0; iter < 40; iter++ {
		power.AddInto(p, nominal, pm.LeakageInto(temps, enabled, leak))
		tm.SteadyState(p)
		tm.TempsInto(next)
		maxD := 0.0
		for i := range next {
			d := next[i] - temps[i]
			if d < 0 {
				d = -d
			}
			if d > maxD {
				maxD = d
			}
		}
		temps, next = next, temps
		if maxD < 0.01 {
			break
		}
	}
	return temps
}

// tcEnabledInto snapshots which trace-cache banks are powered.
func tcEnabledInto(proc *core.Processor, out []bool) {
	for b := range out {
		out[b] = proc.TraceCache().Enabled(b)
	}
}

// bankTempsInto extracts per-bank temperatures (the paper's per-bank
// thermal sensors, §3.2.2) using the precomputed bank block indices.
func bankTempsInto(tcIdx []int, temps, out []float64) []float64 {
	for b, i := range tcIdx {
		if i >= 0 {
			out[b] = temps[i]
		} else {
			out[b] = 0
		}
	}
	return out
}

func areas(fp *floorplan.Floorplan) []float64 {
	out := make([]float64, len(fp.Blocks))
	for i, b := range fp.Blocks {
		out[i] = b.Area()
	}
	return out
}
