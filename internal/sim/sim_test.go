package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/workload"
)

// quick returns short options used by the tests.
func quick() Options {
	o := DefaultOptions()
	o.WarmupOps = 40_000
	o.MeasureOps = 100_000
	return o
}

func runQuick(t *testing.T, cfg core.Config, bench string) *Result {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %s", bench)
	}
	return Run(cfg, prof, quick())
}

func TestRunProducesIntervals(t *testing.T) {
	r := runQuick(t, core.DefaultConfig(), "gzip")
	if r.Temps.Intervals() < 2 {
		t.Fatalf("only %d intervals recorded", r.Temps.Intervals())
	}
	if r.MeasCycles == 0 || r.MeasOps == 0 {
		t.Fatal("measured phase empty")
	}
	if r.IPC() <= 0 || r.IPC() > 8 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.WarmCycles == 0 {
		t.Fatal("no warmup cycles")
	}
}

func TestTemperaturesPhysical(t *testing.T) {
	r := runQuick(t, core.DefaultConfig(), "gzip")
	for i := 0; i < r.Temps.Intervals(); i++ {
		for b, temp := range r.Temps.PerInterval(i) {
			if temp < r.Temps.Ambient()-1 || temp > 160 {
				t.Fatalf("block %s interval %d at %v°C", r.Temps.Names()[b], i, temp)
			}
		}
	}
}

func TestWarmStartNotCold(t *testing.T) {
	// The paper warm-starts at steady state: the first measured interval
	// must already be well above ambient.
	r := runQuick(t, core.DefaultConfig(), "gzip")
	first := r.Temps.PerInterval(0)
	max := 0.0
	for _, temp := range first {
		if temp > max {
			max = temp
		}
	}
	if max < r.Temps.Ambient()+10 {
		t.Fatalf("first interval peak %v°C: thermal model started cold", max)
	}
}

func TestFrontendIsHot(t *testing.T) {
	// Figure 1: the frontend exhibits some of the highest temperatures;
	// the UL2 is the coolest unit.
	r := runQuick(t, core.DefaultConfig(), "gzip")
	fe := r.Temps.AbsMax(floorplan.IsFrontend)
	proc := r.Temps.AbsMax(nil)
	ul2 := r.Temps.AbsMax(func(n string) bool { return n == floorplan.UL2 })
	if fe < proc*0.95 {
		t.Errorf("frontend peak %v not among the highest (processor %v)", fe, proc)
	}
	if ul2 >= fe {
		t.Errorf("UL2 (%v) hotter than frontend (%v)", ul2, fe)
	}
	if ul2 >= r.Temps.AbsMax(floorplan.IsBackend) {
		t.Errorf("UL2 (%v) hotter than backend", ul2)
	}
}

func TestNominalPowerPositive(t *testing.T) {
	r := runQuick(t, core.DefaultConfig(), "gzip")
	for i, w := range r.Nominal {
		if w <= 0 {
			t.Errorf("nominal power of %s = %v", r.Floorplan.Blocks[i].Name, w)
		}
	}
	for i, w := range r.AvgPower {
		if w < 0 || math.IsNaN(w) {
			t.Errorf("avg power of %s = %v", r.Floorplan.Blocks[i].Name, w)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := runQuick(t, core.DefaultConfig(), "vpr")
	b := runQuick(t, core.DefaultConfig(), "vpr")
	if a.MeasCycles != b.MeasCycles || a.Stats != b.Stats {
		t.Fatal("simulation not deterministic")
	}
	for i := 0; i < a.Temps.Intervals(); i++ {
		ta, tb := a.Temps.PerInterval(i), b.Temps.PerInterval(i)
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("temperatures diverge at interval %d block %d", i, j)
			}
		}
	}
}

func TestHoppingRotatesDuringRun(t *testing.T) {
	r := runQuick(t, core.DefaultConfig().WithBankHopping(), "gzip")
	if r.TCHops < 3 {
		t.Fatalf("only %d hops over the run", r.TCHops)
	}
	// §4.2: the hit ratio loss from hopping is small.
	base := runQuick(t, core.DefaultConfig(), "gzip")
	if loss := base.TCHitRate - r.TCHitRate; loss > 0.05 {
		t.Errorf("hopping hit-rate loss %.3f too large", loss)
	}
}

func TestDistributedReducesROBAndRAT(t *testing.T) {
	// The headline §4.1 result, at test scale: both the reorder buffer
	// and rename table rises drop by a double-digit percentage.
	base := runQuick(t, core.DefaultConfig(), "gzip")
	dist := runQuick(t, core.DefaultConfig().WithDistributedFrontend(2), "gzip")
	for _, u := range []struct {
		name   string
		filter func(string) bool
	}{{"ROB", floorplan.IsROB}, {"RAT", floorplan.IsRAT}} {
		b := base.Temps.AbsMax(u.filter)
		d := dist.Temps.AbsMax(u.filter)
		red := (b - d) / b
		if red < 0.10 {
			t.Errorf("%s peak reduction %.1f%%, want >10%% (paper: >30%%)", u.name, red*100)
		}
	}
}

func TestHoppingReducesTCAverage(t *testing.T) {
	base := runQuick(t, core.DefaultConfig(), "gzip")
	hop := runQuick(t, core.DefaultConfig().WithBankHopping(), "gzip")
	b := base.Temps.Average(floorplan.IsTraceCache)
	h := hop.Temps.Average(floorplan.IsTraceCache)
	if red := (b - h) / b; red < 0.05 {
		t.Errorf("hopping TC average reduction %.1f%%, want >5%% (paper: 17%%)", red*100)
	}
}

func TestGatedBankCools(t *testing.T) {
	// With hopping, the coolest bank in any interval should be well below
	// the hottest (one bank is always off).
	r := runQuick(t, core.DefaultConfig().WithBankHopping(), "gzip")
	last := r.Temps.PerInterval(r.Temps.Intervals() - 1)
	var bankTemps []float64
	for b := 0; b < 3; b++ {
		if i := r.Floorplan.Index(floorplan.TCBank(b)); i >= 0 {
			bankTemps = append(bankTemps, last[i])
		}
	}
	min, max := bankTemps[0], bankTemps[0]
	for _, v := range bankTemps {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 1 {
		t.Errorf("bank temperatures all within %v°C; gating has no effect", max-min)
	}
}

func TestShortBenchmarkSliceRespected(t *testing.T) {
	// fma3d runs 30/200 of the standard slice; the run must still produce
	// a valid (shorter) measurement.
	prof, _ := workload.ByName("fma3d")
	r := Run(core.DefaultConfig(), prof, quick())
	if r.MeasOps == 0 {
		t.Fatal("no measured ops for short-slice benchmark")
	}
	full := uint64(float64(40_000+100_000) * 30 / 200)
	if r.Stats.Committed != full {
		t.Fatalf("committed %d, want %d", r.Stats.Committed, full)
	}
}

func TestZeroOptionsUseDefaults(t *testing.T) {
	prof, _ := workload.ByName("eon")
	prof.LengthScale = 0.05 // keep it quick
	r := Run(core.DefaultConfig(), prof, Options{})
	if r.Temps.Intervals() == 0 {
		t.Fatal("defaulted options produced no intervals")
	}
}
