package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// TestIntervalPipelineZeroAlloc pins the tentpole property of the
// scratch-buffer rewrite: one full interval of the power/thermal
// pipeline — activity snapshot + delta, dynamic power, leakage, power
// sum, thermal step, temperature copy — performs zero heap allocations
// in steady state.
func TestIntervalPipelineZeroAlloc(t *testing.T) {
	cfg := core.DefaultConfig().WithDistributedFrontend(2).WithBankHopping().WithBiasedMapping()
	prof, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	proc := core.New(cfg, workload.NewGenerator(prof, 500_000))
	fp := floorplan.New(floorplan.Config{
		TCBanks:     cfg.TC.Banks,
		Distributed: cfg.Distributed(),
		Partitions:  cfg.Frontends,
		Clusters:    cfg.Clusters,
	})
	pm := power.New(cfg, fp, power.DefaultConstants())
	tm := thermal.New(fp, thermal.DefaultParams())

	proc.RunCycles(30_000) // populate every structure

	n := len(fp.Blocks)
	var cur, prev, delta core.Activity
	proc.ActivityInto(&prev)
	dyn := make([]float64, n)
	leak := make([]float64, n)
	p := make([]float64, n)
	temps := tm.Temps()
	enabled := make([]bool, cfg.TC.Banks)
	for b := range enabled {
		enabled[b] = proc.TraceCache().Enabled(b)
	}
	pm.SetNominal(pm.DynamicInto(&prev, enabled, dyn))

	allocs := testing.AllocsPerRun(100, func() {
		proc.ActivityInto(&cur)
		cur.SubInto(&prev, &delta)
		cur, prev = prev, cur
		pm.DynamicInto(&delta, enabled, dyn)
		pm.LeakageInto(temps, enabled, leak)
		power.AddInto(p, dyn, leak)
		tm.Step(p, 1e-3)
		tm.TempsInto(temps)
	})
	if allocs != 0 {
		t.Errorf("interval pipeline allocates %.1f times per interval, want 0", allocs)
	}
}

// TestCycleLoopSteadyStateAllocs pins the cycle loop itself: once the
// in-flight structures reach steady state, advancing the machine
// thousands of cycles must not grow any of them.
func TestCycleLoopSteadyStateAllocs(t *testing.T) {
	cfg := core.DefaultConfig().WithDistributedFrontend(2).WithBankHopping()
	prof, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	proc := core.New(cfg, workload.NewGenerator(prof, 2_000_000))
	proc.RunCycles(50_000) // reach steady state

	allocs := testing.AllocsPerRun(20, func() {
		proc.RunCycles(2_000)
	})
	if allocs != 0 {
		t.Errorf("steady-state cycle loop allocates %.1f times per 2000 cycles, want 0", allocs)
	}
}
