package rob

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCentralizedInOrderCommit(t *testing.T) {
	r := New(1, 8)
	var refs []Ref
	for i := int32(0); i < 5; i++ {
		ref, ok := r.Alloc(0, i)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		refs = append(refs, ref)
	}
	// Complete out of order; commit must stay in order.
	r.Complete(refs[1])
	if out := r.Commit(8, nil); len(out) != 0 {
		t.Fatalf("committed %v before head ready", out)
	}
	r.Complete(refs[0])
	out := r.Commit(8, nil)
	if len(out) != 2 || out[0] != 0 || out[1] != 1 {
		t.Fatalf("committed %v, want [0 1]", out)
	}
	r.Complete(refs[3])
	if out := r.Commit(8, nil); len(out) != 0 {
		t.Fatalf("committed %v past incomplete entry 2", out)
	}
	r.Complete(refs[2])
	r.Complete(refs[4])
	out = r.Commit(8, nil)
	if len(out) != 3 || out[0] != 2 || out[2] != 4 {
		t.Fatalf("committed %v, want [2 3 4]", out)
	}
}

func TestCommitBandwidthLimit(t *testing.T) {
	r := New(1, 16)
	for i := int32(0); i < 10; i++ {
		ref, _ := r.Alloc(0, i)
		r.Complete(ref)
	}
	out := r.Commit(4, nil)
	if len(out) != 4 {
		t.Fatalf("committed %d, want 4 (bandwidth)", len(out))
	}
	out = r.Commit(4, out[:0])
	if len(out) != 4 || out[0] != 4 {
		t.Fatalf("second commit %v", out)
	}
}

func TestFullPartitionStallsAlloc(t *testing.T) {
	r := New(1, 2)
	r.Alloc(0, 0)
	r.Alloc(0, 1)
	if r.CanAlloc(0) {
		t.Fatal("CanAlloc true on full partition")
	}
	if _, ok := r.Alloc(0, 2); ok {
		t.Fatal("alloc succeeded on full partition")
	}
	if r.Stats.FullStall != 1 {
		t.Fatalf("FullStall = %d", r.Stats.FullStall)
	}
}

func TestDistributedFigure8Walk(t *testing.T) {
	// Reproduces the walk of Figure 8: two partitions, interleaved
	// program order, commit bandwidth 4.  Program order (partition):
	// I0(F0) I1(F1) I2(F1) I3(F0) I4(F0) I5(F0) ...
	// With I0..I2 and I4 ready but I3 not ready, exactly 3 commit.
	r := New(2, 8)
	seq := []struct {
		part  int
		ready bool
	}{
		{0, true},  // I0
		{1, true},  // I1
		{1, true},  // I2
		{0, false}, // I3 (not ready: commit must stop here)
		{0, true},  // I4
	}
	var refs []Ref
	for i, s := range seq {
		ref, ok := r.Alloc(s.part, int32(i))
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		refs = append(refs, ref)
	}
	for i, s := range seq {
		if s.ready {
			r.Complete(refs[i])
		}
	}
	out := r.Commit(4, nil)
	if len(out) != 3 || out[0] != 0 || out[1] != 1 || out[2] != 2 {
		t.Fatalf("committed %v, want [0 1 2]", out)
	}
	// Making I3 ready releases the rest.
	r.Complete(refs[3])
	out = r.Commit(4, nil)
	if len(out) != 2 || out[0] != 3 || out[1] != 4 {
		t.Fatalf("committed %v, want [3 4]", out)
	}
}

func TestDistributedProgramOrderProperty(t *testing.T) {
	// Random steering and completion order must still commit 0,1,2,...
	src := rng.New(99)
	r := New(2, 64)
	const n = 500
	var refs []Ref
	next := int32(0)
	committed := []int32{}
	pending := map[int]bool{}
	for len(committed) < n {
		// Randomly allocate if space, complete random pending, commit.
		if next < n && src.Bool(0.6) {
			p := src.Intn(2)
			if ref, ok := r.Alloc(p, next); ok {
				refs = append(refs, ref)
				pending[int(next)] = true
				next++
			}
		}
		if len(pending) > 0 && src.Bool(0.7) {
			// Complete a random pending instruction.
			k := src.Intn(len(pending))
			for id := range pending {
				if k == 0 {
					r.Complete(refs[id])
					delete(pending, id)
					break
				}
				k--
			}
		}
		committed = r.Commit(8, committed)
	}
	for i, id := range committed {
		if id != int32(i) {
			t.Fatalf("commit order broken at %d: got %d", i, id)
		}
	}
	if r.Occupancy() != 0 {
		t.Fatalf("ROB not empty at end: %d", r.Occupancy())
	}
}

func TestWalkReadsCounted(t *testing.T) {
	r := New(2, 8)
	ref, _ := r.Alloc(0, 0)
	r.Complete(ref)
	r.Commit(8, nil)
	if r.Stats.WalkReads == 0 {
		t.Fatal("walk reads not counted")
	}
	if r.Stats.Commits != 1 || r.Stats.Allocs != 1 || r.Stats.Completes != 1 {
		t.Fatalf("stats = %+v", r.Stats)
	}
}

func TestHead(t *testing.T) {
	r := New(2, 8)
	if _, ok := r.Head(); ok {
		t.Fatal("Head on empty ROB")
	}
	r.Alloc(1, 42)
	if id, ok := r.Head(); !ok || id != 42 {
		t.Fatalf("Head = %d,%v", id, ok)
	}
}

func TestEmptyThenRefill(t *testing.T) {
	r := New(2, 4)
	ref, _ := r.Alloc(1, 7)
	r.Complete(ref)
	if out := r.Commit(8, nil); len(out) != 1 || out[0] != 7 {
		t.Fatalf("commit = %v", out)
	}
	// Refill starting in the other partition; the chain must restart.
	ref2, _ := r.Alloc(0, 8)
	r.Complete(ref2)
	if out := r.Commit(8, nil); len(out) != 1 || out[0] != 8 {
		t.Fatalf("commit after refill = %v", out)
	}
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ parts, entries int }{{0, 4}, {300, 4}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.parts, c.entries)
				}
			}()
			New(c.parts, c.entries)
		}()
	}
}

func TestCompleteDeadPanics(t *testing.T) {
	r := New(1, 4)
	ref, _ := r.Alloc(0, 0)
	r.Complete(ref)
	r.Commit(1, nil)
	defer func() {
		if recover() == nil {
			t.Error("Complete on committed entry did not panic")
		}
	}()
	r.Complete(ref)
}

// Property: occupancy == allocs - commits at every point, and never
// exceeds capacity.
func TestQuickOccupancyInvariant(t *testing.T) {
	r := New(4, 16)
	var refs []Ref
	nextID := int32(0)
	f := func(part uint8, doCommit bool) bool {
		if doCommit {
			for _, ref := range refs {
				r.Complete(ref)
			}
			refs = refs[:0]
			r.Commit(64, nil)
		} else {
			if ref, ok := r.Alloc(int(part%4), nextID); ok {
				refs = append(refs, ref)
				nextID++
			}
		}
		occ := r.Occupancy()
		return occ == int(r.Stats.Allocs-r.Stats.Commits) && occ <= r.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
