// Package rob implements the reorder buffer in its conventional
// centralized form and in the distributed form proposed in Section 3.1.2
// of the paper.
//
// In the distributed organization each frontend partition owns a slice of
// the reorder buffer holding only the instructions steered to its
// backends.  Every entry carries, besides the usual ready-to-commit bit
// (R), a field L naming the partition that holds the *next* instruction in
// program order.  A special register points to the partition holding the
// oldest instruction; commit walks the R/L chain, hopping between
// partitions, until it finds a not-ready entry or exhausts the commit
// bandwidth (Figure 8 of the paper).  The centralized ROB is the
// single-partition special case of the same structure.
package rob

import "fmt"

// IDNone is returned in commit buffers' unused space.
const IDNone int32 = -1

// Ref is a stable handle to an allocated entry.
type Ref struct {
	Part int
	Slot int // index into the partition's backing array
}

// Stats counts ROB activity; the power model translates these into
// energy.  Walk reads are the extra R/L field reads performed by the
// distributed commit selection logic.
type Stats struct {
	Allocs    uint64
	Commits   uint64
	Completes uint64
	WalkReads uint64
	FullStall uint64 // allocation attempts rejected because a partition was full
}

// PartStats counts the activity of a single partition, so the power model
// can attribute energy to each physical ROB partition separately.
type PartStats struct {
	Allocs    uint64
	Commits   uint64
	Completes uint64
	WalkReads uint64
}

type entry struct {
	id        int32
	completed bool
	next      uint8
	hasNext   bool
	live      bool
}

type partition struct {
	ring  []entry
	head  int
	tail  int
	count int
}

func (p *partition) full() bool { return p.count == len(p.ring) }

// ROB is a reorder buffer with one or more partitions.
type ROB struct {
	parts   []partition
	cur     int  // partition holding the next instruction to commit
	curSet  bool // false until the first allocation
	last    Ref  // most recently allocated entry (tail of the L chain)
	hasLast bool
	total   int
	Stats   Stats
	// Part holds per-partition activity counters.
	Part []PartStats
}

// New builds a reorder buffer with the given number of partitions, each
// holding entriesPerPart instructions.  Use parts=1 for the centralized
// organization.
func New(parts, entriesPerPart int) *ROB {
	if parts < 1 || parts > 256 {
		panic("rob: partition count out of range")
	}
	if entriesPerPart < 1 {
		panic("rob: need at least one entry per partition")
	}
	r := &ROB{
		parts: make([]partition, parts),
		total: parts * entriesPerPart,
		Part:  make([]PartStats, parts),
	}
	for i := range r.parts {
		r.parts[i].ring = make([]entry, entriesPerPart)
	}
	return r
}

// Partitions returns the number of partitions.
func (r *ROB) Partitions() int { return len(r.parts) }

// Capacity returns the total number of entries.
func (r *ROB) Capacity() int { return r.total }

// Occupancy returns the number of live entries across all partitions.
func (r *ROB) Occupancy() int {
	n := 0
	for i := range r.parts {
		n += r.parts[i].count
	}
	return n
}

// PartOccupancy returns the number of live entries in partition p.
func (r *ROB) PartOccupancy(p int) int { return r.parts[p].count }

// CanAlloc reports whether partition p has a free entry.
func (r *ROB) CanAlloc(p int) bool { return !r.parts[p].full() }

// Alloc appends instruction id (in program order) to partition p.  The
// caller must allocate strictly in program order across the whole ROB;
// the L chain is maintained internally.  ok is false if the partition is
// full, in which case dispatch must stall.
func (r *ROB) Alloc(p int, id int32) (Ref, bool) {
	part := &r.parts[p]
	if part.full() {
		r.Stats.FullStall++
		return Ref{}, false
	}
	slot := part.tail
	part.ring[slot] = entry{id: id, live: true}
	part.tail = (part.tail + 1) % len(part.ring)
	part.count++
	ref := Ref{Part: p, Slot: slot}
	if r.hasLast {
		prev := &r.parts[r.last.Part].ring[r.last.Slot]
		if prev.live {
			prev.next = uint8(p)
			prev.hasNext = true
		}
	} else if !r.curSet {
		r.cur = p
		r.curSet = true
	}
	r.last = ref
	r.hasLast = true
	r.Stats.Allocs++
	r.Part[p].Allocs++
	return ref, true
}

// Complete marks the entry as ready to commit (sets its R bit).
func (r *ROB) Complete(ref Ref) {
	e := &r.parts[ref.Part].ring[ref.Slot]
	if !e.live {
		panic(fmt.Sprintf("rob: completing dead entry %+v", ref))
	}
	e.completed = true
	r.Stats.Completes++
	r.Part[ref.Part].Completes++
}

// Commit selects and retires up to bandwidth instructions following the
// R/L walk of §3.1.2, appending their ids to out and returning it.  The
// walk stops at the first not-ready entry (R=0) or when the bandwidth is
// exhausted.
func (r *ROB) Commit(bandwidth int, out []int32) []int32 {
	for n := 0; n < bandwidth; n++ {
		part := &r.parts[r.cur]
		if part.count == 0 {
			break
		}
		e := &part.ring[part.head]
		r.Stats.WalkReads++ // R/L field read by the selection logic
		r.Part[r.cur].WalkReads++
		if !e.completed {
			break
		}
		out = append(out, e.id)
		e.live = false
		part.head = (part.head + 1) % len(part.ring)
		part.count--
		r.Stats.Commits++
		r.Part[r.cur].Commits++
		if e.hasNext {
			r.cur = int(e.next)
		} else {
			// Newest instruction committed: the chain is empty; the next
			// allocation re-establishes cur.
			r.curSet = false
			r.hasLast = false
			break
		}
	}
	return out
}

// Head returns the id of the oldest instruction and whether one exists.
func (r *ROB) Head() (int32, bool) {
	part := &r.parts[r.cur]
	if part.count == 0 {
		return IDNone, false
	}
	return part.ring[part.head].id, true
}
