package chaos

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/memcachetest"
	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// TestChaosDeadRemoteCacheDegrades kills the shared remote cache under
// a tiered-remote simd and asserts the degradation contract: every
// request keeps succeeding (warm keys from the memory tier, cold keys
// from the engine), /healthz stays 200, no client ever sees an error —
// and the failure is *visible*, not swallowed: the remote tier's error
// counters move on /metrics while the requests stay clean.
func TestChaosDeadRemoteCacheDegrades(t *testing.T) {
	cache := memcachetest.Start(t)
	remote, err := resultstore.NewRemote(resultstore.RemoteConfig{
		Servers: []string{cache.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := resultstore.NewTiered(resultstore.NewMemory(16), remote)
	t.Cleanup(func() { store.Close() })

	reg := obs.NewRegistry()
	api := simd.NewServerWithStore(frontendsim.New(engineOpts()...), store, simd.WithMetrics(reg))
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	post := func(bench string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/simulations", "application/json",
			strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
		if err != nil {
			t.Fatalf("post %s: %v", bench, err)
		}
		return resp
	}

	// Warm one key while the cache lives: it lands in both tiers.
	warm := post("gzip")
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d", warm.StatusCode)
	}
	if n := cache.Counts().Sets; n != 1 {
		t.Fatalf("remote cache saw %d sets during warm-up, want 1", n)
	}

	cache.Close() // the shared tier is now a corpse

	// The warm key answers from the memory tier.
	hit := post("gzip")
	hit.Body.Close()
	if hit.StatusCode != http.StatusOK || hit.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("warm key with dead cache: status %d, X-Cache %q, want 200 HIT",
			hit.StatusCode, hit.Header.Get("X-Cache"))
	}
	// Cold keys compute: the dead back tier reads as a miss, never as a
	// client-visible failure.
	for _, bench := range frontendsim.Benchmarks()[1:4] {
		resp := post(bench)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold %s with dead cache: status %d, want 200", bench, resp.StatusCode)
		}
	}
	// Health stays green: a live front tier means degraded, not down.
	health, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("healthz with dead remote cache = %d, want 200", health.StatusCode)
	}

	// The degradation is observable: remote get errors and memory-tier
	// misses both moved.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	exposition := sb.String()
	if n := metricSum(t, exposition, "store_remote_ops_total", `result="error"`); n < 1 {
		t.Errorf(`store_remote_ops_total{result="error"} = %v, want >= 1`, n)
	}
	if n := metricSum(t, exposition, "simd_store_ops_total", `tier="memory",op="miss"`); n < 3 {
		t.Errorf(`memory-tier misses = %v, want >= 3 (the cold keys)`, n)
	}
	if n := metricSum(t, exposition, "simd_store_ops_total", `tier="remote",op="error"`); n < 1 {
		t.Errorf(`remote-tier errors on the store exposition = %v, want >= 1`, n)
	}
}
