package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hashring"
	"repro/internal/simd"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
	"repro/pkg/scheduler"
)

// warmReplica is one self-healing fleet member: a simd server with its
// own store, metrics registry, and engine-run counter.
type warmReplica struct {
	api   *simd.Server
	store resultstore.Store
	reg   *obs.Registry
	runs  *atomic.Int64
	srv   *httptest.Server
}

func newWarmReplica(t *testing.T) *warmReplica {
	t.Helper()
	store := resultstore.NewMemory(128)
	t.Cleanup(func() { store.Close() })
	var runs atomic.Int64
	eng := frontendsim.New(append(engineOpts(),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				runs.Add(1)
			}
		})))...)
	reg := obs.NewRegistry()
	api := simd.NewServerWithStore(eng, store, simd.WithMetrics(reg))
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return &warmReplica{api: api, store: store, reg: reg, runs: &runs, srv: srv}
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestChaosWarmupRejoinServesWarmSlice is the churn-and-repair
// scenario: a 3-replica fleet under continuous suite load loses replica
// C; the scheduler quarantines it and the survivors absorb its slice.
// A fresh C then rejoins with join-time warm-up — /healthz held at 503
// while it pulls its slice from the survivors — and must serve every
// request of its ring slice with X-Cache: HIT, zero engine runs, and
// simd_warmup_keys_total > 0.
func TestChaosWarmupRejoinServesWarmSlice(t *testing.T) {
	a, b, c := newWarmReplica(t), newWarmReplica(t), newWarmReplica(t)
	eng := frontendsim.New(engineOpts()...)
	reg := obs.NewRegistry()
	var members *membership.Registry
	sched, err := scheduler.New(eng, scheduler.Config{
		Backends:     []string{a.srv.URL, b.srv.URL, c.srv.URL},
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
		ReportDispatch: func(node string, err error) {
			if members != nil {
				members.ReportDispatch(node, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	members, err = membership.New(membership.Config{
		QuarantineAfter: 1,
		EvictAfter:      -1,
		OnChange:        sched.OnMembershipChange(),
	}, []string{a.srv.URL, b.srv.URL, c.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer members.Close()
	schedSrv := httptest.NewServer(scheduler.NewServer(sched, scheduler.WithMembership(members)))
	t.Cleanup(schedSrv.Close)

	suite := frontendsim.SuiteRequest{Benchmarks: frontendsim.Benchmarks()}

	// Continuous load: suites keep flowing before, during and after the
	// kill; strict mode must keep succeeding throughout (the failover
	// walk absorbs the dead replica).
	loadStop := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-loadStop:
				return
			default:
			}
			if _, err := sched.RunSuite(context.Background(), suite); err != nil {
				loadDone <- fmt.Errorf("suite under churn: %w", err)
				return
			}
		}
	}()

	// Let at least one full suite land, then kill C mid-load.
	time.Sleep(50 * time.Millisecond)
	c.srv.Close()

	// The load loop quarantines C through dispatch verdicts; wait for
	// the ring to shrink to the survivors.  The quarantining dispatch
	// only happens once the in-flight suite finishes and the next one
	// routes to the dead replica, and a cold 26-benchmark suite under
	// -race with the whole repo's tests competing for CPU can take
	// minutes — poll generously, exit fast in the common case.
	deadline := time.Now().Add(2 * time.Minute)
	for len(sched.Ring().Nodes()) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("dead replica never quarantined under load")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// One more full suite so every benchmark (including C's absorbed
	// slice) is present in a survivor's store.
	if _, err := sched.RunSuite(context.Background(), suite); err != nil {
		t.Fatal(err)
	}

	// A fresh C rejoins: cold store, /healthz 503 until the warm-up
	// pulls its slice from the survivors.
	fresh := newWarmReplica(t)
	fresh.api.SetReady(false)
	if code, _ := getBody(t, fresh.srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during warm-up = %d, want 503", code)
	}
	res, err := fresh.api.Warmup(context.Background(), simd.WarmupConfig{
		Peers:   []string{a.srv.URL, b.srv.URL},
		SelfURL: fresh.srv.URL,
		RingURL: schedSrv.URL,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if res.Pulled == 0 {
		t.Fatalf("warm-up pulled nothing: %+v", res)
	}
	if code, _ := getBody(t, fresh.srv.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after warm-up, before ready flip = %d, want 503", code)
	}
	fresh.api.SetReady(true)

	close(loadStop)
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	// The rejoined replica serves its ring slice — the slice of the
	// ring it will route under once joined — entirely from the warmed
	// store: X-Cache: HIT on every request, zero engine runs.
	ring, err := hashring.New([]string{a.srv.URL, b.srv.URL, fresh.srv.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, bench := range frontendsim.Benchmarks() {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if ring.Node(key) != fresh.srv.URL {
			continue
		}
		served++
		resp, err := http.Post(fresh.srv.URL+"/v1/simulations", "application/json",
			strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "HIT" {
			t.Errorf("benchmark %s on rejoined replica: status %d X-Cache %q",
				bench, resp.StatusCode, resp.Header.Get("X-Cache"))
		}
	}
	if served == 0 {
		t.Fatal("no benchmark homed on the rejoined replica")
	}
	if runs := fresh.runs.Load(); runs != 0 {
		t.Errorf("rejoined replica recomputed %d times; the warmed slice must serve from store", runs)
	}
	_, exposition := getBody(t, fresh.srv.URL+"/metrics")
	if n := metricSum(t, exposition, "simd_warmup_keys_total", ""); n <= 0 {
		t.Errorf("simd_warmup_keys_total = %v, want > 0 after a pulling warm-up", n)
	}
}
