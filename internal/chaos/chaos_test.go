// Package chaos is the seeded fault-injection integration suite (`make
// chaos`): a small simd fleet behind faultinject proxies, driven through
// the real scheduler, asserting the resilience layer end to end — zero
// client-visible errors in strict mode under latency spikes, injected
// 500s and a flapping backend; correct PARTIAL-ERROR accounting in
// degraded mode; passive breaker + quarantine before any probe round;
// and 503 + Retry-After shedding from a saturated backend.  All fault
// draws come from seeded PRNGs, and every suite is built from the ring's
// actual key assignment, so the scenarios do not depend on port numbers
// or timing luck.
package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simd"
	"repro/pkg/faultinject"
	"repro/pkg/frontendsim"
	"repro/pkg/membership"
	"repro/pkg/obs"
	"repro/pkg/scheduler"
)

// engineOpts keeps every tier (backends, scheduler, serial reference) on
// identical short simulations, so cross-tier cache keys align and runs
// stay fast.
func engineOpts() []frontendsim.Option {
	return []frontendsim.Option{
		frontendsim.WithWarmupOps(12_000),
		frontendsim.WithMeasureOps(25_000),
	}
}

// node is one fleet member: a real simd backend reachable only through
// its fault-injecting proxy.
type node struct {
	inj      *faultinject.Injector
	proxyURL string
}

// newFleet builds n simd backends, each behind a faultinject proxy
// seeded with seed+i.  Schedulers must route to the proxy URLs.
func newFleet(t *testing.T, n int, seed int64) []*node {
	t.Helper()
	fleet := make([]*node, n)
	for i := range fleet {
		backend := httptest.NewServer(simd.NewServer(frontendsim.New(engineOpts()...), 64))
		t.Cleanup(backend.Close)
		inj := faultinject.New(seed + int64(i))
		proxy := httptest.NewServer(faultinject.NewProxy(backend.URL, inj, nil))
		t.Cleanup(proxy.Close)
		fleet[i] = &node{inj: inj, proxyURL: proxy.URL}
	}
	return fleet
}

func fleetURLs(fleet []*node) []string {
	urls := make([]string, len(fleet))
	for i, n := range fleet {
		urls[i] = n.proxyURL
	}
	return urls
}

// homedOn returns the benchmarks whose ring home is url, using the
// scheduler's real key assignment — chaos scenarios target a specific
// backend without guessing which shards it owns.
func homedOn(t *testing.T, sched *scheduler.Scheduler, eng *frontendsim.Engine, url string) []string {
	t.Helper()
	var out []string
	for _, bench := range frontendsim.Benchmarks() {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if sched.Ring().Sequence(key)[0] == url {
			out = append(out, bench)
		}
	}
	return out
}

// metricSum sums the values of every sample line of metric name in a
// Prometheus text exposition, keeping only lines containing filter
// (filter "" keeps all).  Histogram/summary series are matched by their
// full sample name (name can be "x_count").
func metricSum(t *testing.T, exposition, name, filter string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		if filter != "" && !strings.Contains(line, filter) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestChaosStrictModeZeroClientErrors drives a suite through a fleet
// with latency spikes, a 10%-500 backend, and a flapping backend that
// drops its first requests outright: the ring walk plus jittered
// backoff absorbs every injected fault, the client sees zero errors,
// and the response is byte-identical to a fault-free serial run.
func TestChaosStrictModeZeroClientErrors(t *testing.T) {
	fleet := newFleet(t, 3, 42)
	eng := frontendsim.New(engineOpts()...)
	reg := obs.NewRegistry()
	sched, err := scheduler.New(eng, scheduler.Config{
		Backends:     fleetURLs(fleet),
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Latency spikes on node 0 (never an error), injected 500s on node
	// 1 (10% of its traffic, bounded so the run always terminates), and
	// a flapping node 2: its first 4 requests drop at the TCP level,
	// then it behaves.  Node 0 never fails, so every shard's ring walk
	// has a safe harbor.
	fleet[0].inj.Add(faultinject.Rule{LatencyMs: 20})
	fleet[1].inj.Add(faultinject.Rule{Status: 500, Probability: 0.1, MaxCount: 10})
	fleet[2].inj.Add(faultinject.Rule{Drop: true, MaxCount: 4})

	// Build the suite from the ring's real assignment: two shards homed
	// on every node, so each injector's traffic is guaranteed (shards
	// homed on the flapping node hit its drops and exercise the retry
	// path), plus a handful of bulk benchmarks.
	var picked []string
	for _, n := range fleet {
		homed := homedOn(t, sched, eng, n.proxyURL)
		if len(homed) < 2 {
			t.Fatalf("only %d benchmarks homed on %s; need 2", len(homed), n.proxyURL)
		}
		picked = append(picked, homed[:2]...)
	}
	suite := frontendsim.SuiteRequest{Benchmarks: append(frontendsim.Benchmarks()[:4], picked...)}

	res, err := sched.RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatalf("strict-mode suite failed under injected faults: %v", err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("strict-mode result carries shard errors: %+v", res.Errors)
	}
	for i, r := range res.Results {
		if r == nil {
			t.Fatalf("result %d missing", i)
		}
	}

	// Byte-identical to a fault-free serial run of the same suite.
	serial, err := frontendsim.New(engineOpts()...).RunSuite(context.Background(), suite)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res)
	want, _ := json.Marshal(serial)
	if string(got) != string(want) {
		t.Error("suite result under chaos differs from the serial reference")
	}

	// The injected drops forced ring-walk retries, each preceded by a
	// recorded jittered backoff.
	if st := sched.Stats(); st.Retried == 0 || st.Backoffs == 0 {
		t.Errorf("stats = %+v, want retries and backoffs under injected faults", st)
	}
	exposition := reg.Render()
	if n := metricSum(t, exposition, "sched_retry_backoff_seconds_count", ""); n < 1 {
		t.Errorf("sched_retry_backoff_seconds_count = %v, want >= 1", n)
	}
	st0, st2 := fleet[0].inj.Stats(), fleet[2].inj.Stats()
	if st0.Latency < 2 {
		t.Errorf("latency injector fired %d times, want >= 2 (two shards homed there)", st0.Latency)
	}
	if st2.Drop < 2 {
		t.Errorf("flapping node dropped %d requests, want >= 2 (two shards homed there)", st2.Drop)
	}
}

// TestChaosPartialErrorDegradedMode kills one benchmark on every node
// (its ring walk exhausts) and asserts the degraded-mode contract over
// real HTTP: 200 with X-Cache: PARTIAL-ERROR and per-shard error
// entries on /v1/suites, and a {"type":"shard-error"} line followed by
// the terminal aggregate on /v1/suites/stream.
func TestChaosPartialErrorDegradedMode(t *testing.T) {
	fleet := newFleet(t, 3, 43)
	const doomed = "mcf"
	for _, n := range fleet {
		n.inj.Add(faultinject.Rule{
			Match:  faultinject.Match{BodyContains: `"benchmark":"` + doomed + `"`},
			Status: 500,
		})
	}
	eng := frontendsim.New(engineOpts()...)
	reg := obs.NewRegistry()
	sched, err := scheduler.New(eng, scheduler.Config{
		Backends:       fleetURLs(fleet),
		RetryBackoff:   time.Millisecond,
		PartialResults: true,
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(scheduler.NewServer(sched, scheduler.WithMetrics(reg)))
	t.Cleanup(front.Close)

	body := `{"benchmarks":["gzip","` + doomed + `","swim"]}`
	resp, err := http.Post(front.URL+"/v1/suites", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded suite status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "PARTIAL-ERROR" {
		t.Errorf("X-Cache = %q, want PARTIAL-ERROR", got)
	}
	var res frontendsim.SuiteResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 1 || res.Errors[0].Benchmark != doomed {
		t.Fatalf("errors = %+v, want one %s entry", res.Errors, doomed)
	}
	if res.Results[1] != nil || res.Results[0] == nil || res.Results[2] == nil {
		t.Error("results: want nil at the doomed position, values elsewhere")
	}
	if res.Aggregate.Benchmarks != 2 {
		t.Errorf("aggregate over %d benchmarks, want the 2 survivors", res.Aggregate.Benchmarks)
	}

	// The stream renders the same failure as a shard-error line and
	// still terminates with the aggregate.
	sresp, err := http.Post(front.URL+"/v1/suites/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawShardError, last := false, ""
	for sc.Scan() {
		last = sc.Text()
		if strings.Contains(last, `"type":"shard-error"`) && strings.Contains(last, doomed) {
			sawShardError = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawShardError {
		t.Error("stream carried no shard-error line for the doomed benchmark")
	}
	if !strings.Contains(last, `"type":"aggregate"`) {
		t.Errorf("terminal stream line = %q, want the aggregate", last)
	}
}

// TestChaosBreakerQuarantinesBeforeProbeRound kills one backend and
// asserts the passive path alone — no health probe ever runs — opens
// its circuit and quarantines it in the membership registry, visible in
// sched_breaker_transitions_total{to="open"}.
func TestChaosBreakerQuarantinesBeforeProbeRound(t *testing.T) {
	fleet := newFleet(t, 3, 44)
	fleet[0].inj.Add(faultinject.Rule{Drop: true}) // dead, permanently

	eng := frontendsim.New(engineOpts()...)
	reg := obs.NewRegistry()
	var members *membership.Registry
	sched, err := scheduler.New(eng, scheduler.Config{
		Backends:         fleetURLs(fleet),
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Metrics:          reg,
		ReportDispatch: func(node string, err error) {
			members.ReportDispatch(node, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	members, err = membership.New(membership.Config{
		ProbeInterval:   time.Hour, // never started anyway: passive only
		QuarantineAfter: 2,
		EvictAfter:      -1,
		OnChange:        sched.OnMembershipChange(),
	}, fleetURLs(fleet))
	if err != nil {
		t.Fatal(err)
	}

	onDead := homedOn(t, sched, eng, fleet[0].proxyURL)
	if len(onDead) < 2 {
		t.Fatalf("only %d benchmarks homed on the dead node; need 2", len(onDead))
	}
	for _, bench := range onDead[:2] {
		if _, err := sched.Dispatch(context.Background(), frontendsim.Request{Benchmark: bench}); err != nil {
			t.Fatalf("dispatch %s should have failed over: %v", bench, err)
		}
	}

	// Two live-traffic failures: the circuit is open and the member is
	// quarantined — before any probe round has run.
	if n := metricSum(t, reg.Render(), "sched_breaker_transitions_total", `to="open"`); n < 1 {
		t.Errorf(`sched_breaker_transitions_total{to="open"} = %v, want >= 1`, n)
	}
	active := members.Active()
	if len(active) != 2 {
		t.Fatalf("active members = %v, want the 2 healthy nodes", active)
	}
	for _, url := range active {
		if url == fleet[0].proxyURL {
			t.Fatal("dead node still active")
		}
	}
	if st := members.Stats(); st.PassiveReports == 0 || st.Quarantines != 1 {
		t.Errorf("membership stats = %+v, want passive reports and 1 quarantine", st)
	}
	// The quarantine swapped the scheduler's ring: the dead node is no
	// longer routable at all.
	if st := sched.Stats(); st.RingSwaps != 1 {
		t.Errorf("ring swaps = %d, want 1 (quarantine-driven)", st.RingSwaps)
	}
}

// TestChaosSaturatedSimdSheds saturates a one-worker simd with a
// one-deep admission queue: of 6 concurrent distinct requests exactly
// one is served and five are shed with 503 + Retry-After and a JSON
// envelope, all visible in simd_shed_total on /metrics.
func TestChaosSaturatedSimdSheds(t *testing.T) {
	eng := frontendsim.New(
		// Long enough to hold its slot while the other requests arrive
		// and shed.
		frontendsim.WithWarmupOps(400_000),
		frontendsim.WithMeasureOps(800_000),
		frontendsim.WithWorkers(1),
	)
	reg := obs.NewRegistry()
	api := simd.NewServer(eng, 64,
		simd.WithMetrics(reg),
		simd.WithAdmission(1, 20*time.Millisecond))
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)

	benches := frontendsim.Benchmarks()[:6]
	statuses := make([]int, len(benches))
	retryAfter := make([]string, len(benches))
	bodies := make([]string, len(benches))
	var wg sync.WaitGroup
	for i, bench := range benches {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/simulations", "application/json",
				strings.NewReader(fmt.Sprintf(`{"benchmark":%q}`, bench)))
			if err != nil {
				t.Errorf("post %s: %v", bench, err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			var env struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&env)
			bodies[i] = env.Error
		}(i, bench)
	}
	wg.Wait()

	served, shed := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			served++
		case http.StatusServiceUnavailable:
			shed++
			if sec, err := strconv.Atoi(retryAfter[i]); err != nil || sec < 1 {
				t.Errorf("shed %s: Retry-After = %q, want a positive integer", benches[i], retryAfter[i])
			}
			if bodies[i] == "" {
				t.Errorf("shed %s: empty JSON error envelope", benches[i])
			}
		default:
			t.Errorf("%s: status %d, want 200 or 503", benches[i], st)
		}
	}
	if served != 1 || shed != 5 {
		t.Fatalf("served %d / shed %d, want exactly 1 / 5", served, shed)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	if n := metricSum(t, sb.String(), "simd_shed_total", ""); n != 5 {
		t.Errorf("simd_shed_total = %v, want 5", n)
	}
}
