package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// decodeStream splits an NDJSON body into typed lines.
func decodeStream(t *testing.T, body *bytes.Buffer) []frontendsim.SuiteStreamLine {
	t.Helper()
	var lines []frontendsim.SuiteStreamLine
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l frontendsim.SuiteStreamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSuiteStreamEndpoint pins the /v1/suites/stream contract: one
// shard line per unique key with plausible sources, a terminal
// aggregate line, and the aggregate byte-identical (as JSON) to the
// blocking /v1/suites response for the same request.
func TestSuiteStreamEndpoint(t *testing.T) {
	srv := testServer(16)
	suite := `{"benchmarks":["gzip","mcf","gzip"],"request":{"bank_hopping":true}}`

	blocking := post(t, srv, "/v1/suites", suite)
	if blocking.Code != http.StatusOK {
		t.Fatalf("blocking status = %d, body %s", blocking.Code, blocking.Body.String())
	}

	streamed := post(t, srv, "/v1/suites/stream", suite)
	if streamed.Code != http.StatusOK {
		t.Fatalf("stream status = %d, body %s", streamed.Code, streamed.Body.String())
	}
	if ct := streamed.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	lines := decodeStream(t, streamed.Body)
	if len(lines) != 3 { // 2 unique shards + aggregate
		t.Fatalf("%d stream lines, want 3", len(lines))
	}
	positions := map[int]bool{}
	for _, l := range lines[:2] {
		if l.Type != "shard" || l.Result == nil {
			t.Fatalf("non-shard line before the aggregate: %+v", l)
		}
		// The whole suite ran warm from the earlier blocking request.
		if l.Source != "HIT" {
			t.Errorf("shard %q source = %q, want HIT (warmed by the blocking run)", l.Benchmark, l.Source)
		}
		for _, p := range l.Positions {
			positions[p] = true
		}
	}
	if len(positions) != 3 {
		t.Errorf("shard lines cover %d of 3 suite positions", len(positions))
	}

	last := lines[2]
	if last.Type != "aggregate" || last.Suite == nil {
		t.Fatalf("terminal line is %+v, want an aggregate", last)
	}
	aggJSON, err := json.Marshal(last.Suite)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(aggJSON, '\n'), blocking.Body.Bytes()) {
		t.Error("streamed aggregate is not byte-identical to the blocking /v1/suites response")
	}
}

// TestSuiteStreamBadRequest asserts pre-stream failures are plain JSON
// errors with the right status, not NDJSON.
func TestSuiteStreamBadRequest(t *testing.T) {
	srv := testServer(0)
	w := post(t, srv, "/v1/suites/stream", `{"benchmarks":["nosuch"]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", w.Code)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "nosuch") {
		t.Errorf("error body %q", w.Body.String())
	}
}

// TestBodyTooLarge asserts the body cap rejects oversized POSTs with
// 413 on every decoding endpoint, and that a request under the cap
// still works on the same server.
func TestBodyTooLarge(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	srv := NewServer(eng, 16, WithMaxBodyBytes(512))

	huge := `{"benchmark":"gzip","unused":"` + strings.Repeat("x", 4096) + `"}`
	for _, path := range []string{
		"/v1/simulations", "/v1/simulations/stream", "/v1/suites", "/v1/suites/stream",
	} {
		w := post(t, srv, path, huge)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", path, w.Code)
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: non-JSON 413 body %q", path, w.Body.String())
		}
	}
	if w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`); w.Code != http.StatusOK {
		t.Errorf("under-cap request status = %d, want 200", w.Code)
	}
}

// lyingStore reports a hit with bytes that do not decode as a Result —
// the internal-fault injection for the 5xx regression test.
type lyingStore struct{ resultstore.Store }

func (s lyingStore) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return []byte("not json"), true, nil
}

// TestInternalFaultIs500 pins the statusFor fix: a server-side failure
// on a valid request (here, a corrupt store entry feeding the suite
// path) must surface as 500, not 400 — the scheduler's retry
// classifier treats 4xx as permanent and would refuse to fail over.
func TestInternalFaultIs500(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	srv := NewServerWithStore(eng, lyingStore{resultstore.NewMemory(4)})

	w := post(t, srv, "/v1/suites", `{"benchmarks":["gzip"]}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "decode cached result") {
		t.Errorf("error body %q", w.Body.String())
	}
}

// TestSuiteStreamErrorLine asserts a failure after the stream began is
// reported as a terminal error line on the committed 200 response.
func TestSuiteStreamErrorLine(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	srv := NewServerWithStore(eng, lyingStore{resultstore.NewMemory(4)})

	w := post(t, srv, "/v1/suites/stream", `{"benchmarks":["gzip"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (stream already committed)", w.Code)
	}
	lines := decodeStream(t, w.Body)
	if len(lines) != 1 || lines[0].Type != "error" || lines[0].Error == "" {
		t.Fatalf("stream lines = %+v, want a single error line", lines)
	}
}
