package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/hashring"
	"repro/pkg/resultstore"
)

// Background anti-entropy: a slow periodic digest exchange with ring
// neighbors that pulls missing entries, so replicas whose stores
// diverged (a missed hint, an evicted segment, a write that raced a
// quarantine) converge without waiting for request misses to notice.
// Each round picks this replica's clockwise ring successor (falling
// back around the ring when it is down), compares per-bucket FNV-1a
// key-set digests (GET /v1/store/digest), and for each differing bucket
// pulls the keys this replica is missing.  Repair is pull-only —
// divergence in the other direction converges when the neighbor's own
// loop runs.

// AntiEntropyConfig configures Server.NewAntiEntropy.  Zero values
// select the defaults noted on each field.
type AntiEntropyConfig struct {
	// SelfURL is this replica's advertised base URL.  Required.
	SelfURL string
	// Peers are the replica base URLs to repair against.  When empty,
	// peers are discovered from RingURL's GET /v1/ring each round (self
	// excluded).
	Peers []string
	// RingURL is the scheduler base URL for peer discovery (ignored
	// when Peers is set; one of the two is required).
	RingURL string
	// Interval is the exchange period (default 60s — anti-entropy is a
	// slow safety net, not a replication path).
	Interval time.Duration
	// Buckets is the digest bucket count (default
	// resultstore.DefaultDigestBuckets).
	Buckets int
	// Replicas is the ring's virtual-point count for neighbor selection
	// (default hashring.DefaultReplicas).
	Replicas int
	// Client performs the HTTP exchange (default: 10s per-request
	// timeout).
	Client *http.Client
	// Logf, when set, receives one line per repairing round.
	Logf func(format string, args ...any)
}

func (c *AntiEntropyConfig) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.Buckets <= 0 {
		c.Buckets = resultstore.DefaultDigestBuckets
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// AntiEntropy is the background repair loop.  Build with
// Server.NewAntiEntropy, then Start; Close stops the loop.
type AntiEntropy struct {
	s   *Server
	cfg AntiEntropyConfig

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewAntiEntropy builds the repair loop (not yet running).  Tests call
// RunOnce directly; production code calls Start.
func (s *Server) NewAntiEntropy(cfg AntiEntropyConfig) (*AntiEntropy, error) {
	cfg.applyDefaults()
	if cfg.SelfURL == "" {
		return nil, errors.New("simd: anti-entropy needs the self URL")
	}
	if len(cfg.Peers) == 0 && cfg.RingURL == "" {
		return nil, errors.New("simd: anti-entropy needs peers or a ring URL")
	}
	return &AntiEntropy{s: s, cfg: cfg, stop: make(chan struct{})}, nil
}

// Start launches the periodic exchange.
func (ae *AntiEntropy) Start() {
	ae.wg.Add(1)
	go func() {
		defer ae.wg.Done()
		ticker := time.NewTicker(ae.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ae.stop:
				return
			case <-ticker.C:
				pulled, err := ae.RunOnce(context.Background())
				if errors.Is(err, resultstore.ErrScanUnsupported) {
					ae.cfg.Logf("simd: anti-entropy disabled: local store cannot enumerate keys")
					return
				}
				if err != nil {
					ae.cfg.Logf("simd: anti-entropy round: %v", err)
				} else if pulled > 0 {
					ae.cfg.Logf("simd: anti-entropy pulled %d entr%s", pulled, plural(pulled, "y", "ies"))
				}
			}
		}
	}()
}

// Close stops the loop and waits for an in-flight round.
func (ae *AntiEntropy) Close() {
	ae.stopOnce.Do(func() { close(ae.stop) })
	ae.wg.Wait()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// peers resolves the repair candidates for one round, ordered with this
// replica's clockwise ring successor first.
func (ae *AntiEntropy) peers(ctx context.Context) ([]string, error) {
	candidates := ae.cfg.Peers
	if len(candidates) == 0 {
		snap, err := fetchRing(ctx, ae.cfg.Client, ae.cfg.RingURL)
		if err != nil {
			return nil, err
		}
		candidates = snap.Backends
	}
	others := make([]string, 0, len(candidates))
	for _, p := range candidates {
		if p != ae.cfg.SelfURL {
			others = append(others, p)
		}
	}
	if len(others) == 0 {
		return nil, nil
	}
	// Neighbor-first ordering: the successor absorbs this replica's
	// slice on failure, so it is the likeliest to hold keys this
	// replica is missing.
	ring, err := hashring.New(append(append([]string(nil), others...), ae.cfg.SelfURL), ae.cfg.Replicas)
	if err != nil {
		return others, nil
	}
	successor := ring.Successor(ae.cfg.SelfURL)
	ordered := make([]string, 0, len(others))
	if successor != "" {
		ordered = append(ordered, successor)
	}
	for _, p := range others {
		if p != successor {
			ordered = append(ordered, p)
		}
	}
	return ordered, nil
}

// fetchPeerDigest reads one peer's per-bucket digests.
func fetchPeerDigest(ctx context.Context, client *http.Client, peer string, buckets int) (storeDigestResponse, error) {
	var body storeDigestResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/store/digest?buckets=%d", peer, buckets), nil)
	if err != nil {
		return body, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return body, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotImplemented {
		return body, errPeerCannotEnumerate
	}
	if resp.StatusCode != http.StatusOK {
		return body, fmt.Errorf("simd: digest from %s: status %d", peer, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return body, fmt.Errorf("simd: digest from %s: %w", peer, err)
	}
	return body, nil
}

// fetchPeerBucketKeys enumerates one peer bucket's keys.
func fetchPeerBucketKeys(ctx context.Context, client *http.Client, peer string, bucket, buckets int) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/store/keys?bucket=%d&buckets=%d", peer, bucket, buckets), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("simd: bucket keys from %s: status %d", peer, resp.StatusCode)
	}
	var body storeKeysResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("simd: bucket keys from %s: %w", peer, err)
	}
	return body.Keys, nil
}

// RunOnce performs one digest exchange: compare per-bucket digests with
// the first answering peer and pull every key it holds that this
// replica is missing.  Returns how many entries were pulled.  A local
// store without the Scanner capability returns
// resultstore.ErrScanUnsupported (the loop then disables itself).
func (ae *AntiEntropy) RunOnce(ctx context.Context) (int, error) {
	localKeys, ok, err := resultstore.ScanKeys(ctx, ae.s.store, nil)
	if !ok {
		return 0, err
	}
	if err != nil {
		ae.s.aeErrs.Add(1)
		return 0, err
	}
	peers, err := ae.peers(ctx)
	if err != nil {
		ae.s.aeErrs.Add(1)
		return 0, err
	}
	if len(peers) == 0 {
		return 0, nil
	}

	local := make(map[string]bool, len(localKeys))
	for _, k := range localKeys {
		local[k] = true
	}
	localDigests := resultstore.BucketDigests(localKeys, ae.cfg.Buckets)

	var peerDigest storeDigestResponse
	peer := ""
	var lastErr error
	for _, p := range peers {
		d, err := fetchPeerDigest(ctx, ae.cfg.Client, p, ae.cfg.Buckets)
		if err != nil {
			lastErr = err
			continue
		}
		peerDigest, peer = d, p
		break
	}
	if peer == "" {
		ae.s.aeErrs.Add(1)
		return 0, fmt.Errorf("simd: no anti-entropy peer answered: %w", lastErr)
	}
	if len(peerDigest.Digests) != len(localDigests) {
		ae.s.aeErrs.Add(1)
		return 0, fmt.Errorf("simd: digest bucket mismatch with %s: %d != %d",
			peer, len(peerDigest.Digests), len(localDigests))
	}

	pulled := 0
	for b := range localDigests {
		if peerDigest.Digests[b] == localDigests[b] || peerDigest.Digests[b].Count == 0 {
			continue
		}
		keys, err := fetchPeerBucketKeys(ctx, ae.cfg.Client, peer, b, ae.cfg.Buckets)
		if err != nil {
			ae.s.aeErrs.Add(1)
			return pulled, err
		}
		for _, key := range keys {
			if local[key] {
				continue
			}
			body, err := fetchPeerEntry(ctx, ae.cfg.Client, peer, key)
			if err != nil {
				ae.s.aeErrs.Add(1)
				continue
			}
			if ae.s.store.Set(ctx, key, body) != nil {
				ae.s.aeErrs.Add(1)
				continue
			}
			pulled++
			ae.s.aePulled.Add(1)
		}
	}
	ae.s.aeRounds.Add(1)
	return pulled, nil
}
