package simd

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hashring"
	"repro/internal/memcachetest"
	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
	"repro/pkg/scheduler"
)

// warmEngine matches the chaos-tier short simulations so scheduler and
// backend cache keys align, counting engine runs through the observer.
func warmEngine() (*frontendsim.Engine, *atomic.Int64) {
	var runs atomic.Int64
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(12_000),
		frontendsim.WithMeasureOps(25_000),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				runs.Add(1)
			}
		})),
	)
	return eng, &runs
}

// replica is one warm-up test node: a simd server over its own memory
// store, reachable over real HTTP.
type replica struct {
	api   *Server
	store resultstore.Store
	runs  *atomic.Int64
	url   string
}

func newReplica(t *testing.T) *replica {
	t.Helper()
	store := resultstore.NewMemory(256)
	t.Cleanup(func() { store.Close() })
	eng, runs := warmEngine()
	api := NewServerWithStore(eng, store)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return &replica{api: api, store: store, runs: runs, url: srv.URL}
}

// ringStub serves a fixed GET /v1/ring snapshot.
func ringStub(t *testing.T, backends []string, epoch uint64) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ring" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"backends": backends, "epoch": epoch})
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func storeKeySet(t *testing.T, s resultstore.Store) map[string]bool {
	t.Helper()
	keys, ok, err := resultstore.ScanKeys(context.Background(), s, nil)
	if !ok || err != nil {
		t.Fatalf("ScanKeys = ok %v err %v", ok, err)
	}
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	return set
}

// TestWarmupPullsOnlyOwnSlice seeds a peer with keys spread over the
// whole hash space and asserts the joiner pulls exactly the keys that
// hash to its slice of the ring the scheduler reports — not the peer's
// whole store.
func TestWarmupPullsOnlyOwnSlice(t *testing.T) {
	peer, joiner := newReplica(t), newReplica(t)
	ringURL := ringStub(t, []string{peer.url}, 7)

	ring, err := hashring.New([]string{peer.url, joiner.url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Digest-shaped keys: production keys are canonical request hashes,
	// and FNV-clustered sequential strings would all land in one vnode
	// gap.
	wantMine := map[string]bool{}
	for i := 0; i < 40; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("key-%03d", i)))
		key := fmt.Sprintf("%x", sum[:8])
		if err := peer.store.Set(context.Background(), key, []byte("body-"+key)); err != nil {
			t.Fatal(err)
		}
		if ring.Node(key) == joiner.url {
			wantMine[key] = true
		}
	}
	if len(wantMine) == 0 || len(wantMine) == 40 {
		t.Fatalf("degenerate slice: %d of 40 keys homed on the joiner", len(wantMine))
	}

	res, err := joiner.api.Warmup(context.Background(), WarmupConfig{
		Peers:   []string{peer.url},
		SelfURL: joiner.url,
		RingURL: ringURL,
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Warmup: %v", err)
	}
	if res.Pulled != len(wantMine) || res.Failed != 0 {
		t.Fatalf("result = %+v, want %d pulled", res, len(wantMine))
	}
	if res.Epoch != 7 {
		t.Errorf("epoch = %d, want the ring stub's 7", res.Epoch)
	}
	got := storeKeySet(t, joiner.store)
	for k := range wantMine {
		if !got[k] {
			t.Errorf("slice key %q not pulled", k)
		}
	}
	for k := range got {
		if !wantMine[k] {
			t.Errorf("pulled %q, homed on the peer", k)
		}
	}
	if n := joiner.api.warmupKeys.Load(); n != uint64(len(wantMine)) {
		t.Errorf("simd_warmup_keys_total = %d, want %d", n, len(wantMine))
	}
}

// TestWarmupFallsBackToEnumeratingPeer pins the capability fallback: the
// first peer is remote-backed (its store answers 501 to key
// enumeration), so the joiner warms from the second peer's enumeration.
func TestWarmupFallsBackToEnumeratingPeer(t *testing.T) {
	cache := memcachetest.Start(t)
	remoteStore, err := resultstore.NewRemote(resultstore.RemoteConfig{Servers: []string{cache.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remoteStore.Close() })
	eng, _ := warmEngine()
	blind := httptest.NewServer(NewServerWithStore(eng, remoteStore))
	t.Cleanup(blind.Close)

	sighted, joiner := newReplica(t), newReplica(t)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := sighted.store.Set(context.Background(), k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	res, err := joiner.api.Warmup(context.Background(), WarmupConfig{
		Peers:   []string{blind.URL, sighted.url},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Warmup with a non-enumerating first peer: %v", err)
	}
	if res.Pulled != 3 {
		t.Fatalf("pulled %d, want the sighted peer's 3", res.Pulled)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if v, ok, _ := resultstore.Peek(context.Background(), joiner.store, k); !ok || string(v) != "v-"+k {
			t.Errorf("key %s = %q %v after warm-up", k, v, ok)
		}
	}
}

// TestWarmupResumesAfterPeerFailure kills one entry endpoint for the
// first round: the warm-up must retry the failed key on a later round
// instead of giving up, and still account every pull.
func TestWarmupResumesAfterPeerFailure(t *testing.T) {
	var k2Alive atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/store/keys":
			json.NewEncoder(w).Encode(storeKeysResponse{Count: 2, Keys: []string{"k1", "k2"}})
		case "/v1/store/entries/k1":
			w.Write([]byte("b1"))
		case "/v1/store/entries/k2":
			if !k2Alive.Load() {
				k2Alive.Store(true) // dead for exactly one pull
				http.Error(w, "mid-pull crash", http.StatusInternalServerError)
				return
			}
			w.Write([]byte("b2"))
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(peer.Close)

	joiner := newReplica(t)
	res, err := joiner.api.Warmup(context.Background(), WarmupConfig{
		Peers:   []string{peer.URL},
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("Warmup did not resume past the failed pull: %v", err)
	}
	if res.Pulled != 2 || res.Failed != 0 {
		t.Fatalf("result = %+v, want both keys pulled across rounds", res)
	}
	if joiner.api.warmupErrs.Load() == 0 {
		t.Error("simd_warmup_errors_total = 0, want the first-round failure counted")
	}
	for k, want := range map[string]string{"k1": "b1", "k2": "b2"} {
		if v, ok, _ := resultstore.Peek(context.Background(), joiner.store, k); !ok || string(v) != want {
			t.Errorf("key %s = %q %v", k, v, ok)
		}
	}
}

// TestWarmupTimeoutWithoutEnumeration pins the failure mode: no peer
// ever enumerates, the deadline lapses, and Warmup reports an error
// instead of spinning.
func TestWarmupTimeoutWithoutEnumeration(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	joiner := newReplica(t)
	if _, err := joiner.api.Warmup(context.Background(), WarmupConfig{
		Peers:   []string{dead.URL},
		Timeout: 400 * time.Millisecond,
	}); err == nil {
		t.Fatal("Warmup succeeded with no enumerable peer")
	}
}

// TestWarmupRejoinServesSliceWithoutRecompute is the headline
// integration test: a 3-replica fleet loses replica C, suites run over
// the survivors, and a fresh C rejoins with warm-up.  The rejoined C
// must hold /healthz at 503 until the warm-up completes and then answer
// every request of its ring slice byte-identical to the original
// computation with X-Cache: HIT and zero local engine runs.
func TestWarmupRejoinServesSliceWithoutRecompute(t *testing.T) {
	// Replicas A and B survive; C is dead (it only ever existed as a
	// ring address — the fresh one below takes over its slice).
	a, b := newReplica(t), newReplica(t)
	eng, _ := warmEngine()
	sched, err := scheduler.New(eng, scheduler.Config{Backends: []string{a.url, b.url}})
	if err != nil {
		t.Fatal(err)
	}
	schedSrv := httptest.NewServer(scheduler.NewServer(sched))
	t.Cleanup(schedSrv.Close)

	suite := frontendsim.SuiteRequest{Benchmarks: frontendsim.Benchmarks()}
	if _, err := sched.RunSuite(context.Background(), suite); err != nil {
		t.Fatal(err)
	}

	// The fresh C: cold store, not ready — /healthz must answer 503
	// while the warm-up runs, so the scheduler keeps routing around it.
	c := newReplica(t)
	c.api.SetReady(false)
	if w := get(t, c.api, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before warm-up = %d, want 503", w.Code)
	}

	res, err := c.api.Warmup(context.Background(), WarmupConfig{
		Peers:   []string{a.url, b.url},
		SelfURL: c.url,
		RingURL: schedSrv.URL,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("Warmup: %v", err)
	}
	if w := get(t, c.api, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after warm-up but before SetReady = %d, want 503 (readiness is the caller's flip)", w.Code)
	}
	c.api.SetReady(true)
	if w := get(t, c.api, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("healthz after SetReady = %d", w.Code)
	}

	// C's slice under the post-join ring: benchmarks whose key homes on
	// C among {A, B, C}.
	ring, err := hashring.New([]string{a.url, b.url, c.url}, 0)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, bench := range frontendsim.Benchmarks() {
		key, err := eng.RequestKey(frontendsim.Request{Benchmark: bench})
		if err != nil {
			t.Fatal(err)
		}
		if ring.Node(key) != c.url {
			continue
		}
		served++
		// The bytes the surviving fleet serves for this key.
		want, ok, err := resultstore.Peek(context.Background(), a.store, key)
		if err != nil || !ok {
			want, ok, err = resultstore.Peek(context.Background(), b.store, key)
		}
		if err != nil || !ok {
			t.Fatalf("benchmark %s (key %s) not in any survivor's store", bench, key)
		}
		w := post(t, c.api, "/v1/simulations", fmt.Sprintf(`{"benchmark":%q}`, bench))
		if w.Code != http.StatusOK {
			t.Fatalf("POST %s to rejoined C = %d", bench, w.Code)
		}
		if got := w.Header().Get("X-Cache"); got != "HIT" {
			t.Errorf("benchmark %s: X-Cache = %q, want HIT from the warmed store", bench, got)
		}
		if w.Body.String() != string(want) {
			t.Errorf("benchmark %s: body differs from the original computation", bench)
		}
	}
	if served == 0 {
		t.Fatal("no benchmark homed on C; test proves nothing")
	}
	if runs := c.runs.Load(); runs != 0 {
		t.Errorf("rejoined C ran its engine %d times; the warmed slice must serve without recompute", runs)
	}
	if res.Pulled == 0 {
		t.Errorf("warm-up pulled nothing: %+v", res)
	}
	if n := c.api.warmupKeys.Load(); n == 0 {
		t.Error("simd_warmup_keys_total = 0 after a pulling warm-up")
	}
}
