package simd

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Shed reasons, the `reason` label of simd_shed_total.
const (
	// ShedQueueFull: the bounded wait queue was already at -max-queue
	// depth when the request arrived.
	ShedQueueFull = "queue_full"
	// ShedWaitDeadline: the request queued, but no slot freed within
	// -queue-wait.
	ShedWaitDeadline = "wait_deadline"
)

// ShedError is the admission controller refusing work: the server is
// saturated and queueing further would only stack goroutines behind
// clients that will give up anyway.  Handlers map it to 503 with a
// Retry-After header so well-behaved callers (and the scheduler's ring
// walk) back off or fail over instead of re-queueing instantly.
type ShedError struct {
	// Reason is ShedQueueFull or ShedWaitDeadline.
	Reason string
	// RetryAfter is the backoff hint served in the Retry-After header.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("simd: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// RetryAfterSeconds renders the hint for the Retry-After header
// (integer seconds, at least 1 — zero would read as "retry now").
func (e *ShedError) RetryAfterSeconds() int {
	secs := int(e.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admission bounds both the concurrency and the queue of a simd server:
// slots caps concurrent simulations at the engine's worker count
// (unchanged from the original design), while maxQueue and maxWait
// bound how many requests may wait for a slot and for how long.  With
// both zero the controller degrades to the legacy behaviour — queue
// without limit until the request context ends.
type admission struct {
	slots    chan struct{}
	maxQueue int
	maxWait  time.Duration

	// waiting is the live queue depth (requests blocked in acquire).
	waiting atomic.Int64
	// shedQueue / shedWait count rejections by reason, for
	// simd_shed_total{reason}.
	shedQueue atomic.Uint64
	shedWait  atomic.Uint64
}

func newAdmission(capacity, maxQueue int, maxWait time.Duration) *admission {
	return &admission{
		slots:    make(chan struct{}, capacity),
		maxQueue: maxQueue,
		maxWait:  maxWait,
	}
}

// retryAfter is the backoff hint for a shed request: the queue-wait
// bound when one is configured (a freed slot sooner than that is
// already spoken for by the queued requests ahead), one second
// otherwise.
func (a *admission) retryAfter() time.Duration {
	if a.maxWait > 0 {
		return a.maxWait
	}
	return time.Second
}

// acquire claims a simulation slot: immediately when one is free,
// otherwise by queueing — bounded by maxQueue depth on entry, by
// maxWait while blocked, and always by ctx.  Depth and deadline
// rejections return *ShedError; a context end returns ctx.Err()
// (the client left; nothing was shed).
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	n := a.waiting.Add(1)
	defer a.waiting.Add(-1)
	if a.maxQueue > 0 && n > int64(a.maxQueue) {
		a.shedQueue.Add(1)
		return &ShedError{Reason: ShedQueueFull, RetryAfter: a.retryAfter()}
	}
	var deadline <-chan time.Time
	if a.maxWait > 0 {
		t := time.NewTimer(a.maxWait)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-deadline:
		a.shedWait.Add(1)
		return &ShedError{Reason: ShedWaitDeadline, RetryAfter: a.retryAfter()}
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }
