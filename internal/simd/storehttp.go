package simd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/pkg/resultstore"
)

// Store plane: the response store exposed over HTTP so peers can repair
// each other.  GET /v1/store/keys and /v1/store/digest require the
// store's optional Scanner capability (501 without it — a remote-backed
// replica cannot enumerate the shared tier, and a warming peer falls
// back to a replica that can); GET and PUT /v1/store/entries/{key} work
// against any store.  The warm-up and anti-entropy clients in this
// package are the intended consumers, but the endpoints are plain HTTP:
// an operator can inspect or reseed a store with curl.

// maxStoreKeyLen bounds the key path element of /v1/store/entries —
// canonical request keys are short hex strings, so anything longer is a
// caller bug, not a store concern.
const maxStoreKeyLen = 512

// storeKeyError validates a key from the URL path.
func storeKeyError(key string) error {
	if key == "" {
		return errors.New("simd: empty store key")
	}
	if len(key) > maxStoreKeyLen {
		return fmt.Errorf("simd: store key length %d exceeds %d", len(key), maxStoreKeyLen)
	}
	return nil
}

// bucketFilter parses the optional bucket=i&buckets=n selection of
// /v1/store/keys.  Both present: a fixed hash-space slice filter; both
// absent: nil (every key); anything else is a request error.
func bucketFilter(r *http.Request) (func(string) bool, error) {
	bucketStr, bucketsStr := r.URL.Query().Get("bucket"), r.URL.Query().Get("buckets")
	if bucketStr == "" && bucketsStr == "" {
		return nil, nil
	}
	bucket, err := strconv.Atoi(bucketStr)
	if err != nil {
		return nil, fmt.Errorf("simd: bad bucket %q", bucketStr)
	}
	buckets, err := strconv.Atoi(bucketsStr)
	if err != nil {
		return nil, fmt.Errorf("simd: bad buckets %q", bucketsStr)
	}
	if buckets < 1 || bucket < 0 || bucket >= buckets {
		return nil, fmt.Errorf("simd: bucket %d out of range [0, %d)", bucket, buckets)
	}
	return func(key string) bool { return resultstore.BucketOf(key, buckets) == bucket }, nil
}

// storeKeysResponse is the GET /v1/store/keys body.
type storeKeysResponse struct {
	Count int      `json:"count"`
	Keys  []string `json:"keys"`
}

// handleStoreKeys enumerates the store's live key set, optionally
// restricted to one fixed hash-space bucket (bucket=i&buckets=n).  501
// when the store cannot enumerate (no Scanner capability).
func (s *Server) handleStoreKeys(w http.ResponseWriter, r *http.Request) {
	filter, err := bucketFilter(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	keys, ok, err := resultstore.ScanKeys(r.Context(), s.store, filter)
	if !ok {
		writeError(w, http.StatusNotImplemented, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if keys == nil {
		keys = []string{}
	}
	resultstore.SortKeys(keys)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(storeKeysResponse{Count: len(keys), Keys: keys})
}

// storeDigestResponse is the GET /v1/store/digest body: the live key
// count plus one order-independent digest per fixed hash-space bucket.
type storeDigestResponse struct {
	Buckets int                  `json:"buckets"`
	Count   int                  `json:"count"`
	Digests []resultstore.Digest `json:"digests"`
}

// maxDigestBuckets bounds the buckets query parameter.
const maxDigestBuckets = 4096

// handleStoreDigest reports the per-bucket key-set digests anti-entropy
// exchanges.  501 when the store cannot enumerate.
func (s *Server) handleStoreDigest(w http.ResponseWriter, r *http.Request) {
	buckets := resultstore.DefaultDigestBuckets
	if v := r.URL.Query().Get("buckets"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxDigestBuckets {
			writeError(w, http.StatusBadRequest, fmt.Errorf("simd: bad buckets %q", v))
			return
		}
		buckets = n
	}
	keys, ok, err := resultstore.ScanKeys(r.Context(), s.store, nil)
	if !ok {
		writeError(w, http.StatusNotImplemented, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(storeDigestResponse{
		Buckets: buckets,
		Count:   len(keys),
		Digests: resultstore.BucketDigests(keys, buckets),
	})
}

// handleStoreGetEntry serves one stored response body verbatim.  The
// read is a Peek: repair traffic stays out of the hit/miss counters and
// does not disturb LRU recency.
func (s *Server) handleStoreGetEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := storeKeyError(key); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	body, ok, err := resultstore.Peek(r.Context(), s.store, key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no stored entry for key %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// handleStorePutEntry writes one entry into the store — the repair
// write path used by warm-up pulls (on the puller's side it is a plain
// Set), hinted-handoff replay and anti-entropy.  The body is stored
// verbatim, so a replayed entry serves byte-identical to the original
// computation.
func (s *Server) handleStorePutEntry(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if err := storeKeyError(key); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	if len(body) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("simd: empty store entry body"))
		return
	}
	if err := s.store.Set(r.Context(), key, body); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.repairWrites.Add(1)
	w.WriteHeader(http.StatusNoContent)
}
