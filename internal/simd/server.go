package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/singleflight"
	"repro/pkg/frontendsim"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// DefaultMaxBodyBytes caps request bodies: simulation and suite
// requests are a few KB even with a full config override, so 1 MiB is
// generous headroom while keeping a hostile multi-GB POST from being
// read to the end by the JSON decoder.
const DefaultMaxBodyBytes = 1 << 20

// Server is the HTTP API of the simulation service.
//
//	POST /v1/simulations        JSON frontendsim.Request -> JSON frontendsim.Result
//	POST /v1/simulations/stream JSON request -> NDJSON: one interval line
//	                            per thermal interval, then a final result line
//	POST /v1/suites             JSON frontendsim.SuiteRequest -> JSON SuiteResult
//	POST /v1/suites/stream      JSON suite request -> NDJSON: one shard line
//	                            per completed shard, then the terminal
//	                            aggregate line
//	GET  /v1/benchmarks         the available benchmark profiles
//	GET  /v1/cache/stats        response-cache counters
//	GET  /v1/store/keys         live key enumeration (501 without the
//	                            store's Scanner capability)
//	GET  /v1/store/digest       per-bucket key-set digests (anti-entropy)
//	GET  /v1/store/entries/{key}  one stored response body, verbatim
//	PUT  /v1/store/entries/{key}  repair write (hint replay, reseeding)
//	GET  /metrics               Prometheus text exposition (with WithMetrics)
//	GET  /healthz               readiness: 200 while serving, 503 when
//	                            draining or the response store is down
type Server struct {
	eng     *frontendsim.Engine
	store   resultstore.Store
	mux     *http.ServeMux
	metrics *obs.Registry
	// maxBody bounds every request body (http.MaxBytesReader); an
	// oversized POST is refused with 413 instead of decoded to the end.
	maxBody int64
	// ready gates /healthz: SetReady(false) flips the health check to
	// 503 so the scheduler's probes quarantine this backend (draining)
	// while in-flight and even new requests still complete.
	ready atomic.Bool
	// adm bounds concurrent simulations at the Engine's worker count and
	// (with WithAdmission) the queue of requests waiting for a slot:
	// excess load is shed with 503 + Retry-After instead of stacking
	// handler goroutines behind clients that will give up anyway.
	adm *admission
	// partial switches the suite endpoints to graceful degradation:
	// shard failures become per-shard error entries (X-Cache:
	// PARTIAL-ERROR, NDJSON shard-error lines) instead of failing the
	// whole suite.
	partial bool
	// flight single-flights concurrent identical requests on the
	// canonical key: the simulation runs once, every concurrent caller
	// shares the marshalled response.  Suite entries route through the
	// same group, so a suite entry and a plain simulation of the same
	// request also coalesce.
	flight singleflight.Group[[]byte]
	// coalesced counts requests served by joining another caller's
	// in-flight simulation (reported by /v1/cache/stats).
	coalesced atomic.Uint64

	// Self-healing counters: entries pulled (and pull failures) during
	// join-time warm-up, anti-entropy repair rounds and the entries they
	// pulled, and repair writes accepted through PUT /v1/store/entries.
	warmupKeys   atomic.Uint64
	warmupErrs   atomic.Uint64
	aeRounds     atomic.Uint64
	aePulled     atomic.Uint64
	aeErrs       atomic.Uint64
	repairWrites atomic.Uint64
}

// Option configures NewServer / NewServerWithStore.
type Option func(*Server)

// WithMetrics mounts reg's exposition on GET /metrics, instruments
// every route with the standard HTTP server metrics, and re-exports
// the response store and coalescing counters.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// WithMaxBodyBytes overrides the request-body cap (default
// DefaultMaxBodyBytes; n < 1 keeps the default — the cap is a
// correctness guard, not a feature to disable).
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithAdmission bounds the slot wait queue: at most maxQueue requests
// may wait for a simulation slot (further arrivals are shed
// immediately), and no request waits longer than maxWait.  Shed
// requests get 503 with a Retry-After header and count in
// simd_shed_total{reason}.  Zero for either disables that bound; the
// zero-value server queues without limit (the pre-admission-control
// behaviour).
func WithAdmission(maxQueue int, maxWait time.Duration) Option {
	return func(s *Server) {
		s.adm.maxQueue = maxQueue
		s.adm.maxWait = maxWait
	}
}

// WithPartialResults switches the suite endpoints to graceful
// degradation: when some shards cannot be served, /v1/suites answers
// 200 with X-Cache: PARTIAL-ERROR, per-shard `errors` entries and an
// aggregate over the shards that completed, and /v1/suites/stream
// emits {"type":"shard-error"} lines — instead of failing the whole
// suite for one dead shard.  A suite in which *every* shard fails
// still errors.
func WithPartialResults() Option {
	return func(s *Server) { s.partial = true }
}

// NewServer builds a Server over eng with an in-memory LRU response
// store of cacheSize entries (cacheSize < 1 disables caching).  At most
// eng.Workers() simulations run concurrently.
func NewServer(eng *frontendsim.Engine, cacheSize int, opts ...Option) *Server {
	return NewServerWithStore(eng, resultstore.NewMemory(cacheSize), opts...)
}

// NewServerWithStore builds a Server over eng serving its responses
// through store (a disk-backed or tiered store makes cached results
// survive restarts; a store shared across replicas lets one backend
// serve a peer's keys).  The caller owns the store's lifecycle and
// closes it after shutting the server down.
func NewServerWithStore(eng *frontendsim.Engine, store resultstore.Store, opts ...Option) *Server {
	s := &Server{
		eng:     eng,
		store:   store,
		mux:     http.NewServeMux(),
		maxBody: DefaultMaxBodyBytes,
		adm:     newAdmission(eng.Workers(), 0, 0),
	}
	s.ready.Store(true)
	for _, opt := range opts {
		opt(s)
	}
	s.handle("POST /v1/simulations", s.handleSimulate)
	s.handle("POST /v1/simulations/stream", s.handleStream)
	s.handle("POST /v1/suites", s.handleSuite)
	s.handle("POST /v1/suites/stream", s.handleSuiteStream)
	s.handle("GET /v1/benchmarks", s.handleBenchmarks)
	s.handle("GET /v1/cache/stats", s.handleCacheStats)
	s.handle("GET /v1/store/keys", s.handleStoreKeys)
	s.handle("GET /v1/store/digest", s.handleStoreDigest)
	s.handle("GET /v1/store/entries/{key}", s.handleStoreGetEntry)
	s.handle("PUT /v1/store/entries/{key}", s.handleStorePutEntry)
	s.handle("GET /healthz", s.handleHealthz)
	if s.metrics != nil {
		s.mux.Handle("GET /metrics", s.metrics.Handler())
		s.registerMetrics(s.metrics)
	}
	return s
}

// handle mounts pattern, instrumented when a metrics registry is
// configured (the handler label is the route pattern).
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	if s.metrics != nil {
		s.mux.Handle(pattern, s.metrics.InstrumentHandlerFunc(pattern, h))
		return
	}
	s.mux.HandleFunc(pattern, h)
}

// registerMetrics re-exports the server's counters on reg.
func (s *Server) registerMetrics(reg *obs.Registry) {
	// Store-level families (remote ops, batch sizes, compactions) ride
	// along whenever the configured backend has them.
	resultstore.RegisterMetrics(reg, s.store)
	reg.Sampled("simd_store_ops_total", "Response store counters, by tier.",
		obs.TypeCounter, []string{"tier", "op"}, func(emit func([]string, float64)) {
			for _, t := range s.store.Stats() {
				emit([]string{t.Tier, "hit"}, float64(t.Hits))
				emit([]string{t.Tier, "miss"}, float64(t.Misses))
				emit([]string{t.Tier, "set"}, float64(t.Sets))
				emit([]string{t.Tier, "error"}, float64(t.Errors))
			}
		})
	reg.Sampled("simd_store_entries", "Response store entries, by tier.",
		obs.TypeGauge, []string{"tier"}, func(emit func([]string, float64)) {
			for _, t := range s.store.Stats() {
				emit([]string{t.Tier}, float64(t.Entries))
			}
		})
	reg.Sampled("simd_coalesced_total", "Requests served by joining an in-flight identical simulation.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.coalesced.Load()))
		})
	reg.Sampled("simd_slots_in_use", "Simulation slots currently running (capacity = engine workers).",
		obs.TypeGauge, nil, func(emit func([]string, float64)) {
			emit(nil, float64(len(s.adm.slots)))
		})
	reg.Sampled("simd_queue_depth", "Requests currently waiting for a simulation slot.",
		obs.TypeGauge, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.adm.waiting.Load()))
		})
	reg.Sampled("simd_shed_total", "Requests shed by admission control, by reason.",
		obs.TypeCounter, []string{"reason"}, func(emit func([]string, float64)) {
			emit([]string{ShedQueueFull}, float64(s.adm.shedQueue.Load()))
			emit([]string{ShedWaitDeadline}, float64(s.adm.shedWait.Load()))
		})
	reg.Sampled("simd_ready", "1 while the server reports ready on /healthz, 0 while draining.",
		obs.TypeGauge, nil, func(emit func([]string, float64)) {
			if s.ready.Load() {
				emit(nil, 1)
			} else {
				emit(nil, 0)
			}
		})
	reg.Sampled("simd_warmup_keys_total", "Entries pulled from peers during join-time warm-up.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.warmupKeys.Load()))
		})
	reg.Sampled("simd_warmup_errors_total", "Warm-up pulls that failed on every peer.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.warmupErrs.Load()))
		})
	reg.Sampled("simd_antientropy_rounds_total", "Completed anti-entropy digest exchanges.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.aeRounds.Load()))
		})
	reg.Sampled("simd_antientropy_pulled_total", "Entries pulled from peers by anti-entropy repair.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.aePulled.Load()))
		})
	reg.Sampled("simd_antientropy_errors_total", "Anti-entropy rounds or pulls that failed.",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.aeErrs.Load()))
		})
	reg.Sampled("simd_store_repair_writes_total", "Entries accepted through PUT /v1/store/entries (hint replay, reseeding).",
		obs.TypeCounter, nil, func(emit func([]string, float64)) {
			emit(nil, float64(s.repairWrites.Load()))
		})
}

// SetReady flips the /healthz verdict.  cmd/simd calls SetReady(false)
// when shutdown begins so the scheduler's membership probes stop
// routing new work here while the listener drains.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// healthProbeKey is the store key the readiness check peeks; it never
// exists, the probe only cares whether the store answers at all.
const healthProbeKey = "healthz-store-probe"

// handleHealthz is the readiness check the membership registry probes:
// 503 while draining (SetReady(false)) or when the response store
// errors (closed or a failed disk tier) — a backend that cannot serve
// its store should be quarantined, not handed traffic.  The store peek
// stays out of the cache hit/miss counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("simd: draining"))
		return
	}
	if _, _, err := resultstore.Peek(r.Context(), s.store, healthProbeKey); err != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("simd: response store unavailable: %w", err))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// statusFor maps run errors to HTTP statuses: client cancellations map
// to 499 (nginx convention); everything else is an internal failure and
// must be a 5xx.  Every handler validates the request *before* the run
// starts (decode and validation failures are 400 at the handler), so an
// error reaching this point is the server's fault — a corrupt store
// entry, a marshalling failure, a future store fault.  Reporting those
// as 400 would make the scheduler's retry classifier treat a backend
// fault as permanent and abort its ring walk instead of failing over.
func statusFor(err error) int {
	var se *ShedError
	if errors.As(err, &se) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusInternalServerError
}

// writeRunError is writeError for errors out of a run: it adds the
// Retry-After header when admission control shed the request, so the
// 503 tells clients *when* to come back, not just to go away.
func writeRunError(w http.ResponseWriter, err error) {
	var se *ShedError
	if errors.As(err, &se) {
		w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfterSeconds()))
	}
	writeError(w, statusFor(err), err)
}

// requestContext derives the handler context: the request's own,
// bounded by the caller's X-Deadline-Budget when the hop carries one.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return frontendsim.ApplyDeadlineBudget(r.Context(), r.Header.Get(frontendsim.DeadlineBudgetHeader))
}

// decodeStatus maps a request-decoding failure to its HTTP status: an
// over-limit body (http.MaxBytesReader) is 413, anything else is the
// caller's malformed JSON.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// acquire claims a simulation slot through the admission controller, or
// fails when the queue bounds are exceeded (*ShedError) or ctx ends.
func (s *Server) acquire(ctx context.Context) error { return s.adm.acquire(ctx) }

func (s *Server) release() { s.adm.release() }

// decodeRequest decodes a simulation request with the body cap applied
// and validates it, so every error after a successful decode is the
// server's own (see statusFor).
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (frontendsim.Request, error) {
	var req frontendsim.Request
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("simd: decode request: %w", err)
	}
	return req, req.Validate()
}

// decodeSuite is decodeRequest for suite requests.
func (s *Server) decodeSuite(w http.ResponseWriter, r *http.Request) (frontendsim.SuiteRequest, error) {
	var suite frontendsim.SuiteRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&suite); err != nil {
		return suite, fmt.Errorf("simd: decode suite request: %w", err)
	}
	return suite, suite.Validate()
}

// simulate produces the marshalled response for one canonical request:
// from the response store when present, by joining an identical
// in-flight simulation when one exists, and by running the simulation
// otherwise.  source reports which path served the body: "HIT",
// "COALESCED" or "MISS".  Store failures are served around: a Get error
// falls through to the engine, a Set error only costs the next request
// a recompute (both are visible in the store's error counters).
func (s *Server) simulate(ctx context.Context, key string, req frontendsim.Request) (body []byte, source string, err error) {
	if body, ok, _ := s.store.Get(ctx, key); ok {
		return body, "HIT", nil
	}
	body, err, shared := s.flight.Do(ctx, key, func(runCtx context.Context) ([]byte, error) {
		// Re-check the store: a caller that raced a just-completed
		// identical run starts a fresh execution (the flight entry is
		// gone) but its response is already stored.  The Peek keeps the
		// re-check invisible in the stats (the top-level Get above
		// already counted this request as a miss, and it reports MISS).
		if body, ok, _ := resultstore.Peek(runCtx, s.store, key); ok {
			return body, nil
		}
		if err := s.acquire(runCtx); err != nil {
			return nil, err
		}
		defer s.release()
		res, err := s.eng.Run(runCtx, req)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		b = append(b, '\n')
		s.store.Set(runCtx, key, b)
		return b, nil
	})
	if err != nil {
		return nil, "", err
	}
	if shared {
		s.coalesced.Add(1)
		return body, "COALESCED", nil
	}
	return body, "MISS", nil
}

// handleSimulate runs one simulation, serving repeats of the same
// canonical request from the LRU cache and single-flighting concurrent
// identical requests onto one engine run.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	key, err := s.eng.RequestKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	body, source, err := s.simulate(ctx, key, req)
	if err != nil {
		writeRunError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
}

// dispatchSource adapts simulate to the frontendsim.SourcedDispatcher
// signature for suite runs: each suite shard flows through the same
// cache and single-flight group as a plain simulation, so suites and
// concurrent single requests de-duplicate against each other too.
func (s *Server) dispatchSource(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, string, error) {
	key, err := s.eng.RequestKey(req)
	if err != nil {
		return nil, "", err
	}
	body, source, err := s.simulate(ctx, key, req)
	if err != nil {
		return nil, "", err
	}
	var res frontendsim.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, "", fmt.Errorf("simd: decode cached result: %w", err)
	}
	return &res, source, nil
}

// dispatch is dispatchSource without the source, the plain
// frontendsim.Dispatcher of the blocking suite endpoint.
func (s *Server) dispatch(ctx context.Context, req frontendsim.Request) (*frontendsim.Result, error) {
	res, _, err := s.dispatchSource(ctx, req)
	return res, err
}

// handleSuite runs a whole benchmark suite in-process (single-node mode
// of the /v1/suites API that cmd/simsched serves across a backend ring)
// and responds with the deterministic frontendsim.SuiteResult.  With
// WithPartialResults, shard failures degrade to `errors` entries and
// X-Cache: PARTIAL-ERROR instead of failing the suite.
func (s *Server) handleSuite(w http.ResponseWriter, r *http.Request) {
	suite, err := s.decodeSuite(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	var res *frontendsim.SuiteResult
	if s.partial {
		res, err = s.eng.RunSuitePartial(ctx, suite, s.dispatchSource, nil)
	} else {
		res, err = s.eng.RunSuiteVia(ctx, suite, s.dispatch)
	}
	if err != nil {
		writeRunError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if len(res.Errors) > 0 {
		w.Header().Set("X-Cache", "PARTIAL-ERROR")
	}
	json.NewEncoder(w).Encode(res)
}

// handleSuiteStream is handleSuite with NDJSON shard streaming: one
// {"type":"shard"} line per completed shard the moment it lands (cached
// shards effectively instantly), flushed per line, then a terminal
// {"type":"aggregate"} line whose suite field is byte-identical (as
// JSON) to the blocking /v1/suites response of the same request.  A run
// failure after streaming began becomes a terminal {"type":"error"}
// line — the HTTP status is already committed.
func (s *Server) handleSuiteStream(w http.ResponseWriter, r *http.Request) {
	suite, err := s.decodeSuite(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the committed 200 to the wire now: the first shard may
		// be arbitrarily slow, and a client must be able to observe
		// (and abandon) the stream before any line arrives.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	emit := func(line frontendsim.SuiteStreamLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sink := func(sh frontendsim.ShardResult) { emit(shardLine(sh)) }
	var res *frontendsim.SuiteResult
	if s.partial {
		res, err = s.eng.RunSuitePartial(ctx, suite, s.dispatchSource, sink)
	} else {
		res, err = s.eng.RunSuiteStream(ctx, suite, s.dispatchSource, sink)
	}
	if err != nil {
		emit(frontendsim.SuiteStreamLine{Type: "error", Error: err.Error()})
		return
	}
	emit(frontendsim.SuiteStreamLine{Type: "aggregate", Suite: res})
}

// shardLine renders one sink emission as its NDJSON line: a completed
// shard as {"type":"shard"}, a failed shard of a partial run as
// {"type":"shard-error"}.
func shardLine(sh frontendsim.ShardResult) frontendsim.SuiteStreamLine {
	if sh.Err != "" {
		return frontendsim.SuiteStreamLine{
			Type:      "shard-error",
			Positions: sh.Positions,
			Benchmark: sh.Benchmark,
			Error:     sh.Err,
		}
	}
	return frontendsim.SuiteStreamLine{
		Type:      "shard",
		Positions: sh.Positions,
		Benchmark: sh.Benchmark,
		Source:    sh.Source,
		Result:    sh.Result,
	}
}

// streamLine is one NDJSON line of the streaming endpoint.
type streamLine struct {
	Type     string                `json:"type"` // "interval" | "result" | "error"
	Interval *frontendsim.Snapshot `json:"interval,omitempty"`
	Result   *frontendsim.Result   `json:"result,omitempty"`
	Error    string                `json:"error,omitempty"`
}

// handleStream runs one simulation and streams NDJSON: one line per
// thermal interval as it is simulated, then a final result line.
// Streamed runs bypass the response cache — the stream is the product.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(w, r)
	if err != nil {
		writeError(w, decodeStatus(err), err)
		return
	}
	ctx, cancel := requestContext(r)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		writeRunError(w, err)
		return
	}
	defer s.release()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	obs := frontendsim.ObserverFunc(func(snap frontendsim.Snapshot) {
		enc.Encode(streamLine{Type: "interval", Interval: &snap})
		if flusher != nil {
			flusher.Flush()
		}
	})
	res, err := s.eng.RunObserved(ctx, req, obs)
	if err != nil {
		enc.Encode(streamLine{Type: "error", Error: err.Error()})
		return
	}
	enc.Encode(streamLine{Type: "result", Result: res})
}

// handleBenchmarks lists the available workload profiles.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Benchmarks []string `json:"benchmarks"`
	}{Benchmarks: frontendsim.Benchmarks()})
}

// handleCacheStats reports the response store's counters: the folded
// store-level totals (Totals' semantics) plus each tier's own counters.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	tiers := s.store.Stats()
	entries, hits, misses := resultstore.Totals(tiers)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries   int                     `json:"entries"`
		Hits      uint64                  `json:"hits"`
		Misses    uint64                  `json:"misses"`
		Coalesced uint64                  `json:"coalesced"`
		Tiers     []resultstore.TierStats `json:"tiers"`
	}{Entries: entries, Hits: hits, Misses: misses, Coalesced: s.coalesced.Load(), Tiers: tiers})
}

// Describe returns a one-line routing summary (used by cmd/simd startup
// logging).
func Describe() string {
	return strings.Join([]string{
		"POST /v1/simulations",
		"POST /v1/simulations/stream",
		"POST /v1/suites",
		"POST /v1/suites/stream",
		"GET /v1/benchmarks",
		"GET /v1/cache/stats",
		"GET /v1/store/keys",
		"GET /v1/store/digest",
		"GET|PUT /v1/store/entries/{key}",
		"GET /metrics",
		"GET /healthz",
	}, ", ")
}
