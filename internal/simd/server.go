package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/pkg/frontendsim"
)

// Server is the HTTP API of the simulation service.
//
//	POST /v1/simulations        JSON frontendsim.Request -> JSON frontendsim.Result
//	POST /v1/simulations/stream JSON request -> NDJSON: one interval line
//	                            per thermal interval, then a final result line
//	GET  /v1/benchmarks         the available benchmark profiles
//	GET  /v1/cache/stats        response-cache counters
//	GET  /healthz               liveness
type Server struct {
	eng   *frontendsim.Engine
	cache *lruCache
	mux   *http.ServeMux
	// slots bounds concurrent simulations at the Engine's worker count;
	// excess requests queue here (or give up when their context ends)
	// instead of oversubscribing the CPU with unbounded handler
	// goroutines.
	slots chan struct{}
}

// NewServer builds a Server over eng with an LRU response cache of
// cacheSize entries (cacheSize < 1 disables caching).  At most
// eng.Workers() simulations run concurrently.
func NewServer(eng *frontendsim.Engine, cacheSize int) *Server {
	s := &Server{
		eng:   eng,
		cache: newLRUCache(cacheSize),
		mux:   http.NewServeMux(),
		slots: make(chan struct{}, eng.Workers()),
	}
	s.mux.HandleFunc("POST /v1/simulations", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/simulations/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: err.Error()})
}

// statusFor maps run errors to HTTP statuses: client cancellations map
// to 499 (nginx convention), everything else is a bad request — the
// engine only fails on invalid requests.
func statusFor(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499
	}
	return http.StatusBadRequest
}

// acquire claims a simulation slot, or fails when ctx ends first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.slots }

func decodeRequest(r *http.Request) (frontendsim.Request, error) {
	var req frontendsim.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("simd: decode request: %w", err)
	}
	return req, nil
}

// handleSimulate runs one simulation, serving repeats of the same
// canonical request from the LRU cache.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := s.eng.RequestKey(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if body, ok := s.cache.Get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "HIT")
		w.Write(body)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	res, err := s.eng.Run(r.Context(), req)
	s.release()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	s.cache.Add(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "MISS")
	w.Write(body)
}

// streamLine is one NDJSON line of the streaming endpoint.
type streamLine struct {
	Type     string                `json:"type"` // "interval" | "result" | "error"
	Interval *frontendsim.Snapshot `json:"interval,omitempty"`
	Result   *frontendsim.Result   `json:"result,omitempty"`
	Error    string                `json:"error,omitempty"`
}

// handleStream runs one simulation and streams NDJSON: one line per
// thermal interval as it is simulated, then a final result line.
// Streamed runs bypass the response cache — the stream is the product.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	defer s.release()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	obs := frontendsim.ObserverFunc(func(snap frontendsim.Snapshot) {
		enc.Encode(streamLine{Type: "interval", Interval: &snap})
		if flusher != nil {
			flusher.Flush()
		}
	})
	res, err := s.eng.RunObserved(r.Context(), req, obs)
	if err != nil {
		enc.Encode(streamLine{Type: "error", Error: err.Error()})
		return
	}
	enc.Encode(streamLine{Type: "result", Result: res})
}

// handleBenchmarks lists the available workload profiles.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Benchmarks []string `json:"benchmarks"`
	}{Benchmarks: frontendsim.Benchmarks()})
}

// handleCacheStats reports response-cache counters.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	hits, misses := s.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	}{Entries: s.cache.Len(), Hits: hits, Misses: misses})
}

// Describe returns a one-line routing summary (used by cmd/simd startup
// logging).
func Describe() string {
	return strings.Join([]string{
		"POST /v1/simulations",
		"POST /v1/simulations/stream",
		"GET /v1/benchmarks",
		"GET /v1/cache/stats",
		"GET /healthz",
	}, ", ")
}
