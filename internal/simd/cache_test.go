package simd

import (
	"fmt"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("1"))
	c.Add("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; adding c evicts b.
	c.Add("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "3" {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", []byte("1"))
	c.Add("a", []byte("2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d after double add", c.Len())
	}
	if v, _ := c.Get("a"); string(v) != "2" {
		t.Errorf("a = %q, want updated value", v)
	}
}

func TestLRUStats(t *testing.T) {
	c := newLRUCache(4)
	c.Add("a", []byte("1"))
	c.Get("a")
	c.Get("a")
	c.Get("missing")
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Add("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}

func TestLRUCapacityBound(t *testing.T) {
	c := newLRUCache(8)
	for i := 0; i < 100; i++ {
		c.Add(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 8 {
		t.Errorf("len = %d, want capacity 8", c.Len())
	}
}
