package simd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/memcachetest"
	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func put(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPut, path, strings.NewReader(body)))
	return w
}

// storeServer is a simd server over an explicit memory store, with the
// engine unused by the store-plane endpoints.
func storeServer(t *testing.T) (*Server, resultstore.Store) {
	t.Helper()
	store := resultstore.NewMemory(64)
	t.Cleanup(func() { store.Close() })
	eng, _ := countingEngine(nil)
	return NewServerWithStore(eng, store), store
}

func TestStoreEntryPutGetRoundTrip(t *testing.T) {
	srv, _ := storeServer(t)
	body := `{"benchmark":"gzip","meas_cycles":123}` + "\n"
	if w := put(t, srv, "/v1/store/entries/key-1", body); w.Code != http.StatusNoContent {
		t.Fatalf("PUT = %d, body %s", w.Code, w.Body.String())
	}
	w := get(t, srv, "/v1/store/entries/key-1")
	if w.Code != http.StatusOK {
		t.Fatalf("GET = %d", w.Code)
	}
	if w.Body.String() != body {
		t.Fatalf("entry body = %q, want the stored bytes verbatim %q", w.Body.String(), body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}

func TestStoreEntryErrors(t *testing.T) {
	srv, _ := storeServer(t)
	if w := get(t, srv, "/v1/store/entries/absent"); w.Code != http.StatusNotFound {
		t.Errorf("GET absent = %d, want 404", w.Code)
	}
	if w := put(t, srv, "/v1/store/entries/empty", ""); w.Code != http.StatusBadRequest {
		t.Errorf("PUT empty body = %d, want 400", w.Code)
	}
	long := strings.Repeat("k", maxStoreKeyLen+1)
	if w := get(t, srv, "/v1/store/entries/"+long); w.Code != http.StatusBadRequest {
		t.Errorf("GET oversized key = %d, want 400", w.Code)
	}
}

// TestStoreEntryReadsInvisible pins that repair reads are Peeks: pulling
// an entry moves neither the hit nor the miss counter.
func TestStoreEntryReadsInvisible(t *testing.T) {
	srv, store := storeServer(t)
	if err := store.Set(context.Background(), "key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	get(t, srv, "/v1/store/entries/key")
	get(t, srv, "/v1/store/entries/missing")
	_, hits, misses := resultstore.Totals(store.Stats())
	if hits != 0 || misses != 0 {
		t.Fatalf("repair reads moved counters: hits=%d misses=%d", hits, misses)
	}
}

func TestStoreKeysEndpoint(t *testing.T) {
	srv, store := storeServer(t)
	want := []string{"alpha", "beta", "gamma"}
	for _, k := range want {
		if err := store.Set(context.Background(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w := get(t, srv, "/v1/store/keys")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var body storeKeysResponse
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 3 || !reflect.DeepEqual(body.Keys, want) {
		t.Fatalf("keys = %+v, want sorted %v", body, want)
	}

	// Bucket selection: the union over all buckets is the full key set,
	// and each key appears in exactly its own bucket.
	const buckets = 4
	seen := map[string]int{}
	for b := 0; b < buckets; b++ {
		var part storeKeysResponse
		w := get(t, srv, "/v1/store/keys?bucket="+string(rune('0'+b))+"&buckets=4")
		if w.Code != http.StatusOK {
			t.Fatalf("bucket %d: status %d", b, w.Code)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &part); err != nil {
			t.Fatal(err)
		}
		for _, k := range part.Keys {
			seen[k]++
			if got := resultstore.BucketOf(k, buckets); got != b {
				t.Errorf("key %q served in bucket %d, hashes to %d", k, b, got)
			}
		}
	}
	for _, k := range want {
		if seen[k] != 1 {
			t.Errorf("key %q appeared in %d buckets", k, seen[k])
		}
	}

	for _, bad := range []string{
		"/v1/store/keys?bucket=0",            // buckets missing
		"/v1/store/keys?buckets=4",           // bucket missing
		"/v1/store/keys?bucket=4&buckets=4",  // out of range
		"/v1/store/keys?bucket=-1&buckets=4", // negative
		"/v1/store/keys?bucket=x&buckets=4",  // unparseable
	} {
		if w := get(t, srv, bad); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", bad, w.Code)
		}
	}
}

func TestStoreDigestEndpoint(t *testing.T) {
	srv, store := storeServer(t)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		if err := store.Set(context.Background(), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w := get(t, srv, "/v1/store/digest?buckets=8")
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var body storeDigestResponse
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Buckets != 8 || body.Count != 4 {
		t.Fatalf("digest header = %+v", body)
	}
	if want := resultstore.BucketDigests(keys, 8); !reflect.DeepEqual(body.Digests, want) {
		t.Fatalf("digests = %v, want %v", body.Digests, want)
	}
	for _, bad := range []string{"/v1/store/digest?buckets=0", "/v1/store/digest?buckets=5000", "/v1/store/digest?buckets=x"} {
		if w := get(t, srv, bad); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", bad, w.Code)
		}
	}
}

// TestStoreScanEndpointsUnsupported pins the capability-absent contract:
// a remote-backed replica answers 501 for enumeration and digests (a
// warming peer falls back to a replica that can enumerate) while entry
// GET/PUT still work.
func TestStoreScanEndpointsUnsupported(t *testing.T) {
	cache := memcachetest.Start(t)
	store, err := resultstore.NewRemote(resultstore.RemoteConfig{Servers: []string{cache.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := NewServerWithStore(frontendsim.New(), store)
	if w := get(t, srv, "/v1/store/keys"); w.Code != http.StatusNotImplemented {
		t.Errorf("keys = %d, want 501", w.Code)
	}
	if w := get(t, srv, "/v1/store/digest"); w.Code != http.StatusNotImplemented {
		t.Errorf("digest = %d, want 501", w.Code)
	}
	if w := put(t, srv, "/v1/store/entries/k", `{"v":1}`); w.Code != http.StatusNoContent {
		t.Errorf("PUT = %d, want 204", w.Code)
	}
	if w := get(t, srv, "/v1/store/entries/k"); w.Code != http.StatusOK || w.Body.String() != `{"v":1}` {
		t.Errorf("GET = %d %q", w.Code, w.Body.String())
	}
}
