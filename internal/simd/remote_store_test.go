package simd

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/memcachetest"
	"repro/pkg/resultstore"
)

// TestReplicaServesPeerResultFromRemoteStore is the shared-tier
// acceptance test: two simd replicas — separate engines, separate
// processes for all the store can tell — share one remote cache.
// Replica A computes a simulation and writes it through; replica B
// answers the identical request with X-Cache: HIT and zero engine runs,
// byte-identical to A's response.  That is the paper's cross-machine
// work sharing made concrete: a fresh replica serves a peer's keys
// without recomputing them.
func TestReplicaServesPeerResultFromRemoteStore(t *testing.T) {
	cache := memcachetest.Start(t)
	const reqBody = `{"benchmark":"gzip","bank_hopping":true}`

	newReplica := func() (*Server, *atomic.Int64, resultstore.Store) {
		store, err := resultstore.NewRemote(resultstore.RemoteConfig{
			Servers: []string{cache.Addr()},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		eng, runs := countingEngine(nil)
		return NewServerWithStore(eng, store), runs, store
	}

	replicaA, runsA, _ := newReplica()
	first := post(t, replicaA, "/v1/simulations", reqBody)
	if first.Code != http.StatusOK {
		t.Fatalf("replica A status = %d, body %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("replica A X-Cache = %q, want MISS", got)
	}
	if runsA.Load() != 1 {
		t.Fatalf("replica A ran the engine %d times, want 1", runsA.Load())
	}

	replicaB, runsB, storeB := newReplica()
	second := post(t, replicaB, "/v1/simulations", reqBody)
	if second.Code != http.StatusOK {
		t.Fatalf("replica B status = %d, body %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("replica B X-Cache = %q, want HIT", got)
	}
	if runsB.Load() != 0 {
		t.Errorf("replica B ran the engine %d times, want 0", runsB.Load())
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("replica B's body differs from replica A's")
	}
	if st := storeB.Stats()[0]; st.Tier != "remote" || st.Hits != 1 {
		t.Errorf("replica B remote tier = %+v, want 1 hit", st)
	}
}

// TestTieredRemoteDegradesWhenCacheDies: a replica on -store
// tiered-remote keeps serving (memory tier + engine) when the shared
// cache becomes unreachable — requests succeed, nothing hangs, and
// /healthz stays ready.
func TestTieredRemoteDegradesWhenCacheDies(t *testing.T) {
	cache := memcachetest.Start(t)
	remote, err := resultstore.NewRemote(resultstore.RemoteConfig{
		Servers: []string{cache.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	store := resultstore.NewTiered(resultstore.NewMemory(16), remote)
	defer store.Close()
	eng, runs := countingEngine(nil)
	srv := NewServerWithStore(eng, store)

	const reqBody = `{"benchmark":"gzip"}`
	if w := post(t, srv, "/v1/simulations", reqBody); w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("warm-up X-Cache = %q, want MISS", w.Header().Get("X-Cache"))
	}

	cache.Close()

	// The memory tier still answers the warm key.
	if w := post(t, srv, "/v1/simulations", reqBody); w.Header().Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache after cache death = %q, want HIT from the memory tier",
			w.Header().Get("X-Cache"))
	}
	// A cold key computes: the dead remote tier reads as a miss, not a
	// failure.
	w := post(t, srv, "/v1/simulations", `{"benchmark":"mcf"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("cold request with dead cache: status %d, body %s", w.Code, w.Body.String())
	}
	if runs.Load() != 2 {
		t.Errorf("engine ran %d times, want 2", runs.Load())
	}
	// Peek-backed health stays green: front tier healthy ⇒ degraded,
	// not down.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz with dead remote tier = %d, want 200", rec.Code)
	}
}
