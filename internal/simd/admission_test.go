package simd

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/frontendsim"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter is allowed to queue.
	queued := make(chan error, 1)
	go func() { queued <- a.acquire(context.Background()) }()
	waitFor(t, "first waiter to queue", func() bool { return a.waiting.Load() == 1 })

	// The second is over the depth bound and shed immediately.
	err := a.acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedQueueFull {
		t.Fatalf("over-depth acquire = %v, want ShedError(queue_full)", err)
	}
	if se.RetryAfterSeconds() < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", se.RetryAfterSeconds())
	}
	if a.shedQueue.Load() != 1 {
		t.Errorf("shedQueue = %d, want 1", a.shedQueue.Load())
	}

	// Releasing the slot admits the queued waiter.
	a.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter = %v, want admission", err)
	}
	a.release()
}

func TestAdmissionWaitDeadline(t *testing.T) {
	a := newAdmission(1, 0, 10*time.Millisecond)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.release()

	err := a.acquire(context.Background())
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != ShedWaitDeadline {
		t.Fatalf("expired wait = %v, want ShedError(wait_deadline)", err)
	}
	if a.shedWait.Load() != 1 {
		t.Errorf("shedWait = %d, want 1", a.shedWait.Load())
	}
}

func TestAdmissionContextEndIsNotAShed(t *testing.T) {
	a := newAdmission(1, 0, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.release()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if a.shedQueue.Load() != 0 || a.shedWait.Load() != 0 {
		t.Error("client departure counted as a shed")
	}
}

func TestAdmissionUnboundedByDefault(t *testing.T) {
	a := newAdmission(1, 0, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = a.acquire(context.Background())
			if errs[i] == nil {
				a.release()
			}
		}(i)
	}
	waitFor(t, "all waiters queued or admitted", func() bool {
		return a.waiting.Load() == waiters
	})
	a.release()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("waiter %d: %v (zero-value admission must never shed)", i, err)
		}
	}
}

// TestSimulateShedsWithRetryAfter pins the HTTP contract of a shed:
// 503, the JSON error envelope, and a Retry-After header.
func TestSimulateShedsWithRetryAfter(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
		frontendsim.WithWorkers(1),
	)
	srv := NewServer(eng, 0, WithAdmission(0, 10*time.Millisecond))

	// Occupy the single slot so the request must queue, then time out.
	srv.adm.slots <- struct{}{}
	defer func() { <-srv.adm.slots }()

	w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s, want 503", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("503 shed carries no Retry-After header")
	}
	if body := w.Body.String(); body == "" || body[0] != '{' {
		t.Errorf("shed body is not the JSON envelope: %q", body)
	}
}

// TestDeadlineBudgetBoundsRequest asserts an exhausted X-Deadline-Budget
// fails the request as a cancellation (499), not a 5xx.
func TestDeadlineBudgetBoundsRequest(t *testing.T) {
	srv := testServer(0)
	req := httptest.NewRequest(http.MethodPost, "/v1/simulations", strings.NewReader(`{"benchmark":"gzip"}`))
	req.Header.Set(frontendsim.DeadlineBudgetHeader, "0")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != 499 {
		t.Fatalf("status = %d, body %s, want 499", w.Code, w.Body.String())
	}
}
