package simd

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/memcachetest"
	"repro/pkg/resultstore"
)

// digestKey produces a digest-shaped key (production keys are canonical
// request hashes; sequential strings would cluster on the FNV ring).
func digestKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("ae-%03d", i)))
	return fmt.Sprintf("%x", sum[:8])
}

func seedKeys(t *testing.T, s resultstore.Store, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		k := digestKey(i)
		if err := s.Set(context.Background(), k, []byte("body-"+k)); err != nil {
			t.Fatal(err)
		}
	}
}

func newAntiEntropy(t *testing.T, r *replica, cfg AntiEntropyConfig) *AntiEntropy {
	t.Helper()
	if cfg.SelfURL == "" {
		cfg.SelfURL = r.url
	}
	ae, err := r.api.NewAntiEntropy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ae
}

// TestAntiEntropyConverges diverges two stores — each holds keys the
// other is missing plus a shared set — and asserts one RunOnce per side
// converges both to the union, with matching digests.
func TestAntiEntropyConverges(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	seedKeys(t, a.store, 0, 20)  // 0..14 exclusive to A via below
	seedKeys(t, b.store, 15, 35) // 15..19 shared, 20..34 exclusive to B

	aeA := newAntiEntropy(t, a, AntiEntropyConfig{Peers: []string{b.url}})
	aeB := newAntiEntropy(t, b, AntiEntropyConfig{Peers: []string{a.url}})

	pulledA, err := aeA.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("A RunOnce: %v", err)
	}
	if pulledA != 15 {
		t.Errorf("A pulled %d, want B's 15 exclusive keys", pulledA)
	}
	pulledB, err := aeB.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("B RunOnce: %v", err)
	}
	if pulledB != 15 {
		t.Errorf("B pulled %d, want A's 15 exclusive keys", pulledB)
	}

	keysA, _, _ := resultstore.ScanKeys(context.Background(), a.store, nil)
	keysB, _, _ := resultstore.ScanKeys(context.Background(), b.store, nil)
	if len(keysA) != 35 || len(keysB) != 35 {
		t.Fatalf("converged sizes = %d, %d; want 35 each", len(keysA), len(keysB))
	}
	if resultstore.KeyDigest(keysA) != resultstore.KeyDigest(keysB) {
		t.Fatal("digests differ after convergence")
	}
	for i := 0; i < 35; i++ {
		k := digestKey(i)
		if v, ok, _ := resultstore.Peek(context.Background(), a.store, k); !ok || string(v) != "body-"+k {
			t.Fatalf("A missing %s after repair", k)
		}
	}
	if a.api.aePulled.Load() != 15 || a.api.aeRounds.Load() != 1 {
		t.Errorf("A counters: pulled=%d rounds=%d", a.api.aePulled.Load(), a.api.aeRounds.Load())
	}
}

// TestAntiEntropyIdenticalStoresNoop pins the steady state: matching
// digests mean zero pulls and zero per-key traffic.
func TestAntiEntropyIdenticalStoresNoop(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	seedKeys(t, a.store, 0, 10)
	seedKeys(t, b.store, 0, 10)
	ae := newAntiEntropy(t, a, AntiEntropyConfig{Peers: []string{b.url}})
	pulled, err := ae.RunOnce(context.Background())
	if err != nil || pulled != 0 {
		t.Fatalf("RunOnce on identical stores = %d, %v", pulled, err)
	}
}

// TestAntiEntropyRingDiscovery resolves peers from the scheduler's
// /v1/ring instead of a static list.
func TestAntiEntropyRingDiscovery(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	seedKeys(t, b.store, 0, 5)
	ringURL := ringStub(t, []string{a.url, b.url}, 3)
	ae := newAntiEntropy(t, a, AntiEntropyConfig{RingURL: ringURL})
	pulled, err := ae.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("RunOnce: %v", err)
	}
	if pulled != 5 {
		t.Errorf("pulled %d via ring discovery, want 5", pulled)
	}
}

// TestAntiEntropyFallsPastDeadPeer keeps repairing when the preferred
// neighbor is down: the round falls over to the next peer.
func TestAntiEntropyFallsPastDeadPeer(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	seedKeys(t, b.store, 0, 5)
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	ae := newAntiEntropy(t, a, AntiEntropyConfig{Peers: []string{deadURL, b.url}})
	pulled, err := ae.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("RunOnce with one dead peer: %v", err)
	}
	if pulled != 5 {
		t.Errorf("pulled %d, want 5 from the surviving peer", pulled)
	}
}

// TestAntiEntropyUnscannableLocalStore: a remote-backed local store
// cannot digest itself; RunOnce reports ErrScanUnsupported so the loop
// can disable itself instead of erroring forever.
func TestAntiEntropyUnscannableLocalStore(t *testing.T) {
	cache := memcachetest.Start(t)
	store, err := resultstore.NewRemote(resultstore.RemoteConfig{Servers: []string{cache.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	eng, _ := warmEngine()
	api := NewServerWithStore(eng, store)
	peer := newReplica(t)
	ae, err := api.NewAntiEntropy(AntiEntropyConfig{SelfURL: "http://self", Peers: []string{peer.url}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.RunOnce(context.Background()); !errors.Is(err, resultstore.ErrScanUnsupported) {
		t.Fatalf("RunOnce over a remote store = %v, want ErrScanUnsupported", err)
	}
}

// TestAntiEntropyLoop runs the production Start/Close path: divergence
// heals within a few ticks.
func TestAntiEntropyLoop(t *testing.T) {
	a, b := newReplica(t), newReplica(t)
	seedKeys(t, b.store, 0, 3)
	ae := newAntiEntropy(t, a, AntiEntropyConfig{Peers: []string{b.url}, Interval: 10 * time.Millisecond})
	ae.Start()
	defer ae.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.api.aePulled.Load() == 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("loop pulled %d of 3 before the deadline", a.api.aePulled.Load())
}
