// Package simd implements the HTTP simulation service behind cmd/simd: a
// thin request/response frontend over the frontendsim Engine with an
// in-memory LRU response cache keyed on the canonical request hash
// (Thanos query-frontend style: the cache identifies the response, not
// the request spelling, so `{"benchmark":"gzip","frontends":2}` and the
// equivalent fully spelled-out config hit the same entry).
package simd

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, concurrency-safe LRU byte cache.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   uint64
	misses uint64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRUCache builds a cache holding up to capacity responses;
// capacity < 1 disables caching (every Get misses, Add is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
	}
}

// Get returns the cached response and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// peek returns the cached response without touching the hit/miss
// counters or the recency order — for internal re-checks that should be
// invisible in /v1/cache/stats.
func (c *lruCache) peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*lruEntry).val, true
}

// Add stores a response, evicting the least recently used entry when the
// cache is full.
func (c *lruCache) Add(key string, val []byte) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
}

// Len returns the number of cached responses.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns cumulative hit/miss counters.
func (c *lruCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
