package simd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/pkg/frontendsim"
	"repro/pkg/obs"
	"repro/pkg/resultstore"
)

// testServer runs short simulations so the HTTP tests stay fast.
func testServer(cacheSize int) *Server {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	return NewServer(eng, cacheSize)
}

func post(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestSimulateEndpoint(t *testing.T) {
	srv := testServer(16)
	w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip","bank_hopping":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	var res frontendsim.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip" || res.MeasCycles == 0 || res.Intervals == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if !res.Config.TC.Hopping {
		t.Error("bank_hopping toggle not applied")
	}
	if _, ok := res.Units[frontendsim.UnitTraceCache]; !ok {
		t.Error("unit triples missing from response")
	}
}

func TestSimulateCacheHitMiss(t *testing.T) {
	srv := testServer(16)
	first := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`)
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", got)
	}
	second := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`)
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("identical request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit served a different body")
	}

	// An equivalent spelling — the explicit baseline config instead of no
	// config — hits the same canonical entry.
	cfg := core.DefaultConfig()
	body, err := json.Marshal(frontendsim.Request{Benchmark: "gzip", Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	spelled := post(t, srv, "/v1/simulations", string(body))
	if got := spelled.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("canonically equivalent request X-Cache = %q, want HIT", got)
	}

	// A semantically different request misses.
	different := post(t, srv, "/v1/simulations", `{"benchmark":"gzip","frontends":2}`)
	if got := different.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("differing request X-Cache = %q, want MISS", got)
	}
	if bytes.Equal(first.Body.Bytes(), different.Body.Bytes()) {
		t.Error("differing request served the cached body")
	}

	stats := httptest.NewRecorder()
	srv.ServeHTTP(stats, httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil))
	var st struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 entries, 2 hits, 2 misses", st)
	}
}

func TestStreamEndpoint(t *testing.T) {
	srv := testServer(16)
	w := post(t, srv, "/v1/simulations/stream", `{"benchmark":"gzip"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	type line struct {
		Type     string                `json:"type"`
		Interval *frontendsim.Snapshot `json:"interval"`
		Result   *frontendsim.Result   `json:"result"`
		Error    string                `json:"error"`
	}
	var intervals int
	var final *frontendsim.Result
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch l.Type {
		case "interval":
			if l.Interval == nil || l.Interval.Interval != intervals {
				t.Fatalf("interval line %d malformed: %+v", intervals, l.Interval)
			}
			intervals++
		case "result":
			final = l.Result
		default:
			t.Fatalf("unexpected line type %q (%s)", l.Type, l.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("stream had no final result line")
	}
	if intervals == 0 || intervals != final.Intervals {
		t.Errorf("streamed %d interval lines, result reports %d intervals", intervals, final.Intervals)
	}
}

func TestBenchmarksEndpoint(t *testing.T) {
	srv := testServer(0)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/benchmarks", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 26 {
		t.Errorf("%d benchmarks, want 26", len(out.Benchmarks))
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(0)
	cases := []struct {
		name, path, body string
		wantIn           string
	}{
		{"malformedJSON", "/v1/simulations", `{"benchmark":`, "decode request"},
		{"unknownField", "/v1/simulations", `{"banchmark":"gzip"}`, "unknown field"},
		{"unknownBench", "/v1/simulations", `{"benchmark":"nosuch"}`, "nosuch"},
		{"invalidConfig", "/v1/simulations", `{"benchmark":"gzip","frontends":3}`, "invalid configuration"},
		{"streamUnknownBench", "/v1/simulations/stream", `{"benchmark":"nosuch"}`, "nosuch"},
	}
	for _, tc := range cases {
		w := post(t, srv, tc.path, tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, w.Code)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, w.Body.String())
			continue
		}
		if !strings.Contains(e.Error, tc.wantIn) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantIn)
		}
	}
	// Wrong method routes to 405 via the method-qualified mux patterns.
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/simulations", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/simulations status = %d, want 405", w.Code)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(0)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Errorf("healthz status = %d", w.Code)
	}
}

func getHealthz(srv http.Handler) int {
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	return w.Code
}

// TestHealthzReadiness pins the readiness semantics the membership
// probes depend on: /healthz goes 503 while draining (SetReady(false))
// and when the response store stops answering (closed), and recovers
// when readiness is restored.
func TestHealthzReadiness(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	store := resultstore.NewMemory(4)
	srv := NewServerWithStore(eng, store)

	if got := getHealthz(srv); got != http.StatusOK {
		t.Fatalf("ready healthz = %d, want 200", got)
	}
	srv.SetReady(false)
	if got := getHealthz(srv); got != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", got)
	}
	srv.SetReady(true)
	if got := getHealthz(srv); got != http.StatusOK {
		t.Fatalf("restored healthz = %d, want 200", got)
	}
	// The readiness peek must not disturb the cache counters.
	if tiers := store.Stats(); tiers[0].Hits != 0 || tiers[0].Misses != 0 {
		t.Errorf("health probes leaked into store stats: %+v", tiers[0])
	}
	store.Close()
	if got := getHealthz(srv); got != http.StatusServiceUnavailable {
		t.Fatalf("healthz with closed store = %d, want 503", got)
	}
}

// TestMetricsEndpoint exercises the instrumented routes and the
// re-exported store counters.
func TestMetricsEndpoint(t *testing.T) {
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	)
	srv := NewServer(eng, 16, WithMetrics(obs.NewRegistry()))
	if w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`); w.Code != http.StatusOK {
		t.Fatalf("simulate status = %d", w.Code)
	}
	if w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`); w.Code != http.StatusOK {
		t.Fatalf("cached simulate status = %d", w.Code)
	}

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", w.Code)
	}
	exposition := w.Body.String()
	for _, want := range []string{
		`http_requests_total{handler="POST /v1/simulations",code="200"} 2`,
		`simd_store_ops_total{tier="memory",op="hit"} 1`,
		`simd_store_ops_total{tier="memory",op="miss"} 1`,
		`simd_ready 1`,
		"http_request_duration_seconds_bucket",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
