package simd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/hashring"
	"repro/pkg/resultstore"
)

// Join-time warm-up: a replica that (re)joins the ring pulls the keys
// that hash to its ring slice from live peers *before* it reports ready
// on /healthz, so its first routed requests are cache hits instead of a
// recompute storm.  The puller enumerates peers' live keys (GET
// /v1/store/keys), filters to the slice it will own under the ring the
// scheduler is routing by (GET {ring}/v1/ring, plus itself), and pulls
// each missing entry (GET /v1/store/entries/{key}) with bounded
// concurrency.  Pulls fail over across peers per key, already-present
// keys are skipped, and the whole pass re-runs while the membership
// epoch keeps moving or keys remain missing — so a peer dying mid-pull
// costs a retry round, not the warm-up.

// WarmupConfig configures Server.Warmup.  Zero values select the
// defaults noted on each field.
type WarmupConfig struct {
	// Peers are base URLs of live replicas to pull from.  Required.  A
	// peer whose store cannot enumerate keys (501 — e.g. a remote-only
	// store) is skipped for enumeration but still serves entry pulls.
	Peers []string
	// SelfURL is this replica's advertised base URL — the ring node the
	// slice filter selects.  Required when RingURL is set.
	SelfURL string
	// RingURL is the scheduler base URL whose GET /v1/ring reports the
	// backends currently routed to.  The warm-up ring is those backends
	// plus SelfURL; keys homed elsewhere are not pulled.  Empty pulls
	// every key the peers hold (single-scheduler deployments always set
	// it; a cold standby might not).
	RingURL string
	// Timeout bounds the whole warm-up (default 2m).
	Timeout time.Duration
	// Concurrency bounds simultaneous entry pulls (default 8).
	Concurrency int
	// Replicas is the ring's virtual-point count (default
	// hashring.DefaultReplicas; must match the scheduler's -replicas).
	Replicas int
	// Client performs the HTTP pulls (default: a client with a 10s
	// per-request timeout).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// WarmupResult reports what a warm-up pass accomplished.
type WarmupResult struct {
	// Pulled counts entries fetched from peers and stored locally.
	Pulled int
	// Skipped counts slice keys already present locally.
	Skipped int
	// Failed counts slice keys that could not be fetched from any peer
	// before the timeout.
	Failed int
	// Epoch is the membership epoch the final pass ran under (0 without
	// RingURL).
	Epoch uint64
}

func (c *WarmupConfig) applyDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ringSnapshot is the subset of the scheduler's GET /v1/ring response
// the warm-up and anti-entropy clients need.
type ringSnapshot struct {
	Backends []string `json:"backends"`
	Epoch    uint64   `json:"epoch"`
}

// fetchRing reads the scheduler's current backend set and epoch.
func fetchRing(ctx context.Context, client *http.Client, ringURL string) (ringSnapshot, error) {
	var snap ringSnapshot
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ringURL+"/v1/ring", nil)
	if err != nil {
		return snap, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("simd: ring fetch from %s: status %d", ringURL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return snap, fmt.Errorf("simd: ring fetch from %s: %w", ringURL, err)
	}
	return snap, nil
}

// errPeerCannotEnumerate marks a peer whose store has no Scanner
// capability (the endpoint answered 501); the puller falls back to a
// peer that has it.
var errPeerCannotEnumerate = errors.New("simd: peer store cannot enumerate keys")

// fetchPeerKeys enumerates one peer's live key set.
func fetchPeerKeys(ctx context.Context, client *http.Client, peer string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/store/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotImplemented {
		return nil, errPeerCannotEnumerate
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("simd: key enumeration from %s: status %d", peer, resp.StatusCode)
	}
	var body storeKeysResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("simd: key enumeration from %s: %w", peer, err)
	}
	return body.Keys, nil
}

// fetchPeerEntry pulls one stored body from a peer.
func fetchPeerEntry(ctx context.Context, client *http.Client, peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/v1/store/entries/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("simd: entry pull %s from %s: status %d", key, peer, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// sliceFilter builds the "hashes to my slice" predicate from the
// scheduler's routed backends plus self.  A nil return means pull
// everything (no ring configured).
func sliceFilter(backends []string, self string, replicas int) (func(string) bool, error) {
	if len(backends) == 0 && self == "" {
		return nil, nil
	}
	nodes := append(append([]string(nil), backends...), self)
	ring, err := hashring.New(nodes, replicas)
	if err != nil {
		return nil, err
	}
	return func(key string) bool { return ring.Node(key) == self }, nil
}

// Warmup pulls this replica's ring slice from cfg.Peers into the local
// store.  It blocks until the slice is warm, the timeout lapses, or ctx
// ends; the caller flips readiness (SetReady(true)) only after it
// returns, so the scheduler's probes keep answering 503 while the store
// fills.  The pass re-runs while the membership epoch moves under it —
// a ring change mid-pull re-slices and tops up — and pull failures
// retry against every peer until the deadline, so a peer dying mid-pull
// degrades to the surviving peers instead of aborting.  An error means
// the warm-up could not complete (no peer enumerated, or the deadline
// passed with keys still failing); the store holds whatever was pulled
// and the caller decides whether to serve cold.
func (s *Server) Warmup(ctx context.Context, cfg WarmupConfig) (WarmupResult, error) {
	cfg.applyDefaults()
	if len(cfg.Peers) == 0 {
		return WarmupResult{}, errors.New("simd: warm-up needs at least one peer")
	}
	if cfg.RingURL != "" && cfg.SelfURL == "" {
		return WarmupResult{}, errors.New("simd: warm-up with a ring URL needs the self URL")
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	var total WarmupResult
	enumerated := false
	for round := 0; ; round++ {
		pass, epoch, err := s.warmupPass(ctx, &cfg)
		total.Pulled += pass.Pulled
		total.Skipped = pass.Skipped
		total.Failed = pass.Failed
		total.Epoch = epoch
		if err == nil {
			enumerated = true
		}
		switch {
		case err == nil && pass.Failed == 0 && pass.stableEpoch:
			return total, nil
		case ctx.Err() != nil:
			if !enumerated {
				return total, fmt.Errorf("simd: warm-up expired before any peer enumerated: %w", err)
			}
			return total, fmt.Errorf("simd: warm-up expired with %d key(s) unpulled", pass.Failed)
		}
		if err != nil {
			cfg.Logf("simd: warm-up round %d: %v (retrying)", round, err)
		} else {
			cfg.Logf("simd: warm-up round %d: %d pulled, %d failed, epoch moved or keys missing — retrying",
				round, pass.Pulled, pass.Failed)
		}
		select {
		case <-ctx.Done():
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// warmupPassResult is one pass's accounting plus whether the membership
// epoch held still across it.
type warmupPassResult struct {
	WarmupResult
	stableEpoch bool
}

// warmupPass runs one enumerate→filter→pull pass and reports whether
// the epoch was stable across it.
func (s *Server) warmupPass(ctx context.Context, cfg *WarmupConfig) (warmupPassResult, uint64, error) {
	var epochBefore uint64
	var backends []string
	if cfg.RingURL != "" {
		snap, err := fetchRing(ctx, cfg.Client, cfg.RingURL)
		if err != nil {
			return warmupPassResult{}, 0, err
		}
		epochBefore, backends = snap.Epoch, snap.Backends
	}
	filter, err := sliceFilter(backends, cfg.SelfURL, cfg.Replicas)
	if err != nil {
		return warmupPassResult{}, epochBefore, err
	}

	// Union the key sets of every peer that can enumerate: after a
	// failure the dead replica's slice was absorbed by several
	// survivors, so no single peer holds it all.
	keySource := map[string]string{} // key -> first peer listing it
	enumerated := 0
	var lastErr error
	for _, peer := range cfg.Peers {
		keys, err := fetchPeerKeys(ctx, cfg.Client, peer)
		if err != nil {
			if errors.Is(err, errPeerCannotEnumerate) {
				cfg.Logf("simd: warm-up: %s cannot enumerate keys, falling back to next peer", peer)
			}
			lastErr = err
			continue
		}
		enumerated++
		for _, k := range keys {
			if _, ok := keySource[k]; !ok {
				keySource[k] = peer
			}
		}
	}
	if enumerated == 0 {
		return warmupPassResult{}, epochBefore, fmt.Errorf("simd: no warm-up peer enumerated keys: %w", lastErr)
	}

	// Pull the slice with bounded concurrency, failing over across
	// peers per key and skipping keys already present.
	var mu sync.Mutex
	res := warmupPassResult{}
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for key, firstPeer := range keySource {
		if filter != nil && !filter(key) {
			continue
		}
		if _, ok, err := resultstore.Peek(ctx, s.store, key); err == nil && ok {
			res.Skipped++
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(key, firstPeer string) {
			defer wg.Done()
			defer func() { <-sem }()
			body, err := s.pullEntry(ctx, cfg, key, firstPeer)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Failed++
				s.warmupErrs.Add(1)
				return
			}
			if s.store.Set(ctx, key, body) != nil {
				res.Failed++
				s.warmupErrs.Add(1)
				return
			}
			res.Pulled++
			s.warmupKeys.Add(1)
		}(key, firstPeer)
	}
	wg.Wait()

	res.stableEpoch = true
	epoch := epochBefore
	if cfg.RingURL != "" {
		snap, err := fetchRing(ctx, cfg.Client, cfg.RingURL)
		if err == nil {
			epoch = snap.Epoch
			res.stableEpoch = snap.Epoch == epochBefore
		}
	}
	return res, epoch, nil
}

// pullEntry fetches one entry, trying the peer that listed the key
// first and failing over to every other peer.
func (s *Server) pullEntry(ctx context.Context, cfg *WarmupConfig, key, firstPeer string) ([]byte, error) {
	peers := make([]string, 0, len(cfg.Peers))
	peers = append(peers, firstPeer)
	for _, p := range cfg.Peers {
		if p != firstPeer {
			peers = append(peers, p)
		}
	}
	var lastErr error
	for _, peer := range peers {
		body, err := fetchPeerEntry(ctx, cfg.Client, peer, key)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}
