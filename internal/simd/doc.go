// Package simd implements the HTTP simulation service behind cmd/simd:
// a thin request/response frontend over the frontendsim Engine with a
// pluggable response store (pkg/resultstore) keyed on the canonical
// request hash (Thanos query-frontend style: the key identifies the
// response, not the request spelling, so `{"benchmark":"gzip",
// "frontends":2}` and the equivalent fully spelled-out config hit the
// same entry).
//
// The store is injected via NewServerWithStore: a memory store gives
// the original process-local LRU behavior, a disk or tiered store makes
// cached results survive restarts, and a store shared between replicas
// (see examples/distributed) lets a surviving backend serve a dead
// peer's keys after ring failover.
package simd
