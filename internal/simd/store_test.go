package simd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/pkg/frontendsim"
	"repro/pkg/resultstore"
)

// TestRestartServesFromDiskStore is the persistence acceptance test: a
// simd instance backed by a disk store caches a simulation, the process
// "dies" (server discarded, store closed), and a fresh instance over
// the same directory serves the identical request with X-Cache: HIT —
// zero engine runs — with a body byte-identical to the engine-computed
// result.
func TestRestartServesFromDiskStore(t *testing.T) {
	dir := t.TempDir()
	const reqBody = `{"benchmark":"gzip","bank_hopping":true}`

	// First life: compute and persist.
	store1, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	eng1, runs1 := countingEngine(nil)
	first := post(t, NewServerWithStore(eng1, store1), "/v1/simulations", reqBody)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", first.Code, first.Body.String())
	}
	if got := first.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first life X-Cache = %q, want MISS", got)
	}
	if runs1.Load() != 1 {
		t.Fatalf("first life ran the engine %d times, want 1", runs1.Load())
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh engine and a fresh store over the same
	// directory.  The request must be served from disk, not recomputed.
	store2, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	eng2, runs2 := countingEngine(nil)
	srv2 := NewServerWithStore(eng2, store2)
	second := post(t, srv2, "/v1/simulations", reqBody)
	if second.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("post-restart X-Cache = %q, want HIT", got)
	}
	if runs2.Load() != 0 {
		t.Errorf("post-restart request ran the engine %d times, want 0", runs2.Load())
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("post-restart body differs from the first life's response")
	}

	// Byte-identity against a direct engine computation: the disk tier
	// serves exactly what the engine would produce.
	res, err := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
	).Run(context.Background(), frontendsim.Request{Benchmark: "gzip", BankHopping: true})
	if err != nil {
		t.Fatal(err)
	}
	computed, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	computed = append(computed, '\n')
	if !bytes.Equal(computed, second.Body.Bytes()) {
		t.Error("disk-served body is not byte-identical to the engine-computed result")
	}

	// The stats endpoint attributes the hit to the disk tier.
	stats := httptest.NewRecorder()
	srv2.ServeHTTP(stats, httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil))
	var st struct {
		Hits  uint64 `json:"hits"`
		Tiers []resultstore.TierStats
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 {
		t.Errorf("stats report %d hits, want 1", st.Hits)
	}
	if len(st.Tiers) != 1 || st.Tiers[0].Tier != "disk" || st.Tiers[0].Hits != 1 {
		t.Errorf("tiers = %+v, want one disk tier with 1 hit", st.Tiers)
	}
}

// TestTieredStoreReportsPerTierStats runs a tiered server through a
// MISS (fills both tiers) and a HIT (memory tier) and checks the
// per-tier accounting on /v1/cache/stats.
func TestTieredStoreReportsPerTierStats(t *testing.T) {
	disk, err := resultstore.OpenDisk(resultstore.DiskConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	eng, _ := countingEngine(nil)
	srv := NewServerWithStore(eng, resultstore.NewTiered(resultstore.NewMemory(16), disk))

	if w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`); w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", w.Header().Get("X-Cache"))
	}
	if w := post(t, srv, "/v1/simulations", `{"benchmark":"gzip"}`); w.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", w.Header().Get("X-Cache"))
	}

	stats := httptest.NewRecorder()
	srv.ServeHTTP(stats, httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil))
	var st struct {
		Entries int    `json:"entries"`
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Tiers   []resultstore.TierStats
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("totals = %+v, want 1 entry / 1 hit / 1 miss", st)
	}
	if len(st.Tiers) != 2 || st.Tiers[0].Tier != "memory" || st.Tiers[1].Tier != "disk" {
		t.Fatalf("tiers = %+v, want [memory disk]", st.Tiers)
	}
	if st.Tiers[0].Hits != 1 || st.Tiers[0].Sets != 1 || st.Tiers[1].Sets != 1 {
		t.Errorf("tier counters = %+v, want memory hit + write-through sets", st.Tiers)
	}
	if st.Tiers[1].Hits != 0 {
		t.Errorf("disk tier served %d hits, memory should have absorbed them", st.Tiers[1].Hits)
	}
}
