package simd

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsStream pins the drain contract of cmd/simd:
// once shutdown begins, /healthz flips to 503 first (so probes stop
// routing new work here), and an in-flight /v1/suites/stream run
// completes through srv.Shutdown — the client still receives every
// remaining shard line and the terminal aggregate.
func TestGracefulShutdownDrainsStream(t *testing.T) {
	api := testServer(16)
	srv := &http.Server{Handler: api}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.Serve(ln)
	}()
	base := "http://" + ln.Addr().String()

	resp, err := http.Post(base+"/v1/suites/stream", "application/json",
		strings.NewReader(`{"benchmarks":["gzip","mcf","swim"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first stream line: %v", sc.Err())
	}

	// The stream is mid-flight.  Begin the cmd/simd shutdown sequence:
	// readiness off, then drain.
	api.SetReady(false)
	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hr.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The in-flight stream must run to its terminal aggregate line even
	// though the listener is closed and Shutdown is waiting.
	last := ""
	for sc.Scan() {
		last = sc.Text()
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream broken during drain: %v", err)
	}
	if !strings.Contains(last, `"type":"aggregate"`) {
		t.Errorf("terminal line = %q, want an aggregate line", last)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	<-serveDone
}
