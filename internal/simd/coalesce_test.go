package simd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/frontendsim"
)

// countingEngine builds a short-run engine whose observer counts engine
// runs (each run emits exactly one interval-0 snapshot) and, when gate is
// non-nil, blocks the first interval until gate closes — holding the run
// in flight so concurrent requests must coalesce onto it.
func countingEngine(gate <-chan struct{}) (*frontendsim.Engine, *atomic.Int64) {
	var runs atomic.Int64
	eng := frontendsim.New(
		frontendsim.WithWarmupOps(30_000),
		frontendsim.WithMeasureOps(60_000),
		frontendsim.WithObserver(frontendsim.ObserverFunc(func(s frontendsim.Snapshot) {
			if s.Interval == 0 {
				runs.Add(1)
				if gate != nil {
					<-gate
				}
			}
		})),
	)
	return eng, &runs
}

// TestSimulateCoalescesConcurrentRequests fires N identical concurrent
// requests at a cache-disabled server and asserts exactly one engine run
// served all of them, with identical bodies.
func TestSimulateCoalescesConcurrentRequests(t *testing.T) {
	gate := make(chan struct{})
	eng, runs := countingEngine(gate)
	srv := NewServer(eng, 0) // cache off: coalescing is the only dedup

	const callers = 8
	recorders := make([]*httptest.ResponseRecorder, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/simulations",
				strings.NewReader(`{"benchmark":"gzip"}`))
			srv.ServeHTTP(w, req)
			recorders[i] = w
		}(i)
	}
	// Let every caller reach the single-flight group (the leader is
	// parked on its first interval), then release the run.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Errorf("%d concurrent identical requests ran the engine %d times, want 1", callers, n)
	}
	var miss, coalesced int
	for i, w := range recorders {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), recorders[0].Body.Bytes()) {
			t.Errorf("request %d: body differs from request 0", i)
		}
		switch xc := w.Header().Get("X-Cache"); xc {
		case "MISS":
			miss++
		case "COALESCED":
			coalesced++
		default:
			t.Errorf("request %d: unexpected X-Cache %q", i, xc)
		}
	}
	if miss != 1 || coalesced != callers-1 {
		t.Errorf("served %d MISS + %d COALESCED, want 1 + %d", miss, coalesced, callers-1)
	}

	stats := httptest.NewRecorder()
	srv.ServeHTTP(stats, httptest.NewRequest(http.MethodGet, "/v1/cache/stats", nil))
	var st struct {
		Coalesced uint64 `json:"coalesced"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Coalesced != callers-1 {
		t.Errorf("stats report %d coalesced, want %d", st.Coalesced, callers-1)
	}
}

// TestSuiteEndpointDedupsDuplicateKeys posts a suite with repeated
// benchmarks and asserts each unique canonical key simulated once.
func TestSuiteEndpointDedupsDuplicateKeys(t *testing.T) {
	eng, runs := countingEngine(nil)
	srv := NewServer(eng, 16)

	w := post(t, srv, "/v1/suites", `{"benchmarks":["gzip","gzip","mcf","gzip"],"request":{}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("suite with 2 unique keys ran the engine %d times, want 2", n)
	}
	var res frontendsim.SuiteResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 || res.Aggregate.Benchmarks != 4 {
		t.Fatalf("suite shape %d results / %d aggregate benchmarks, want 4/4",
			len(res.Results), res.Aggregate.Benchmarks)
	}
	for i, want := range []string{"gzip", "gzip", "mcf", "gzip"} {
		if res.Results[i].Benchmark != want {
			t.Errorf("result %d is %q, want %q", i, res.Results[i].Benchmark, want)
		}
	}
	a, _ := json.Marshal(res.Results[0])
	b, _ := json.Marshal(res.Results[1])
	if !bytes.Equal(a, b) {
		t.Error("duplicate suite entries produced different results")
	}

	// The suite populated the response cache: a plain simulation of one
	// of its entries is a HIT.
	single := post(t, srv, "/v1/simulations", `{"benchmark":"mcf"}`)
	if got := single.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("post-suite single request X-Cache = %q, want HIT", got)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("cached single request re-ran the engine (%d total runs)", n)
	}
}

// TestSuiteEndpointRejectsBadSuites covers the error paths of the suite
// passthrough.
func TestSuiteEndpointRejectsBadSuites(t *testing.T) {
	srv := testServer(0)
	cases := []struct{ name, body, wantIn string }{
		{"malformedJSON", `{"benchmarks":`, "decode suite request"},
		{"unknownBench", `{"benchmarks":["nosuch"],"request":{}}`, "nosuch"},
		{"emptySelection", `{"benchmarks":[],"request":{}}`, "no benchmarks"},
	}
	for _, tc := range cases {
		w := post(t, srv, "/v1/suites", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, w.Code)
		}
		if !strings.Contains(w.Body.String(), tc.wantIn) {
			t.Errorf("%s: body %q does not mention %q", tc.name, w.Body.String(), tc.wantIn)
		}
	}
}
