// Package rng provides the deterministic pseudo-random number generator
// used by the synthetic workload generator and the tests.
//
// The simulator must be bit-for-bit reproducible across runs and Go
// releases, so it uses a fixed xorshift* generator instead of math/rand,
// whose stream is not guaranteed stable across versions.
package rng

import "math"

// Source is a deterministic xorshift1024*-style generator reduced to the
// common 64-bit xorshift* variant.  The zero value is not valid; use New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.  A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	s := &Source{state: seed}
	// Scramble the low-entropy seeds users tend to pass (0, 1, 2, ...).
	for i := 0; i < 4; i++ {
		s.Uint64()
	}
	return s
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n).  It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean m
// (support 1, 2, 3, ...).  Used for register dependency distances.
func (s *Source) Geometric(m float64) int {
	if m <= 1 {
		return 1
	}
	p := 1.0 / m
	u := s.Float64()
	// Inverse-CDF sampling; clamp the tail so pathological u values cannot
	// produce unbounded distances.
	v := int(math.Ceil(math.Log(1-u) / math.Log(1-p))) // >= 1 for u in (0,1)
	if v < 1 {
		v = 1
	}
	if v > int(8*m)+8 {
		v = int(8*m) + 8
	}
	return v
}

// Zipf draws a value in [0, n) with a Zipf-like distribution of exponent
// theta: low indices are drawn much more often than high ones.  It uses a
// simple inverse-power transform, which is cheap and deterministic (a
// faithful Zipf sampler is unnecessary for workload synthesis).
func (s *Source) Zipf(n int, theta float64) int {
	if n <= 1 {
		return 0
	}
	u := s.Float64()
	// Map u in [0,1) through u^k so that mass concentrates near zero.
	k := 1.0 + theta*3.0
	v := int(math.Pow(u, k) * float64(n))
	if v >= n {
		v = n - 1
	}
	return v
}

// Split derives a new independent Source from this one.  The derived
// stream is decorrelated by a fixed odd multiplier.
func (s *Source) Split() *Source {
	return New(s.Uint64()*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
}
