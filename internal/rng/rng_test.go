package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestGeometricMean(t *testing.T) {
	s := New(5)
	for _, m := range []float64{2, 6, 12} {
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			v := s.Geometric(m)
			if v < 1 {
				t.Fatalf("Geometric(%v) = %d < 1", m, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		if math.Abs(mean-m)/m > 0.1 {
			t.Errorf("Geometric(%v) mean = %v", m, mean)
		}
	}
}

func TestGeometricDegenerate(t *testing.T) {
	s := New(5)
	for i := 0; i < 100; i++ {
		if v := s.Geometric(0.5); v != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(9)
	const n = 64
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := s.Zipf(n, 0.9)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	lowHalf, highHalf := 0, 0
	for i, c := range counts {
		if i < n/2 {
			lowHalf += c
		} else {
			highHalf += c
		}
	}
	if lowHalf <= highHalf*2 {
		t.Errorf("Zipf not skewed: low=%d high=%d", lowHalf, highHalf)
	}
}

func TestZipfDegenerate(t *testing.T) {
	s := New(1)
	if v := s.Zipf(1, 0.9); v != 0 {
		t.Errorf("Zipf(1) = %d, want 0", v)
	}
	if v := s.Zipf(0, 0.9); v != 0 {
		t.Errorf("Zipf(0) = %d, want 0", v)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(77)
	b := a.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func TestQuickUint64nBound(t *testing.T) {
	s := New(123)
	f := func(n uint64) bool {
		n = n%1000 + 1
		return s.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntnBound(t *testing.T) {
	s := New(321)
	f := func(n int) bool {
		if n < 0 {
			n = -n
		}
		n = n%1000 + 1
		v := s.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
