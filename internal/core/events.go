package core

// eventQueue schedules op-completion events on a fixed ring of per-cycle
// buckets (a calendar queue).  The replaced binary heap cost O(log n) per
// operation and left the drain order of equal-cycle events unspecified;
// the ring costs O(1) per push/pop and drains same-cycle events in push
// order, which makes the cycle loop's completion order fully
// deterministic.
//
// Tokens are slab indices, and an op has at most one live event, so the
// bucket lists are intrusive FIFOs over one token-indexed next array:
// nothing here ever touches the allocator after construction.
//
// The ring covers the bounded event horizon (the largest completion
// latency the machine can charge: a memory access plus its bus and TLB
// penalties).  Rare events beyond it — bus queueing under extreme
// contention can exceed any static bound — go to an overflow FIFO and
// migrate into their bucket once the drain cursor comes within the
// horizon.  Migration happens at the start of the cycle the event first
// fits, strictly before any same-cycle pushes, so push-order FIFO holds
// across the overflow path too.
type eventQueue struct {
	head    []int32  // per-bucket FIFO head, -1 = empty
	tail    []int32  // per-bucket FIFO tail, -1 = empty
	next    []int32  // per-token link, -1 = end
	cycleOf []uint64 // per-token scheduled cycle, valid while queued
	mask    uint64   // len(head) - 1; len is a power of two
	count   int      // queued events, overflow included

	ovHead  int32 // overflow FIFO of events beyond the horizon
	ovTail  int32
	ovCount int
	ovMin   uint64 // earliest overflow cycle, valid when ovCount > 0
}

// initEventQueue sizes the ring to a power of two covering at least
// `horizon` cycles, with `tokens` schedulable ids.
func (q *eventQueue) initEventQueue(horizon, tokens int) {
	size := 1
	for size < horizon {
		size *= 2
	}
	q.head = make([]int32, size)
	q.tail = make([]int32, size)
	q.next = make([]int32, tokens)
	q.cycleOf = make([]uint64, tokens)
	for i := range q.head {
		q.head[i] = -1
		q.tail[i] = -1
	}
	for i := range q.next {
		q.next[i] = -1
	}
	q.mask = uint64(size - 1)
	q.ovHead, q.ovTail = -1, -1
}

// horizon returns the number of future cycles the ring covers.
func (q *eventQueue) horizon() uint64 { return uint64(len(q.head)) }

// enqueueBucket appends id to its cycle's bucket FIFO.  The cycle must
// be strictly inside the horizon relative to the drain cursor.
func (q *eventQueue) enqueueBucket(id int32, cycle uint64) {
	b := cycle & q.mask
	if q.tail[b] < 0 {
		q.head[b] = id
	} else {
		q.next[q.tail[b]] = id
	}
	q.tail[b] = id
}

// enqueueOverflow appends id to the overflow FIFO.
func (q *eventQueue) enqueueOverflow(id int32, cycle uint64) {
	if q.ovTail < 0 {
		q.ovHead = id
	} else {
		q.next[q.ovTail] = id
	}
	q.ovTail = id
	if q.ovCount == 0 || cycle < q.ovMin {
		q.ovMin = cycle
	}
	q.ovCount++
}

// push schedules token id at the given cycle.  The cycle must be in the
// future relative to now (the current drain cursor): completion events
// are always scheduled ahead of the cycle that produces them.
func (q *eventQueue) push(cycle uint64, id int32, now uint64) {
	if cycle <= now {
		panic("core: event scheduled at or before the current cycle")
	}
	q.cycleOf[id] = cycle
	q.next[id] = -1
	q.count++
	// Strictly inside the horizon: a cycle exactly horizon cycles out
	// shares its bucket index with the cycle being drained, so it waits
	// in overflow one more cycle (push order is preserved — in-horizon
	// pushes for that cycle are only possible after it migrates).
	if cycle-now < q.horizon() {
		q.enqueueBucket(id, cycle)
	} else {
		q.enqueueOverflow(id, cycle)
	}
}

// migrate moves every overflow event that now fits the ring into its
// bucket, preserving FIFO order among the moved events.
func (q *eventQueue) migrate(now uint64) {
	horizon := q.horizon()
	id := q.ovHead
	q.ovHead, q.ovTail = -1, -1
	q.ovCount = 0
	for id >= 0 {
		next := q.next[id]
		q.next[id] = -1
		c := q.cycleOf[id]
		if c-now < horizon {
			q.enqueueBucket(id, c)
		} else {
			q.enqueueOverflow(id, c)
		}
		id = next
	}
}

// drainInto detaches cycle now's bucket (after migrating any overflow
// events that came within the horizon) and appends its ids to buf in
// push order, clearing their links and the queued count.  Every id
// drained was scheduled for exactly cycle now, because the drain cursor
// advances one cycle per Step and pushes are strictly future.
func (q *eventQueue) drainInto(now uint64, buf []int32) []int32 {
	if q.ovCount > 0 && q.ovMin-now < q.horizon() {
		q.migrate(now)
	}
	b := now & q.mask
	id := q.head[b]
	if id < 0 {
		return buf
	}
	q.head[b] = -1
	q.tail[b] = -1
	for id >= 0 {
		next := q.next[id]
		q.next[id] = -1
		q.count--
		buf = append(buf, id)
		id = next
	}
	return buf
}
