package core

import (
	"testing"

	"repro/internal/uop"
)

// drainCycle returns cycle now's events in drain order.
func drainCycle(q *eventQueue, now uint64) []int32 {
	return q.drainInto(now, nil)
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEventQueueFIFOWithinCycle pins the ordering guarantee the replaced
// binary heap never gave: events scheduled for the same cycle drain in
// push order.
func TestEventQueueFIFOWithinCycle(t *testing.T) {
	var q eventQueue
	q.initEventQueue(16, 32)
	order := []int32{9, 3, 27, 0, 14}
	for _, id := range order {
		q.push(5, id, 0)
	}
	q.push(4, 30, 0) // an earlier cycle must not disturb cycle 5's order
	if got := drainCycle(&q, 4); !equalIDs(got, []int32{30}) {
		t.Fatalf("cycle 4 drained %v", got)
	}
	if got := drainCycle(&q, 5); !equalIDs(got, order) {
		t.Fatalf("cycle 5 drained %v, want push order %v", got, order)
	}
	if q.count != 0 {
		t.Fatalf("count = %d after draining everything", q.count)
	}
	if got := drainCycle(&q, 6); len(got) != 0 {
		t.Fatalf("empty cycle drained %v", got)
	}
}

// TestEventQueueOverflowMigration pins the beyond-horizon path: events
// past the ring spill to the overflow list, migrate once the drain
// cursor comes within the horizon, and still drain at their exact cycle
// in global push order (overflow arrivals precede the in-horizon pushes
// that can only happen later).
func TestEventQueueOverflowMigration(t *testing.T) {
	var q eventQueue
	q.initEventQueue(8, 32)
	if q.horizon() != 8 {
		t.Fatalf("horizon = %d, want 8", q.horizon())
	}
	q.push(20, 1, 0) // 20 cycles out: overflow
	q.push(20, 2, 0)
	q.push(3, 0, 0) // in-horizon
	if q.ovCount != 2 {
		t.Fatalf("overflow count = %d, want 2", q.ovCount)
	}
	var got []int32
	for now := uint64(1); now <= 19; now++ {
		// Drain first, push after — the order Step imposes.
		got = append(got, drainCycle(&q, now)...)
		if now == 13 {
			// The drain at cycle 13 migrated the overflow events; a
			// same-cycle push afterwards must land behind them.
			q.push(20, 3, now)
		}
	}
	if !equalIDs(got, []int32{0}) {
		t.Fatalf("cycles 1-19 drained %v, want [0]", got)
	}
	if got := drainCycle(&q, 20); !equalIDs(got, []int32{1, 2, 3}) {
		t.Fatalf("cycle 20 drained %v, want [1 2 3]", got)
	}
	if q.count != 0 || q.ovCount != 0 {
		t.Fatalf("count=%d overflow=%d after drain", q.count, q.ovCount)
	}
}

// TestEventQueuePastPushPanics pins the protocol: completion events are
// always scheduled strictly after the cycle that produces them.
func TestEventQueuePastPushPanics(t *testing.T) {
	var q eventQueue
	q.initEventQueue(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("push at the current cycle did not panic")
		}
	}()
	q.push(5, 0, 5)
}

// TestIdenticalRunsIdenticalCycles is the determinism regression for the
// bucket queue: with same-cycle completion order now specified (FIFO),
// two identical runs must produce identical statistics, event-queue
// counters included.
func TestIdenticalRunsIdenticalCycles(t *testing.T) {
	for _, mode := range []string{"base", "dist"} {
		cfg := DefaultConfig()
		if mode == "dist" {
			cfg = cfg.WithDistributedFrontend(2)
		}
		a := runBench(t, cfg, "gzip", 25000)
		b := runBench(t, cfg, "gzip", 25000)
		if a.Stats != b.Stats {
			t.Fatalf("%s: non-deterministic stats:\n%+v\n%+v", mode, a.Stats, b.Stats)
		}
		if a.Stats.EventPushes == 0 || a.Stats.EventPushes != a.Stats.EventPops {
			t.Fatalf("%s: event counters inconsistent: %d pushes, %d pops",
				mode, a.Stats.EventPushes, a.Stats.EventPops)
		}
	}
}

// TestStoreWakeupEliminatesPolling is the counter-verified event-storm
// gate: on the throughput benchmark's gzip run, the wakeup lists must
// cut event pushes at least 10x against the poll-based scheme (whose
// push count the StorePollsAvoided counter reconstructs).
func TestStoreWakeupEliminatesPolling(t *testing.T) {
	p := runBench(t, DefaultConfig(), "gzip", 50000)
	s := p.Stats
	if s.StoreWakeups == 0 {
		t.Fatal("gzip run produced no store wakeups")
	}
	oldPushes := s.EventPushes + s.StorePollsAvoided
	if oldPushes < 10*s.EventPushes {
		t.Fatalf("event pushes dropped only %.1fx (%d now vs ~%d with polling), want >= 10x",
			float64(oldPushes)/float64(s.EventPushes), s.EventPushes, oldPushes)
	}
	t.Logf("pushes %d, pops %d, wakeups %d, polls avoided %d (%.1fx reduction)",
		s.EventPushes, s.EventPops, s.StoreWakeups, s.StorePollsAvoided,
		float64(oldPushes)/float64(s.EventPushes))
}

// TestStoreDataReadyBoundarySweep sweeps the race between a store's
// address half and its data producer across the subscription boundary:
// producer chains of increasing length make the data arrive before,
// exactly at, and after the address completes (and before/after the
// store even issues).  Every variant must drain fully and run
// bit-deterministically.
func TestStoreDataReadyBoundarySweep(t *testing.T) {
	for lag := 0; lag <= 12; lag++ {
		run := func() *Processor {
			ops := []uop.MicroOp{}
			for i := 0; i < lag; i++ {
				// Serial chain into r5: each link delays the data operand
				// by one more cycle relative to the store's address.
				ops = append(ops, uop.MicroOp{Class: uop.IntALU, Src1: 5, Src2: uop.RegNone, Dst: 5})
			}
			ops = append(ops,
				uop.MicroOp{Class: uop.Store, Src1: 0, Src2: 5, Dst: uop.RegNone, Addr: 0x4000},
				uop.MicroOp{Class: uop.Load, Src1: 0, Src2: uop.RegNone, Dst: 3, Addr: 0x4000},
				uop.MicroOp{Class: uop.IntALU, Src1: 3, Src2: uop.RegNone, Dst: 4},
			)
			p := New(DefaultConfig(), script(ops))
			p.Run(0)
			if !p.Done() {
				t.Fatalf("lag %d: machine did not drain", lag)
			}
			if p.Stats.Committed != uint64(lag+3) {
				t.Fatalf("lag %d: committed %d of %d", lag, p.Stats.Committed, lag+3)
			}
			return p
		}
		a, b := run(), run()
		if a.Stats != b.Stats {
			t.Fatalf("lag %d: non-deterministic stats:\n%+v\n%+v", lag, a.Stats, b.Stats)
		}
	}
}

// TestStoreWakeupLateProducer pins the subscription path itself: a store
// whose data producer issues long after the store's address half must
// complete via a producer wakeup (not a poll), at a cycle no later than
// the old poll cadence would have found, and commit.
func TestStoreWakeupLateProducer(t *testing.T) {
	ops := []uop.MicroOp{
		// Serial FPDiv chain: the last divide issues ~3 divide latencies
		// after dispatch, well past the store's address half (even with
		// its compulsory DTLB miss).
		{Class: uop.FPDiv, Src1: 16, Src2: 17, Dst: 18},
		{Class: uop.FPDiv, Src1: 18, Src2: 17, Dst: 19},
		{Class: uop.FPDiv, Src1: 19, Src2: 17, Dst: 20},
		{Class: uop.Store, Src1: 0, Src2: 20, Dst: uop.RegNone, Addr: 0x5000},
		{Class: uop.IntALU, Src1: 1, Src2: uop.RegNone, Dst: 2},
	}
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if p.Stats.Committed != uint64(len(ops)) {
		t.Fatalf("committed %d of %d", p.Stats.Committed, len(ops))
	}
	if p.Stats.StoreWakeups == 0 {
		t.Fatal("late-producer store completed without a wakeup")
	}
	if p.Stats.StorePollsAvoided == 0 {
		t.Fatal("no polls counted as avoided for a late producer")
	}
}

// TestWaitingStoreWithDstWritesBack pins the degenerate store-with-dst
// semantics across the wakeup rewrite: stores in the real op stream
// never define a register, but when a scripted one does, the poll scheme
// wrote the destination back when the address half finished even while
// completion waited on the data — so a consumer of that register must
// not deadlock behind a subscribed store.
func TestWaitingStoreWithDstWritesBack(t *testing.T) {
	ops := []uop.MicroOp{
		{Class: uop.IntALU, Src1: 5, Src2: uop.RegNone, Dst: 5},
		{Class: uop.IntALU, Src1: 5, Src2: uop.RegNone, Dst: 5},
		{Class: uop.Store, Src1: 0, Src2: 5, Dst: 6, Addr: 0x4000},
		{Class: uop.IntALU, Src1: 6, Src2: uop.RegNone, Dst: 4},
	}
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if !p.Done() || p.Stats.Committed != uint64(len(ops)) {
		t.Fatalf("committed %d of %d (consumer of the store's dst starved)",
			p.Stats.Committed, len(ops))
	}
}

// TestStoreWakeupWithRedirect covers the completeOp interplay the old
// poll re-arm path could starve: a mispredicted branch resolving while a
// store sits subscribed to its data producer.  The redirect must unblock
// fetch (later traces commit) and the store must still complete.
func TestStoreWakeupWithRedirect(t *testing.T) {
	ops := []uop.MicroOp{
		{Class: uop.FPDiv, Src1: 16, Src2: 17, Dst: 18},
		{Class: uop.FPDiv, Src1: 18, Src2: 17, Dst: 19},
		{Class: uop.Store, Src1: 0, Src2: 19, Dst: uop.RegNone, Addr: 0x6000},
		{Class: uop.IntALU, Src1: 1, Src2: uop.RegNone, Dst: 2},
		{Class: uop.Branch, Src1: 2, Src2: uop.RegNone, Dst: uop.RegNone, Mispred: true},
	}
	for i := 0; i < 12; i++ {
		ops = append(ops, uop.MicroOp{Class: uop.IntALU, Src1: 3, Src2: uop.RegNone, Dst: 3})
	}
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if p.Stats.Committed != uint64(len(ops)) {
		t.Fatalf("committed %d of %d (redirect or wakeup lost)", p.Stats.Committed, len(ops))
	}
	if p.Stats.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d, want 1", p.Stats.Mispredicts)
	}
	if p.Stats.StoreWakeups == 0 {
		t.Fatal("store completed without a wakeup")
	}
}
