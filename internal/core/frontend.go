package core

import (
	"repro/internal/backend"
	"repro/internal/rename"
	"repro/internal/uop"
)

// This file implements the frontend pipeline: fetch from the trace cache,
// the decode/rename/steer delay line, and the dispatch stage where
// steering, renaming (centralized or distributed) and resource allocation
// happen (§2, §3.1 of the paper).

// ---------------------------------------------------------------------
// Decode pipe (ring buffer)

func (p *Processor) pipeSpace() int { return len(p.pipe) - p.pipeCount }

func (p *Processor) pipePush(u uop.MicroOp, ready uint64) {
	if p.pipeCount == len(p.pipe) {
		panic("core: decode pipe overflow")
	}
	idx := (p.pipeHead + p.pipeCount) % len(p.pipe)
	p.pipe[idx] = pipeEntry{u: u, ready: ready}
	p.pipeCount++
}

func (p *Processor) pipeFront() *pipeEntry {
	if p.pipeCount == 0 {
		return nil
	}
	return &p.pipe[p.pipeHead]
}

func (p *Processor) pipePop() {
	p.pipeHead = (p.pipeHead + 1) % len(p.pipe)
	p.pipeCount--
}

// ---------------------------------------------------------------------
// Fetch

// fetch pulls at most one trace line per cycle from the trace cache into
// the decode pipe.  On a trace-cache miss the line is built from the UL2
// (§2: the frontend reads IA32 instructions from the UL2, translates them
// into micro-ops and stores them in the trace cache); fetch stalls until
// the refill completes.  After fetching a mispredicted branch, fetch
// blocks until the branch resolves (wrong-path fetch is not simulated;
// its activity is a second-order power effect — see DESIGN.md).
func (p *Processor) fetch(now uint64) {
	if p.fetchBlocked || now < p.fetchStallUntil {
		return
	}
	if p.gateDen > 0 && int(now%uint64(p.gateDen)) >= p.gateNum {
		return // thermal-management fetch toggling
	}
	if p.pipeSpace() < uop.MaxTraceOps {
		return
	}
	if len(p.pending) == 0 {
		if p.genDone {
			return
		}
		for {
			u, ok := p.feeder.Next()
			if !ok {
				p.genDone = true
				break
			}
			p.pending = append(p.pending, u)
			if u.TraceEnd {
				break
			}
		}
		if len(p.pending) == 0 {
			return
		}
	}
	id := p.pending[0].PC >> 6
	p.itlbAcc++
	p.bpAcc++ // next-trace prediction
	hit, _ := p.tc.Access(id)
	if !hit {
		// Build the trace from the UL2 over a memory bus.  The static
		// code footprint of the SPEC applications fits comfortably in
		// the 2 MB UL2, so trace builds are charged the UL2 hit latency;
		// the UL2 tag access is still recorded for power.
		busDone := p.membus.Request(now)
		if !p.ul2.Read(id << 6) {
			p.ul2.Fill(id << 6)
		}
		p.tc.Fill(id)
		p.fetchStallUntil = busDone + uint64(p.cfg.UL2HitLat)
		p.Stats.TCMissStalls++
		return
	}
	delay := uint64(p.cfg.FetchToDispatch + p.cfg.DecodeLatency)
	for i := range p.pending {
		u := p.pending[i]
		if u.Class == uop.Branch {
			p.bpAcc++
			if p.predictor != nil {
				// Replace the profile's calibrated misprediction flag
				// with a real prediction against the resolved outcome.
				p.predictor.Predict(u.PC)
				u.Mispred = p.predictor.Update(u.PC, u.Taken)
				p.pending[i].Mispred = u.Mispred
			}
		}
		p.pipePush(u, now+delay)
		p.decodeOps++
	}
	last := p.pending[len(p.pending)-1]
	if last.Class == uop.Branch && last.Mispred {
		p.fetchBlocked = true
		p.Stats.Mispredicts++
	}
	p.pending = p.pending[:0]
	p.Stats.TracesFetched++
}

// ---------------------------------------------------------------------
// Dispatch: steer, rename, allocate

// queueFor returns the issue queue kind for a micro-op class.
func queueFor(c uop.Class) backend.QueueKind {
	switch {
	case c.IsMem():
		return backend.MemQueue
	case c.IsFP():
		return backend.FPQueue
	default:
		return backend.IntQueue
	}
}

// dispatchPlan is the per-instruction resource plan computed before any
// state is mutated, so that a failed check leaves the machine untouched.
type dispatchPlan struct {
	cluster int
	kind    backend.QueueKind
	// copies[i] describes the copy needed for source i; donor < 0 means
	// no copy is needed (value already present, or duplicate of source 0).
	donor   [2]int8
	sameAs0 [2]bool
	needInt int
	needFP  int
}

// dispatch moves up to DispatchWidth micro-ops per cycle from the decode
// pipe into the backend, in program order.  Steering is dependence- and
// load-aware; renaming follows §3.1.1: the destination register is
// renamed at the steer stage using the centralized freelists, source
// registers are mapped in the owning frontend's table, and values absent
// from the chosen backend trigger copy instructions (with the two-step
// copy-request protocol when the donor lives under another frontend).
func (p *Processor) dispatch(now uint64) {
	for n := 0; n < p.cfg.DispatchWidth; n++ {
		front := p.pipeFront()
		if front == nil || front.ready > now {
			return
		}
		plan, ok := p.planDispatch(&front.u)
		if !ok {
			p.Stats.DispatchStalls++
			return
		}
		p.applyDispatch(&front.u, plan, now)
		p.pipePop()
	}
}

// steer picks the destination cluster: it scores each cluster by how many
// source operands are already present (availability-table lookups) minus
// a load penalty, as in the clustered steering schemes the paper builds
// on.
func (p *Processor) steer(u *uop.MicroOp) int {
	kind := queueFor(u.Class)
	srcs, nSrc := u.Sources()
	var holders [2]uint32
	for s := 0; s < nSrc; s++ {
		holders[s] = p.avail.Holders(srcs[s])
	}
	best, bestScore := 0, -1<<30
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		score := 0
		for s := 0; s < nSrc; s++ {
			if holders[s]&(1<<uint(cl)) != 0 {
				// Keeping dependence chains local avoids the ~12-cycle
				// copy round trip, so presence dominates the score.
				score += 48
			}
		}
		cluster := p.clusters[cl]
		// Load balance breaks ties and steers away from congestion.
		occ := cluster.Queues[kind].Occupancy()
		score -= occ
		score -= (cluster.Queues[backend.IntQueue].Occupancy() +
			cluster.Queues[backend.FPQueue].Occupancy()) / 4
		if !p.reorder.CanAlloc(p.cfg.FrontendOf(cl)) {
			score -= 64 // a full ROB partition would stall dispatch
		}
		if cl == p.steerRR() {
			score++ // rotate ties
		}
		if score > bestScore {
			best, bestScore = cl, score
		}
	}
	return best
}

// steerRR rotates a tie-breaking preference across clusters.
func (p *Processor) steerRR() int { return int(p.cycle) % p.cfg.Clusters }

// planDispatch steers the op and verifies every resource it needs.
func (p *Processor) planDispatch(u *uop.MicroOp) (dispatchPlan, bool) {
	plan := dispatchPlan{donor: [2]int8{-1, -1}}
	plan.cluster = p.steer(u)
	plan.kind = queueFor(u.Class)
	cl := plan.cluster
	cluster := p.clusters[cl]

	if !p.reorder.CanAlloc(p.cfg.FrontendOf(cl)) {
		return plan, false
	}
	if !cluster.Queues[plan.kind].CanDispatch() {
		return plan, false
	}
	switch u.Class {
	case uop.Store:
		for c2 := range p.clusters {
			if !p.clusters[c2].Mob.CanAlloc() {
				return plan, false
			}
		}
	case uop.Load:
		if !cluster.Mob.CanAlloc() {
			return plan, false
		}
	}

	srcs, nSrc := u.Sources()
	for s := 0; s < nSrc; s++ {
		r := srcs[s]
		if p.avail.Holds(r, cl) {
			continue
		}
		if s == 1 && srcs[0] == r {
			plan.sameAs0[1] = true
			continue
		}
		donor, ok := p.avail.AnyHolder(r, p.prefer[cl])
		if !ok {
			panic("core: source register held nowhere")
		}
		if !p.clusters[donor].Queues[backend.CopyQueue].CanDispatch() {
			return plan, false
		}
		plan.donor[s] = int8(donor)
		if uop.IsFPReg(r) {
			plan.needFP++
		} else {
			plan.needInt++
		}
	}
	if u.HasDst() {
		if uop.IsFPReg(u.Dst) {
			plan.needFP++
		} else {
			plan.needInt++
		}
	}
	if p.freeInt[cl].Available() < plan.needInt || p.freeFP[cl].Available() < plan.needFP {
		return plan, false
	}
	return plan, true
}

// applyDispatch performs the planned dispatch: renaming, copy creation,
// ROB/queue/MOB allocation.
func (p *Processor) applyDispatch(u *uop.MicroOp, plan dispatchPlan, now uint64) {
	cl := plan.cluster
	cluster := p.clusters[cl]
	id := int32(u.Seq % p.slabN)
	op := &p.slab[id]
	if op.inUse {
		panic("core: op slab slot reused while live")
	}
	*op = opState{u: *u, cluster: int8(cl), dstPhys: -1, inUse: true}

	srcs, nSrc := u.Sources()
	op.nSrc = int8(nSrc)
	for s := 0; s < nSrc; s++ {
		r := srcs[s]
		fp := uop.IsFPReg(r)
		op.srcFP[s] = fp
		switch {
		case plan.sameAs0[s]:
			op.srcPhys[s] = op.srcPhys[0]
		case plan.donor[s] >= 0:
			op.srcPhys[s] = p.makeCopy(r, int(plan.donor[s]), cl, u.Seq, now)
		default:
			op.srcPhys[s] = p.maps[cl].Get(r)
		}
		rf := p.regfile(cl, fp)
		op.srcRF[s] = rf
		op.srcReady[s] = rf.ReadyAtPtr(op.srcPhys[s])
	}

	if u.HasDst() {
		fp := uop.IsFPReg(u.Dst)
		var phys int16
		if fp {
			phys, _ = p.freeFP[cl].Alloc()
		} else {
			phys, _ = p.freeInt[cl].Alloc()
		}
		op.dstPhys = phys
		op.dstRF = p.regfile(cl, fp)
		op.dstRF.SetPending(phys)
		prev := p.maps[cl].Set(u.Dst, phys)
		if prev != rename.PhysNone {
			op.addFree(int8(cl), fp, prev)
		}
		// Stale copies of the old value elsewhere die with this
		// definition; their registers are reclaimed when it commits.
		holders := p.avail.Holders(u.Dst)
		for c2 := 0; c2 < p.cfg.Clusters; c2++ {
			if c2 == cl || holders&(1<<uint(c2)) == 0 {
				continue
			}
			stale := p.maps[c2].Clear(u.Dst)
			if stale != rename.PhysNone {
				op.addFree(int8(c2), fp, stale)
			}
		}
		p.avail.SetOnly(u.Dst, cl)
	}

	part := p.cfg.FrontendOf(cl)
	ref, ok := p.reorder.Alloc(part, id)
	if !ok {
		panic("core: ROB alloc failed after successful plan")
	}
	op.ref = ref

	switch u.Class {
	case uop.Load:
		op.line = u.Addr &^ uint64(p.cfg.LineB-1)
		op.page = u.Addr &^ uint64(p.cfg.PageB-1)
		cluster.Mob.Alloc(u.Seq, false)
	case uop.Store:
		op.line = u.Addr &^ uint64(p.cfg.LineB-1)
		op.page = u.Addr &^ uint64(p.cfg.PageB-1)
		for c2 := range p.clusters {
			p.clusters[c2].Mob.Alloc(u.Seq, true)
		}
	case uop.Branch:
		if u.Mispred {
			op.redirect = true
		}
	}

	// Compact wakeup record for the per-cycle issue poll.
	h := &p.readyHot[id]
	*h = readyHot{}
	if op.nSrc >= 1 {
		h.src0 = op.srcReady[0]
	}
	if op.nSrc >= 2 && u.Class != uop.Store {
		h.src1 = op.srcReady[1] // a store's data operand does not gate issue
	}
	switch u.Class {
	case uop.IntDiv:
		h.kind = readyIntDiv
	case uop.FPDiv:
		h.kind = readyFPDiv
	case uop.Load:
		h.kind = readyLoad
		h.seq = u.Seq
		h.line = op.line
	}

	cluster.Queues[plan.kind].Dispatch(
		backend.QueueEntry{ID: id, Seq: u.Seq},
		now+uint64(p.cfg.DispatchLatency),
	)
}

// makeCopy creates the copy instruction bringing logical register r from
// cluster donor into cluster cl, returning the destination physical
// register the consumer will read.  Cross-frontend copies pay the §3.1.1
// request penalty.
func (p *Processor) makeCopy(r int8, donor, cl int, seq uint64, now uint64) int16 {
	fp := uop.IsFPReg(r)
	var phys int16
	if fp {
		phys, _ = p.freeFP[cl].Alloc()
	} else {
		phys, _ = p.freeInt[cl].Alloc()
	}
	p.regfile(cl, fp).SetPending(phys)
	p.maps[cl].Set(r, phys)
	p.avail.Add(r, cl)

	var idx int32
	if n := len(p.copyFree); n > 0 {
		idx = p.copyFree[n-1]
		p.copyFree = p.copyFree[:n-1]
	} else {
		p.copies = append(p.copies, copyState{})
		idx = int32(len(p.copies) - 1)
	}
	c := &p.copies[idx]
	srcPhys := p.maps[donor].Get(r)
	donorRF := p.regfile(donor, fp)
	*c = copyState{
		src: int8(donor), dst: int8(cl), fp: fp,
		srcPhys: srcPhys, dstPhys: phys, inUse: true,
		srcReady: donorRF.ReadyAtPtr(srcPhys),
		srcRF:    donorRF,
		dstRF:    p.regfile(cl, fp),
	}
	delay := uint64(p.cfg.DispatchLatency)
	if p.cfg.Distributed() && p.cfg.FrontendOf(donor) != p.cfg.FrontendOf(cl) {
		delay += uint64(p.cfg.CrossFrontendCopyPenalty)
		p.Stats.CrossFrontend++
	}
	p.Stats.Copies++
	p.clusters[donor].Queues[backend.CopyQueue].Dispatch(
		backend.QueueEntry{ID: copyBase + idx, Seq: seq}, now+delay,
	)
	return phys
}

// addFree records a physical register to release when the op commits.
func (o *opState) addFree(cluster int8, fp bool, phys int16) {
	if int(o.nFrees) == len(o.frees) {
		panic("core: too many register frees for one op")
	}
	o.frees[o.nFrees] = regFree{cluster: cluster, fp: fp, phys: phys}
	o.nFrees++
}
