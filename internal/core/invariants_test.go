package core

import (
	"testing"

	"repro/internal/rename"
	"repro/internal/uop"
	"repro/internal/workload"
)

// scriptFeeder replays a fixed micro-op slice.
type scriptFeeder struct {
	ops []uop.MicroOp
	pos int
}

func (f *scriptFeeder) Next() (uop.MicroOp, bool) {
	if f.pos >= len(f.ops) {
		return uop.MicroOp{}, false
	}
	op := f.ops[f.pos]
	op.Seq = uint64(f.pos)
	f.pos++
	return op, true
}

// script builds a well-formed trace stream from op templates: every 6th
// op ends a trace (branches are forced to end traces).
func script(ops []uop.MicroOp) *scriptFeeder {
	for i := range ops {
		// Reuse eight trace IDs so the trace cache warms immediately and
		// the scripts measure backend behaviour, not compulsory misses.
		ops[i].PC = uint64(i/6%8)<<6 + uint64(i%6)*4
		if i%6 == 5 || ops[i].Class == uop.Branch {
			ops[i].TraceEnd = true
		}
	}
	return &scriptFeeder{ops: ops}
}

func chainOps(n int) []uop.MicroOp {
	ops := make([]uop.MicroOp, n)
	for i := range ops {
		// r1 = r1 + 1: a serial dependence chain.
		ops[i] = uop.MicroOp{Class: uop.IntALU, Src1: 1, Src2: uop.RegNone, Dst: 1}
	}
	return ops
}

func TestScriptedChainCompletes(t *testing.T) {
	p := New(DefaultConfig(), script(chainOps(100)))
	p.Run(0)
	if p.Stats.Committed != 100 {
		t.Fatalf("committed %d", p.Stats.Committed)
	}
	// A serial chain cannot run faster than one op per cycle.
	if p.Stats.Cycles < 100 {
		t.Fatalf("serial chain finished in %d cycles", p.Stats.Cycles)
	}
}

func TestScriptedIndependentOpsParallel(t *testing.T) {
	// Independent ops (distinct registers, round robin) must achieve much
	// higher throughput than a serial chain.
	indep := make([]uop.MicroOp, 600)
	for i := range indep {
		r := int8(i % 8)
		indep[i] = uop.MicroOp{Class: uop.IntALU, Src1: 8 + r, Src2: uop.RegNone, Dst: r}
	}
	pi := New(DefaultConfig(), script(indep))
	pi.Run(0)

	pc := New(DefaultConfig(), script(chainOps(600)))
	pc.Run(0)

	if pi.Stats.Cycles >= pc.Stats.Cycles {
		t.Fatalf("independent ops (%d cyc) not faster than chain (%d cyc)",
			pi.Stats.Cycles, pc.Stats.Cycles)
	}
}

func TestRegisterConservationAfterDrain(t *testing.T) {
	// After the pipeline drains, every physical register is either free
	// or the current mapping of a logical register; nothing leaks.
	for _, distributed := range []bool{false, true} {
		cfg := DefaultConfig()
		if distributed {
			cfg = cfg.WithDistributedFrontend(2)
		}
		prof, _ := workload.ByName("gcc")
		prof.LengthScale = 1
		p := New(cfg, workload.NewGenerator(prof, 30000))
		p.Run(0)
		if !p.Done() {
			t.Fatal("did not drain")
		}
		for cl := 0; cl < cfg.Clusters; cl++ {
			mapped := 0
			for r := int8(0); r < uop.NumLogicalRegs; r++ {
				if p.maps[cl].Get(r) != rename.PhysNone {
					mapped++
				}
			}
			wantInt := cfg.Cluster.IntRegs
			wantFP := cfg.Cluster.FPRegs
			gotInt := p.freeInt[cl].Available()
			gotFP := p.freeFP[cl].Available()
			mappedInt, mappedFP := 0, 0
			for r := int8(0); r < uop.NumLogicalRegs; r++ {
				if p.maps[cl].Get(r) == rename.PhysNone {
					continue
				}
				if uop.IsFPReg(r) {
					mappedFP++
				} else {
					mappedInt++
				}
			}
			if gotInt+mappedInt != wantInt {
				t.Errorf("dist=%v cluster %d: %d free + %d mapped int regs != %d",
					distributed, cl, gotInt, mappedInt, wantInt)
			}
			if gotFP+mappedFP != wantFP {
				t.Errorf("dist=%v cluster %d: %d free + %d mapped FP regs != %d",
					distributed, cl, gotFP, mappedFP, wantFP)
			}
		}
	}
}

func TestAvailabilityMapConsistency(t *testing.T) {
	// Invariant: the availability table says a backend holds a register
	// exactly when that backend's map table has a mapping for it.
	prof, _ := workload.ByName("vortex")
	prof.LengthScale = 1
	p := New(DefaultConfig(), workload.NewGenerator(prof, 20000))
	for i := 0; i < 200 && !p.Done(); i++ {
		p.RunCycles(500)
		for cl := 0; cl < p.cfg.Clusters; cl++ {
			for r := int8(0); r < uop.NumLogicalRegs; r++ {
				holds := p.avail.Holds(r, cl)
				mapped := p.maps[cl].Get(r) != rename.PhysNone
				if holds != mapped {
					t.Fatalf("cycle %d: cluster %d reg %d: avail=%v mapped=%v",
						p.cycle, cl, r, holds, mapped)
				}
			}
		}
	}
}

func TestMOBEmptyAfterDrain(t *testing.T) {
	prof, _ := workload.ByName("parser")
	prof.LengthScale = 1
	p := New(DefaultConfig(), workload.NewGenerator(prof, 20000))
	p.Run(0)
	for cl, c := range p.clusters {
		if occ := c.Mob.Occupancy(); occ != 0 {
			t.Errorf("cluster %d MOB holds %d entries after drain", cl, occ)
		}
		for k := range c.Queues {
			if occ := c.Queues[k].Occupancy(); occ != 0 {
				t.Errorf("cluster %d queue %d holds %d entries after drain", cl, k, occ)
			}
		}
	}
	if len(p.copyFree) != len(p.copies) {
		t.Errorf("%d copy slots live after drain", len(p.copies)-len(p.copyFree))
	}
}

func TestStoreLoadForwardingScript(t *testing.T) {
	// The store executes early (operands ready) but cannot commit: an
	// older FP-divide chain is still in flight.  The younger load then
	// issues against the live store and must forward from it.
	ops := []uop.MicroOp{}
	for i := 0; i < 3; i++ { // slow older ops blocking commit
		ops = append(ops, uop.MicroOp{Class: uop.FPDiv, Src1: 16, Src2: 17, Dst: 18})
	}
	ops = append(ops,
		uop.MicroOp{Class: uop.Store, Src1: 0, Src2: 1, Addr: 0x1000},
		uop.MicroOp{Class: uop.Load, Src1: 0, Src2: uop.RegNone, Dst: 3, Addr: 0x1000},
		uop.MicroOp{Class: uop.IntALU, Src1: 3, Src2: uop.RegNone, Dst: 4},
	)
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if p.Stats.Committed != uint64(len(ops)) {
		t.Fatalf("committed %d", p.Stats.Committed)
	}
	if p.Stats.LoadForwards != 1 {
		t.Fatalf("forwards = %d, want 1", p.Stats.LoadForwards)
	}
}

func TestLoadWaitsForStoreAddress(t *testing.T) {
	// A load behind a store with a slow address chain must not complete
	// before the store's address is computed (no memory speculation).
	slow := []uop.MicroOp{}
	for i := 0; i < 30; i++ { // long dependence chain into the address
		slow = append(slow, uop.MicroOp{Class: uop.IntALU, Src1: 1, Src2: uop.RegNone, Dst: 1})
	}
	slow = append(slow,
		uop.MicroOp{Class: uop.Store, Src1: 1, Src2: 0, Addr: 0x2000},
		uop.MicroOp{Class: uop.Load, Src1: 0, Src2: uop.RegNone, Dst: 3, Addr: 0x3000},
	)
	p := New(DefaultConfig(), script(slow))
	p.Run(0)
	if p.Stats.Committed != uint64(len(slow)) {
		t.Fatalf("committed %d of %d", p.Stats.Committed, len(slow))
	}
	// The chain takes ≥30 cycles; adding frontend depth the run must be
	// clearly longer than the load's own latency.
	if p.Stats.Cycles < 40 {
		t.Fatalf("run finished in %d cycles; load cannot have waited", p.Stats.Cycles)
	}
}

func TestMispredictRedirectScript(t *testing.T) {
	ops := make([]uop.MicroOp, 0, 48)
	for tr := 0; tr < 8; tr++ {
		for i := 0; i < 5; i++ {
			ops = append(ops, uop.MicroOp{Class: uop.IntALU, Src1: 1, Src2: uop.RegNone, Dst: 1})
		}
		br := uop.MicroOp{Class: uop.Branch, Src1: 1, Src2: uop.RegNone, Dst: uop.RegNone}
		if tr == 3 {
			br.Mispred = true
		}
		ops = append(ops, br)
	}
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if p.Stats.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", p.Stats.Mispredicts)
	}
	if p.Stats.Committed != uint64(len(ops)) {
		t.Fatalf("committed %d", p.Stats.Committed)
	}

	// The same program without the mispredict must be faster.
	ops2 := make([]uop.MicroOp, len(ops))
	copy(ops2, ops)
	for i := range ops2 {
		ops2[i].Mispred = false
	}
	p2 := New(DefaultConfig(), script(ops2))
	p2.Run(0)
	if p2.Stats.Cycles >= p.Stats.Cycles {
		t.Fatalf("mispredict-free run (%d cyc) not faster than mispredicted (%d cyc)",
			p2.Stats.Cycles, p.Stats.Cycles)
	}
}

func TestFPOpsUseFPRegisters(t *testing.T) {
	ops := []uop.MicroOp{
		{Class: uop.FPAdd, Src1: 16, Src2: 17, Dst: 18},
		{Class: uop.FPMul, Src1: 18, Src2: 16, Dst: 19},
		{Class: uop.FPDiv, Src1: 19, Src2: 18, Dst: 20},
	}
	p := New(DefaultConfig(), script(ops))
	p.Run(0)
	if p.Stats.Committed != 3 {
		t.Fatalf("committed %d", p.Stats.Committed)
	}
	act := p.Activity()
	var fpOps uint64
	for _, ca := range act.Cluster {
		fpOps += ca.FPFUOps
	}
	if fpOps != 3 {
		t.Fatalf("FP FU ops = %d, want 3", fpOps)
	}
}

func TestDistributedCommitLatencyEffect(t *testing.T) {
	// The extra commit latency delays physical-register reclamation; it
	// binds when a cluster's freelist saturates.  Build a serial chain
	// (steered to one cluster by operand affinity) long enough to keep
	// ~1 commit/cycle, and delay frees beyond the register count: the
	// machine must slow down measurably.
	ops := make([]uop.MicroOp, 4000)
	for i := range ops {
		ops[i] = uop.MicroOp{Class: uop.IntALU, Src1: int8(i % 16), Src2: uop.RegNone, Dst: int8((i + 1) % 16)}
	}
	cfg := DefaultConfig().WithDistributedFrontend(2)
	p1 := New(cfg, script(ops))
	p1.Run(0)

	ops2 := make([]uop.MicroOp, len(ops))
	copy(ops2, ops)
	cfgSlow := cfg
	cfgSlow.DistributedCommitExtra = 400
	p2 := New(cfgSlow, script(ops2))
	p2.Run(0)
	if p2.Stats.Cycles <= p1.Stats.Cycles {
		t.Fatalf("inflated commit latency had no effect: %d vs %d cycles",
			p2.Stats.Cycles, p1.Stats.Cycles)
	}
}

func TestUninitializedSourcePanics(t *testing.T) {
	// Reading a logical register that no backend holds indicates a
	// machine-state corruption and must fail loudly.  All registers are
	// initialized at reset, so this requires deliberately clearing one.
	p := New(DefaultConfig(), script([]uop.MicroOp{
		{Class: uop.IntALU, Src1: 5, Src2: uop.RegNone, Dst: 6},
	}))
	p.avail.SetOnly(5, 0)
	p.maps[0].Clear(5)
	// Desynchronize: availability says nobody holds register 5.
	for cl := 0; cl < 4; cl++ {
		if p.avail.Holds(5, cl) {
			p.avail.SetOnly(5, cl) // keep bit set; then clear via internal state
		}
	}
	// Directly zero the row to simulate corruption.
	defer func() {
		if recover() == nil {
			t.Skip("corruption not reachable through the public path")
		}
	}()
	// Clearing all holders is not expressible via the API (by design);
	// the invariant test above covers consistency instead.
	t.Skip("availability rows cannot be emptied through the API (invariant holds)")
}
