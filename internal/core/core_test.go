package core

import (
	"testing"

	"repro/internal/uop"
	"repro/internal/workload"
)

// runBench runs one benchmark for n micro-ops on cfg and returns the
// processor for inspection.
func runBench(t *testing.T, cfg Config, bench string, n uint64) *Processor {
	t.Helper()
	prof, ok := workload.ByName(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	prof.LengthScale = 1.0 // decouple tests from published slice lengths
	p := New(cfg, workload.NewGenerator(prof, n))
	p.Run(0)
	if !p.Done() {
		t.Fatalf("%s did not drain", bench)
	}
	return p
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.Clusters = 0; return c },
		func(c Config) Config { c.Frontends = 3; return c }, // 4 % 3 != 0
		func(c Config) Config { c.Frontends = 8; return c },
		func(c Config) Config { c.ROBEntries = 255; c.Frontends = 2; return c },
		func(c Config) Config { c.FetchWidth = 0; return c },
		func(c Config) Config { c.TC.Banks = 0; return c },
	}
	for i, f := range bad {
		if err := f(DefaultConfig()).Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestFrontendAssignment(t *testing.T) {
	cfg := DefaultConfig().WithDistributedFrontend(2)
	// Figure 3: frontend 0 feeds backends 0 and 1; frontend 1 feeds 2,3.
	wants := []int{0, 0, 1, 1}
	for cl, want := range wants {
		if got := cfg.FrontendOf(cl); got != want {
			t.Errorf("FrontendOf(%d) = %d, want %d", cl, got, want)
		}
	}
	if cls := cfg.ClustersOf(1); len(cls) != 2 || cls[0] != 2 || cls[1] != 3 {
		t.Errorf("ClustersOf(1) = %v", cls)
	}
	if !cfg.Distributed() || DefaultConfig().Distributed() {
		t.Error("Distributed() predicate wrong")
	}
}

func TestConfigModifiers(t *testing.T) {
	base := DefaultConfig()
	hop := base.WithBankHopping()
	if hop.TC.Banks != base.TC.Banks+1 || !hop.TC.Hopping {
		t.Error("WithBankHopping wrong")
	}
	bias := base.WithBiasedMapping()
	if !bias.TC.Biased {
		t.Error("WithBiasedMapping wrong")
	}
	blank := base.WithBlankSilicon()
	if blank.TC.Banks != base.TC.Banks+1 || blank.TC.StaticGate != blank.TC.Banks-1 {
		t.Error("WithBlankSilicon wrong")
	}
	// Modifiers must not mutate the receiver.
	if base.TC.Banks != 2 || base.TC.Hopping || base.TC.Biased {
		t.Error("modifier mutated its receiver")
	}
}

func TestBaselineRunsToCompletion(t *testing.T) {
	p := runBench(t, DefaultConfig(), "gzip", 30000)
	if p.Stats.Committed != 30000 {
		t.Fatalf("committed %d, want 30000", p.Stats.Committed)
	}
	ipc := p.Stats.IPC()
	if ipc < 0.03 || ipc > 8 {
		t.Fatalf("IPC %.2f implausible for an 8-wide machine", ipc)
	}
}

func TestDistributedRunsToCompletion(t *testing.T) {
	p := runBench(t, DefaultConfig().WithDistributedFrontend(2), "gzip", 30000)
	if p.Stats.Committed != 30000 {
		t.Fatalf("committed %d, want 30000", p.Stats.Committed)
	}
}

func TestDistributedSmallSlowdown(t *testing.T) {
	// §4.1: the distributed rename/commit slowdown is small (~2%).
	base := runBench(t, DefaultConfig(), "bzip2", 40000)
	dist := runBench(t, DefaultConfig().WithDistributedFrontend(2), "bzip2", 40000)
	slow := float64(dist.Stats.Cycles)/float64(base.Stats.Cycles) - 1
	if slow < -0.02 {
		t.Errorf("distributed frontend sped things up by %.1f%%?", -slow*100)
	}
	if slow > 0.15 {
		t.Errorf("distributed slowdown %.1f%% too large (paper: ~2%%)", slow*100)
	}
}

func TestHoppingRunsAndHitRateClose(t *testing.T) {
	base := runBench(t, DefaultConfig(), "gzip", 40000)
	hop := runBench(t, DefaultConfig().WithBankHopping(), "gzip", 40000)
	// §4.2: "the hit ratio is reduced less than 1%" — allow a few percent
	// at our scaled interval (hops happen via sim driver; here no hops
	// occur because Reconfigure is never called, so rates must be ~equal).
	if d := base.TCHitRate() - hop.TCHitRate(); d > 0.03 || d < -0.03 {
		t.Errorf("hit-rate gap %.3f without any hop", d)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runBench(t, DefaultConfig(), "vpr", 20000)
	b := runBench(t, DefaultConfig(), "vpr", 20000)
	if a.Stats != b.Stats {
		t.Fatalf("non-deterministic stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestAllClustersUsed(t *testing.T) {
	p := runBench(t, DefaultConfig(), "gcc", 40000)
	act := p.Activity()
	for cl, ca := range act.Cluster {
		exec := ca.IntFUOps + ca.FPFUOps + ca.AgenOps
		if exec == 0 {
			t.Errorf("cluster %d executed nothing (steering broken)", cl)
		}
	}
}

func TestCopiesHappen(t *testing.T) {
	p := runBench(t, DefaultConfig(), "gcc", 40000)
	if p.Stats.Copies == 0 {
		t.Fatal("no inter-cluster copies in a clustered machine")
	}
}

func TestCrossFrontendCopiesOnlyWhenDistributed(t *testing.T) {
	base := runBench(t, DefaultConfig(), "parser", 20000)
	if base.Stats.CrossFrontend != 0 {
		t.Error("cross-frontend copies counted in centralized mode")
	}
	dist := runBench(t, DefaultConfig().WithDistributedFrontend(2), "parser", 20000)
	if dist.Stats.CrossFrontend == 0 {
		t.Error("no cross-frontend copies in distributed mode")
	}
	if dist.Stats.CrossFrontend > dist.Stats.Copies {
		t.Error("cross-frontend copies exceed total copies")
	}
}

func TestMemoryBoundBenchmarkMisses(t *testing.T) {
	p := runBench(t, DefaultConfig(), "mcf", 30000)
	if p.Stats.LoadMisses == 0 {
		t.Fatal("mcf (64MB working set) produced no DL1 misses")
	}
	if p.DL1HitRate() > 0.999 {
		t.Fatalf("mcf DL1 hit rate %.4f implausibly high", p.DL1HitRate())
	}
}

func TestFPWorkloadUsesFPUs(t *testing.T) {
	p := runBench(t, DefaultConfig(), "swim", 30000)
	act := p.Activity()
	var fp, intg uint64
	for _, ca := range act.Cluster {
		fp += ca.FPFUOps
		intg += ca.IntFUOps
	}
	if fp == 0 {
		t.Fatal("swim executed no FP operations")
	}
	if float64(fp) < 0.2*float64(intg+fp) {
		t.Errorf("swim FP share %.2f too low", float64(fp)/float64(intg+fp))
	}
}

func TestMispredictsStallFetch(t *testing.T) {
	// vpr has a 6% mispredict rate; gzip 3.5%.  More mispredicts must
	// show up in the counter.
	p := runBench(t, DefaultConfig(), "vpr", 30000)
	if p.Stats.Mispredicts == 0 {
		t.Fatal("no mispredicts recorded")
	}
}

func TestActivityDeltas(t *testing.T) {
	prof, _ := workload.ByName("gzip")
	p := New(DefaultConfig(), workload.NewGenerator(prof, 40000))
	p.RunCycles(3000)
	a1 := p.Activity()
	p.RunCycles(3000)
	a2 := p.Activity()
	d := a2.Sub(a1)
	if d.Cycles != a2.Cycles-a1.Cycles {
		t.Error("cycle delta wrong")
	}
	if d.Decode == 0 || d.TCBank[0]+d.TCBank[1] == 0 {
		t.Error("interval deltas empty mid-run")
	}
	// Deltas must never underflow (counters are monotone).
	for _, v := range d.RATReads {
		if v > 1<<60 {
			t.Fatal("RAT read delta underflowed")
		}
	}
}

func TestROBPartitionBalance(t *testing.T) {
	p := runBench(t, DefaultConfig().WithDistributedFrontend(2), "gcc", 40000)
	act := p.Activity()
	if len(act.ROBAllocs) != 2 {
		t.Fatalf("ROB partitions = %d", len(act.ROBAllocs))
	}
	a0, a1 := float64(act.ROBAllocs[0]), float64(act.ROBAllocs[1])
	if a0 == 0 || a1 == 0 {
		t.Fatal("one ROB partition unused")
	}
	ratio := a0 / a1
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("ROB partition imbalance %.2f (steering should balance)", ratio)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	p := runBench(t, DefaultConfig(), "vortex", 40000)
	if p.Stats.LoadForwards == 0 {
		t.Error("no store-to-load forwarding observed")
	}
}

func TestCommittedMatchesGenerated(t *testing.T) {
	for _, mode := range []string{"base", "dist"} {
		cfg := DefaultConfig()
		if mode == "dist" {
			cfg = cfg.WithDistributedFrontend(2)
		}
		p := runBench(t, cfg, "eon", 25000)
		// eon's LengthScale was reset to 1.0 by runBench.
		if p.Stats.Committed != 25000 {
			t.Errorf("%s: committed %d, want 25000", mode, p.Stats.Committed)
		}
	}
}

func TestQueueForMapping(t *testing.T) {
	cases := map[uop.Class]string{
		uop.IntALU: "IQ", uop.Branch: "IQ", uop.FPMul: "FPQ",
		uop.Load: "MemQ", uop.Store: "MemQ",
	}
	for cl, want := range cases {
		if got := queueFor(cl).String(); got != want {
			t.Errorf("queueFor(%v) = %s, want %s", cl, got, want)
		}
	}
}
