package core
