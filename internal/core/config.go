// Package core assembles the full clustered processor of the paper
// (Figure 2): one or more frontend partitions (trace cache, decode,
// rename, steer) feeding four backend clusters over point-to-point links,
// with a shared UL2 and the bus fabric of Table 1.
//
// The package implements both organizations evaluated in the paper:
//
//   - the baseline with a monolithic rename table and reorder buffer
//     (Config.Frontends == 1), and
//   - the proposed distributed frontend (§3.1) where N frontend partitions
//     each hold the rename table and reorder buffer slice of their
//     assigned backends (Config.Frontends > 1), with the availability
//     table, freelists, copy-request protocol and R/L-chained commit.
//
// The trace-cache techniques of §3.2 (bank hopping, thermal-aware biased
// mapping, blank silicon) are configured through Config.TC.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/tcache"
)

// Config describes one processor configuration.  The zero value is not
// runnable; start from DefaultConfig.
type Config struct {
	// Clusters is the number of backend clusters (paper: 4).
	Clusters int
	// Frontends is the number of frontend partitions.  1 reproduces the
	// baseline monolithic RAT/ROB; 2 is the paper's distributed frontend
	// (bi-clustered frontend over a quad-clustered backend, Figure 3).
	Frontends int

	// Widths (Table 1: fetch, dispatch and commit up to 8 µops/cycle).
	FetchWidth    int
	DispatchWidth int
	CommitWidth   int

	// Frontend latencies (Table 1).
	FetchToDispatch int // trace cache fetch-to-dispatch: 4 cycles
	DecodeLatency   int // decode, rename and steer: 8 cycles
	DispatchLatency int // dispatch into the issue queues: 10 cycles
	// RedirectPenalty is the frontend redirect cost after a mispredicted
	// branch resolves (on top of refilling the pipeline).
	RedirectPenalty int

	// ROBEntries is the total reorder buffer capacity, split evenly among
	// the frontend partitions.
	ROBEntries int
	// DistributedCommitExtra is the added commit latency in cycles when
	// Frontends > 1 (§3.1.2: "the commit latency will be increased by 1
	// cycle").
	DistributedCommitExtra int
	// CrossFrontendCopyPenalty is the extra latency of the two-step copy
	// request (§3.1.1) when the copy producer lives under another
	// frontend.
	CrossFrontendCopyPenalty int

	// Cluster sizes one backend cluster (Table 1).
	Cluster backend.Config

	// TC is the trace-cache organization (§3.2).
	TC tcache.Config

	// Memory hierarchy (Table 1).
	DL1SizeB    int // 16 KB
	DL1Ways     int // 2
	LineB       int // cache line size
	DL1HitLat   int // 1 cycle
	UL2SizeB    int // 2 MB
	UL2Ways     int // 8
	UL2HitLat   int // 12 cycles
	MemLat      int // 500+ cycles
	DTLBSizeB   int
	DTLBWays    int
	PageB       int
	DTLBMissLat int

	// UseBranchPredictor replaces the workload profile's misprediction
	// flags with a real gshare/bimodal predictor (internal/bpred) trained
	// on the stream's branch outcomes.  Off by default: the profiles'
	// calibrated rates are the paper-equivalent behaviour.
	UseBranchPredictor bool
	// BPredBits sizes the predictor tables (2^bits entries).
	BPredBits uint

	// NextLinePrefetch enables a simple sequential prefetcher on DL1
	// refills, as high-frequency designs of the paper's era had; without
	// it, streaming workloads pay a full miss per line.
	NextLinePrefetch bool

	// Buses and links (Table 1).
	MemBuses   int // 2 memory buses
	DisBuses   int // 2 disambiguation buses
	BusLatency int // 4 cycles
	BusArbiter int // 1 cycle
	LinkWidth  int // 2 bidirectional point-to-point links
}

// DefaultConfig returns the paper's baseline configuration (Table 1): a
// quad-cluster processor with a monolithic rename table and reorder
// buffer and a two-banked trace cache with the balanced mapping function.
//
// Structure sizes that the paper specifies are kept verbatim.  The trace
// cache capacity is scaled down together with the thermal interval (see
// DESIGN.md §6): the paper's 32K-µop cache with 10M-cycle intervals
// becomes a 256-trace-per-bank cache with 100K-cycle intervals, so the
// ratio of bank refill time to interval length — which determines the
// cost and thermal behaviour of bank hopping — is preserved.
func DefaultConfig() Config {
	return Config{
		Clusters:  4,
		Frontends: 1,

		FetchWidth:    8,
		DispatchWidth: 8,
		CommitWidth:   8,

		FetchToDispatch: 4,
		DecodeLatency:   8,
		DispatchLatency: 10,
		RedirectPenalty: 2,

		ROBEntries:               256,
		DistributedCommitExtra:   1,
		CrossFrontendCopyPenalty: 1,

		Cluster: backend.Config{
			IntRegs: 160, FPRegs: 160,
			IntQ: 40, FPQ: 40, CopyQ: 40, MemQ: 96,
			Prescheduler: 20,
			MOBEntries:   96,
		},

		TC: tcache.Config{
			Banks:         2,
			TracesPerBank: 256,
			Ways:          4,
			StaticGate:    -1,
		},

		DL1SizeB: 16 << 10, DL1Ways: 2, LineB: 64, DL1HitLat: 1,
		UL2SizeB: 2 << 20, UL2Ways: 8, UL2HitLat: 12, MemLat: 500,
		DTLBSizeB: 64 * 4096, DTLBWays: 4, PageB: 4096, DTLBMissLat: 30,

		UseBranchPredictor: false,
		BPredBits:          14,

		NextLinePrefetch: true,

		MemBuses: 2, DisBuses: 2, BusLatency: 4, BusArbiter: 1,
		LinkWidth: 2,
	}
}

// WithDistributedFrontend returns a copy of the configuration with the
// §3.1 distributed rename and commit mechanism over n frontend
// partitions (the paper evaluates n=2 over 4 backends).
func (c Config) WithDistributedFrontend(n int) Config {
	c.Frontends = n
	return c
}

// WithBankHopping returns a copy with the §3.2.1 bank-hopping trace
// cache: one extra bank is added and one bank is always Vdd-gated in a
// rotating manner, so the effective capacity matches the baseline.
func (c Config) WithBankHopping() Config {
	c.TC.Banks++
	c.TC.Hopping = true
	return c
}

// WithBiasedMapping returns a copy with the §3.2.2 thermal-aware biased
// bank mapping function enabled.
func (c Config) WithBiasedMapping() Config {
	c.TC.Biased = true
	return c
}

// WithBlankSilicon returns a copy with the Figure 13 comparison point:
// one extra bank that is statically gated (cold bulk silicon next to the
// active banks), balanced mapping.
func (c Config) WithBlankSilicon() Config {
	c.TC.Banks++
	c.TC.StaticGate = c.TC.Banks - 1
	return c
}

// Distributed reports whether the configuration uses the distributed
// frontend.
func (c Config) Distributed() bool { return c.Frontends > 1 }

// FrontendOf returns the frontend partition that feeds cluster cl:
// clusters are divided contiguously (Figure 3: frontend 0 feeds backends
// 0 and 1, frontend 1 feeds backends 2 and 3).
func (c Config) FrontendOf(cl int) int {
	per := c.Clusters / c.Frontends
	f := cl / per
	if f >= c.Frontends {
		f = c.Frontends - 1
	}
	return f
}

// ClustersOf returns the backend clusters fed by frontend f.
func (c Config) ClustersOf(f int) []int {
	var out []int
	for cl := 0; cl < c.Clusters; cl++ {
		if c.FrontendOf(cl) == f {
			out = append(out, cl)
		}
	}
	return out
}

// Validate checks internal consistency and returns a descriptive error
// for the first violated constraint.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("core: need at least one cluster, got %d", c.Clusters)
	case c.Frontends < 1 || c.Frontends > c.Clusters:
		return fmt.Errorf("core: frontends %d must be in [1,%d]", c.Frontends, c.Clusters)
	case c.Clusters%c.Frontends != 0:
		return fmt.Errorf("core: %d clusters not divisible among %d frontends", c.Clusters, c.Frontends)
	case c.ROBEntries%c.Frontends != 0:
		return fmt.Errorf("core: ROB %d not divisible among %d frontends", c.ROBEntries, c.Frontends)
	case c.FetchWidth < 1 || c.DispatchWidth < 1 || c.CommitWidth < 1:
		return fmt.Errorf("core: widths must be positive")
	case c.TC.Banks < 1:
		return fmt.Errorf("core: trace cache needs at least one bank")
	case c.Clusters > 32:
		return fmt.Errorf("core: availability table supports at most 32 backends")
	}
	return nil
}
