package core

import "repro/internal/backend"

// Activity is a cumulative snapshot of every activity counter the power
// model consumes.  The power model differences two snapshots to obtain
// per-interval event counts per functional block (§2.1 of the paper:
// "an activity counter is associated to each functional block").
type Activity struct {
	Cycles    uint64
	Committed uint64

	// Frontend.
	TCBank       []uint64 // per-bank accesses (reads + fills)
	ITLB         uint64
	BP           uint64
	Decode       uint64
	SteerOps     uint64   // availability-table + freelist activity (steer stage)
	RATReads     []uint64 // per frontend partition
	RATWrites    []uint64
	ROBAllocs    []uint64 // per frontend partition
	ROBCompletes []uint64
	ROBCommits   []uint64
	ROBWalks     []uint64

	// Backend, per cluster.
	Cluster []ClusterActivity

	// Shared.
	UL2 uint64
}

// ClusterActivity is the per-cluster slice of an Activity snapshot.
type ClusterActivity struct {
	IRFReads   uint64
	IRFWrites  uint64
	FPRFReads  uint64
	FPRFWrites uint64
	Queue      [backend.NumQueues]uint64 // scheduler reads+writes per queue
	Issues     [backend.NumQueues]uint64
	IntFUOps   uint64
	FPFUOps    uint64
	AgenOps    uint64
	DL1        uint64
	DTLB       uint64
	MOB        uint64
}

// Activity captures the current cumulative counters.
func (p *Processor) Activity() Activity {
	a := Activity{
		Cycles:    p.cycle,
		Committed: p.Stats.Committed,
		ITLB:      p.itlbAcc,
		BP:        p.bpAcc,
		Decode:    p.decodeOps,
		UL2:       p.ul2.Stats.Accesses() + p.ul2.Stats.Fills,
	}
	a.TCBank = make([]uint64, p.tc.Banks())
	for b := 0; b < p.tc.Banks(); b++ {
		s := p.tc.BankStats(b)
		a.TCBank[b] = s.Accesses() + s.Fills
	}
	a.SteerOps = p.avail.Reads + p.avail.Writes

	f := p.cfg.Frontends
	a.RATReads = make([]uint64, f)
	a.RATWrites = make([]uint64, f)
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		part := p.cfg.FrontendOf(cl)
		a.RATReads[part] += p.maps[cl].Reads
		a.RATWrites[part] += p.maps[cl].Writes
	}
	a.ROBAllocs = make([]uint64, f)
	a.ROBCompletes = make([]uint64, f)
	a.ROBCommits = make([]uint64, f)
	a.ROBWalks = make([]uint64, f)
	for part := 0; part < f; part++ {
		ps := p.reorder.Part[part]
		a.ROBAllocs[part] = ps.Allocs
		a.ROBCompletes[part] = ps.Completes
		a.ROBCommits[part] = ps.Commits
		a.ROBWalks[part] = ps.WalkReads
	}

	a.Cluster = make([]ClusterActivity, p.cfg.Clusters)
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		c := p.clusters[cl]
		ca := &a.Cluster[cl]
		ca.IRFReads = c.IntRF.Reads
		ca.IRFWrites = c.IntRF.Writes
		ca.FPRFReads = c.FPRF.Reads
		ca.FPRFWrites = c.FPRF.Writes
		for k := backend.QueueKind(0); k < backend.NumQueues; k++ {
			ca.Queue[k] = c.Queues[k].Reads + c.Queues[k].Writes
			ca.Issues[k] = c.Queues[k].IssueCount
		}
		ca.IntFUOps = c.IntFU.Ops
		ca.FPFUOps = c.FPFU.Ops
		ca.AgenOps = c.AgenOps
		ca.DL1 = p.dl1[cl].Stats.Accesses() + p.dl1[cl].Stats.Fills
		ca.DTLB = p.dtlb[cl].Stats.Accesses() + p.dtlb[cl].Stats.Fills
		ca.MOB = c.Mob.Reads + c.Mob.Writes
	}
	return a
}

// Sub returns the per-interval delta a - prev (counter-wise).
func (a Activity) Sub(prev Activity) Activity {
	d := a
	d.Cycles -= prev.Cycles
	d.Committed -= prev.Committed
	d.ITLB -= prev.ITLB
	d.BP -= prev.BP
	d.Decode -= prev.Decode
	d.SteerOps -= prev.SteerOps
	d.UL2 -= prev.UL2
	d.TCBank = subSlice(a.TCBank, prev.TCBank)
	d.RATReads = subSlice(a.RATReads, prev.RATReads)
	d.RATWrites = subSlice(a.RATWrites, prev.RATWrites)
	d.ROBAllocs = subSlice(a.ROBAllocs, prev.ROBAllocs)
	d.ROBCompletes = subSlice(a.ROBCompletes, prev.ROBCompletes)
	d.ROBCommits = subSlice(a.ROBCommits, prev.ROBCommits)
	d.ROBWalks = subSlice(a.ROBWalks, prev.ROBWalks)
	d.Cluster = make([]ClusterActivity, len(a.Cluster))
	for i := range a.Cluster {
		ca, pa := a.Cluster[i], prev.Cluster[i]
		dc := &d.Cluster[i]
		dc.IRFReads = ca.IRFReads - pa.IRFReads
		dc.IRFWrites = ca.IRFWrites - pa.IRFWrites
		dc.FPRFReads = ca.FPRFReads - pa.FPRFReads
		dc.FPRFWrites = ca.FPRFWrites - pa.FPRFWrites
		for k := range ca.Queue {
			dc.Queue[k] = ca.Queue[k] - pa.Queue[k]
			dc.Issues[k] = ca.Issues[k] - pa.Issues[k]
		}
		dc.IntFUOps = ca.IntFUOps - pa.IntFUOps
		dc.FPFUOps = ca.FPFUOps - pa.FPFUOps
		dc.AgenOps = ca.AgenOps - pa.AgenOps
		dc.DL1 = ca.DL1 - pa.DL1
		dc.DTLB = ca.DTLB - pa.DTLB
		dc.MOB = ca.MOB - pa.MOB
	}
	return d
}

func subSlice(a, b []uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		if i < len(b) {
			out[i] = a[i] - b[i]
		} else {
			out[i] = a[i]
		}
	}
	return out
}

// TCHitRate returns the trace cache hit rate so far.
func (p *Processor) TCHitRate() float64 { return p.tc.Stats.HitRate() }

// DL1HitRate returns the aggregate first-level data cache hit rate.
func (p *Processor) DL1HitRate() float64 {
	var acc, miss uint64
	for _, d := range p.dl1 {
		acc += d.Stats.Reads + d.Stats.Writes
		miss += d.Stats.Misses()
	}
	if acc == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(acc)
}
