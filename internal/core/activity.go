package core

import "repro/internal/backend"

// Activity is a cumulative snapshot of every activity counter the power
// model consumes.  The power model differences two snapshots to obtain
// per-interval event counts per functional block (§2.1 of the paper:
// "an activity counter is associated to each functional block").
type Activity struct {
	Cycles    uint64
	Committed uint64

	// Frontend.
	TCBank       []uint64 // per-bank accesses (reads + fills)
	ITLB         uint64
	BP           uint64
	Decode       uint64
	SteerOps     uint64   // availability-table + freelist activity (steer stage)
	RATReads     []uint64 // per frontend partition
	RATWrites    []uint64
	ROBAllocs    []uint64 // per frontend partition
	ROBCompletes []uint64
	ROBCommits   []uint64
	ROBWalks     []uint64

	// Backend, per cluster.
	Cluster []ClusterActivity

	// Shared.
	UL2 uint64
}

// ClusterActivity is the per-cluster slice of an Activity snapshot.
type ClusterActivity struct {
	IRFReads   uint64
	IRFWrites  uint64
	FPRFReads  uint64
	FPRFWrites uint64
	Queue      [backend.NumQueues]uint64 // scheduler reads+writes per queue
	Issues     [backend.NumQueues]uint64
	IntFUOps   uint64
	FPFUOps    uint64
	AgenOps    uint64
	DL1        uint64
	DTLB       uint64
	MOB        uint64
}

// Activity captures the current cumulative counters.  It allocates a
// fresh snapshot; the simulation loop uses ActivityInto with reusable
// buffers.
func (p *Processor) Activity() Activity {
	var a Activity
	p.ActivityInto(&a)
	return a
}

// ActivityInto fills a with the current cumulative counters, reusing a's
// slices when they have the right length (they do after the first call
// with the same processor).
func (p *Processor) ActivityInto(a *Activity) {
	a.Cycles = p.cycle
	a.Committed = p.Stats.Committed
	a.ITLB = p.itlbAcc
	a.BP = p.bpAcc
	a.Decode = p.decodeOps
	a.UL2 = p.ul2.Stats.Accesses() + p.ul2.Stats.Fills

	a.TCBank = resizeU64(a.TCBank, p.tc.Banks())
	for b := 0; b < p.tc.Banks(); b++ {
		s := p.tc.BankStats(b)
		a.TCBank[b] = s.Accesses() + s.Fills
	}
	a.SteerOps = p.avail.Reads + p.avail.Writes

	f := p.cfg.Frontends
	a.RATReads = resizeU64(a.RATReads, f)
	a.RATWrites = resizeU64(a.RATWrites, f)
	for part := 0; part < f; part++ {
		a.RATReads[part] = 0
		a.RATWrites[part] = 0
	}
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		part := p.cfg.FrontendOf(cl)
		a.RATReads[part] += p.maps[cl].Reads
		a.RATWrites[part] += p.maps[cl].Writes
	}
	a.ROBAllocs = resizeU64(a.ROBAllocs, f)
	a.ROBCompletes = resizeU64(a.ROBCompletes, f)
	a.ROBCommits = resizeU64(a.ROBCommits, f)
	a.ROBWalks = resizeU64(a.ROBWalks, f)
	for part := 0; part < f; part++ {
		ps := p.reorder.Part[part]
		a.ROBAllocs[part] = ps.Allocs
		a.ROBCompletes[part] = ps.Completes
		a.ROBCommits[part] = ps.Commits
		a.ROBWalks[part] = ps.WalkReads
	}

	if len(a.Cluster) != p.cfg.Clusters {
		a.Cluster = make([]ClusterActivity, p.cfg.Clusters)
	}
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		c := p.clusters[cl]
		ca := &a.Cluster[cl]
		ca.IRFReads = c.IntRF.Reads
		ca.IRFWrites = c.IntRF.Writes
		ca.FPRFReads = c.FPRF.Reads
		ca.FPRFWrites = c.FPRF.Writes
		for k := backend.QueueKind(0); k < backend.NumQueues; k++ {
			ca.Queue[k] = c.Queues[k].Reads + c.Queues[k].Writes
			ca.Issues[k] = c.Queues[k].IssueCount
		}
		ca.IntFUOps = c.IntFU.Ops
		ca.FPFUOps = c.FPFU.Ops
		ca.AgenOps = c.AgenOps
		ca.DL1 = p.dl1[cl].Stats.Accesses() + p.dl1[cl].Stats.Fills
		ca.DTLB = p.dtlb[cl].Stats.Accesses() + p.dtlb[cl].Stats.Fills
		ca.MOB = c.Mob.Reads + c.Mob.Writes
	}
}

// Sub returns the per-interval delta a - prev (counter-wise).  It
// allocates the result; the simulation loop uses SubInto.
func (a Activity) Sub(prev Activity) Activity {
	var d Activity
	a.SubInto(&prev, &d)
	return d
}

// SubInto writes the per-interval delta a - prev into d, reusing d's
// slices when they have the right length.
func (a *Activity) SubInto(prev, d *Activity) {
	d.Cycles = a.Cycles - prev.Cycles
	d.Committed = a.Committed - prev.Committed
	d.ITLB = a.ITLB - prev.ITLB
	d.BP = a.BP - prev.BP
	d.Decode = a.Decode - prev.Decode
	d.SteerOps = a.SteerOps - prev.SteerOps
	d.UL2 = a.UL2 - prev.UL2
	d.TCBank = subSlice(d.TCBank, a.TCBank, prev.TCBank)
	d.RATReads = subSlice(d.RATReads, a.RATReads, prev.RATReads)
	d.RATWrites = subSlice(d.RATWrites, a.RATWrites, prev.RATWrites)
	d.ROBAllocs = subSlice(d.ROBAllocs, a.ROBAllocs, prev.ROBAllocs)
	d.ROBCompletes = subSlice(d.ROBCompletes, a.ROBCompletes, prev.ROBCompletes)
	d.ROBCommits = subSlice(d.ROBCommits, a.ROBCommits, prev.ROBCommits)
	d.ROBWalks = subSlice(d.ROBWalks, a.ROBWalks, prev.ROBWalks)
	if len(d.Cluster) != len(a.Cluster) {
		d.Cluster = make([]ClusterActivity, len(a.Cluster))
	}
	for i := range a.Cluster {
		ca, pa := a.Cluster[i], prev.Cluster[i]
		dc := &d.Cluster[i]
		dc.IRFReads = ca.IRFReads - pa.IRFReads
		dc.IRFWrites = ca.IRFWrites - pa.IRFWrites
		dc.FPRFReads = ca.FPRFReads - pa.FPRFReads
		dc.FPRFWrites = ca.FPRFWrites - pa.FPRFWrites
		for k := range ca.Queue {
			dc.Queue[k] = ca.Queue[k] - pa.Queue[k]
			dc.Issues[k] = ca.Issues[k] - pa.Issues[k]
		}
		dc.IntFUOps = ca.IntFUOps - pa.IntFUOps
		dc.FPFUOps = ca.FPFUOps - pa.FPFUOps
		dc.AgenOps = ca.AgenOps - pa.AgenOps
		dc.DL1 = ca.DL1 - pa.DL1
		dc.DTLB = ca.DTLB - pa.DTLB
		dc.MOB = ca.MOB - pa.MOB
	}
}

// resizeU64 returns s when it has length n, a fresh slice otherwise.
func resizeU64(s []uint64, n int) []uint64 {
	if len(s) == n {
		return s
	}
	return make([]uint64, n)
}

// subSlice writes a - b element-wise into dst (reused when sized right;
// entries of a beyond b's length pass through unchanged).
func subSlice(dst, a, b []uint64) []uint64 {
	dst = resizeU64(dst, len(a))
	for i := range a {
		if i < len(b) {
			dst[i] = a[i] - b[i]
		} else {
			dst[i] = a[i]
		}
	}
	return dst
}

// TCHitRate returns the trace cache hit rate so far.
func (p *Processor) TCHitRate() float64 { return p.tc.Stats.HitRate() }

// DL1HitRate returns the aggregate first-level data cache hit rate.
func (p *Processor) DL1HitRate() float64 {
	var acc, miss uint64
	for _, d := range p.dl1 {
		acc += d.Stats.Reads + d.Stats.Writes
		miss += d.Stats.Misses()
	}
	if acc == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(acc)
}
