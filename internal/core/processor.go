package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/rename"
	"repro/internal/rob"
	"repro/internal/tcache"
	"repro/internal/uop"
)

// Feeder supplies the dynamic micro-op stream (normally a
// workload.Generator).
type Feeder interface {
	Next() (uop.MicroOp, bool)
}

// copyBase offsets copy-instruction ids above op-slab ids in issue-queue
// entries.
const copyBase int32 = 1 << 30

// Stats aggregates the performance counters of one run.
type Stats struct {
	Cycles         uint64
	Committed      uint64 // committed micro-ops
	TracesFetched  uint64
	TCMissStalls   uint64
	DispatchStalls uint64
	Mispredicts    uint64
	Copies         uint64
	CrossFrontend  uint64 // copies that needed the two-step request
	LoadForwards   uint64
	LoadMisses     uint64

	// Event-queue traffic.  EventPushes/EventPops count scheduled and
	// drained completion events; StoreWakeups counts store completions
	// scheduled by a producer wakeup instead of an event of their own;
	// StorePollsAvoided estimates the 2-cycle poll re-arms the
	// pre-wakeup scheme would have executed for the same waits, so perf
	// work can quantify queue pressure without a profiler.
	EventPushes       uint64
	EventPops         uint64
	StoreWakeups      uint64
	StorePollsAvoided uint64
}

// IPC returns committed micro-ops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

type regFree struct {
	cluster int8
	fp      bool
	phys    int16
}

type opState struct {
	u         uop.MicroOp
	cluster   int8
	nSrc      int8
	nFrees    int8
	redirect  bool
	inUse     bool
	storeWait bool // store subscribed to its data producer's register
	srcPhys   [2]int16
	srcFP     [2]bool
	dstPhys   int16
	// waitFrom is the cycle the store's address half finished while its
	// data operand was still unproduced; the producer's wakeup schedules
	// completion at max(waitFrom, data ready cycle).
	waitFrom uint64
	// Resolved at dispatch so the per-cycle wakeup poll is a pointer load
	// instead of a cluster->regfile->slice walk: srcReady points at the
	// readiness slot of each source physical register, srcRF/dstRF at the
	// owning register files (for read/write accounting and write-back).
	srcReady [2]*uint64
	srcRF    [2]*backend.RegFile
	dstRF    *backend.RegFile
	frees    [8]regFree
	ref      rob.Ref
	line     uint64
	page     uint64
}

type copyState struct {
	src, dst         int8
	fp               bool
	srcPhys, dstPhys int16
	inUse            bool
	srcReady         *uint64 // donor register's readiness slot
	srcRF, dstRF     *backend.RegFile
}

type pipeEntry struct {
	u     uop.MicroOp
	ready uint64
}

// readyKind classifies what (besides source operands) gates an op's
// issue, resolved once at dispatch.
type readyKind uint8

const (
	readySimple readyKind = iota // sources only
	readyIntDiv                  // + unpipelined integer divider free
	readyFPDiv                   // + unpipelined FP divider free
	readyLoad                    // + memory disambiguation
)

// readyHot is the compact per-slab-slot record the per-cycle wakeup poll
// reads: one cache line instead of the full opState.  src0/src1 point at
// the readiness slots of the source physical registers (nil: no operand
// gates issue — absent source, or a store's data operand).
type readyHot struct {
	src0, src1 *uint64
	seq        uint64 // loads: program order for disambiguation
	line       uint64 // loads: cache-line address
	kind       readyKind
}

// Processor is the whole simulated machine.
type Processor struct {
	cfg    Config
	feeder Feeder

	tc     *tcache.TraceCache
	ul2    *cache.Cache
	membus *interconnect.Group
	disbus *interconnect.Group
	net    *interconnect.Network

	avail   *rename.AvailabilityTable
	freeInt []*rename.FreeList
	freeFP  []*rename.FreeList
	maps    []*rename.MapTable
	reorder *rob.ROB

	clusters []*backend.Cluster
	dl1      []*cache.Cache
	dtlb     []*cache.Cache

	// preference order for copy donors, per consumer cluster: same
	// frontend first, then by link distance.
	prefer [][]int

	cycle    uint64
	slab     []opState
	readyHot []readyHot // parallel to slab
	slabN    uint64     // slab size

	copies   []copyState
	copyFree []int32

	pipe      []pipeEntry // ring buffer
	pipeHead  int
	pipeCount int

	pending         []uop.MicroOp // next trace line awaiting fetch
	fetchStallUntil uint64
	fetchBlocked    bool
	genDone         bool
	predictor       *bpred.Predictor // nil unless UseBranchPredictor
	gateNum         int              // fetch duty cycle (DTM); 0 = ungated
	gateDen         int

	events   eventQueue
	drainBuf []int32 // reused by drainEvents; at most one event per slab slot

	pendingCommits []pendingCommit // commit effects delayed by the distributed latency
	commitBuf      []int32

	lastCommitCycle uint64

	Stats Stats

	// Frontend activity counters not owned by a sub-structure.
	itlbAcc   uint64
	bpAcc     uint64
	decodeOps uint64
}

type pendingCommit struct {
	applyAt uint64
	id      int32
}

// New builds a processor for the configuration, drawing micro-ops from
// the feeder.  It panics on an invalid configuration (use
// Config.Validate to check first).
func New(cfg Config, feeder Feeder) *Processor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Processor{cfg: cfg, feeder: feeder}
	p.tc = tcache.New(cfg.TC)
	p.ul2 = cache.New(cache.Config{Name: "UL2", SizeB: cfg.UL2SizeB, Ways: cfg.UL2Ways, LineB: cfg.LineB})
	p.membus = interconnect.NewGroup(cfg.MemBuses, cfg.BusLatency, cfg.BusArbiter, 1)
	p.disbus = interconnect.NewGroup(cfg.DisBuses, cfg.BusLatency, cfg.BusArbiter, 1)
	p.net = interconnect.NewNetwork(cfg.Clusters, cfg.LinkWidth)
	p.avail = rename.NewAvailabilityTable(cfg.Clusters)

	for cl := 0; cl < cfg.Clusters; cl++ {
		p.freeInt = append(p.freeInt, rename.NewFreeList(cfg.Cluster.IntRegs))
		p.freeFP = append(p.freeFP, rename.NewFreeList(cfg.Cluster.FPRegs))
		p.maps = append(p.maps, rename.NewMapTable())
		p.clusters = append(p.clusters, backend.NewCluster(cl, cfg.Cluster))
		p.dl1 = append(p.dl1, cache.New(cache.Config{
			Name: fmt.Sprintf("DL1-%d", cl), SizeB: cfg.DL1SizeB, Ways: cfg.DL1Ways, LineB: cfg.LineB,
		}))
		p.dtlb = append(p.dtlb, cache.New(cache.Config{
			Name: fmt.Sprintf("DTLB-%d", cl), SizeB: cfg.DTLBSizeB, Ways: cfg.DTLBWays, LineB: cfg.PageB,
		}))
	}
	p.reorder = rob.New(cfg.Frontends, cfg.ROBEntries/cfg.Frontends)

	// Slab slots stay live until commit effects apply, which the
	// distributed organization delays; size for the worst backlog.
	p.slabN = uint64(2*cfg.ROBEntries + cfg.CommitWidth*(cfg.DistributedCommitExtra+2))
	p.slab = make([]opState, p.slabN)
	p.readyHot = make([]readyHot, p.slabN)
	// Wakeup subscription tokens are slab indices; pre-sizing the waiter
	// links keeps the steady-state subscribe/notify path allocation-free.
	for _, c := range p.clusters {
		c.IntRF.EnsureWaiterTokens(int(p.slabN))
		c.FPRF.EnsureWaiterTokens(int(p.slabN))
	}
	p.pipe = make([]pipeEntry, (cfg.FetchToDispatch+cfg.DecodeLatency+2)*cfg.FetchWidth)

	// Steady-state capacity for every append-driven structure of the
	// cycle loop, so the measured phase never grows a slice: at most one
	// live event per slab slot or copy, copies bounded by the copy-queue
	// occupancies, commit backlog bounded by width and delay.
	copyCap := cfg.Clusters*(cfg.Cluster.CopyQ+cfg.Cluster.Prescheduler) + 8
	p.copies = make([]copyState, 0, copyCap)
	p.copyFree = make([]int32, 0, copyCap)
	// The event ring covers the largest completion latency the machine
	// charges in one step — a memory access with its TLB, bus and
	// arbitration penalties — plus slack for ALU/divider latencies and
	// moderate bus queueing; rarer delays spill into the overflow FIFO.
	horizon := cfg.MemLat + cfg.UL2HitLat + cfg.DTLBMissLat + cfg.BusLatency + cfg.BusArbiter + 64
	p.events.initEventQueue(horizon, int(p.slabN))
	p.drainBuf = make([]int32, 0, p.slabN)
	p.pendingCommits = make([]pendingCommit, 0, cfg.CommitWidth*(cfg.DistributedCommitExtra+2))
	p.commitBuf = make([]int32, 0, cfg.CommitWidth)
	p.pending = make([]uop.MicroOp, 0, 2*uop.MaxTraceOps)

	// Architectural initial state: every logical register lives in
	// cluster 0, mapped to a freshly allocated (and ready) physical
	// register.
	p.avail.Reset()
	for r := int8(0); r < uop.NumLogicalRegs; r++ {
		var phys int16
		var ok bool
		if uop.IsFPReg(r) {
			phys, ok = p.freeFP[0].Alloc()
		} else {
			phys, ok = p.freeInt[0].Alloc()
		}
		if !ok {
			panic("core: register file too small for architectural state")
		}
		p.maps[0].Set(r, phys)
	}

	// Donor preference per cluster: same frontend first (the paper's copy
	// request is cheaper inside a frontend), then by ring distance.
	p.prefer = make([][]int, cfg.Clusters)
	for cl := 0; cl < cfg.Clusters; cl++ {
		var same, other []int
		for c2 := 0; c2 < cfg.Clusters; c2++ {
			if c2 == cl {
				continue
			}
			if cfg.FrontendOf(c2) == cfg.FrontendOf(cl) {
				same = append(same, c2)
			} else {
				other = append(other, c2)
			}
		}
		sortByDistance := func(list []int) {
			for i := 1; i < len(list); i++ {
				for j := i; j > 0 && p.net.Distance(cl, list[j]) < p.net.Distance(cl, list[j-1]); j-- {
					list[j], list[j-1] = list[j-1], list[j]
				}
			}
		}
		sortByDistance(same)
		sortByDistance(other)
		p.prefer[cl] = append([]int{cl}, append(same, other...)...)
	}

	if cfg.UseBranchPredictor {
		bits := cfg.BPredBits
		if bits == 0 {
			bits = 14
		}
		p.predictor = bpred.New(bits)
	}

	return p
}

// Config returns the processor's configuration.
func (p *Processor) Config() Config { return p.cfg }

// Cycle returns the current cycle number.
func (p *Processor) Cycle() uint64 { return p.cycle }

// TraceCache exposes the trace cache, for interval reconfiguration by the
// simulation driver.
func (p *Processor) TraceCache() *tcache.TraceCache { return p.tc }

// Predictor returns the branch predictor, or nil when the configuration
// uses the workload's calibrated misprediction rates.
func (p *Processor) Predictor() *bpred.Predictor { return p.predictor }

// SetFetchGate throttles fetch to num cycles out of every den (dynamic
// thermal management's fetch toggling).  num >= den or den <= 0 removes
// the gate.
func (p *Processor) SetFetchGate(num, den int) {
	if den <= 0 || num >= den {
		p.gateNum, p.gateDen = 0, 0
		return
	}
	if num < 1 {
		num = 1
	}
	p.gateNum, p.gateDen = num, den
}

// Done reports whether the workload is exhausted and the pipeline fully
// drained.
func (p *Processor) Done() bool {
	return p.genDone && len(p.pending) == 0 && p.pipeCount == 0 &&
		p.reorder.Occupancy() == 0 && p.events.count == 0 && len(p.pendingCommits) == 0
}

// Step advances the machine by one clock cycle.
func (p *Processor) Step() {
	p.cycle++
	now := p.cycle
	p.applyPendingCommits(now)
	p.drainEvents(now)
	p.commit(now)
	p.issueAll(now)
	p.dispatch(now)
	p.fetch(now)
	p.Stats.Cycles = p.cycle
	if p.reorder.Occupancy() > 0 && now-p.lastCommitCycle > 500000 {
		id, _ := p.reorder.Head()
		panic(fmt.Sprintf("core: no commit for %d cycles; head op %+v", now-p.lastCommitCycle, p.slab[id].u))
	}
}

// Run executes until the workload finishes or maxCycles elapse (0 = no
// limit); it returns the number of cycles executed.
func (p *Processor) Run(maxCycles uint64) uint64 {
	start := p.cycle
	for !p.Done() {
		if maxCycles > 0 && p.cycle-start >= maxCycles {
			break
		}
		p.Step()
	}
	return p.cycle - start
}

// RunCycles executes exactly n cycles (or fewer if the workload drains).
func (p *Processor) RunCycles(n uint64) {
	for i := uint64(0); i < n && !p.Done(); i++ {
		p.Step()
	}
}

// ---------------------------------------------------------------------
// Events

func (p *Processor) pushEvent(cycle uint64, id int32) {
	p.events.push(cycle, id, p.cycle)
	p.Stats.EventPushes++
}

// drainEvents completes every op whose event is due this cycle, in the
// order the events were pushed (the bucket queue's FIFO guarantee).
func (p *Processor) drainEvents(now uint64) {
	p.drainBuf = p.events.drainInto(now, p.drainBuf[:0])
	for _, id := range p.drainBuf {
		p.Stats.EventPops++
		p.completeOp(id, now)
	}
}

// wakeWaiters schedules the completion of every store subscribed to a
// register whose value just became ready at cycle `ready` (now is the
// producer's issue cycle).  Each store completes at its true ready
// cycle — the later of its address half finishing and the data arriving
// — where the replaced scheme would have polled every 2 cycles.
func (p *Processor) wakeWaiters(tokens []int32, ready, now uint64) {
	for _, id := range tokens {
		w := &p.slab[id]
		if !w.storeWait {
			panic("core: wakeup delivered to an op that is not waiting")
		}
		w.storeWait = false
		at := w.waitFrom
		if ready > at {
			at = ready
		}
		p.pushEvent(at, id)
		p.Stats.StoreWakeups++
		if now > w.waitFrom {
			// The old scheme re-armed every 2 cycles from waitFrom until a
			// poll found the producer issued (cycle `now`), then once more
			// at the exact ready time.
			p.Stats.StorePollsAvoided += (now-w.waitFrom+1)/2 + 1
		}
	}
}

// completeOp handles write-back: the op becomes ready to commit.
func (p *Processor) completeOp(id int32, now uint64) {
	op := &p.slab[id]
	if op.storeWait {
		panic("core: store completed while still subscribed to its data producer")
	}
	if op.u.Class == uop.Store && op.nSrc == 2 {
		if *op.srcReady[1] > now {
			panic("core: store completed before its data operand is ready")
		}
		op.srcRF[1].CountRead()
	}
	p.reorder.Complete(op.ref)
	if op.redirect {
		// The mispredicted branch resolved: redirect the frontend.
		p.fetchBlocked = false
		if until := now + uint64(p.cfg.RedirectPenalty); until > p.fetchStallUntil {
			p.fetchStallUntil = until
		}
	}
}

// ---------------------------------------------------------------------
// Commit

func (p *Processor) commit(now uint64) {
	p.commitBuf = p.reorder.Commit(p.cfg.CommitWidth, p.commitBuf[:0])
	if len(p.commitBuf) == 0 {
		return
	}
	p.lastCommitCycle = now
	extra := uint64(0)
	if p.cfg.Distributed() {
		extra = uint64(p.cfg.DistributedCommitExtra)
	}
	for _, id := range p.commitBuf {
		if extra == 0 {
			p.commitEffects(id)
		} else {
			p.pendingCommits = append(p.pendingCommits, pendingCommit{applyAt: now + extra, id: id})
		}
	}
}

func (p *Processor) applyPendingCommits(now uint64) {
	n := 0
	for _, pc := range p.pendingCommits {
		if pc.applyAt <= now {
			p.commitEffects(pc.id)
		} else {
			p.pendingCommits[n] = pc
			n++
		}
	}
	p.pendingCommits = p.pendingCommits[:n]
}

// commitEffects releases the resources of a committed instruction: stale
// physical registers, MOB slots, and — for stores — the data-cache write
// with the write-update protocol of §2.
func (p *Processor) commitEffects(id int32) {
	op := &p.slab[id]
	for i := int8(0); i < op.nFrees; i++ {
		f := op.frees[i]
		if f.fp {
			p.freeFP[f.cluster].Free(f.phys)
		} else {
			p.freeInt[f.cluster].Free(f.phys)
		}
	}
	if op.u.Class == uop.Store {
		own := int(op.cluster)
		if !p.dl1[own].Write(op.line) {
			// Write-allocate: bring the line in.  Committed stores are off
			// the critical path, so no pipeline stall is charged; the UL2
			// access is recorded for power.
			if !p.ul2.Read(op.line) {
				p.ul2.Fill(op.line)
			}
			p.dl1[own].Fill(op.line)
		}
		for cl := range p.dl1 {
			if cl != own {
				p.dl1[cl].Update(op.line) // write-update of remote copies
			}
		}
		p.ul2.Update(op.line)
		for cl := range p.clusters {
			p.clusters[cl].Mob.Release(op.u.Seq)
		}
	}
	op.inUse = false
	p.Stats.Committed++
}

// ---------------------------------------------------------------------
// Issue and execute

func (p *Processor) issueAll(now uint64) {
	for cl := 0; cl < p.cfg.Clusters; cl++ {
		cluster := p.clusters[cl]
		for k := backend.QueueKind(0); k < backend.NumQueues; k++ {
			q := cluster.Queues[k]
			q.Advance(now)
			if q.WakeAt > now {
				// No entry can pass its NotBefore gate: the scan would
				// evaluate nothing, so skipping it is counter-neutral.
				continue
			}
			// The oldest-ready selection of IssueQueue.Issue, inlined over
			// the exposed window: the wakeup poll of every waiting entry
			// runs every cycle, and the direct p.ready call (no closure
			// indirection) is measurably cheaper at that call rate.
			win := q.Window()
			best := -1
			var bestSeq uint64
			wake := ^uint64(0)
			for i := range win {
				e := &win[i]
				if e.NotBefore > now {
					if e.NotBefore < wake {
						wake = e.NotBefore
					}
					continue
				}
				q.CountWakeup()
				ok, retry := p.ready(cl, e.ID, now)
				if !ok {
					if retry <= now {
						retry = now + 1
					}
					e.NotBefore = retry
					if retry < wake {
						wake = retry
					}
					continue
				}
				if best == -1 || e.Seq < bestSeq {
					best = i
					bestSeq = e.Seq
				}
				if e.NotBefore < wake {
					wake = e.NotBefore // ready, not issued: re-evaluate next cycle
				}
			}
			q.WakeAt = wake
			if best >= 0 {
				p.execute(cl, q.RemoveIssued(best), now)
			}
		}
	}
}

// ready decides whether instruction id may issue in cluster cl at cycle
// now; when not, it returns the earliest cycle worth re-checking.
// Source readiness reads go through the pointers cached at dispatch.
func (p *Processor) ready(cl int, id int32, now uint64) (bool, uint64) {
	if id >= copyBase {
		c := &p.copies[id-copyBase]
		at := *c.srcReady
		if at <= now {
			return true, 0
		}
		if at == backend.NeverReady {
			// The producer has not issued yet; re-check every cycle.
			return false, now + 1
		}
		return false, at
	}
	h := &p.readyHot[id]
	retry := uint64(0)
	// A store's data operand does not gate issue (store-address/
	// store-data split: dispatch leaves its src1 nil here); it is only
	// needed to become ready-to-commit.
	if h.src0 != nil {
		if at := *h.src0; at > now {
			if at == backend.NeverReady {
				return false, now + 1
			}
			retry = at
		}
	}
	if h.src1 != nil {
		if at := *h.src1; at > now {
			if at == backend.NeverReady {
				return false, now + 1
			}
			if at > retry {
				retry = at
			}
		}
	}
	if retry > now {
		return false, retry
	}
	switch h.kind {
	case readyIntDiv:
		if !p.clusters[cl].IntFU.CanStart(now) {
			return false, now + 1
		}
	case readyFPDiv:
		if !p.clusters[cl].FPFU.CanStart(now) {
			return false, now + 1
		}
	case readyLoad:
		if ok, _ := p.clusters[cl].Mob.Disambiguate(h.seq, h.line, now); !ok {
			return false, now + 1
		}
	}
	return true, 0
}

func (p *Processor) regfile(cl int, fp bool) *backend.RegFile {
	if fp {
		return p.clusters[cl].FPRF
	}
	return p.clusters[cl].IntRF
}

func (p *Processor) execute(cl int, id int32, now uint64) {
	if id >= copyBase {
		p.executeCopy(id-copyBase, now)
		return
	}
	op := &p.slab[id]
	cluster := p.clusters[cl]
	for s := int8(0); s < op.nSrc; s++ {
		if op.u.Class == uop.Store && s == 1 {
			continue // the data operand is read at completion
		}
		op.srcRF[s].CountRead()
	}
	var done uint64
	switch op.u.Class {
	case uop.Load:
		done = p.executeLoad(op, cl, now)
	case uop.Store:
		var waiting bool
		done, waiting = p.executeStore(op, id, cl, now)
		if waiting {
			// Subscribed to the data producer's register: the completion
			// event is scheduled by that producer's wakeup.  Stores in the
			// real op stream never define a register, but a degenerate
			// store-with-dst keeps the poll scheme's semantics: its
			// write-back lands when the address half finishes.
			if op.u.HasDst() {
				if tokens := op.dstRF.SetReady(op.dstPhys, op.waitFrom); len(tokens) != 0 {
					p.wakeWaiters(tokens, op.waitFrom, now)
				}
			}
			return
		}
	case uop.FPAdd, uop.FPMul, uop.FPDiv:
		lat := op.u.Class.Latency()
		cluster.FPFU.TryStart(now, lat, op.u.Class != uop.FPDiv)
		done = now + uint64(lat)
	default: // IntALU, IntMul, IntDiv, Branch
		lat := op.u.Class.Latency()
		cluster.IntFU.TryStart(now, lat, op.u.Class != uop.IntDiv)
		done = now + uint64(lat)
	}
	if op.u.HasDst() {
		if tokens := op.dstRF.SetReady(op.dstPhys, done); len(tokens) != 0 {
			p.wakeWaiters(tokens, done, now)
		}
	}
	p.pushEvent(done, id)
}

func (p *Processor) executeCopy(idx int32, now uint64) {
	c := &p.copies[idx]
	c.srcRF.CountRead()
	arrive := p.net.Send(now+1, int(c.src), int(c.dst))
	if tokens := c.dstRF.SetReady(c.dstPhys, arrive+1); len(tokens) != 0 {
		p.wakeWaiters(tokens, arrive+1, now)
	}
	c.inUse = false
	p.copyFree = append(p.copyFree, idx)
}

func (p *Processor) executeLoad(op *opState, cl int, now uint64) uint64 {
	cluster := p.clusters[cl]
	cluster.AgenOps++
	t := now + 1 // address generation
	if !p.dtlb[cl].Read(op.page) {
		p.dtlb[cl].Fill(op.page)
		t += uint64(p.cfg.DTLBMissLat)
	}
	_, fwd := cluster.Mob.Disambiguate(op.u.Seq, op.line, now)
	cluster.Mob.CountSearch()
	cluster.Mob.Release(op.u.Seq)
	if fwd {
		p.Stats.LoadForwards++
		return t + 1
	}
	if p.dl1[cl].Read(op.line) {
		return t + uint64(p.cfg.DL1HitLat)
	}
	p.Stats.LoadMisses++
	busDone := p.membus.Request(t)
	var fill uint64
	if p.ul2.Read(op.line) {
		fill = busDone + uint64(p.cfg.UL2HitLat)
	} else {
		p.ul2.Fill(op.line)
		fill = busDone + uint64(p.cfg.MemLat)
	}
	// The line is written into the cache of the cluster where the
	// requesting load resides (§2).
	p.dl1[cl].Fill(op.line)
	if p.cfg.NextLinePrefetch {
		next := op.line + uint64(p.cfg.LineB)
		if !p.dl1[cl].Lookup(next) {
			if !p.ul2.Read(next) {
				p.ul2.Fill(next)
			}
			p.dl1[cl].Fill(next)
		}
	}
	return fill
}

// executeStore runs the address half of a store.  The returned cycle is
// when the store becomes ready to commit — the later of the address
// completing and the data operand being produced.  When the data
// producer has not issued yet its ready cycle is unknown, so the store
// subscribes to the producing register and returns waiting=true: no
// event exists until the producer's wakeup schedules one.
func (p *Processor) executeStore(op *opState, id int32, cl int, now uint64) (done uint64, waiting bool) {
	cluster := p.clusters[cl]
	cluster.AgenOps++
	t := now + 1 // address generation
	if !p.dtlb[cl].Read(op.page) {
		p.dtlb[cl].Fill(op.page)
		t += uint64(p.cfg.DTLBMissLat)
	}
	// The address becomes visible locally right away and at the other
	// clusters when the disambiguation-bus broadcast arrives (§2).
	cluster.Mob.CountSearch()
	cluster.Mob.SetAddr(op.u.Seq, op.line, t)
	busDone := p.disbus.Request(t)
	for c2 := range p.clusters {
		if c2 != cl {
			p.clusters[c2].Mob.SetAddr(op.u.Seq, op.line, busDone)
		}
	}
	if op.nSrc == 2 {
		rt := *op.srcReady[1]
		switch {
		case rt == backend.NeverReady:
			op.storeWait = true
			op.waitFrom = t
			op.srcRF[1].Subscribe(op.srcPhys[1], id)
			return 0, true
		case rt > t:
			t = rt
		}
	}
	return t, false
}
