// Package singleflight coalesces concurrent executions that share a key:
// the first caller runs the function, every caller that arrives while it
// is in flight waits for the same answer, and identical work is never
// done twice at the same time (golang.org/x/sync/singleflight style, but
// context-aware on both sides).
//
// Two context properties distinguish this implementation:
//
//   - Waiting is cancellable per caller: a caller whose context ends
//     stops waiting immediately and gets its context's error, while the
//     shared execution keeps running for the remaining waiters.
//   - The execution context is reference-counted: fn receives a context
//     that is detached from any single caller and is cancelled only when
//     the last interested caller has gone away, so one client hanging up
//     never aborts work that others still want — but fully abandoned work
//     is cancelled instead of burning CPU for nobody.
package singleflight

import (
	"context"
	"sync"
)

// call is one in-flight (or just-finished) execution.
type call[V any] struct {
	cancel  context.CancelFunc
	waiters int           // callers still interested; guarded by Group.mu
	done    chan struct{} // closed after val/err are set
	val     V
	err     error
}

// Group coalesces concurrent Do calls with the same key.  The zero value
// is ready to use.  A Group must not be copied after first use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do executes fn, coalescing with any in-flight execution under the same
// key: concurrent callers share one execution and receive the same value
// and error.  shared reports whether this caller joined an execution
// started by another caller.
//
// fn runs in its own goroutine under a context that is cancelled only
// when every caller waiting on it has gone away; it is NOT a child of
// ctx, so one caller's cancellation never aborts a shared execution.  If
// ctx ends while waiting, Do returns ctx's error immediately (the
// execution continues for any remaining waiters, and its eventual result
// is discarded if there are none).
func (g *Group[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*call[V]{}
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		v, err = g.wait(ctx, key, c)
		return v, err, true
	}
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call[V]{cancel: cancel, waiters: 1, done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		val, ferr := fn(runCtx)
		g.mu.Lock()
		c.val, c.err = val, ferr
		// Delete before closing done: callers that arrive after the
		// result is published must start a fresh execution, never read a
		// completed one (the response cache, if any, is the caller's
		// concern).
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	v, err = g.wait(ctx, key, c)
	return v, err, false
}

// wait blocks until the call completes or ctx ends, whichever is first.
func (g *Group[V]) wait(ctx context.Context, key string, c *call[V]) (V, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Nobody wants the answer any more: abort the execution and
			// unlink the call so late arrivals start fresh rather than
			// attaching to a dying one.
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		var zero V
		return zero, ctx.Err()
	}
}

// InFlight reports the number of executions currently in flight (for
// introspection and tests).
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
