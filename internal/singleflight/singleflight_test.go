package singleflight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	var g Group[int]
	var executions atomic.Int64
	gate := make(chan struct{})
	joined := make(chan struct{})

	const callers = 8
	var sharedCount atomic.Int64
	results := make([]int, callers)
	var wg sync.WaitGroup

	// The leader blocks inside fn until every other caller has joined, so
	// all of them must coalesce onto the single execution.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			executions.Add(1)
			<-gate
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0] = v
	}()

	// Wait for the leader's call to be registered.
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined <- struct{}{}
			v, err, shared := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				executions.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	for i := 1; i < callers; i++ {
		<-joined
	}
	// Joined-channel sends happen just before Do; give the goroutines a
	// beat to actually block in Do, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("caller %d got %d, want 42", i, v)
		}
	}
	if sharedCount.Load() == 0 {
		t.Error("no caller reported shared=true")
	}
	if g.InFlight() != 0 {
		t.Errorf("%d calls still in flight after completion", g.InFlight())
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, err, _ := g.Do(context.Background(), key, func(context.Context) (string, error) {
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("key %s: got (%q, %v)", key, v, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestDoSequentialCallsReExecute(t *testing.T) {
	var g Group[int]
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		v, err, shared := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return int(executions.Add(1)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if shared {
			t.Errorf("call %d reported shared", i)
		}
		if v != i+1 {
			t.Errorf("call %d got %d, want %d", i, v, i+1)
		}
	}
}

func TestDoPropagatesError(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	_, err, _ := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestWaiterCancellationLeavesExecutionRunning(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	fnCtxErr := make(chan error, 1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err, _ := g.Do(context.Background(), "k", func(ctx context.Context) (int, error) {
			<-gate
			fnCtxErr <- ctx.Err()
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("patient caller got (%d, %v), want (7, nil)", v, err)
		}
	}()
	for g.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}

	// A second caller joins, then hangs up: it must return immediately
	// with its own context error while the execution keeps running.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err, shared := g.Do(ctx, "k", func(context.Context) (int, error) {
		t.Error("joining caller executed fn itself")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter err = %v, want context.Canceled", err)
	}
	if !shared {
		t.Error("second caller did not join the in-flight execution")
	}

	close(gate)
	<-done
	if err := <-fnCtxErr; err != nil {
		t.Errorf("execution context was cancelled (%v) although a waiter remained", err)
	}
}

func TestAllWaitersGoneCancelsExecution(t *testing.T) {
	var g Group[int]
	started := make(chan struct{})
	ctxDone := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		g.Do(ctx, "k", func(runCtx context.Context) (int, error) {
			close(started)
			<-runCtx.Done()
			close(ctxDone)
			return 0, runCtx.Err()
		})
	}()
	<-started
	cancel()
	select {
	case <-ctxDone:
	case <-time.After(2 * time.Second):
		t.Fatal("execution context not cancelled after the last waiter left")
	}
	// The abandoned call is unlinked, so a fresh caller re-executes.
	v, err, shared := g.Do(context.Background(), "k", func(context.Context) (int, error) {
		return 9, nil
	})
	if err != nil || v != 9 || shared {
		t.Errorf("post-abandon call got (%d, %v, shared=%v), want (9, nil, false)", v, err, shared)
	}
}
