// Package goldentest holds the shared harness for the bit-exact golden
// fixtures that pin simulation results across hot-path rewrites: float
// vectors are encoded as hex bit patterns (no reliance on decimal
// round-tripping) and compared key by key, element by element.
package goldentest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// Vec encodes a float64 vector as hex bit patterns, exact to the last
// ulp.
func Vec(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	return out
}

// Check compares got against the fixture at path.  With update true the
// fixture is rewritten instead and the test records nothing.
func Check(t *testing.T, path string, got map[string][]string, update bool) {
	t.Helper()
	if update {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (run with -update to create)", path, err)
	}
	var want map[string][]string
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden %s: %d keys, got %d", path, len(want), len(got))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("golden %s: missing key %s", path, k)
		}
		if len(wv) != len(gv) {
			t.Fatalf("golden %s key %s: %d values, got %d", path, k, len(wv), len(gv))
		}
		for i := range wv {
			if wv[i] != gv[i] {
				t.Errorf("golden %s key %s[%d]: want %s, got %s", path, k, i, wv[i], gv[i])
			}
		}
	}
}

// CheckBytes compares got byte-for-byte against the fixture at path,
// reporting the first differing offset with context.  With update true
// the fixture is rewritten instead.
func CheckBytes(t *testing.T, path string, got []byte, update bool) {
	t.Helper()
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s: %v (run with -update to create)", path, err)
	}
	if bytes.Equal(want, got) {
		return
	}
	t.Errorf("golden %s changed (%d vs %d bytes)", path, len(want), len(got))
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Errorf("first difference at byte %d:\nwant ...%s...\ngot  ...%s...",
				i, context(want, i), context(got, i))
			return
		}
	}
}

// context returns up to 40 bytes around offset i of b.
func context(b []byte, i int) []byte {
	lo, hi := i-40, i+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(b) {
		hi = len(b)
	}
	return b[lo:hi]
}
