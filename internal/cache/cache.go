// Package cache implements the set-associative cache model used for the
// per-cluster first-level data caches and the shared UL2 (Table 1 of the
// paper: 16 KB/2-way DL1 with write-update, 2 MB/8-way UL2).
//
// The model tracks tags only — simulated programs have no data values —
// and is used for timing (hit/miss) and activity (power) accounting.
package cache

import "fmt"

// Stats accumulates access statistics; the power model reads these as
// activity counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadMiss   uint64
	WriteMiss  uint64
	Fills      uint64
	Updates    uint64 // write-update refreshes of lines present elsewhere
	Invalidate uint64
}

// Accesses returns the total number of cache accesses.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes + s.Updates }

// Misses returns the total number of misses.
func (s *Stats) Misses() uint64 { return s.ReadMiss + s.WriteMiss }

// HitRate returns the fraction of read+write accesses that hit, or 1 if
// there were no accesses.
func (s *Stats) HitRate() float64 {
	a := s.Reads + s.Writes
	if a == 0 {
		return 1
	}
	return 1 - float64(s.Misses())/float64(a)
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways, tag per way
	valid     []bool
	age       []uint64 // LRU timestamps
	clock     uint64
	Stats     Stats
}

// Config describes a cache geometry.
type Config struct {
	Name  string
	SizeB int // total size in bytes
	Ways  int
	LineB int // line size in bytes
}

// New builds a cache from the configuration.  It panics on a geometry
// that is not a power of two, which would silently alias sets.
func New(cfg Config) *Cache {
	if cfg.LineB <= 0 || cfg.LineB&(cfg.LineB-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineB))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: %d ways", cfg.Name, cfg.Ways))
	}
	lines := cfg.SizeB / cfg.LineB
	sets := lines / cfg.Ways
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets not a power of two", cfg.Name, sets))
	}
	shift := uint(0)
	for 1<<shift < cfg.LineB {
		shift++
	}
	return &Cache{
		name:      cfg.Name,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		age:       make([]uint64, sets*cfg.Ways),
	}
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineB returns the line size in bytes.
func (c *Cache) LineB() int { return 1 << c.lineShift }

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	line := addr >> c.lineShift
	return int(line & c.setMask), line >> 0 // full line address as tag
}

// Lookup reports whether addr hits without updating LRU state or stats.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Read performs a read access; it returns true on hit.  On a miss the
// line is NOT filled automatically — call Fill when the refill arrives so
// that timing and contents stay consistent.
func (c *Cache) Read(addr uint64) bool {
	c.Stats.Reads++
	if c.touch(addr) {
		return true
	}
	c.Stats.ReadMiss++
	return false
}

// Write performs a write access; returns true on hit.  The caller decides
// the allocation policy (the DL1 uses write-update, no write-allocate).
func (c *Cache) Write(addr uint64) bool {
	c.Stats.Writes++
	if c.touch(addr) {
		return true
	}
	c.Stats.WriteMiss++
	return false
}

// Update refreshes a line if present (write-update protocol); it returns
// true if the line was present.  Misses are not counted as such.
func (c *Cache) Update(addr uint64) bool {
	if c.touch(addr) {
		c.Stats.Updates++
		return true
	}
	return false
}

// touch hits the line if present and promotes it to MRU.
func (c *Cache) touch(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.age[base+w] = c.clock
			return true
		}
	}
	return false
}

// Fill inserts the line containing addr, evicting the LRU way.  It returns
// the evicted line address and whether an eviction happened.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasValid bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	c.clock++
	c.Stats.Fills++
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			wasValid = false
			c.tags[i] = tag
			c.valid[i] = true
			c.age[i] = c.clock
			return 0, false
		}
		if c.age[i] < c.age[victim] {
			victim = i
		}
	}
	evicted = c.tags[victim] << c.lineShift
	c.tags[victim] = tag
	c.age[victim] = c.clock
	return evicted, true
}

// InvalidateAll clears the whole cache (used when a trace-cache bank is
// Vdd-gated: its contents are lost, §3.2.1).
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		if c.valid[i] {
			c.valid[i] = false
			c.Stats.Invalidate++
		}
	}
}

// ValidLines returns the number of valid lines currently held.
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}

// ResetStats zeroes the statistics counters (contents are kept).
func (c *Cache) ResetStats() { c.Stats = Stats{} }
