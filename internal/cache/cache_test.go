package cache

import (
	"testing"
	"testing/quick"
)

func dl1() *Cache {
	// Table 1: 16 KB / 2-way data cache, 64-byte lines.
	return New(Config{Name: "DL1", SizeB: 16 << 10, Ways: 2, LineB: 64})
}

func TestGeometry(t *testing.T) {
	c := dl1()
	if c.Sets() != 128 || c.Ways() != 2 || c.LineB() != 64 {
		t.Fatalf("geometry = %d sets / %d ways / %dB lines", c.Sets(), c.Ways(), c.LineB())
	}
	if c.Name() != "DL1" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Name: "badline", SizeB: 1024, Ways: 2, LineB: 48},
		{Name: "zeroways", SizeB: 1024, Ways: 0, LineB: 64},
		{Name: "badsets", SizeB: 3 * 64 * 2, Ways: 2, LineB: 64},
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := dl1()
	if c.Read(0x1000) {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000)
	if !c.Read(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Read(0x1038) {
		t.Fatal("same-line access missed")
	}
	if c.Read(0x1040) {
		t.Fatal("next line hit without fill")
	}
	if c.Stats.Reads != 4 || c.Stats.ReadMiss != 2 || c.Stats.Fills != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := dl1()
	// Three lines mapping to the same set: set index repeats every
	// sets*lineB = 8192 bytes.
	a, b, d := uint64(0x0000), uint64(0x2000), uint64(0x4000)
	c.Fill(a)
	c.Fill(b)
	c.Read(a) // promote a to MRU; b is now LRU
	c.Fill(d) // must evict b
	if !c.Lookup(a) {
		t.Error("a was evicted but was MRU")
	}
	if c.Lookup(b) {
		t.Error("b survived but was LRU")
	}
	if !c.Lookup(d) {
		t.Error("d missing after fill")
	}
}

func TestFillReturnsEviction(t *testing.T) {
	c := New(Config{Name: "tiny", SizeB: 128, Ways: 2, LineB: 64})
	if _, was := c.Fill(0); was {
		t.Error("eviction from empty cache")
	}
	if _, was := c.Fill(128); was {
		t.Error("eviction while ways free")
	}
	ev, was := c.Fill(256)
	if !was || ev != 0 {
		t.Errorf("Fill evicted (%#x,%v), want (0,true)", ev, was)
	}
}

func TestWriteUpdateProtocol(t *testing.T) {
	c := dl1()
	if c.Update(0x40) {
		t.Error("Update hit on absent line")
	}
	c.Fill(0x40)
	if !c.Update(0x40) {
		t.Error("Update missed present line")
	}
	if c.Stats.Updates != 1 {
		t.Errorf("Updates = %d", c.Stats.Updates)
	}
	// Updates must not perturb the miss counters.
	if c.Stats.Misses() != 0 {
		t.Errorf("Update counted as miss: %+v", c.Stats)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := dl1()
	for i := uint64(0); i < 32; i++ {
		c.Fill(i * 64)
	}
	if c.ValidLines() != 32 {
		t.Fatalf("valid lines = %d", c.ValidLines())
	}
	c.InvalidateAll()
	if c.ValidLines() != 0 {
		t.Fatal("lines survived InvalidateAll")
	}
	if c.Stats.Invalidate != 32 {
		t.Fatalf("Invalidate count = %d", c.Stats.Invalidate)
	}
	if c.Read(0) {
		t.Fatal("hit after InvalidateAll")
	}
}

func TestHitRate(t *testing.T) {
	c := dl1()
	if hr := c.Stats.HitRate(); hr != 1 {
		t.Errorf("empty hit rate = %v", hr)
	}
	c.Read(0) // miss
	c.Fill(0)
	c.Read(0) // hit
	if hr := c.Stats.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
	c.ResetStats()
	if c.Stats.Accesses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestWriteMissCounting(t *testing.T) {
	c := dl1()
	if c.Write(0x80) {
		t.Fatal("write hit on empty cache")
	}
	c.Fill(0x80)
	if !c.Write(0x80) {
		t.Fatal("write missed after fill")
	}
	if c.Stats.Writes != 2 || c.Stats.WriteMiss != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

// Property: after Fill(addr), Lookup(addr) is always true, regardless of
// the preceding access sequence.
func TestQuickFillThenLookup(t *testing.T) {
	c := New(Config{Name: "q", SizeB: 4096, Ways: 4, LineB: 64})
	f := func(ops []uint64, addr uint64) bool {
		for _, a := range ops {
			switch a % 3 {
			case 0:
				c.Read(a)
			case 1:
				c.Write(a)
			case 2:
				c.Fill(a)
			}
		}
		c.Fill(addr)
		return c.Lookup(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the number of valid lines never exceeds capacity.
func TestQuickCapacityInvariant(t *testing.T) {
	c := New(Config{Name: "q2", SizeB: 2048, Ways: 2, LineB: 64})
	capacity := c.Sets() * c.Ways()
	f := func(addrs []uint64) bool {
		for _, a := range addrs {
			c.Fill(a)
		}
		return c.ValidLines() <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
