package interconnect

import (
	"testing"
	"testing/quick"
)

func TestBusUncontended(t *testing.T) {
	// Table 1: 4-cycle latency + 1-cycle arbiter.
	b := NewBus(4, 1, 1)
	if done := b.Request(10); done != 15 {
		t.Fatalf("done = %d, want 15", done)
	}
	if b.Stats.Transfers != 1 || b.Stats.WaitSum != 0 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus(4, 1, 2)
	d1 := b.Request(0) // grant 1, done 5, busy until 3
	d2 := b.Request(0) // grant 3, done 7
	d3 := b.Request(0) // grant 5, done 9
	if d1 != 5 || d2 != 7 || d3 != 9 {
		t.Fatalf("done = %d,%d,%d; want 5,7,9", d1, d2, d3)
	}
	if b.Stats.WaitSum != 2+4 {
		t.Fatalf("wait = %d, want 6", b.Stats.WaitSum)
	}
}

func TestBusFreesUp(t *testing.T) {
	b := NewBus(4, 1, 1)
	b.Request(0)
	if done := b.Request(100); done != 105 {
		t.Fatalf("later request delayed: done = %d", done)
	}
	if b.Stats.AvgWait() != 0 {
		t.Fatalf("avg wait = %v", b.Stats.AvgWait())
	}
}

func TestGroupSpreadsLoad(t *testing.T) {
	// Two buses: two simultaneous requests should not queue.
	g := NewGroup(2, 4, 1, 2)
	d1 := g.Request(0)
	d2 := g.Request(0)
	if d1 != 5 || d2 != 5 {
		t.Fatalf("done = %d,%d; want 5,5 on two buses", d1, d2)
	}
	d3 := g.Request(0) // must queue behind one of them
	if d3 != 7 {
		t.Fatalf("third request done = %d, want 7", d3)
	}
	if s := g.Stats(); s.Transfers != 3 {
		t.Fatalf("group stats = %+v", s)
	}
}

func TestRingDistance(t *testing.T) {
	n := NewNetwork(4, 2)
	// Table 1: 1 cycle per hop; 2 from side to side → ring of 4.
	cases := []struct{ from, to, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 1},
		{1, 3, 2}, {2, 0, 2}, {3, 0, 1},
	}
	for _, c := range cases {
		if d := n.Distance(c.from, c.to); d != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.from, c.to, d, c.want)
		}
	}
}

func TestSendLatency(t *testing.T) {
	n := NewNetwork(4, 2)
	if a := n.Send(10, 0, 0); a != 10 {
		t.Fatalf("local send took time: %d", a)
	}
	if a := n.Send(10, 0, 1); a != 11 {
		t.Fatalf("1-hop send arrive = %d, want 11", a)
	}
	if a := n.Send(10, 0, 2); a != 12 {
		t.Fatalf("2-hop send arrive = %d, want 12", a)
	}
	if a := n.Send(10, 3, 0); a != 11 {
		t.Fatalf("wraparound send arrive = %d, want 11", a)
	}
}

func TestLinkContention(t *testing.T) {
	n := NewNetwork(4, 1) // single link per hop
	a1 := n.Send(0, 0, 1)
	a2 := n.Send(0, 0, 1)
	if a1 != 1 || a2 != 2 {
		t.Fatalf("arrivals = %d,%d; want 1,2", a1, a2)
	}
	// Opposite direction is independent (bidirectional links).
	if a := n.Send(0, 1, 0); a != 1 {
		t.Fatalf("reverse direction delayed: %d", a)
	}
}

func TestParallelLinksWidth(t *testing.T) {
	n := NewNetwork(4, 2) // Table 1: 2 p2p links
	a1 := n.Send(0, 0, 1)
	a2 := n.Send(0, 0, 1)
	a3 := n.Send(0, 0, 1)
	if a1 != 1 || a2 != 1 || a3 != 2 {
		t.Fatalf("arrivals = %d,%d,%d; want 1,1,2", a1, a2, a3)
	}
}

func TestNetworkStats(t *testing.T) {
	n := NewNetwork(4, 2)
	n.Send(0, 0, 2)
	n.Send(0, 1, 2)
	if n.Stats.Messages != 2 || n.Stats.HopSum != 3 {
		t.Fatalf("stats = %+v", n.Stats)
	}
	if h := n.Stats.AvgHops(); h != 1.5 {
		t.Fatalf("avg hops = %v", h)
	}
}

func TestSingleClusterDegenerate(t *testing.T) {
	n := NewNetwork(1, 2)
	if a := n.Send(5, 0, 0); a != 5 {
		t.Fatalf("degenerate network delayed local send: %d", a)
	}
}

func TestNetworkPanicsOnZeroClusters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewNetwork(0, 1) did not panic")
		}
	}()
	NewNetwork(0, 1)
}

// Property: arrival time is never before departure plus hop distance.
func TestQuickSendLowerBound(t *testing.T) {
	n := NewNetwork(4, 2)
	f := func(now uint64, from, to uint8) bool {
		now %= 1 << 40
		f4, t4 := int(from%4), int(to%4)
		a := n.Send(now, f4, t4)
		return a >= now+uint64(n.Distance(f4, t4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: bus completion is monotone for monotone request times.
func TestQuickBusMonotone(t *testing.T) {
	b := NewBus(4, 1, 1)
	var lastReq, lastDone uint64
	f := func(step uint16) bool {
		lastReq += uint64(step)
		done := b.Request(lastReq)
		ok := done >= lastDone && done >= lastReq+5
		lastDone = done
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
