// Package interconnect models the communication fabric of the clustered
// processor (Table 1 of the paper): two memory buses and two
// disambiguation buses with 4-cycle transfer latency plus a 1-cycle
// arbiter, and two bidirectional point-to-point links connecting
// neighbouring clusters at 1 cycle per hop (2 cycles from side to side of
// the chip, i.e. the four clusters form a ring).
//
// All models are contention-aware but conservative: a transfer occupies a
// bus (or a link hop) for a configurable number of cycles, and requests
// are served in arrival order.
package interconnect

// BusStats counts bus traffic.
type BusStats struct {
	Transfers uint64
	WaitSum   uint64 // cycles spent waiting for grant (queueing)
}

// AvgWait returns the mean queueing delay per transfer.
func (s *BusStats) AvgWait() float64 {
	if s.Transfers == 0 {
		return 0
	}
	return float64(s.WaitSum) / float64(s.Transfers)
}

// Bus is a single shared bus with an arbiter.
type Bus struct {
	latency   uint64 // transfer latency once granted
	arbiter   uint64 // arbitration latency
	occupancy uint64 // cycles the bus stays busy per transfer
	nextFree  uint64
	Stats     BusStats
}

// NewBus returns a bus with the given latencies.  occupancy <= 0 is
// treated as 1 (fully pipelined transfers).
func NewBus(latency, arbiter, occupancy int) *Bus {
	if occupancy <= 0 {
		occupancy = 1
	}
	return &Bus{latency: uint64(latency), arbiter: uint64(arbiter), occupancy: uint64(occupancy)}
}

// Request schedules a transfer issued at cycle now and returns the cycle
// at which the transfer completes at the destination.
func (b *Bus) Request(now uint64) (done uint64) {
	grant := now + b.arbiter
	if b.nextFree > grant {
		b.Stats.WaitSum += b.nextFree - grant
		grant = b.nextFree
	}
	b.nextFree = grant + b.occupancy
	b.Stats.Transfers++
	return grant + b.latency
}

// Group is a set of identical buses; each request is steered to the bus
// that can grant it earliest (Table 1 provides two of each bus kind).
type Group struct {
	buses []*Bus
}

// NewGroup builds n identical buses.
func NewGroup(n, latency, arbiter, occupancy int) *Group {
	g := &Group{}
	for i := 0; i < n; i++ {
		g.buses = append(g.buses, NewBus(latency, arbiter, occupancy))
	}
	return g
}

// Request schedules a transfer on the least-loaded bus of the group.
func (g *Group) Request(now uint64) (done uint64) {
	best := g.buses[0]
	for _, b := range g.buses[1:] {
		if b.nextFree < best.nextFree {
			best = b
		}
	}
	return best.Request(now)
}

// Stats returns the aggregate statistics of the group.
func (g *Group) Stats() BusStats {
	var s BusStats
	for _, b := range g.buses {
		s.Transfers += b.Stats.Transfers
		s.WaitSum += b.Stats.WaitSum
	}
	return s
}

// NetStats counts point-to-point traffic.
type NetStats struct {
	Messages uint64
	HopSum   uint64
	WaitSum  uint64
}

// AvgHops returns the mean hop count per message.
func (s *NetStats) AvgHops() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.HopSum) / float64(s.Messages)
}

// Network is the ring of point-to-point links between clusters.  Each
// neighbouring pair is connected by `width` parallel bidirectional links;
// each link direction carries one message per cycle, and each hop costs
// one cycle (Table 1).
type Network struct {
	clusters int
	width    int
	// nextFree[hop][dir][link]: hop h connects cluster h and (h+1)%n;
	// dir 0 = forward (increasing index), 1 = backward.
	nextFree [][][]uint64
	Stats    NetStats
}

// NewNetwork builds a ring network over n clusters with `width` parallel
// links per hop.  A single cluster yields a degenerate network where every
// transfer is local (0 hops).
func NewNetwork(n, width int) *Network {
	if n < 1 {
		panic("interconnect: need at least one cluster")
	}
	if width < 1 {
		width = 1
	}
	nw := &Network{clusters: n, width: width}
	nw.nextFree = make([][][]uint64, n)
	for h := range nw.nextFree {
		nw.nextFree[h] = make([][]uint64, 2)
		for d := range nw.nextFree[h] {
			nw.nextFree[h][d] = make([]uint64, width)
		}
	}
	return nw
}

// Clusters returns the number of clusters on the ring.
func (n *Network) Clusters() int { return n.clusters }

// Distance returns the hop count between two clusters on the ring.
func (n *Network) Distance(from, to int) int {
	d := from - to
	if d < 0 {
		d = -d
	}
	if alt := n.clusters - d; alt < d {
		d = alt
	}
	return d
}

// Send schedules a message from cluster `from` to cluster `to`, departing
// at cycle now, and returns its arrival cycle.  Link contention delays the
// message at each hop.
func (n *Network) Send(now uint64, from, to int) (arrive uint64) {
	if from == to {
		return now
	}
	n.Stats.Messages++
	// Choose ring direction with the fewer hops (ties go forward).
	fwd := (to - from + n.clusters) % n.clusters
	bwd := (from - to + n.clusters) % n.clusters
	dir, steps := 0, fwd
	if bwd < fwd {
		dir, steps = 1, bwd
	}
	t := now
	c := from
	for s := 0; s < steps; s++ {
		var hop int
		if dir == 0 {
			hop = c
			c = (c + 1) % n.clusters
		} else {
			hop = (c - 1 + n.clusters) % n.clusters
			c = hop
		}
		slots := n.nextFree[hop][dir]
		best := 0
		for l := 1; l < len(slots); l++ {
			if slots[l] < slots[best] {
				best = l
			}
		}
		depart := t
		if slots[best] > depart {
			n.Stats.WaitSum += slots[best] - depart
			depart = slots[best]
		}
		slots[best] = depart + 1
		t = depart + 1
		n.Stats.HopSum++
	}
	return t
}
