package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/uop"
)

func TestFreeListAllocFree(t *testing.T) {
	fl := NewFreeList(4)
	if fl.Size() != 4 || fl.Available() != 4 {
		t.Fatalf("size/avail = %d/%d", fl.Size(), fl.Available())
	}
	seen := map[int16]bool{}
	for i := 0; i < 4; i++ {
		r, ok := fl.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[r] {
			t.Fatalf("register %d allocated twice", r)
		}
		seen[r] = true
	}
	if _, ok := fl.Alloc(); ok {
		t.Fatal("alloc succeeded on empty list")
	}
	if fl.FailedAllocs != 1 {
		t.Fatalf("FailedAllocs = %d", fl.FailedAllocs)
	}
	fl.Free(2)
	if r, ok := fl.Alloc(); !ok || r != 2 {
		t.Fatalf("realloc = %d,%v", r, ok)
	}
}

func TestFreeListDoubleFreePanics(t *testing.T) {
	fl := NewFreeList(4)
	r, _ := fl.Alloc()
	fl.Free(r)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	fl.Free(r)
}

func TestFreeListRangePanics(t *testing.T) {
	fl := NewFreeList(4)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range free did not panic")
		}
	}()
	fl.Free(9)
}

func TestAvailabilityBasics(t *testing.T) {
	a := NewAvailabilityTable(4)
	a.Reset()
	for r := int8(0); r < uop.NumLogicalRegs; r++ {
		if !a.Holds(r, 0) {
			t.Fatalf("register %d not in backend 0 after Reset", r)
		}
	}
	a.SetOnly(5, 2)
	if a.Holds(5, 0) || !a.Holds(5, 2) {
		t.Fatal("SetOnly did not replace holders")
	}
	a.Add(5, 3)
	if !a.Holds(5, 2) || !a.Holds(5, 3) {
		t.Fatal("Add lost a holder")
	}
	if a.Holders(5) != (1<<2)|(1<<3) {
		t.Fatalf("Holders = %b", a.Holders(5))
	}
}

func TestAnyHolderPreference(t *testing.T) {
	a := NewAvailabilityTable(4)
	a.SetOnly(1, 1)
	a.Add(1, 3)
	if c, ok := a.AnyHolder(1, []int{3, 1}); !ok || c != 3 {
		t.Fatalf("AnyHolder preferred = %d,%v; want 3", c, ok)
	}
	if c, ok := a.AnyHolder(1, []int{0, 2}); !ok || c != 1 {
		t.Fatalf("AnyHolder fallback = %d,%v; want lowest holder 1", c, ok)
	}
	if _, ok := a.AnyHolder(2, nil); ok {
		t.Fatal("AnyHolder found holder for unheld register")
	}
}

func TestAvailabilityCounters(t *testing.T) {
	a := NewAvailabilityTable(2)
	a.SetOnly(0, 1)
	a.Add(0, 0)
	a.Holds(0, 1)
	a.Holders(0)
	if a.Writes != 2 || a.Reads != 2 {
		t.Fatalf("counters = %d reads, %d writes", a.Reads, a.Writes)
	}
}

func TestAvailabilityRangePanics(t *testing.T) {
	for _, n := range []int{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAvailabilityTable(%d) did not panic", n)
				}
			}()
			NewAvailabilityTable(n)
		}()
	}
}

func TestMapTable(t *testing.T) {
	m := NewMapTable()
	if m.Get(3) != PhysNone {
		t.Fatal("fresh map has a mapping")
	}
	if prev := m.Set(3, 42); prev != PhysNone {
		t.Fatalf("prev = %d", prev)
	}
	if m.Get(3) != 42 {
		t.Fatal("mapping lost")
	}
	if prev := m.Set(3, 7); prev != 42 {
		t.Fatalf("Set returned prev = %d, want 42", prev)
	}
	if prev := m.Clear(3); prev != 7 {
		t.Fatalf("Clear returned %d, want 7", prev)
	}
	if m.Get(3) != PhysNone {
		t.Fatal("Clear did not unmap")
	}
	if m.Reads != 3 || m.Writes != 3 {
		t.Fatalf("counters = %d reads, %d writes", m.Reads, m.Writes)
	}
}

func TestCopyRequestCrossFrontend(t *testing.T) {
	cr := CopyRequest{SrcFrontend: 0, DstFrontend: 1}
	if !cr.CrossFrontend() {
		t.Fatal("cross-frontend request not detected")
	}
	cr.DstFrontend = 0
	if cr.CrossFrontend() {
		t.Fatal("same-frontend request flagged as cross")
	}
}

// Property: the free list conserves registers: after any interleaving of
// allocs and frees, available + live == size and no register is live twice.
func TestQuickFreeListConservation(t *testing.T) {
	fl := NewFreeList(16)
	live := map[int16]bool{}
	f := func(doAlloc bool) bool {
		if doAlloc {
			r, ok := fl.Alloc()
			if ok {
				if live[r] {
					return false
				}
				live[r] = true
			}
		} else {
			for r := range live {
				fl.Free(r)
				delete(live, r)
				break
			}
		}
		return fl.Available()+len(live) == fl.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
