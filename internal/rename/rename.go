// Package rename implements the register-renaming machinery of Section 3.1
// of the paper, in both its conventional centralized form and the proposed
// distributed form.
//
// The pieces are:
//
//   - FreeList: one free physical-register pool per backend cluster and
//     register space.  The paper keeps all freelists centralized next to
//     the steering logic so destination renaming can happen at steer time
//     (§3.1.1) — this is what makes communication-free distributed rename
//     tables possible.
//   - AvailabilityTable: one entry per logical register with one bit per
//     backend, telling the steering stage which backends hold a valid copy
//     of the register.  This is explicitly *not* the rename table.
//   - MapTable: the actual logical→physical mapping of one backend
//     cluster.  In the centralized organization all maps live in one
//     monolithic RAT; in the distributed organization each frontend holds
//     the maps of its associated backends only.
//   - CopyRequest: the §3.1.1 two-step protocol record sent from the
//     steering stage to the frontend that owns a source value when the
//     consumer lives under a different frontend.
package rename

import (
	"fmt"

	"repro/internal/uop"
)

// PhysNone marks an unmapped logical register.
const PhysNone int16 = -1

// FreeList manages the free physical registers of one cluster/space pair.
type FreeList struct {
	free  []int16
	inUse []bool
	size  int
	// FailedAllocs counts allocation attempts that found the list empty;
	// each corresponds to a dispatch stall cycle upstream.
	FailedAllocs uint64
}

// NewFreeList returns a free list over physical registers [0, n).
func NewFreeList(n int) *FreeList {
	fl := &FreeList{size: n, inUse: make([]bool, n)}
	fl.free = make([]int16, n)
	for i := range fl.free {
		// Pop from the tail; seed so low registers are handed out first.
		fl.free[i] = int16(n - 1 - i)
	}
	return fl
}

// Size returns the total number of physical registers.
func (fl *FreeList) Size() int { return fl.size }

// Available returns the number of free registers.
func (fl *FreeList) Available() int { return len(fl.free) }

// Alloc takes a free register.  ok is false if none is available.
func (fl *FreeList) Alloc() (reg int16, ok bool) {
	if len(fl.free) == 0 {
		fl.FailedAllocs++
		return PhysNone, false
	}
	reg = fl.free[len(fl.free)-1]
	fl.free = fl.free[:len(fl.free)-1]
	fl.inUse[reg] = true
	return reg, true
}

// Free returns a register to the pool.  It panics on double-free, which
// would silently corrupt the machine state.
func (fl *FreeList) Free(reg int16) {
	if reg < 0 || int(reg) >= fl.size {
		panic(fmt.Sprintf("rename: freeing out-of-range register %d", reg))
	}
	if !fl.inUse[reg] {
		panic(fmt.Sprintf("rename: double free of physical register %d", reg))
	}
	fl.inUse[reg] = false
	fl.free = append(fl.free, reg)
}

// AvailabilityTable records, per logical register, which backends hold a
// valid copy of its current value (§3.1.1).  It has as many entries as
// logical registers and as many bits per entry as backends; it lives with
// the centralized steering logic in both organizations.
type AvailabilityTable struct {
	bits     []uint32
	backends int
	// Reads and Writes are activity counters for the power model.
	Reads  uint64
	Writes uint64
}

// NewAvailabilityTable builds a table for the given number of backends
// (at most 32).
func NewAvailabilityTable(backends int) *AvailabilityTable {
	if backends < 1 || backends > 32 {
		panic("rename: backends out of range")
	}
	return &AvailabilityTable{bits: make([]uint32, uop.NumLogicalRegs), backends: backends}
}

// Holders returns the bitmask of backends holding logical register r.
func (a *AvailabilityTable) Holders(r int8) uint32 {
	a.Reads++
	return a.bits[r]
}

// Holds reports whether backend c holds a valid copy of r.
func (a *AvailabilityTable) Holds(r int8, c int) bool {
	a.Reads++
	return a.bits[r]&(1<<uint(c)) != 0
}

// SetOnly records that the value of r now exists only in backend c (a new
// value was produced there).
func (a *AvailabilityTable) SetOnly(r int8, c int) {
	a.Writes++
	a.bits[r] = 1 << uint(c)
}

// Add records that backend c received a copy of r.
func (a *AvailabilityTable) Add(r int8, c int) {
	a.Writes++
	a.bits[r] |= 1 << uint(c)
}

// AnyHolder returns some backend holding r, preferring the ones whose
// index appears in prefer (searched in order), then the lowest-numbered
// holder.  ok is false if no backend holds r (an uninitialized register).
func (a *AvailabilityTable) AnyHolder(r int8, prefer []int) (c int, ok bool) {
	a.Reads++
	m := a.bits[r]
	if m == 0 {
		return 0, false
	}
	for _, p := range prefer {
		if m&(1<<uint(p)) != 0 {
			return p, true
		}
	}
	for c := 0; c < a.backends; c++ {
		if m&(1<<uint(c)) != 0 {
			return c, true
		}
	}
	return 0, false
}

// Reset marks every logical register as held by backend 0, the
// architectural home of the initial machine state.
func (a *AvailabilityTable) Reset() {
	for r := range a.bits {
		a.bits[r] = 1
	}
}

// MapTable is the logical→physical register map of one backend cluster.
// Centralized and distributed organizations differ in where these tables
// live (one monolithic RAT vs. one table per frontend partition), which
// the power model captures via energy per access; the mapping function is
// identical.
type MapTable struct {
	phys [uop.NumLogicalRegs]int16
	// Activity counters for the power model.
	Reads  uint64
	Writes uint64
}

// NewMapTable returns a map with no logical register mapped.
func NewMapTable() *MapTable {
	m := &MapTable{}
	for i := range m.phys {
		m.phys[i] = PhysNone
	}
	return m
}

// Get returns the physical register mapped to r (PhysNone if unmapped).
func (m *MapTable) Get(r int8) int16 {
	m.Reads++
	return m.phys[r]
}

// Set maps logical register r to physical register p and returns the
// previous mapping (PhysNone if none).
func (m *MapTable) Set(r int8, p int16) (prev int16) {
	m.Writes++
	prev = m.phys[r]
	m.phys[r] = p
	return prev
}

// Clear unmaps r and returns the previous mapping.
func (m *MapTable) Clear(r int8) (prev int16) {
	m.Writes++
	prev = m.phys[r]
	m.phys[r] = PhysNone
	return prev
}

// CopyRequest is the §3.1.1 cross-frontend copy protocol record: the
// steering stage allocates the destination register from the target
// backend's freelist, then asks the frontend owning the value (G in the
// paper) to generate the actual copy instruction.
type CopyRequest struct {
	Logical     int8  // logical register to copy
	SrcBackend  int   // backend that holds the value
	DstBackend  int   // backend that needs the value
	DstPhys     int16 // pre-allocated destination physical register
	SrcFrontend int   // frontend that owns SrcBackend (generates the copy)
	DstFrontend int   // frontend that owns DstBackend
}

// CrossFrontend reports whether the request crosses frontend partitions
// (the case that needs the two-step protocol).
func (cr *CopyRequest) CrossFrontend() bool { return cr.SrcFrontend != cr.DstFrontend }
