// Package floorplan models the processor layouts of Figures 10 and 11 of
// the paper: block rectangles for the frontend (ROB, RAT, ITLB, decoder,
// branch predictor and trace-cache banks), the UL2, and the four backend
// clusters with their sub-blocks.
//
// The floorplan feeds the thermal model: block areas set power densities
// and thermal capacitances; shared edges set the lateral heat-spreading
// paths (the mechanism behind the paper's observations that, e.g., a
// cooler trace cache lets the rename table dissipate heat toward it).
//
// Block areas are kept identical across configurations, except for the
// intentional growth the paper reports: one extra trace-cache bank for
// bank hopping (+1.6% of processor area) and the split ROB/RAT partitions
// of the distributed frontend (1.3x their centralized area in total, +3%
// of processor area).
package floorplan

import (
	"fmt"
	"math"
	"strings"
)

// Block is a named rectangle on the die (units: mm).
type Block struct {
	Name       string
	X, Y, W, H float64
}

// Area returns the block area in mm².
func (b Block) Area() float64 { return b.W * b.H }

// CenterX and CenterY return the block's center coordinates.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the block's vertical center.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Adjacency is one lateral thermal interface between two blocks.
type Adjacency struct {
	A, B   int     // block indices
	Shared float64 // shared edge length (mm)
	Dist   float64 // center-to-center distance (mm)
}

// Floorplan is a set of blocks plus derived adjacency information.
type Floorplan struct {
	Blocks []Block
	byName map[string]int
	adj    []Adjacency
}

// Config selects a layout variant.
type Config struct {
	TCBanks     int  // trace-cache banks (2 baseline, 3 hopping/blank)
	Distributed bool // split ROB/RAT into partitions
	Partitions  int  // number of frontend partitions when Distributed (default 2)
	Clusters    int  // backend clusters (4 in the paper)
}

// Canonical block names.  Cluster blocks are "C<i>.<unit>".
const (
	ROB  = "ROB"
	RAT  = "RAT"
	ITLB = "ITLB"
	DECO = "DECO"
	BP   = "BP"
	UL2  = "UL2"
)

// TCBank returns the name of trace-cache bank b.
func TCBank(b int) string { return fmt.Sprintf("TC-%d", b) }

// ROBPart and RATPart name the distributed partitions.
func ROBPart(p int) string { return fmt.Sprintf("ROB-%d", p) }

// RATPart names a distributed rename-table partition.
func RATPart(p int) string { return fmt.Sprintf("RAT-%d", p) }

// ClusterBlock names sub-block `unit` of cluster cl.
func ClusterBlock(cl int, unit string) string { return fmt.Sprintf("C%d.%s", cl, unit) }

// Cluster sub-block unit names (Figure 10b).
var ClusterUnits = []string{"DL1", "DTLB", "FPFU", "IFU", "MOB", "FPRF", "IRF", "FPS", "CS", "IS"}

// IsFrontend reports whether the named block belongs to the frontend.
func IsFrontend(name string) bool {
	return name == RAT || name == ROB || name == ITLB || name == DECO || name == BP ||
		strings.HasPrefix(name, "TC-") || strings.HasPrefix(name, "ROB-") ||
		strings.HasPrefix(name, "RAT-")
}

// IsBackend reports whether the named block belongs to a backend cluster.
func IsBackend(name string) bool { return strings.HasPrefix(name, "C") && strings.Contains(name, ".") }

// IsTraceCache reports whether the named block is a trace-cache bank.
func IsTraceCache(name string) bool { return strings.HasPrefix(name, "TC-") }

// IsROB reports whether the named block is (a partition of) the reorder
// buffer.
func IsROB(name string) bool { return name == ROB || strings.HasPrefix(name, "ROB-") }

// IsRAT reports whether the named block is (a partition of) the rename
// table.
func IsRAT(name string) bool { return name == RAT || strings.HasPrefix(name, "RAT-") }

// Baseline block dimensions (mm).  The frontend strip is 5.0 wide; the
// chip is ~80 mm² with the frontend at 20% (the share the paper reports
// for its clustered design).
const (
	robW, robH   = 5.0, 1.0 // 5.0 mm²
	ratW, ratH   = 1.5, 1.1 // 1.65 mm²
	itlbW, itlbH = 1.0, 1.1 // 1.1 mm²
	tcW, tcH     = 2.5, 1.1 // 2.75 mm² per bank
	decoW, decoH = 1.5, 1.1 // 1.65 mm²
	bpW, bpH     = 1.0, 1.1 // 1.1 mm²
	ul2W, ul2H   = 5.0, 3.2 // 16 mm²
	feH          = 3.2      // frontend strip height
	clW, clH     = 5.0, 2.4 // cluster 12 mm²
)

// New builds the floorplan for the given configuration.
func New(cfg Config) *Floorplan {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 4
	}
	if cfg.TCBanks <= 0 {
		cfg.TCBanks = 2
	}
	f := &Floorplan{byName: map[string]int{}}

	// ---- Frontend strip (y in [0, feH)) ----
	switch {
	case !cfg.Distributed && cfg.TCBanks <= 2:
		// Figure 10a:  ROB / RAT ITLB TC-0 / DECO BP TC-1
		f.add(Block{ROB, 0, 0, robW, robH})
		f.add(Block{RAT, 0, robH, ratW, ratH})
		f.add(Block{ITLB, ratW, robH, itlbW, itlbH})
		f.add(Block{TCBank(0), ratW + itlbW, robH, tcW, tcH})
		f.add(Block{DECO, 0, robH + ratH, decoW, decoH})
		f.add(Block{BP, decoW, robH + ratH, bpW, bpH})
		f.add(Block{TCBank(1), decoW + bpW, robH + ratH, tcW, tcH})
	case !cfg.Distributed:
		// Figure 11:  ROB / DECO TC-0 ITLB / RAT TC-1 BP TC-2
		f.add(Block{ROB, 0, 0, robW, robH})
		f.add(Block{DECO, 0, robH, decoW, decoH})
		f.add(Block{TCBank(0), decoW, robH, tcW, tcH})
		f.add(Block{ITLB, decoW + tcW, robH, itlbW, itlbH})
		f.add(Block{RAT, 0, robH + decoH, ratW, ratH})
		f.add(Block{TCBank(1), ratW, robH + decoH, tcW, tcH})
		f.add(Block{BP, ratW + tcW, robH + decoH, bpW, bpH})
		f.add(Block{TCBank(2), ratW + tcW + bpW, robH + decoH, tcW, tcH})
		// Further banks (ablation configurations) extend the bottom row.
		for b := 3; b < cfg.TCBanks; b++ {
			f.add(Block{TCBank(b), ratW + tcW + bpW + tcW*float64(b-2), robH + decoH, tcW, tcH})
		}
	default:
		// Distributed frontend: ROB and RAT split into partitions, kept
		// together in the same location as the centralized versions (§4);
		// the partitions total 1.3x the centralized area (+3% of the
		// processor area including the freelist/steer additions).
		n := cfg.Partitions
		if n < 2 {
			n = 2
		}
		pw := robW * 1.3 / float64(n)
		for i := 0; i < n; i++ {
			f.add(Block{ROBPart(i), float64(i) * pw, 0, pw, robH})
		}
		rw := ratW * 1.3 / float64(n)
		for i := 0; i < n; i++ {
			f.add(Block{RATPart(i), float64(i) * rw, robH, rw, ratH})
		}
		x := float64(n) * rw
		f.add(Block{ITLB, x, robH, itlbW, itlbH})
		f.add(Block{TCBank(0), x + itlbW, robH, tcW, tcH})
		f.add(Block{DECO, 0, robH + ratH, decoW, decoH})
		f.add(Block{BP, decoW, robH + ratH, bpW, bpH})
		f.add(Block{TCBank(1), decoW + bpW, robH + ratH, tcW, tcH})
		// Extra hopping banks beside bank 1, adjacent to the RAT row.
		for b := 2; b < cfg.TCBanks; b++ {
			f.add(Block{TCBank(b), decoW + bpW + tcW*float64(b-1), robH + ratH, tcW, tcH})
		}
	}

	// ---- UL2 to the right of the frontend ----
	fw := f.frontWidth()
	f.add(Block{UL2, fw, 0, ul2W, ul2H})

	// ---- Clusters in a 2-column grid below ----
	for cl := 0; cl < cfg.Clusters; cl++ {
		col, row := cl%2, cl/2
		ox := float64(col) * clW
		oy := feH + float64(row)*clH
		addCluster(f, cl, ox, oy)
	}

	f.computeAdjacency()
	return f
}

// frontWidth returns the rightmost frontend block edge.
func (f *Floorplan) frontWidth() float64 {
	w := 0.0
	for _, b := range f.Blocks {
		if IsFrontend(b.Name) && b.X+b.W > w {
			w = b.X + b.W
		}
	}
	return w
}

// addCluster lays out the sub-blocks of Figure 10b inside one cluster.
func addCluster(f *Floorplan, cl int, ox, oy float64) {
	rh := clH / 3
	add := func(unit string, x, w float64, row int) {
		f.add(Block{ClusterBlock(cl, unit), ox + x, oy + float64(row)*rh, w, rh})
	}
	// Row 0: DL1 DTLB
	add("DL1", 0, 3.0, 0)
	add("DTLB", 3.0, 2.0, 0)
	// Row 1: FPFU IFU MS/MOB
	add("FPFU", 0, 1.7, 1)
	add("IFU", 1.7, 1.6, 1)
	add("MOB", 3.3, 1.7, 1)
	// Row 2: FPRF IRF FPS CS IS
	add("FPRF", 0, 1.2, 2)
	add("IRF", 1.2, 1.2, 2)
	add("FPS", 2.4, 0.9, 2)
	add("CS", 3.3, 0.8, 2)
	add("IS", 4.1, 0.9, 2)
}

func (f *Floorplan) add(b Block) {
	if _, dup := f.byName[b.Name]; dup {
		panic("floorplan: duplicate block " + b.Name)
	}
	f.byName[b.Name] = len(f.Blocks)
	f.Blocks = append(f.Blocks, b)
}

// Index returns the index of the named block, or -1.
func (f *Floorplan) Index(name string) int {
	if i, ok := f.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the block names in index order.
func (f *Floorplan) Names() []string {
	out := make([]string, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = b.Name
	}
	return out
}

// TotalArea returns the summed block area in mm².
func (f *Floorplan) TotalArea() float64 {
	a := 0.0
	for _, b := range f.Blocks {
		a += b.Area()
	}
	return a
}

// Adjacencies returns the lateral interfaces between blocks.
func (f *Floorplan) Adjacencies() []Adjacency { return f.adj }

const adjEps = 1e-6

// computeAdjacency finds shared edges between all block pairs.
func (f *Floorplan) computeAdjacency() {
	f.adj = nil
	for i := 0; i < len(f.Blocks); i++ {
		for j := i + 1; j < len(f.Blocks); j++ {
			a, b := f.Blocks[i], f.Blocks[j]
			shared := sharedEdge(a, b)
			if shared <= adjEps {
				continue
			}
			dx := a.CenterX() - b.CenterX()
			dy := a.CenterY() - b.CenterY()
			dist := math.Sqrt(dx*dx + dy*dy)
			f.adj = append(f.adj, Adjacency{A: i, B: j, Shared: shared, Dist: dist})
		}
	}
}

// sharedEdge returns the length of the common boundary of two rectangles
// (0 if they only touch at a corner or are apart).
func sharedEdge(a, b Block) float64 {
	// Vertical edges touching: a's right against b's left or vice versa.
	if abs(a.X+a.W-b.X) < adjEps || abs(b.X+b.W-a.X) < adjEps {
		lo := max(a.Y, b.Y)
		hi := min(a.Y+a.H, b.Y+b.H)
		if hi-lo > adjEps {
			return hi - lo
		}
	}
	// Horizontal edges touching.
	if abs(a.Y+a.H-b.Y) < adjEps || abs(b.Y+b.H-a.Y) < adjEps {
		lo := max(a.X, b.X)
		hi := min(a.X+a.W, b.X+b.W)
		if hi-lo > adjEps {
			return hi - lo
		}
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render draws a coarse ASCII map of the floorplan (used by cmd/tempmap).
// Each cell is cellMM millimetres; blocks are labelled by their first two
// letters.
func (f *Floorplan) Render(cellMM float64) string {
	if cellMM <= 0 {
		cellMM = 0.5
	}
	maxX, maxY := 0.0, 0.0
	for _, b := range f.Blocks {
		if b.X+b.W > maxX {
			maxX = b.X + b.W
		}
		if b.Y+b.H > maxY {
			maxY = b.Y + b.H
		}
	}
	w := int(maxX/cellMM) + 1
	h := int(maxY/cellMM) + 1
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", w))
	}
	for _, b := range f.Blocks {
		label := strings.ToUpper(strings.TrimPrefix(b.Name, "C"))
		label = strings.Map(func(r rune) rune {
			if r == '.' || r == '-' {
				return -1
			}
			return r
		}, label)
		if len(label) < 2 {
			label += " "
		}
		for y := int(b.Y / cellMM); float64(y)*cellMM < b.Y+b.H-adjEps && y < h; y++ {
			for x := int(b.X / cellMM); float64(x)*cellMM < b.X+b.W-adjEps && x < w; x++ {
				idx := (x * 2) % len(label)
				if idx+1 < len(label) {
					grid[y][x] = label[idx]
				} else {
					grid[y][x] = label[0]
				}
			}
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.Write(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}
