package floorplan

import (
	"math"
	"strings"
	"testing"
)

func baseline() *Floorplan {
	return New(Config{TCBanks: 2, Clusters: 4})
}

func TestBaselineBlocks(t *testing.T) {
	f := baseline()
	// Figure 10a frontend blocks plus UL2 plus 4x10 cluster blocks.
	want := []string{ROB, RAT, ITLB, "TC-0", DECO, BP, "TC-1", UL2}
	for _, n := range want {
		if f.Index(n) < 0 {
			t.Errorf("block %q missing", n)
		}
	}
	for cl := 0; cl < 4; cl++ {
		for _, u := range ClusterUnits {
			if f.Index(ClusterBlock(cl, u)) < 0 {
				t.Errorf("cluster block %s missing", ClusterBlock(cl, u))
			}
		}
	}
	if len(f.Blocks) != 8+4*len(ClusterUnits) {
		t.Errorf("block count = %d", len(f.Blocks))
	}
}

func TestFrontendShare(t *testing.T) {
	// The paper: frontend ≈ 20% of the processor area.
	f := baseline()
	fe := 0.0
	for _, b := range f.Blocks {
		if IsFrontend(b.Name) {
			fe += b.Area()
		}
	}
	share := fe / f.TotalArea()
	if share < 0.15 || share > 0.25 {
		t.Errorf("frontend area share = %.2f, want ~0.20", share)
	}
}

func TestNoOverlap(t *testing.T) {
	for _, cfg := range []Config{
		{TCBanks: 2, Clusters: 4},
		{TCBanks: 3, Clusters: 4},
		{TCBanks: 2, Distributed: true, Partitions: 2, Clusters: 4},
		{TCBanks: 3, Distributed: true, Partitions: 2, Clusters: 4},
		{TCBanks: 2, Distributed: true, Partitions: 4, Clusters: 4},
	} {
		f := New(cfg)
		for i := 0; i < len(f.Blocks); i++ {
			for j := i + 1; j < len(f.Blocks); j++ {
				a, b := f.Blocks[i], f.Blocks[j]
				ox := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
				oy := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
				if ox > 1e-6 && oy > 1e-6 {
					t.Errorf("cfg %+v: blocks %s and %s overlap", cfg, a.Name, b.Name)
				}
			}
		}
	}
}

func TestAreasConsistentAcrossLayouts(t *testing.T) {
	// Block areas must not change between layouts, except the intended
	// growth (extra TC bank; 1.3x ROB/RAT for distributed).
	base := baseline()
	hop := New(Config{TCBanks: 3, Clusters: 4})
	for _, n := range []string{ROB, RAT, ITLB, DECO, BP, UL2, "TC-0", "TC-1"} {
		a := base.Blocks[base.Index(n)].Area()
		b := hop.Blocks[hop.Index(n)].Area()
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("%s area changed between layouts: %v vs %v", n, a, b)
		}
	}
	// Hopping adds exactly one bank-sized block (paper: +1.6% of area).
	extra := hop.TotalArea() - base.TotalArea()
	bank := base.Blocks[base.Index("TC-0")].Area()
	if math.Abs(extra-bank) > 1e-9 {
		t.Errorf("hopping area overhead = %v, want one bank (%v)", extra, bank)
	}
	if frac := extra / base.TotalArea(); frac > 0.05 {
		t.Errorf("hopping overhead fraction %.3f too large", frac)
	}
}

func TestDistributedAreaOverhead(t *testing.T) {
	base := baseline()
	dist := New(Config{TCBanks: 2, Distributed: true, Partitions: 2, Clusters: 4})
	robArea := base.Blocks[base.Index(ROB)].Area()
	ratArea := base.Blocks[base.Index(RAT)].Area()
	var robParts, ratParts float64
	for p := 0; p < 2; p++ {
		robParts += dist.Blocks[dist.Index(ROBPart(p))].Area()
		ratParts += dist.Blocks[dist.Index(RATPart(p))].Area()
	}
	if r := robParts / robArea; math.Abs(r-1.3) > 0.01 {
		t.Errorf("ROB partitions area ratio = %.3f, want 1.3 (paper: +3%% total)", r)
	}
	if r := ratParts / ratArea; math.Abs(r-1.3) > 0.01 {
		t.Errorf("RAT partitions area ratio = %.3f, want 1.3", r)
	}
	// Total overhead ~3% of the processor (paper §4.1).
	frac := (dist.TotalArea() - base.TotalArea()) / base.TotalArea()
	if frac < 0.005 || frac > 0.05 {
		t.Errorf("distributed area overhead = %.3f, want ~0.03", frac)
	}
}

func TestAdjacencySymmetricAndPositive(t *testing.T) {
	f := baseline()
	for _, a := range f.Adjacencies() {
		if a.A == a.B {
			t.Error("self adjacency")
		}
		if a.Shared <= 0 || a.Dist <= 0 {
			t.Errorf("bad adjacency %+v", a)
		}
	}
}

func TestKnownAdjacencies(t *testing.T) {
	f := baseline()
	pairs := map[[2]string]bool{}
	for _, a := range f.Adjacencies() {
		n1, n2 := f.Blocks[a.A].Name, f.Blocks[a.B].Name
		pairs[[2]string{n1, n2}] = true
		pairs[[2]string{n2, n1}] = true
	}
	// Figure 10a: RAT below ROB, ITLB right of RAT; TC-1 right of BP.
	for _, want := range [][2]string{{ROB, RAT}, {RAT, ITLB}, {ITLB, "TC-0"}, {BP, "TC-1"}, {RAT, DECO}} {
		if !pairs[want] {
			t.Errorf("expected adjacency %v missing", want)
		}
	}
	// Non-adjacent in Fig 10: RAT and TC-0 are separated by the ITLB.
	if pairs[[2]string{RAT, "TC-0"}] {
		t.Error("RAT and TC-0 adjacent in baseline, but ITLB sits between them")
	}
}

func TestHoppingLayoutSurroundsRAT(t *testing.T) {
	// Figure 11 places the RAT next to trace-cache banks so the hopped
	// banks cool it.
	f := New(Config{TCBanks: 3, Clusters: 4})
	adjacent := false
	for _, a := range f.Adjacencies() {
		n1, n2 := f.Blocks[a.A].Name, f.Blocks[a.B].Name
		if (n1 == RAT && IsTraceCache(n2)) || (n2 == RAT && IsTraceCache(n1)) {
			adjacent = true
		}
	}
	if !adjacent {
		t.Error("Figure 11 layout: RAT not adjacent to any trace-cache bank")
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		name                 string
		fe, be, tc, rob, rat bool
	}{
		{ROB, true, false, false, true, false},
		{"ROB-1", true, false, false, true, false},
		{RAT, true, false, false, false, true},
		{"RAT-0", true, false, false, false, true},
		{"TC-2", true, false, true, false, false},
		{DECO, true, false, false, false, false},
		{UL2, false, false, false, false, false},
		{"C2.IRF", false, true, false, false, false},
	}
	for _, c := range cases {
		if IsFrontend(c.name) != c.fe {
			t.Errorf("IsFrontend(%s) = %v", c.name, !c.fe)
		}
		if IsBackend(c.name) != c.be {
			t.Errorf("IsBackend(%s) = %v", c.name, !c.be)
		}
		if IsTraceCache(c.name) != c.tc {
			t.Errorf("IsTraceCache(%s) = %v", c.name, !c.tc)
		}
		if IsROB(c.name) != c.rob {
			t.Errorf("IsROB(%s) = %v", c.name, !c.rob)
		}
		if IsRAT(c.name) != c.rat {
			t.Errorf("IsRAT(%s) = %v", c.name, !c.rat)
		}
	}
}

func TestIndexAndNames(t *testing.T) {
	f := baseline()
	if f.Index("nosuch") != -1 {
		t.Error("Index of missing block not -1")
	}
	names := f.Names()
	if len(names) != len(f.Blocks) {
		t.Fatal("Names length mismatch")
	}
	for i, n := range names {
		if f.Index(n) != i {
			t.Errorf("Index(%s) = %d, want %d", n, f.Index(n), i)
		}
	}
}

func TestRender(t *testing.T) {
	out := baseline().Render(0.5)
	if !strings.Contains(out, "\n") || len(out) < 100 {
		t.Fatalf("render too small:\n%s", out)
	}
	out2 := baseline().Render(0) // default cell size
	if out2 != out {
		t.Error("default cell size differs from 0.5")
	}
}

func TestDuplicateBlockPanics(t *testing.T) {
	f := &Floorplan{byName: map[string]int{}}
	f.add(Block{Name: "X", W: 1, H: 1})
	defer func() {
		if recover() == nil {
			t.Error("duplicate add did not panic")
		}
	}()
	f.add(Block{Name: "X", W: 1, H: 1})
}

func TestDefaults(t *testing.T) {
	f := New(Config{})
	if f.Index(ROB) < 0 || f.Index("C3.IS") < 0 {
		t.Error("zero config did not default to baseline quad-cluster")
	}
}

func TestFourBankLayout(t *testing.T) {
	// Ablation configurations use up to four banks; every bank must have
	// a floorplan block in both the centralized and distributed layouts.
	for _, cfg := range []Config{
		{TCBanks: 4, Clusters: 4},
		{TCBanks: 4, Distributed: true, Partitions: 2, Clusters: 4},
	} {
		f := New(cfg)
		for b := 0; b < 4; b++ {
			if f.Index(TCBank(b)) < 0 {
				t.Errorf("cfg %+v: bank %d missing from floorplan", cfg, b)
			}
		}
	}
}
