// Package metrics computes the paper's temperature metrics (§4):
//
//   - AbsMax:  peak temperature over time and space,
//   - Average: average temperature over time and space,
//   - AvgMax:  average of the per-interval maximum temperatures,
//
// all expressed as the rise over the 45°C ambient, and the relative
// reductions between configurations ("temperature improvements are
// measured as the reduction on the temperature increase over ambient").
package metrics

import "fmt"

// Series records per-block temperatures over simulation intervals.
type Series struct {
	names   []string
	areas   []float64
	ambient float64
	samples [][]float64 // [interval][block] temperatures in °C
}

// NewSeries creates a series for the given block names/areas and ambient.
func NewSeries(names []string, areas []float64, ambient float64) *Series {
	if len(names) != len(areas) {
		panic("metrics: names and areas length mismatch")
	}
	return &Series{names: names, areas: areas, ambient: ambient}
}

// Add appends one interval's temperatures (copied).
func (s *Series) Add(temps []float64) {
	if len(temps) != len(s.names) {
		panic(fmt.Sprintf("metrics: sample has %d blocks, want %d", len(temps), len(s.names)))
	}
	cp := make([]float64, len(temps))
	copy(cp, temps)
	s.samples = append(s.samples, cp)
}

// Intervals returns the number of recorded samples.
func (s *Series) Intervals() int { return len(s.samples) }

// Names returns the block names.
func (s *Series) Names() []string { return s.names }

// Ambient returns the ambient temperature.
func (s *Series) Ambient() float64 { return s.ambient }

// indices resolves a block filter into indices; a nil filter selects all.
func (s *Series) indices(filter func(string) bool) []int {
	var idx []int
	for i, n := range s.names {
		if filter == nil || filter(n) {
			idx = append(idx, i)
		}
	}
	return idx
}

// AbsMax returns the peak rise over ambient across time and the selected
// blocks.
func (s *Series) AbsMax(filter func(string) bool) float64 {
	idx := s.indices(filter)
	peak := 0.0
	for _, sample := range s.samples {
		for _, i := range idx {
			if r := sample[i] - s.ambient; r > peak {
				peak = r
			}
		}
	}
	return peak
}

// Average returns the rise over ambient averaged over time and, area-
// weighted, over the selected blocks.
func (s *Series) Average(filter func(string) bool) float64 {
	idx := s.indices(filter)
	if len(idx) == 0 || len(s.samples) == 0 {
		return 0
	}
	areaSum := 0.0
	for _, i := range idx {
		areaSum += s.areas[i]
	}
	total := 0.0
	for _, sample := range s.samples {
		w := 0.0
		for _, i := range idx {
			w += (sample[i] - s.ambient) * s.areas[i]
		}
		total += w / areaSum
	}
	return total / float64(len(s.samples))
}

// AvgMax returns the mean over intervals of the per-interval maximum rise
// across the selected blocks.
func (s *Series) AvgMax(filter func(string) bool) float64 {
	idx := s.indices(filter)
	if len(idx) == 0 || len(s.samples) == 0 {
		return 0
	}
	total := 0.0
	for _, sample := range s.samples {
		m := -1e30
		for _, i := range idx {
			if r := sample[i] - s.ambient; r > m {
				m = r
			}
		}
		total += m
	}
	return total / float64(len(s.samples))
}

// Triple bundles the three §4 metrics for one unit.
type Triple struct {
	AbsMax  float64
	Average float64
	AvgMax  float64
}

// Unit computes all three metrics for the blocks selected by filter.
func (s *Series) Unit(filter func(string) bool) Triple {
	return Triple{
		AbsMax:  s.AbsMax(filter),
		Average: s.Average(filter),
		AvgMax:  s.AvgMax(filter),
	}
}

// Reduction returns the relative reduction of the rise over ambient from
// base to new, as a fraction (0.32 = 32%): the paper's improvement
// metric.
func Reduction(base, new float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - new) / base
}

// ReductionTriple applies Reduction metric-wise.
func ReductionTriple(base, new Triple) Triple {
	return Triple{
		AbsMax:  Reduction(base.AbsMax, new.AbsMax),
		Average: Reduction(base.Average, new.Average),
		AvgMax:  Reduction(base.AvgMax, new.AvgMax),
	}
}

// Slowdown returns cyclesNew/cyclesBase - 1 (0.02 = 2% slower).
func Slowdown(cyclesBase, cyclesNew uint64) float64 {
	if cyclesBase == 0 {
		return 0
	}
	return float64(cyclesNew)/float64(cyclesBase) - 1
}

// PerInterval returns the temperatures recorded at interval i.  The
// returned slice is owned by the series; callers must not modify it.
func (s *Series) PerInterval(i int) []float64 { return s.samples[i] }
