package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func series() *Series {
	s := NewSeries([]string{"A", "B", "C"}, []float64{1, 1, 2}, 45)
	s.Add([]float64{55, 65, 50}) // rises 10, 20, 5
	s.Add([]float64{75, 55, 50}) // rises 30, 10, 5
	return s
}

func TestAbsMax(t *testing.T) {
	s := series()
	if v := s.AbsMax(nil); v != 30 {
		t.Errorf("AbsMax all = %v, want 30", v)
	}
	onlyB := func(n string) bool { return n == "B" }
	if v := s.AbsMax(onlyB); v != 20 {
		t.Errorf("AbsMax B = %v, want 20", v)
	}
}

func TestAverageAreaWeighted(t *testing.T) {
	s := series()
	// Interval rises: (10+20+2*5)/4 = 10; (30+10+2*5)/4 = 12.5 → 11.25.
	if v := s.Average(nil); math.Abs(v-11.25) > 1e-9 {
		t.Errorf("Average = %v, want 11.25", v)
	}
}

func TestAvgMax(t *testing.T) {
	s := series()
	// Per-interval maxima: 20, 30 → 25.
	if v := s.AvgMax(nil); v != 25 {
		t.Errorf("AvgMax = %v, want 25", v)
	}
}

func TestUnitTriple(t *testing.T) {
	s := series()
	tr := s.Unit(nil)
	if tr.AbsMax != 30 || tr.AvgMax != 25 {
		t.Errorf("Unit = %+v", tr)
	}
	if tr.AbsMax < tr.AvgMax {
		t.Error("AbsMax < AvgMax is impossible")
	}
}

func TestEmptyFilter(t *testing.T) {
	s := series()
	none := func(string) bool { return false }
	if s.Average(none) != 0 || s.AvgMax(none) != 0 || s.AbsMax(none) != 0 {
		t.Error("empty filter must yield zero metrics")
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(50, 35); math.Abs(r-0.3) > 1e-12 {
		t.Errorf("Reduction = %v, want 0.3", r)
	}
	if r := Reduction(0, 10); r != 0 {
		t.Errorf("Reduction with zero base = %v", r)
	}
	if r := Reduction(10, 12); r != -0.2 {
		t.Errorf("negative reduction = %v, want -0.2", r)
	}
}

func TestReductionTriple(t *testing.T) {
	base := Triple{AbsMax: 50, Average: 40, AvgMax: 45}
	new := Triple{AbsMax: 25, Average: 30, AvgMax: 45}
	r := ReductionTriple(base, new)
	if r.AbsMax != 0.5 || math.Abs(r.Average-0.25) > 1e-12 || r.AvgMax != 0 {
		t.Errorf("ReductionTriple = %+v", r)
	}
}

func TestSlowdown(t *testing.T) {
	if s := Slowdown(100, 102); math.Abs(s-0.02) > 1e-12 {
		t.Errorf("Slowdown = %v, want 0.02", s)
	}
	if s := Slowdown(0, 10); s != 0 {
		t.Errorf("Slowdown with zero base = %v", s)
	}
}

func TestAddValidation(t *testing.T) {
	s := series()
	defer func() {
		if recover() == nil {
			t.Error("Add with wrong length did not panic")
		}
	}()
	s.Add([]float64{1})
}

func TestNewSeriesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched names/areas did not panic")
		}
	}()
	NewSeries([]string{"A"}, []float64{1, 2}, 45)
}

func TestAddCopiesSample(t *testing.T) {
	s := NewSeries([]string{"A"}, []float64{1}, 45)
	buf := []float64{50}
	s.Add(buf)
	buf[0] = 99
	if s.AbsMax(nil) != 5 {
		t.Error("Add did not copy the sample")
	}
}

func TestPerInterval(t *testing.T) {
	s := series()
	if s.Intervals() != 2 {
		t.Fatalf("Intervals = %d", s.Intervals())
	}
	if v := s.PerInterval(1)[0]; v != 75 {
		t.Errorf("PerInterval(1)[0] = %v", v)
	}
	if s.Ambient() != 45 {
		t.Errorf("Ambient = %v", s.Ambient())
	}
	if len(s.Names()) != 3 {
		t.Error("Names wrong")
	}
}

// Property: for any sample set, AbsMax >= AvgMax >= Average over the same
// (non-empty, uniform-area) filter.
func TestQuickMetricOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		s := NewSeries([]string{"A", "B"}, []float64{1, 1}, 0)
		for i := 0; i+1 < len(raw) && i < 40; i += 2 {
			a := math.Mod(math.Abs(raw[i]), 100)
			b := math.Mod(math.Abs(raw[i+1]), 100)
			if math.IsNaN(a) || math.IsNaN(b) {
				return true
			}
			s.Add([]float64{a, b})
		}
		if s.Intervals() == 0 {
			return true
		}
		return s.AbsMax(nil) >= s.AvgMax(nil)-1e-9 && s.AvgMax(nil) >= s.Average(nil)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
