// Package dtm implements a dynamic thermal management controller — the
// emergency mechanism the paper leaves as future work ("We have not
// enabled any mechanism to be triggered at a thermal emergency (it is
// part of our future work)").
//
// The controller follows the fetch-toggling approach of Skadron et al.
// (the paper's reference [27]): when the peak block temperature crosses
// the trigger threshold, fetch is throttled to a duty cycle proportional
// to the overshoot; when the chip cools below the release threshold the
// duty cycle recovers one step per interval.  The paper argues its
// techniques reduce how often such mechanisms fire — the integration test
// and the DTM ablation quantify exactly that.
package dtm

// Controller is the fetch-toggling thermal-emergency controller.
type Controller struct {
	cfg  Config
	duty int // allowed fetch cycles out of DutyDen

	// Stats.
	Engagements    uint64 // transitions from full speed to throttled
	ThrottledSteps uint64 // intervals spent below full duty
	MinDuty        int
}

// Config parameterizes the controller.
type Config struct {
	// TriggerC engages throttling when the peak block temperature
	// exceeds it (the paper's emergency limit is 381 K = 108°C).
	TriggerC float64
	// ReleaseC must be reached before the duty cycle recovers.
	ReleaseC float64
	// DutyDen is the duty-cycle denominator (granularity of throttling).
	DutyDen int
	// DegPerStep is the proportional gain: one duty step per this many
	// degrees of overshoot.
	DegPerStep float64
	// MinDutyNum floors the duty cycle so the machine always retires
	// forward progress.
	MinDutyNum int
}

// DefaultConfig returns a controller tuned for the paper's 381 K
// emergency limit.
func DefaultConfig() Config {
	return Config{
		TriggerC:   108, // 381 K
		ReleaseC:   104,
		DutyDen:    8,
		DegPerStep: 1.5,
		MinDutyNum: 1,
	}
}

// New builds a controller starting at full speed.
func New(cfg Config) *Controller {
	if cfg.DutyDen <= 0 {
		cfg.DutyDen = 8
	}
	if cfg.MinDutyNum < 1 {
		cfg.MinDutyNum = 1
	}
	if cfg.MinDutyNum > cfg.DutyDen {
		cfg.MinDutyNum = cfg.DutyDen
	}
	if cfg.ReleaseC >= cfg.TriggerC {
		cfg.ReleaseC = cfg.TriggerC - 2
	}
	if cfg.DegPerStep <= 0 {
		cfg.DegPerStep = 1.5
	}
	c := &Controller{cfg: cfg, duty: cfg.DutyDen}
	c.MinDuty = cfg.DutyDen
	return c
}

// Duty returns the current duty cycle (num, den).
func (c *Controller) Duty() (num, den int) { return c.duty, c.cfg.DutyDen }

// Throttled reports whether the controller is currently limiting fetch.
func (c *Controller) Throttled() bool { return c.duty < c.cfg.DutyDen }

// Update feeds the controller the interval's peak block temperature and
// returns the duty cycle to apply for the next interval.
func (c *Controller) Update(peakC float64) (num, den int) {
	switch {
	case peakC > c.cfg.TriggerC:
		// Proportional throttle: one step per DegPerStep of overshoot.
		steps := int((peakC-c.cfg.TriggerC)/c.cfg.DegPerStep) + 1
		target := c.cfg.DutyDen - steps
		if target < c.cfg.MinDutyNum {
			target = c.cfg.MinDutyNum
		}
		if c.duty == c.cfg.DutyDen && target < c.duty {
			c.Engagements++
		}
		if target < c.duty {
			c.duty = target
		}
	case peakC < c.cfg.ReleaseC && c.duty < c.cfg.DutyDen:
		// Hysteresis: recover one step per cool interval.
		c.duty++
	}
	if c.duty < c.MinDuty {
		c.MinDuty = c.duty
	}
	if c.Throttled() {
		c.ThrottledSteps++
	}
	return c.duty, c.cfg.DutyDen
}
