package dtm

import "testing"

func TestStartsAtFullSpeed(t *testing.T) {
	c := New(DefaultConfig())
	num, den := c.Duty()
	if num != den {
		t.Fatalf("fresh controller throttled: %d/%d", num, den)
	}
	if c.Throttled() {
		t.Fatal("fresh controller reports throttled")
	}
}

func TestEngagesAboveTrigger(t *testing.T) {
	c := New(DefaultConfig())
	num, den := c.Update(112) // 4°C over the 108°C trigger
	if num >= den {
		t.Fatalf("no throttle at 112°C: %d/%d", num, den)
	}
	if c.Engagements != 1 {
		t.Fatalf("engagements = %d", c.Engagements)
	}
}

func TestProportionalResponse(t *testing.T) {
	mild := New(DefaultConfig())
	severe := New(DefaultConfig())
	m, _ := mild.Update(109)
	s, _ := severe.Update(120)
	if s >= m {
		t.Fatalf("severe overshoot throttled less: %d vs %d", s, m)
	}
}

func TestFloorsAtMinDuty(t *testing.T) {
	c := New(DefaultConfig())
	num, _ := c.Update(400)
	if num != DefaultConfig().MinDutyNum {
		t.Fatalf("duty = %d, want floor %d", num, DefaultConfig().MinDutyNum)
	}
}

func TestHysteresisRecovery(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(115)
	start, den := c.Duty()
	// Between release and trigger: hold.
	c.Update(106)
	if n, _ := c.Duty(); n != start {
		t.Fatalf("duty moved inside the hysteresis band: %d", n)
	}
	// Below release: recover one step per interval.
	c.Update(100)
	n1, _ := c.Duty()
	if n1 != start+1 {
		t.Fatalf("recovery step = %d, want %d", n1, start+1)
	}
	for i := 0; i < 20; i++ {
		c.Update(100)
	}
	if n, _ := c.Duty(); n != den {
		t.Fatalf("did not recover to full speed: %d/%d", n, den)
	}
}

func TestNoReengageCountWhileThrottled(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(115)
	c.Update(116)
	c.Update(117)
	if c.Engagements != 1 {
		t.Fatalf("engagements = %d, want 1 (continuous episode)", c.Engagements)
	}
	if c.ThrottledSteps != 3 {
		t.Fatalf("throttled steps = %d", c.ThrottledSteps)
	}
}

func TestMinDutyTracked(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(112)
	c.Update(130)
	if c.MinDuty >= DefaultConfig().DutyDen {
		t.Fatal("MinDuty not tracked")
	}
}

func TestConfigSanitization(t *testing.T) {
	c := New(Config{TriggerC: 100, ReleaseC: 120, DutyDen: 0, MinDutyNum: -3})
	num, den := c.Duty()
	if den <= 0 || num != den {
		t.Fatalf("sanitized controller broken: %d/%d", num, den)
	}
	// Release must have been forced below trigger: cooling at 99 after a
	// trigger at 101 must eventually recover.
	c.Update(101)
	if !c.Throttled() {
		t.Fatal("did not engage")
	}
	for i := 0; i < 20; i++ {
		c.Update(90)
	}
	if c.Throttled() {
		t.Fatal("never recovered with sanitized release")
	}
}
