// Package tcache implements the sub-banked, thermally aware trace cache of
// Section 3.2 of the paper.
//
// The trace cache is divided into banks with non-overlapping contents; a
// mapping function — a bitwise XOR of two five-bit fields of the trace
// address indexing a 32-entry table — selects the bank for every access.
// Three mechanisms are provided on top of the banked design:
//
//   - Balanced mapping (baseline): the 32 table entries are divided evenly
//     among the enabled banks.
//   - Thermal-aware ("biased") mapping (§3.2.2): the table is recomputed at
//     every interval from per-bank temperatures; a bank's share of entries
//     is halved for every 3°C it sits above the average bank temperature.
//   - Bank hopping (§3.2.1): one extra bank is added and one bank is always
//     Vdd-gated, rotating every interval.  A gated bank loses its contents.
//
// The "blank silicon" comparison point of Figure 13 (one of three banks
// statically gated) is expressed with StaticGate.
package tcache

import (
	"fmt"
	"math"

	"repro/internal/cache"
)

// MapEntries is the size of the bank-mapping table: the mapping function
// produces a five-bit index (paper, §3.2.2).
const MapEntries = 32

// Config describes a trace-cache organization.
type Config struct {
	// Banks is the number of physical banks.  The paper's baseline has 2;
	// hopping configurations add one extra bank (3).
	Banks int
	// TracesPerBank is the capacity of each bank in trace lines.  The
	// paper's 32K-µop cache corresponds to ~2048 8-µop lines per bank; the
	// default scaled configuration uses fewer (see core.DefaultConfig).
	TracesPerBank int
	// Ways is the associativity of each bank (paper: 4).
	Ways int
	// Hopping enables rotating Vdd-gating of one bank per interval.
	Hopping bool
	// StaticGate permanently disables the given bank (-1 to disable none).
	// Used for the blank-silicon comparison.
	StaticGate int
	// Biased enables the thermal-aware mapping function.
	Biased bool
	// BiasDegreesPerHalving is the temperature difference that halves a
	// bank's share of accesses.  The paper found 3°C (§3.2.2).
	BiasDegreesPerHalving float64
}

// DefaultBiasDegreesPerHalving is the paper's experimentally found rule:
// a bank's activity share is halved for every 3°C above the average.
const DefaultBiasDegreesPerHalving = 3.0

// Stats aggregates whole-trace-cache statistics.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	HopMisses  uint64 // misses while warming a freshly enabled bank
	Hops       uint64
	Rebalances uint64
}

// HitRate returns the overall hit rate (1 if no accesses).
func (s *Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 1
	}
	return 1 - float64(s.Misses)/float64(s.Accesses)
}

// TraceCache is a banked trace cache with a reconfigurable mapping table.
type TraceCache struct {
	cfg      Config
	banks    []*cache.Cache
	enabled  []bool
	gated    int // currently hop-gated bank, -1 if none
	mapTable [MapEntries]uint8
	// intervalAccesses counts per-bank accesses since the last interval
	// boundary; the power model converts these into per-bank power.
	intervalAccesses []uint64
	// freshFills counts fills into a bank since it was last enabled, used
	// to attribute warm-up misses to hopping.
	sinceEnable []uint64
	Stats       Stats
}

// New builds a trace cache.  It panics if the configuration leaves no
// enabled bank or gates a bank that does not exist.
func New(cfg Config) *TraceCache {
	if cfg.Banks < 1 {
		panic("tcache: need at least one bank")
	}
	if cfg.StaticGate >= cfg.Banks {
		panic(fmt.Sprintf("tcache: StaticGate %d out of range", cfg.StaticGate))
	}
	if cfg.BiasDegreesPerHalving == 0 {
		cfg.BiasDegreesPerHalving = DefaultBiasDegreesPerHalving
	}
	tc := &TraceCache{
		cfg:              cfg,
		banks:            make([]*cache.Cache, cfg.Banks),
		enabled:          make([]bool, cfg.Banks),
		gated:            -1,
		intervalAccesses: make([]uint64, cfg.Banks),
		sinceEnable:      make([]uint64, cfg.Banks),
	}
	for b := range tc.banks {
		tc.banks[b] = cache.New(cache.Config{
			Name:  fmt.Sprintf("TC-%d", b),
			SizeB: cfg.TracesPerBank * 64,
			Ways:  cfg.Ways,
			LineB: 64,
		})
		tc.enabled[b] = true
	}
	if cfg.StaticGate >= 0 {
		tc.enabled[cfg.StaticGate] = false
	}
	if cfg.Hopping {
		// Start with the last bank gated; rotation proceeds 0,1,2,...
		tc.gated = cfg.Banks - 1
		if tc.gated == cfg.StaticGate {
			panic("tcache: cannot hop with the only spare bank statically gated")
		}
		tc.enabled[tc.gated] = false
	}
	if tc.enabledCount() == 0 {
		panic("tcache: no enabled banks")
	}
	tc.balanceMap()
	return tc
}

// Banks returns the number of physical banks.
func (tc *TraceCache) Banks() int { return tc.cfg.Banks }

// Enabled reports whether bank b is currently powered.
func (tc *TraceCache) Enabled(b int) bool { return tc.enabled[b] }

// GatedBank returns the currently hop-gated bank, or -1.
func (tc *TraceCache) GatedBank() int { return tc.gated }

// MapTable returns a copy of the current mapping table.
func (tc *TraceCache) MapTable() [MapEntries]uint8 { return tc.mapTable }

func (tc *TraceCache) enabledCount() int {
	n := 0
	for _, e := range tc.enabled {
		if e {
			n++
		}
	}
	return n
}

// mapIndex computes the five-bit table index from a trace address: the
// bitwise XOR of two five-bit fields (§3.2.2).  The fields were chosen, as
// in the paper, to spread addresses evenly over the 32 combinations.
func mapIndex(id uint64) int {
	return int((id ^ (id >> 5)) & (MapEntries - 1))
}

// BankFor returns the bank the mapping function currently assigns to the
// trace address.
func (tc *TraceCache) BankFor(id uint64) int {
	return int(tc.mapTable[mapIndex(id)])
}

// Access looks up a trace line.  It returns whether it hit and which bank
// served (or will be filled on miss).  Only the mapped bank is probed:
// banks have non-overlapping contents from the lookup's point of view.
func (tc *TraceCache) Access(id uint64) (hit bool, bank int) {
	bank = tc.BankFor(id)
	tc.Stats.Accesses++
	tc.intervalAccesses[bank]++
	if tc.banks[bank].Read(id << 6) {
		return true, bank
	}
	tc.Stats.Misses++
	// Attribute early misses on a freshly enabled bank to hopping.
	if tc.cfg.Hopping && tc.sinceEnable[bank] < uint64(tc.cfg.TracesPerBank) {
		tc.Stats.HopMisses++
	}
	return false, bank
}

// Fill inserts a trace line into its mapped bank after a miss refill.
func (tc *TraceCache) Fill(id uint64) {
	bank := tc.BankFor(id)
	tc.banks[bank].Fill(id << 6)
	tc.intervalAccesses[bank]++
	tc.sinceEnable[bank]++
}

// IntervalAccesses returns per-bank access counts since the last call to
// ResetInterval; the slice is valid until the next Access.
func (tc *TraceCache) IntervalAccesses() []uint64 { return tc.intervalAccesses }

// ResetInterval zeroes the per-interval access counters.
func (tc *TraceCache) ResetInterval() {
	for i := range tc.intervalAccesses {
		tc.intervalAccesses[i] = 0
	}
}

// Reconfigure applies the end-of-interval policy: rotate the gated bank if
// hopping is enabled, then recompute the mapping table — biased by the
// supplied per-bank temperatures if the thermal-aware mapping is on,
// balanced otherwise.  temps must have one entry per bank (ignored unless
// Biased).
func (tc *TraceCache) Reconfigure(temps []float64) {
	if tc.cfg.Hopping {
		tc.hop()
	}
	if tc.cfg.Biased {
		tc.biasMap(temps)
		tc.Stats.Rebalances++
	} else if tc.cfg.Hopping {
		tc.balanceMap()
	}
}

// hop advances the rotating Vdd-gate to the next non-statically-gated
// bank.  The newly gated bank loses its contents (§3.2.1).
func (tc *TraceCache) hop() {
	next := (tc.gated + 1) % tc.cfg.Banks
	for next == tc.cfg.StaticGate {
		next = (next + 1) % tc.cfg.Banks
	}
	// Re-enable the previously gated bank (it was invalidated when gated,
	// so it wakes up empty).
	if tc.gated >= 0 {
		tc.enabled[tc.gated] = true
		tc.sinceEnable[tc.gated] = 0
	}
	tc.banks[next].InvalidateAll()
	tc.enabled[next] = false
	tc.gated = next
	tc.Stats.Hops++
}

// balanceMap assigns the 32 table entries evenly among enabled banks, in
// contiguous runs as in Figure 9 of the paper.
func (tc *TraceCache) balanceMap() {
	banks := tc.enabledBanks()
	n := len(banks)
	for e := 0; e < MapEntries; e++ {
		tc.mapTable[e] = uint8(banks[e*n/MapEntries])
	}
}

// biasMap implements the thermal-aware mapping function: each enabled
// bank's share of the 32 entries is weighted by 2^(-ΔT/3°C) where ΔT is
// its temperature minus the average of the enabled banks (§3.2.2); shares
// are rounded by largest remainder and every enabled bank keeps at least
// one entry.
func (tc *TraceCache) biasMap(temps []float64) {
	banks := tc.enabledBanks()
	if len(temps) < tc.cfg.Banks {
		// No sensor data: fall back to a balanced split.
		tc.balanceMap()
		return
	}
	avg := 0.0
	for _, b := range banks {
		avg += temps[b]
	}
	avg /= float64(len(banks))
	weights := make([]float64, len(banks))
	sum := 0.0
	for i, b := range banks {
		w := math.Exp2(-(temps[b] - avg) / tc.cfg.BiasDegreesPerHalving)
		weights[i] = w
		sum += w
	}
	// Largest-remainder apportionment of the 32 entries.
	shares := make([]int, len(banks))
	rema := make([]float64, len(banks))
	total := 0
	for i, w := range weights {
		exact := float64(MapEntries) * w / sum
		shares[i] = int(exact)
		rema[i] = exact - float64(shares[i])
		total += shares[i]
	}
	for total < MapEntries {
		best := 0
		for i := 1; i < len(rema); i++ {
			if rema[i] > rema[best] {
				best = i
			}
		}
		shares[best]++
		rema[best] = -1
		total++
	}
	// Guarantee at least one entry per enabled bank.
	for i := range shares {
		if shares[i] == 0 {
			donor := 0
			for j := range shares {
				if shares[j] > shares[donor] {
					donor = j
				}
			}
			shares[donor]--
			shares[i]++
		}
	}
	e := 0
	for i, b := range banks {
		for k := 0; k < shares[i]; k++ {
			tc.mapTable[e] = uint8(b)
			e++
		}
	}
	for ; e < MapEntries; e++ { // defensive: cannot happen
		tc.mapTable[e] = uint8(banks[len(banks)-1])
	}
}

// enabledBanks lists the indices of the enabled banks in order.
func (tc *TraceCache) enabledBanks() []int {
	var out []int
	for b, e := range tc.enabled {
		if e {
			out = append(out, b)
		}
	}
	return out
}

// EntryShares returns how many mapping-table entries point at each bank.
func (tc *TraceCache) EntryShares() []int {
	shares := make([]int, tc.cfg.Banks)
	for _, b := range tc.mapTable {
		shares[b]++
	}
	return shares
}

// BankStats returns the tag-store statistics of bank b.
func (tc *TraceCache) BankStats(b int) cache.Stats { return tc.banks[b].Stats }

// ValidLines returns the number of valid lines in bank b.
func (tc *TraceCache) ValidLines(b int) int { return tc.banks[b].ValidLines() }
