package tcache

import (
	"testing"
	"testing/quick"
)

func base2() Config {
	return Config{Banks: 2, TracesPerBank: 64, Ways: 4, StaticGate: -1}
}

func hop3() Config {
	return Config{Banks: 3, TracesPerBank: 64, Ways: 4, Hopping: true, StaticGate: -1}
}

func TestBalancedMapEvenSplit(t *testing.T) {
	tc := New(base2())
	shares := tc.EntryShares()
	if shares[0] != 16 || shares[1] != 16 {
		t.Fatalf("balanced shares = %v, want [16 16]", shares)
	}
	// Figure 9: contiguous runs.
	tbl := tc.MapTable()
	for e := 1; e < MapEntries; e++ {
		if tbl[e] < tbl[e-1] {
			t.Fatalf("map table not contiguous: %v", tbl)
		}
	}
}

func TestAccessMissFillHit(t *testing.T) {
	tc := New(base2())
	hit, bank := tc.Access(0x1234)
	if hit {
		t.Fatal("cold hit")
	}
	tc.Fill(0x1234)
	hit2, bank2 := tc.Access(0x1234)
	if !hit2 || bank2 != bank {
		t.Fatalf("hit=%v bank=%d after fill into bank %d", hit2, bank2, bank)
	}
	if tc.Stats.Accesses != 2 || tc.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", tc.Stats)
	}
}

func TestNonOverlappingLookup(t *testing.T) {
	// A trace is only ever found in its currently mapped bank.
	tc := New(base2())
	id := uint64(7)
	b := tc.BankFor(id)
	tc.Fill(id)
	// Force a different mapping by rebalancing with a fake temperature
	// gradient that pushes everything to the other bank.
	cfgBiased := base2()
	cfgBiased.Biased = true
	tcb := New(cfgBiased)
	tcb.Fill(id)
	hot := make([]float64, 2)
	hot[tcb.BankFor(id)] = 100 // mapped bank is scorching
	tcb.Reconfigure(hot)
	if nb := tcb.BankFor(id); nb == b && tcb.EntryShares()[b] > 1 {
		// Not guaranteed to move for every id, but the share must shrink.
		t.Logf("trace kept its bank; shares now %v", tcb.EntryShares())
	}
	shares := tcb.EntryShares()
	if shares[0] != 0 && shares[1] != 0 {
		coldBank := 0
		if hot[1] == 0 {
			coldBank = 1
		}
		if shares[coldBank] <= MapEntries/2 {
			t.Fatalf("cold bank share %d did not grow: %v", shares[coldBank], shares)
		}
	}
}

func TestBiasHalvingRule(t *testing.T) {
	cfg := base2()
	cfg.Biased = true
	tc := New(cfg)
	// Bank 0 exactly 3°C above bank 1 → weights 2^-1.5 ... relative share
	// must be half: shares 1/3 vs 2/3 of 32 ≈ 11 vs 21.
	tc.Reconfigure([]float64{76.5, 73.5})
	shares := tc.EntryShares()
	if shares[0]+shares[1] != MapEntries {
		t.Fatalf("shares don't cover table: %v", shares)
	}
	ratio := float64(shares[1]) / float64(shares[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("3°C difference gave ratio %.2f, want ~2 (paper's halving rule)", ratio)
	}
}

func TestBiasEqualTempsBalanced(t *testing.T) {
	cfg := base2()
	cfg.Biased = true
	tc := New(cfg)
	tc.Reconfigure([]float64{70, 70})
	shares := tc.EntryShares()
	if shares[0] != 16 || shares[1] != 16 {
		t.Fatalf("equal temps gave shares %v", shares)
	}
}

func TestBiasMinimumOneEntry(t *testing.T) {
	cfg := base2()
	cfg.Biased = true
	tc := New(cfg)
	tc.Reconfigure([]float64{150, 45}) // 105°C apart: extreme
	shares := tc.EntryShares()
	if shares[0] < 1 {
		t.Fatalf("hot bank starved below one entry: %v", shares)
	}
	if shares[0]+shares[1] != MapEntries {
		t.Fatalf("table not fully covered: %v", shares)
	}
}

func TestBiasMissingSensorsFallsBack(t *testing.T) {
	cfg := base2()
	cfg.Biased = true
	tc := New(cfg)
	tc.Reconfigure(nil)
	shares := tc.EntryShares()
	if shares[0] != 16 || shares[1] != 16 {
		t.Fatalf("fallback shares = %v", shares)
	}
}

func TestHoppingRotation(t *testing.T) {
	tc := New(hop3())
	if g := tc.GatedBank(); g != 2 {
		t.Fatalf("initial gated bank = %d, want 2", g)
	}
	seen := []int{tc.GatedBank()}
	for i := 0; i < 3; i++ {
		tc.Reconfigure(nil)
		seen = append(seen, tc.GatedBank())
	}
	want := []int{2, 0, 1, 2}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("gating sequence %v, want %v", seen, want)
		}
	}
	if tc.Stats.Hops != 3 {
		t.Fatalf("Hops = %d", tc.Stats.Hops)
	}
}

func TestHoppingAlwaysTwoEnabled(t *testing.T) {
	tc := New(hop3())
	for i := 0; i < 10; i++ {
		n := 0
		for b := 0; b < tc.Banks(); b++ {
			if tc.Enabled(b) {
				n++
			}
		}
		if n != 2 {
			t.Fatalf("interval %d: %d banks enabled, want 2", i, n)
		}
		if tc.Enabled(tc.GatedBank()) {
			t.Fatal("gated bank reported enabled")
		}
		tc.Reconfigure(nil)
	}
}

func TestHoppingLosesContents(t *testing.T) {
	tc := New(hop3())
	// Fill some traces, then hop until their bank gets gated.
	var ids []uint64
	for id := uint64(0); id < 200; id++ {
		if hit, _ := tc.Access(id); !hit {
			tc.Fill(id)
		}
		ids = append(ids, id)
	}
	tc.Reconfigure(nil) // bank 0 becomes gated; its contents are lost
	lost := 0
	for _, id := range ids {
		if hit, _ := tc.Access(id); !hit {
			lost++
			tc.Fill(id)
		}
	}
	if lost == 0 {
		t.Fatal("no traces lost after a hop; gating must lose contents")
	}
	if tc.Stats.HopMisses == 0 {
		t.Fatal("hop misses not attributed")
	}
}

func TestMappedBankNeverGated(t *testing.T) {
	tc := New(hop3())
	for i := 0; i < 6; i++ {
		for id := uint64(0); id < 500; id++ {
			if b := tc.BankFor(id); b == tc.GatedBank() {
				t.Fatalf("interval %d: trace %d mapped to gated bank %d", i, id, b)
			}
		}
		tc.Reconfigure(nil)
	}
}

func TestStaticGateBlankSilicon(t *testing.T) {
	cfg := Config{Banks: 3, TracesPerBank: 64, Ways: 4, StaticGate: 2}
	tc := New(cfg)
	if tc.Enabled(2) {
		t.Fatal("statically gated bank enabled")
	}
	shares := tc.EntryShares()
	if shares[2] != 0 {
		t.Fatalf("gated bank has map entries: %v", shares)
	}
	if shares[0] != 16 || shares[1] != 16 {
		t.Fatalf("blank-silicon shares = %v", shares)
	}
	// Reconfigure must keep the static gate: no hopping configured.
	tc.Reconfigure([]float64{50, 50, 50})
	if tc.Enabled(2) || tc.GatedBank() != -1 {
		t.Fatal("static gate violated by Reconfigure")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Banks: 0, TracesPerBank: 64, Ways: 4, StaticGate: -1},
		{Banks: 2, TracesPerBank: 64, Ways: 4, StaticGate: 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestIntervalAccessCounters(t *testing.T) {
	tc := New(base2())
	for id := uint64(0); id < 100; id++ {
		if hit, _ := tc.Access(id); !hit {
			tc.Fill(id)
		}
	}
	tot := uint64(0)
	for _, a := range tc.IntervalAccesses() {
		tot += a
	}
	if tot == 0 {
		t.Fatal("no interval accesses recorded")
	}
	tc.ResetInterval()
	for _, a := range tc.IntervalAccesses() {
		if a != 0 {
			t.Fatal("ResetInterval did not clear counters")
		}
	}
}

// Property: the mapping table always covers all 32 entries with enabled
// banks only, for arbitrary temperature vectors.
func TestQuickMapTableInvariant(t *testing.T) {
	cfg := hop3()
	cfg.Biased = true
	tc := New(cfg)
	f := func(t0, t1, t2 float64) bool {
		clamp := func(x float64) float64 {
			if x != x || x > 500 {
				return 500
			}
			if x < -100 {
				return -100
			}
			return x
		}
		tc.Reconfigure([]float64{clamp(t0), clamp(t1), clamp(t2)})
		tbl := tc.MapTable()
		for _, b := range tbl {
			if int(b) >= tc.Banks() || !tc.Enabled(int(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: hit rate is always in [0,1] and misses never exceed accesses.
func TestQuickStatsInvariant(t *testing.T) {
	tc := New(base2())
	f := func(ids []uint64) bool {
		for _, id := range ids {
			if hit, _ := tc.Access(id % 4096); !hit {
				tc.Fill(id % 4096)
			}
		}
		hr := tc.Stats.HitRate()
		return hr >= 0 && hr <= 1 && tc.Stats.Misses <= tc.Stats.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
