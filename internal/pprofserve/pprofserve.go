// Package pprofserve starts the optional net/http/pprof debug listener
// shared by the service binaries (`simd -pprof`, `simsched -pprof`).
package pprofserve

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
)

// Maybe serves net/http/pprof on addr from a background goroutine; an
// empty addr disables it.  The address is bound synchronously, so the
// success banner is only printed for a listener that exists (a bind
// failure reports the error instead, without failing the service).  The
// listener uses http.DefaultServeMux (where net/http/pprof registers),
// which the services' explicit handlers never share.  Keep addr off the
// service port — the profile endpoints are unauthenticated.
func Maybe(name, addr string) {
	if addr == "" {
		return
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: pprof listener: %v\n", name, err)
		return
	}
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			fmt.Fprintf(os.Stderr, "%s: pprof listener: %v\n", name, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "%s: pprof on http://%s/debug/pprof/\n", name, ln.Addr())
}
