// Package workload synthesizes deterministic micro-op streams that stand in
// for the 26 SPEC2000 IA32 traces used by the paper.
//
// SPEC binaries and the authors' trace slices cannot be redistributed, so
// each benchmark is replaced by a profile capturing the properties the
// paper's results actually depend on: instruction mix (which blocks see
// activity), dependency distances (ILP, hence IPC and burst behaviour),
// trace-cache working-set size and skew (trace-cache hit rate and bank
// imbalance), data working-set size (DL1/UL2 miss rates), branch
// mispredictions (frontend stalls), and phase behaviour (short-term access
// bursts, which motivate the thermal-aware mapping function in §3.2.2).
//
// Everything is generated from a per-benchmark seed with the fixed PRNG in
// package rng, so runs are exactly reproducible.
package workload

// Profile describes a synthetic benchmark.  See the package comment for
// the mapping between fields and the behaviours they reproduce.
type Profile struct {
	Name string
	Seed uint64

	// Instruction mix.  Fractions must sum to <= 1; the remainder is
	// IntALU.  Branch micro-ops additionally terminate traces.
	FracIntMul float64
	FracIntDiv float64
	FracFPAdd  float64
	FracFPMul  float64
	FracFPDiv  float64
	FracLoad   float64
	FracStore  float64
	FracBranch float64

	// DepDistMean is the mean register dependency distance in micro-ops.
	// Small values serialize execution (low IPC); large values expose ILP.
	DepDistMean float64

	// Trace-cache behaviour.  The hot phase draws traces Zipf-skewed from
	// a working set of HotTraces distinct traces; the cold phase draws
	// from ColdTraces.  PhaseLen is the phase length in micro-ops and
	// HotFrac the fraction of phases that are hot.  Phase alternation
	// produces the short-term access bursts discussed in §3.2.2.
	HotTraces  int
	ColdTraces int
	PhaseLen   int
	HotFrac    float64
	TraceTheta float64 // skew of trace selection inside a phase

	// Data memory behaviour.  DataWS is the data working set in bytes;
	// StrideFrac is the fraction of memory references that walk arrays
	// sequentially.  Of the remaining references, HotDataFrac hit a small
	// hot region of HotDataB bytes (temporal locality) and the rest are
	// spread over the full working set.
	DataWS      uint64
	StrideFrac  float64
	HotDataFrac float64
	HotDataB    uint64

	// MispredRate is the probability that a branch micro-op was
	// mispredicted; the pipeline is redirected when it executes.
	MispredRate float64

	// LengthScale scales the benchmark's run length relative to the
	// standard slice (1.0 = full slice).  The paper ran 200M-instruction
	// slices for all but five applications (§4); those keep their
	// published shorter fractions.
	LengthScale float64
}

// defaults fills zero-valued fields with sane values so profile literals
// stay short.
func (p Profile) defaults() Profile {
	if p.DepDistMean == 0 {
		p.DepDistMean = 6
	}
	if p.HotTraces == 0 {
		p.HotTraces = 96
	}
	if p.ColdTraces == 0 {
		p.ColdTraces = 1024
	}
	if p.PhaseLen == 0 {
		p.PhaseLen = 40000
	}
	if p.HotFrac == 0 {
		p.HotFrac = 0.7
	}
	if p.TraceTheta == 0 {
		p.TraceTheta = 0.8
	}
	if p.DataWS == 0 {
		p.DataWS = 1 << 20
	}
	if p.StrideFrac == 0 {
		p.StrideFrac = 0.5
	}
	if p.HotDataFrac == 0 {
		p.HotDataFrac = 0.75
	}
	if p.HotDataB == 0 {
		p.HotDataB = 8 << 10
	}
	if p.HotDataB > p.DataWS {
		p.HotDataB = p.DataWS
	}
	if p.MispredRate == 0 {
		p.MispredRate = 0.03
	}
	if p.LengthScale == 0 {
		p.LengthScale = 1.0
	}
	return p
}

// SPEC2000 returns profiles for the 26 SPEC2000 applications the paper
// evaluates (12 SPECint + 14 SPECfp as run by the authors).  Parameters
// are hand-assigned from the well-known characters of these benchmarks:
// e.g. mcf and art are memory bound, gcc has a large instruction footprint,
// swim/mgrid are regular FP array codes with long streams.
//
// The five applications whose traces were shorter than 200M instructions
// (eon, fma3d, mcf, perlbmk, swim) keep the paper's relative lengths via
// LengthScale (127/200, 30/200, 156/200, 58/200, 112/200).
func SPEC2000() []Profile {
	ps := []Profile{
		// ---- SPECint ----
		{Name: "gzip", Seed: 1001, FracLoad: 0.24, FracStore: 0.12, FracBranch: 0.14,
			DepDistMean: 5, HotTraces: 48, ColdTraces: 300, DataWS: 2 << 20, StrideFrac: 0.7, MispredRate: 0.035},
		{Name: "vpr", Seed: 1002, FracLoad: 0.28, FracStore: 0.10, FracBranch: 0.13, FracFPAdd: 0.04, FracFPMul: 0.03,
			DepDistMean: 4, HotTraces: 120, ColdTraces: 900, DataWS: 4 << 20, StrideFrac: 0.3, MispredRate: 0.06},
		{Name: "gcc", Seed: 1003, FracLoad: 0.26, FracStore: 0.14, FracBranch: 0.17,
			DepDistMean: 4, HotTraces: 400, ColdTraces: 4000, PhaseLen: 25000, HotFrac: 0.45,
			DataWS: 8 << 20, StrideFrac: 0.25, MispredRate: 0.05},
		{Name: "mcf", Seed: 1004, FracLoad: 0.34, FracStore: 0.09, FracBranch: 0.16,
			DepDistMean: 3, HotTraces: 32, ColdTraces: 200, DataWS: 64 << 20, StrideFrac: 0.1,
			MispredRate: 0.07, LengthScale: 156.0 / 200},
		{Name: "crafty", Seed: 1005, FracLoad: 0.27, FracStore: 0.08, FracBranch: 0.12, FracIntMul: 0.01,
			DepDistMean: 6, HotTraces: 160, ColdTraces: 1200, DataWS: 2 << 20, StrideFrac: 0.4, MispredRate: 0.055},
		{Name: "parser", Seed: 1006, FracLoad: 0.26, FracStore: 0.11, FracBranch: 0.15,
			DepDistMean: 4, HotTraces: 140, ColdTraces: 1100, DataWS: 16 << 20, StrideFrac: 0.2, MispredRate: 0.055},
		{Name: "eon", Seed: 1007, FracLoad: 0.28, FracStore: 0.15, FracBranch: 0.10, FracFPAdd: 0.08, FracFPMul: 0.06,
			DepDistMean: 6, HotTraces: 100, ColdTraces: 700, DataWS: 1 << 20, StrideFrac: 0.6,
			MispredRate: 0.02, LengthScale: 127.0 / 200},
		{Name: "perlbmk", Seed: 1008, FracLoad: 0.27, FracStore: 0.14, FracBranch: 0.15,
			DepDistMean: 5, HotTraces: 220, ColdTraces: 2200, DataWS: 4 << 20, StrideFrac: 0.35,
			MispredRate: 0.04, LengthScale: 58.0 / 200},
		{Name: "gap", Seed: 1009, FracLoad: 0.25, FracStore: 0.12, FracBranch: 0.13, FracIntMul: 0.02,
			DepDistMean: 5, HotTraces: 130, ColdTraces: 1000, DataWS: 24 << 20, StrideFrac: 0.45, MispredRate: 0.04},
		{Name: "vortex", Seed: 1010, FracLoad: 0.29, FracStore: 0.16, FracBranch: 0.14,
			DepDistMean: 6, HotTraces: 260, ColdTraces: 2600, DataWS: 16 << 20, StrideFrac: 0.4, MispredRate: 0.025},
		{Name: "bzip2", Seed: 1011, FracLoad: 0.25, FracStore: 0.11, FracBranch: 0.13,
			DepDistMean: 5, HotTraces: 56, ColdTraces: 360, DataWS: 8 << 20, StrideFrac: 0.6, MispredRate: 0.05},
		{Name: "twolf", Seed: 1012, FracLoad: 0.27, FracStore: 0.09, FracBranch: 0.14, FracFPAdd: 0.03, FracFPMul: 0.02,
			DepDistMean: 4, HotTraces: 110, ColdTraces: 800, DataWS: 2 << 20, StrideFrac: 0.25, MispredRate: 0.065},
		// ---- SPECfp ----
		{Name: "wupwise", Seed: 2001, FracLoad: 0.24, FracStore: 0.11, FracBranch: 0.05,
			FracFPAdd: 0.16, FracFPMul: 0.17, DepDistMean: 9, HotTraces: 40, ColdTraces: 220,
			DataWS: 32 << 20, StrideFrac: 0.8, MispredRate: 0.008},
		{Name: "swim", Seed: 2002, FracLoad: 0.28, FracStore: 0.13, FracBranch: 0.03,
			FracFPAdd: 0.21, FracFPMul: 0.16, DepDistMean: 12, HotTraces: 24, ColdTraces: 120,
			DataWS: 96 << 20, StrideFrac: 0.95, MispredRate: 0.004, LengthScale: 112.0 / 200},
		{Name: "mgrid", Seed: 2003, FracLoad: 0.31, FracStore: 0.08, FracBranch: 0.03,
			FracFPAdd: 0.24, FracFPMul: 0.17, DepDistMean: 11, HotTraces: 28, ColdTraces: 140,
			DataWS: 56 << 20, StrideFrac: 0.9, MispredRate: 0.004},
		{Name: "applu", Seed: 2004, FracLoad: 0.27, FracStore: 0.10, FracBranch: 0.04,
			FracFPAdd: 0.19, FracFPMul: 0.16, FracFPDiv: 0.01, DepDistMean: 10, HotTraces: 44, ColdTraces: 260,
			DataWS: 64 << 20, StrideFrac: 0.85, MispredRate: 0.006},
		{Name: "mesa", Seed: 2005, FracLoad: 0.26, FracStore: 0.13, FracBranch: 0.09,
			FracFPAdd: 0.11, FracFPMul: 0.10, DepDistMean: 7, HotTraces: 120, ColdTraces: 900,
			DataWS: 4 << 20, StrideFrac: 0.6, MispredRate: 0.02},
		{Name: "galgel", Seed: 2006, FracLoad: 0.29, FracStore: 0.08, FracBranch: 0.05,
			FracFPAdd: 0.20, FracFPMul: 0.18, DepDistMean: 10, HotTraces: 36, ColdTraces: 200,
			DataWS: 12 << 20, StrideFrac: 0.75, MispredRate: 0.01},
		{Name: "art", Seed: 2007, FracLoad: 0.32, FracStore: 0.07, FracBranch: 0.08,
			FracFPAdd: 0.18, FracFPMul: 0.14, DepDistMean: 6, HotTraces: 20, ColdTraces: 90,
			DataWS: 48 << 20, StrideFrac: 0.3, MispredRate: 0.012},
		{Name: "equake", Seed: 2008, FracLoad: 0.31, FracStore: 0.09, FracBranch: 0.06,
			FracFPAdd: 0.17, FracFPMul: 0.15, FracFPDiv: 0.005, DepDistMean: 8, HotTraces: 48, ColdTraces: 280,
			DataWS: 40 << 20, StrideFrac: 0.55, MispredRate: 0.01},
		{Name: "facerec", Seed: 2009, FracLoad: 0.27, FracStore: 0.09, FracBranch: 0.05,
			FracFPAdd: 0.19, FracFPMul: 0.17, DepDistMean: 9, HotTraces: 52, ColdTraces: 320,
			DataWS: 24 << 20, StrideFrac: 0.7, MispredRate: 0.009},
		{Name: "ammp", Seed: 2010, FracLoad: 0.28, FracStore: 0.10, FracBranch: 0.07,
			FracFPAdd: 0.17, FracFPMul: 0.14, FracFPDiv: 0.01, DepDistMean: 7, HotTraces: 64, ColdTraces: 400,
			DataWS: 28 << 20, StrideFrac: 0.45, MispredRate: 0.012},
		{Name: "lucas", Seed: 2011, FracLoad: 0.25, FracStore: 0.11, FracBranch: 0.03,
			FracFPAdd: 0.22, FracFPMul: 0.20, DepDistMean: 12, HotTraces: 20, ColdTraces: 100,
			DataWS: 64 << 20, StrideFrac: 0.9, MispredRate: 0.003},
		{Name: "fma3d", Seed: 2012, FracLoad: 0.27, FracStore: 0.12, FracBranch: 0.06,
			FracFPAdd: 0.18, FracFPMul: 0.15, DepDistMean: 8, HotTraces: 180, ColdTraces: 1400,
			DataWS: 48 << 20, StrideFrac: 0.6, MispredRate: 0.01, LengthScale: 30.0 / 200},
		{Name: "sixtrack", Seed: 2013, FracLoad: 0.24, FracStore: 0.09, FracBranch: 0.05,
			FracFPAdd: 0.21, FracFPMul: 0.19, FracFPDiv: 0.008, DepDistMean: 9, HotTraces: 90, ColdTraces: 600,
			DataWS: 8 << 20, StrideFrac: 0.75, MispredRate: 0.007},
		{Name: "apsi", Seed: 2014, FracLoad: 0.26, FracStore: 0.10, FracBranch: 0.06,
			FracFPAdd: 0.18, FracFPMul: 0.16, FracFPDiv: 0.005, DepDistMean: 8, HotTraces: 70, ColdTraces: 440,
			DataWS: 32 << 20, StrideFrac: 0.65, MispredRate: 0.009},
	}
	for i := range ps {
		ps[i] = ps[i].defaults()
	}
	return ps
}

// ByName returns the SPEC2000 profile with the given name, or false if no
// such benchmark exists.
func ByName(name string) (Profile, bool) {
	for _, p := range SPEC2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names returns the benchmark names in suite order.
func Names() []string {
	ps := SPEC2000()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// LengthScaleOrOne returns the slice-length scale, defaulting to 1 when
// unset (profile literals not passed through defaults).
func (p Profile) LengthScaleOrOne() float64 {
	if p.LengthScale <= 0 {
		return 1
	}
	return p.LengthScale
}
